// Prefetcher tests: async staging on the engine's async lane, consumption
// through FetchRaw, stale-slot recycling, and containment of injected
// failures (including throwing faults).  These run the real worker thread,
// so they double as the TSan target for the tier_mu_/tier_cv_ protocol.

#include "src/storage/prefetcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "src/engine/execution_engine.h"
#include "src/obs/metrics.h"
#include "src/storage/chunk_store.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

namespace fs = std::filesystem;

constexpr size_t kChunkBytes = 64;

RawChunk MakeRaw(ChunkId id) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = static_cast<int64_t>(id) * 60;
  chunk.records = {std::string(kChunkBytes, 'p')};
  return chunk;
}

class PrefetcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdpipe_prefetcher_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ChunkStore::Options SpillOptions(size_t memory_chunks) const {
    ChunkStore::Options options;
    options.memory_budget_bytes = memory_chunks * kChunkBytes;
    options.spill_dir = dir_.string();
    return options;
  }

  fs::path dir_;
};

TEST_F(PrefetcherTest, StagedLoadIsConsumedAsPrefetchHit) {
  // Declaration order = reverse destruction order: the prefetcher drains
  // its loads before the store or engine can die.
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  ASSERT_TRUE(store.IsSpilled(0));
  prefetcher.Schedule({0, 1});
  EXPECT_EQ(prefetcher.stats().scheduled, 2);
  prefetcher.Drain();

  const RawChunk* loaded = store.FetchRaw(0);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->records, MakeRaw(0).records);
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.prefetch_hits, 1);
  EXPECT_EQ(counters.disk_loads, 0);
  EXPECT_DOUBLE_EQ(counters.PrefetchHitRate(), 1.0);
}

TEST_F(PrefetcherTest, MemoryResidentIdsAreIgnored) {
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 4; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  // ids 2,3 are memory-resident, 99 is dead: nothing to schedule for them.
  prefetcher.Schedule({2, 3, 99});
  EXPECT_EQ(prefetcher.stats().scheduled, 0);
}

TEST_F(PrefetcherTest, DuplicateScheduleIsDeduplicated) {
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  prefetcher.Schedule({0, 0, 1});
  prefetcher.Drain();
  // A second window re-listing staged ids must not enqueue new loads: the
  // staged bytes are exactly what the consumer is about to want.
  prefetcher.Schedule({0, 1});
  prefetcher.Drain();
  EXPECT_EQ(prefetcher.stats().scheduled, 2);
}

TEST_F(PrefetcherTest, FetchBlocksOnInFlightLoadInsteadOfRereading) {
  // Schedule without draining: FetchRaw may catch the load mid-flight and
  // must wait for the deposit rather than issue a second read.
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 8; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  prefetcher.Schedule({0, 1, 2, 3});
  const RawChunk* loaded = store.FetchRaw(2);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->id, 2);
  prefetcher.Drain();
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.prefetch_hits + counters.disk_loads, 1);
}

TEST_F(PrefetcherTest, StaleSlotsAreDroppedOnReschedule) {
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  prefetcher.Schedule({0});
  prefetcher.Drain();
  // The next window doesn't include 0: its staged slot is recycled and a
  // fresh schedule for 0 enqueues a new load.
  prefetcher.Schedule({1});
  prefetcher.Drain();
  prefetcher.Schedule({0});
  prefetcher.Drain();
  EXPECT_EQ(prefetcher.stats().scheduled, 3);
}

TEST_F(PrefetcherTest, ThrowingPrefetchIsContainedAndFallsBackToSync) {
  // The satellite scenario: a throwing fault on the async read must neither
  // kill the worker nor wedge FetchRaw — the sample path falls back to a
  // synchronous load, which succeeds once the rule is exhausted.
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  {
    testing::FaultRule rule = testing::FaultRule::FirstN(1);
    rule.throws = true;
    testing::ScopedFaultScript script({{"spill.read", rule}});
    prefetcher.Schedule({0});
    prefetcher.Drain();
  }
  const RawChunk* loaded = store.FetchRaw(0);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->id, 0);
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.prefetch_hits, 0);
  EXPECT_EQ(counters.disk_loads, 1);
  EXPECT_TRUE(store.Contains(0));
}

TEST_F(PrefetcherTest, CorruptFileDetectedByWorkerDropsChunkOnConsume) {
  ExecutionEngine engine(1);
  ChunkStore store(SpillOptions(2));
  Prefetcher prefetcher(&store, &engine);
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  testing::ScopedFaultScript script(
      {{"spill.corrupt", testing::FaultRule::FirstN(1)}});
  prefetcher.Schedule({0});
  prefetcher.Drain();
  // The worker observed the corruption; the consumer drops the chunk
  // without a second read and without double counting.
  EXPECT_EQ(store.FetchRaw(0), nullptr);
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.spill_corrupt_detected, 1);
  EXPECT_EQ(counters.spilled_chunks_dropped, 1);
  EXPECT_FALSE(store.Contains(0));
  EXPECT_EQ(counters.spill_corrupt_detected,
            testing::FaultInjector::Global().StatsFor("spill.corrupt").triggers);
}

TEST_F(PrefetcherTest, ManyWindowsUnderMultiThreadedEngine) {
  // Stress the staging protocol: overlapping windows, consumes racing the
  // worker.  (The async lane is a single worker even when the ParallelFor
  // pool is wider.)
  ExecutionEngine engine(4);
  ChunkStore store(SpillOptions(4));
  Prefetcher prefetcher(&store, &engine);
  ChunkId next = 0;
  for (; next < 16; ++next) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(next)).ok());
  }
  for (int round = 0; round < 50; ++round) {
    std::vector<ChunkId> window;
    for (ChunkId id = round % 8; id < (round % 8) + 4; ++id) {
      window.push_back(id);
    }
    prefetcher.Schedule(window);
    // Consume one mid-flight...
    (void)store.FetchRaw(window[round % window.size()]);
    // ...and keep the log growing, which recycles pinned loads.
    ASSERT_TRUE(store.PutRaw(MakeRaw(next++)).ok());
  }
  prefetcher.Drain();
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.spill_corrupt_detected, 0);
  EXPECT_GT(counters.prefetch_hits + counters.disk_loads, 0);
}

TEST_F(PrefetcherTest, AsyncExceptionsAreCountedOnTheEngineMetric) {
  obs::Counter* exceptions =
      obs::MetricsRegistry::Global().GetCounter("engine.async_exceptions");
  const int64_t before = exceptions->Value();
  ExecutionEngine engine(1);
  engine.SubmitAsync([] { throw std::runtime_error("boom"); });
  engine.DrainAsync();
  EXPECT_EQ(exceptions->Value(), before + 1);
}

}  // namespace
}  // namespace cdpipe
