// Property/fuzz test: the ChunkStore is exercised with long random
// operation sequences and checked after every step against a trivially
// correct reference model (plain ordered containers).  Catches invariant
// violations the unit tests' hand-picked sequences cannot.

#include <deque>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/storage/chunk_store.h"

namespace cdpipe {
namespace {

/// Straight-line re-implementation of the store's contract.
class ReferenceStore {
 public:
  ReferenceStore(size_t max_raw, size_t max_materialized)
      : max_raw_(max_raw), max_materialized_(max_materialized) {}

  void PutRaw(ChunkId id) {
    raw_.push_back(id);
    if (max_raw_ > 0 && raw_.size() > max_raw_) {
      const ChunkId victim = raw_.front();
      raw_.pop_front();
      materialized_.erase(victim);
    }
  }

  bool PutFeatures(ChunkId id) {
    if (std::find(raw_.begin(), raw_.end(), id) == raw_.end()) return false;
    if (max_materialized_ == 0) return true;
    if (materialized_.insert(id).second &&
        materialized_.size() > max_materialized_) {
      materialized_.erase(materialized_.begin());  // oldest id
    }
    return true;
  }

  const std::deque<ChunkId>& raw() const { return raw_; }
  const std::set<ChunkId>& materialized() const { return materialized_; }

 private:
  size_t max_raw_;
  size_t max_materialized_;
  std::deque<ChunkId> raw_;
  std::set<ChunkId> materialized_;  // sorted: begin() is oldest
};

FeatureChunk MakeFeatures(ChunkId id) {
  FeatureChunk chunk;
  chunk.origin_id = id;
  chunk.data.dim = 2;
  chunk.data.features.push_back(SparseVector::FromUnsorted(2, {{0, 1.0}}));
  chunk.data.labels.push_back(1.0);
  return chunk;
}

void CheckAgainstReference(const ChunkStore& store,
                           const ReferenceStore& reference) {
  ASSERT_EQ(store.num_raw(), reference.raw().size());
  ASSERT_EQ(store.num_materialized(), reference.materialized().size());
  const std::vector<ChunkId> live = store.LiveIds();
  ASSERT_EQ(live.size(), reference.raw().size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], reference.raw()[i]);
    EXPECT_TRUE(store.Contains(live[i]));
    EXPECT_NE(store.GetRaw(live[i]), nullptr);
  }
  for (ChunkId id : reference.materialized()) {
    EXPECT_TRUE(store.IsMaterialized(id)) << "chunk " << id;
    ASSERT_NE(store.GetFeatures(id), nullptr);
    EXPECT_EQ(store.GetFeatures(id)->origin_id, id);
  }
}

struct FuzzParams {
  size_t max_raw;
  size_t max_materialized;
  uint64_t seed;
};

class ChunkStoreFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(ChunkStoreFuzzTest, MatchesReferenceModel) {
  const FuzzParams params = GetParam();
  ChunkStore::Options options;
  options.max_raw_chunks = params.max_raw;
  options.max_materialized_chunks = params.max_materialized;
  ChunkStore store(options);
  ReferenceStore reference(params.max_raw, params.max_materialized);
  Rng rng(params.seed);

  ChunkId next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const uint64_t op = rng.NextBounded(10);
    if (op < 4 || next_id == 0) {
      // Insert a new raw chunk.
      RawChunk chunk;
      chunk.id = next_id++;
      chunk.records = {"r"};
      ASSERT_TRUE(store.PutRaw(std::move(chunk)).ok());
      reference.PutRaw(next_id - 1);
    } else if (op < 8) {
      // Materialize a random chunk id (possibly dead / already present).
      const ChunkId id =
          static_cast<ChunkId>(rng.NextBounded(static_cast<uint64_t>(next_id)));
      const bool reference_ok = reference.PutFeatures(id);
      const Status status = store.PutFeatures(MakeFeatures(id));
      EXPECT_EQ(status.ok(), reference_ok) << "id " << id;
    } else {
      // Random sampling access (exercises the μ counters; no state change
      // beyond counters).
      if (store.num_raw() > 0) {
        const std::vector<ChunkId> live = store.LiveIds();
        store.RecordSampleAccess(
            live[rng.NextBounded(live.size())]);
      }
    }
    if (step % 50 == 0) CheckAgainstReference(store, reference);
  }
  CheckAgainstReference(store, reference);

  // Counter invariants hold at the end of any sequence.
  const auto& counters = store.counters();
  EXPECT_GE(counters.raw_inserted, static_cast<int64_t>(store.num_raw()));
  EXPECT_EQ(counters.raw_inserted - counters.raw_dropped,
            static_cast<int64_t>(store.num_raw()));
  EXPECT_GE(counters.SampleHits() + counters.sample_misses, 0);
  EXPECT_LE(counters.EmpiricalMu(), 1.0);
  EXPECT_GE(counters.EmpiricalMu(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ChunkStoreFuzzTest,
    ::testing::Values(FuzzParams{0, SIZE_MAX, 1},  // unbounded
                      FuzzParams{0, 10, 2},        // bounded cache
                      FuzzParams{50, 10, 3},       // bounded raw + cache
                      FuzzParams{50, 0, 4},        // materialization off
                      FuzzParams{20, 100, 5},      // cache bigger than raw
                      FuzzParams{1, 1, 6}));       // degenerate

}  // namespace
}  // namespace cdpipe
