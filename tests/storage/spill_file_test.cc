// Spill-file container tests: atomic commit, checksum verification before
// decode, and a corruption corpus (truncation, bit-flips, empty file) that
// must always be detected as kInvalidArgument — never crash, never return
// partially decoded contents.

#include "src/storage/spill_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/dataframe/column.h"
#include "src/dataframe/value.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

namespace fs = std::filesystem;

class SpillFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdpipe_spill_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void Dump(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

std::vector<Column> SampleColumns() {
  Column doubles(ValueType::kDouble);
  doubles.AppendDouble(3.25);
  doubles.AppendNull();
  Column strings(ValueType::kString);
  strings.AppendString("2015-01-01 00:11:00,1.2,40.75");
  strings.AppendString("2015-01-01 00:12:00,0.4,40.71");
  return {std::move(doubles), std::move(strings)};
}

RawChunk SampleChunk(ChunkId id) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = id * 600;
  chunk.records = {"a,1,2", "b,3,4", "", "c with spaces,5,6"};
  return chunk;
}

TEST_F(SpillFileTest, RoundTripPreservesHeaderAndColumns) {
  const std::string path = Path("chunk_7.spill");
  Result<SpillFileInfo> info =
      WriteSpillFile(path, /*chunk_id=*/7, /*event_time_seconds=*/-3600,
                     SampleColumns());
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(static_cast<uint64_t>(info->bytes_written), fs::file_size(path));

  Result<SpillContents> contents = ReadSpillFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->chunk_id, 7);
  EXPECT_EQ(contents->event_time_seconds, -3600);
  ASSERT_EQ(contents->columns.size(), 2u);
  EXPECT_EQ(contents->columns[0].type(), ValueType::kDouble);
  EXPECT_EQ(contents->columns[1].StringAt(0), "2015-01-01 00:11:00,1.2,40.75");
  EXPECT_TRUE(contents->columns[0].IsNull(1));
}

TEST_F(SpillFileTest, RawChunkRoundTripIsExact) {
  const RawChunk chunk = SampleChunk(12);
  const std::string path = Path("chunk_12.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, chunk).ok());
  Result<RawChunk> loaded = ReadRawChunkSpill(path, 12);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->id, chunk.id);
  EXPECT_EQ(loaded->event_time_seconds, chunk.event_time_seconds);
  EXPECT_EQ(loaded->records, chunk.records);
}

TEST_F(SpillFileTest, IdMismatchIsCorruption) {
  const std::string path = Path("chunk_5.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(5)).ok());
  Result<RawChunk> loaded = ReadRawChunkSpill(path, 6);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SpillFileTest, CommitIsAtomicNoTmpLeftBehind) {
  const std::string path = Path("chunk_1.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(1)).ok());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(SpillFileTest, RewriteReplacesAtomically) {
  const std::string path = Path("chunk_2.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(2)).ok());
  RawChunk updated = SampleChunk(2);
  updated.records.push_back("late record");
  ASSERT_TRUE(WriteRawChunkSpill(path, updated).ok());
  Result<RawChunk> loaded = ReadRawChunkSpill(path, 2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records.size(), 5u);
}

TEST_F(SpillFileTest, MissingFileIsIoErrorNotCorruption) {
  Result<SpillContents> contents = ReadSpillFile(Path("never_written.spill"));
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kIoError);
}

// --- Corruption corpus. ---

TEST_F(SpillFileTest, EmptyFileIsCorrupt) {
  const std::string path = Path("empty.spill");
  Dump(path, "");
  Result<SpillContents> contents = ReadSpillFile(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SpillFileTest, EveryTruncationIsDetected) {
  const std::string path = Path("chunk_3.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(3)).ok());
  const std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 16u);
  const std::string cut_path = Path("truncated.spill");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Dump(cut_path, bytes.substr(0, cut));
    Result<SpillContents> contents = ReadSpillFile(cut_path);
    ASSERT_FALSE(contents.ok()) << "cut at " << cut << " of " << bytes.size();
    EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument)
        << "cut at " << cut;
  }
}

TEST_F(SpillFileTest, EverySingleBitFlipIsDetected) {
  // The FNV-1a trailer covers every payload byte and the trailer itself is
  // compared bit-for-bit, so *any* single-bit flip anywhere in the file
  // must be detected.  This is the property the chunk store's drop-chunk
  // accounting relies on.
  const std::string path = Path("chunk_4.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(4)).ok());
  const std::string bytes = Slurp(path);
  const std::string flip_path = Path("flipped.spill");
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      Dump(flip_path, mutated);
      Result<SpillContents> contents = ReadSpillFile(flip_path);
      ASSERT_FALSE(contents.ok())
          << "flip byte " << byte << " bit " << bit << " undetected";
      EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST_F(SpillFileTest, TrailingGarbageIsDetected) {
  const std::string path = Path("chunk_8.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(8)).ok());
  Dump(path, Slurp(path) + "extra");
  EXPECT_FALSE(ReadSpillFile(path).ok());
}

TEST_F(SpillFileTest, WrongMagicIsCorrupt) {
  const std::string path = Path("chunk_9.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(9)).ok());
  std::string bytes = Slurp(path);
  bytes[0] = 'X';
  Dump(path, bytes);
  Result<SpillContents> contents = ReadSpillFile(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kInvalidArgument);
}

// --- Fault sites. ---

TEST_F(SpillFileTest, WriteFaultReturnsStatusAndWritesNothing) {
  testing::ScopedFaultScript script(
      {{"spill.write", testing::FaultRule::FirstN(1)}});
  const std::string path = Path("faulted.spill");
  Result<SpillFileInfo> info = WriteRawChunkSpill(path, SampleChunk(1));
  EXPECT_FALSE(info.ok());
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(SpillFileTest, ReadFaultReturnsStatus) {
  const std::string path = Path("chunk_6.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(6)).ok());
  testing::ScopedFaultScript script(
      {{"spill.read", testing::FaultRule::FirstN(1)}});
  EXPECT_FALSE(ReadRawChunkSpill(path, 6).ok());
  // The rule has been consumed; the next read succeeds.
  EXPECT_TRUE(ReadRawChunkSpill(path, 6).ok());
}

TEST_F(SpillFileTest, CorruptFaultFlipsOneBitPerTrigger) {
  const std::string path = Path("chunk_10.spill");
  ASSERT_TRUE(WriteRawChunkSpill(path, SampleChunk(10)).ok());
  testing::ScopedFaultScript script(
      {{"spill.corrupt", testing::FaultRule::FirstN(1)}});
  Result<RawChunk> loaded = ReadRawChunkSpill(path, 10);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(testing::FaultInjector::Global().StatsFor("spill.corrupt").triggers,
            1);
  // The file on disk is untouched — only the read buffer was corrupted.
  EXPECT_TRUE(ReadRawChunkSpill(path, 10).ok());
}

}  // namespace
}  // namespace cdpipe
