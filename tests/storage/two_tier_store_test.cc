// Two-tier chunk store tests: spill mechanics (deterministic residency,
// budget enforcement, byte accounting), cross-tier liveness, degrade paths,
// and the per-tier μ property grid.
//
// Tier residency is closed-form: with fixed-size records the memory tier is
// exactly the newest r = budget / chunk_bytes chunks, so the memory-tier
// materialized set is the newest min(m, r) chunks and
//   μ_mem ≈ Mu(N, min(m, r)),   μ_disk ≈ Mu(N, m) − Mu(N, min(m, r))
// for both the uniform and window closed forms from §3.2.2 — the PR 3 μ
// grid re-validated per tier.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/sampling/mu_theory.h"
#include "src/sampling/sampler.h"
#include "src/storage/chunk_store.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

namespace fs = std::filesystem;

constexpr size_t kChunkBytes = 64;  // one fixed-size record per chunk

RawChunk MakeRaw(ChunkId id) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = static_cast<int64_t>(id) * 60;
  // Fixed-size record → tier residency is a pure function of the budget.
  std::string record(kChunkBytes, 'x');
  const std::string tag = std::to_string(id);
  record.replace(0, tag.size(), tag);
  chunk.records = {std::move(record)};
  return chunk;
}

FeatureChunk MakeFeatures(ChunkId id) {
  FeatureChunk chunk;
  chunk.origin_id = id;
  chunk.event_time_seconds = static_cast<int64_t>(id) * 60;
  return chunk;
}

class TwoTierStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdpipe_two_tier_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// A store whose memory tier holds exactly `memory_chunks` chunks.
  ChunkStore::Options SpillOptions(size_t memory_chunks) const {
    ChunkStore::Options options;
    options.memory_budget_bytes = memory_chunks * kChunkBytes;
    options.spill_dir = dir_.string();
    return options;
  }

  size_t NumSpillFiles() const {
    size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      (void)entry;
      ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST_F(TwoTierStoreTest, ResidencyIsDeterministicNewestSuffixInMemory) {
  ChunkStore store(SpillOptions(3));
  for (ChunkId id = 0; id < 10; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  EXPECT_EQ(store.num_raw(), 10u);
  EXPECT_EQ(store.num_spilled(), 7u);
  EXPECT_EQ(store.RawBytes(), 3 * kChunkBytes);
  EXPECT_EQ(NumSpillFiles(), 7u);
  EXPECT_GT(store.DiskBytes(), 0u);
  // Newest 3 in memory, oldest 7 on disk — exactly.
  for (ChunkId id = 0; id < 10; ++id) {
    EXPECT_TRUE(store.Contains(id));
    EXPECT_EQ(store.IsSpilled(id), id < 7) << "id " << id;
    EXPECT_EQ(store.GetRaw(id) != nullptr, id >= 7) << "id " << id;
  }
  // LiveIds spans both tiers, oldest first.
  const std::vector<ChunkId> live = store.LiveIds();
  ASSERT_EQ(live.size(), 10u);
  EXPECT_EQ(live.front(), 0);
  EXPECT_EQ(live.back(), 9);
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.chunks_spilled, 7);
  EXPECT_EQ(counters.spill_raw_bytes,
            static_cast<int64_t>(7 * kChunkBytes));
  EXPECT_GT(counters.spill_bytes_written, 0);
}

TEST_F(TwoTierStoreTest, SpillingDisabledWithoutBudgetOrDir) {
  ChunkStore::Options no_dir;
  no_dir.memory_budget_bytes = kChunkBytes;
  EXPECT_FALSE(ChunkStore(no_dir).spilling_enabled());
  ChunkStore::Options no_budget;
  no_budget.spill_dir = dir_.string();
  EXPECT_FALSE(ChunkStore(no_budget).spilling_enabled());
  ChunkStore store(no_dir);
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  EXPECT_EQ(store.num_spilled(), 0u);
}

TEST_F(TwoTierStoreTest, NewestChunkIsNeverSpilled) {
  // Even with a budget below one chunk, the just-inserted chunk stays: the
  // deployment loop reads it back immediately after PutRaw.
  ChunkStore::Options options;
  options.memory_budget_bytes = 1;
  options.spill_dir = dir_.string();
  ChunkStore store(options);
  for (ChunkId id = 0; id < 4; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    EXPECT_NE(store.GetRaw(id), nullptr) << "id " << id;
  }
  EXPECT_EQ(store.num_spilled(), 3u);
}

TEST_F(TwoTierStoreTest, FetchRawLoadsSpilledChunkBitExactly) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 6; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  ASSERT_TRUE(store.IsSpilled(0));
  const RawChunk* loaded = store.FetchRaw(0);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->id, 0);
  EXPECT_EQ(loaded->records, MakeRaw(0).records);
  EXPECT_EQ(store.counters().disk_loads, 1);
  // The chunk stays on disk — a fetch is a read, not a promotion.
  EXPECT_TRUE(store.IsSpilled(0));
  // Memory-tier fetches don't touch the disk counters.
  ASSERT_NE(store.FetchRaw(5), nullptr);
  EXPECT_EQ(store.counters().disk_loads, 1);
}

TEST_F(TwoTierStoreTest, FetchedPointerValidUntilNextPutRaw) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  const RawChunk* a = store.FetchRaw(0);
  const RawChunk* b = store.FetchRaw(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Both pins must coexist (a retrain pass fetches many spilled chunks).
  EXPECT_EQ(a->id, 0);
  EXPECT_EQ(b->id, 1);
}

TEST_F(TwoTierStoreTest, SpilledChunksRemainFeatureOrigins) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  ASSERT_TRUE(store.IsSpilled(0));
  EXPECT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  EXPECT_TRUE(store.IsMaterialized(0));
}

TEST_F(TwoTierStoreTest, RetentionBoundDropsSpilledFiles) {
  ChunkStore::Options options = SpillOptions(2);
  options.max_raw_chunks = 4;
  ChunkStore store(options);
  for (ChunkId id = 0; id < 8; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  EXPECT_EQ(store.num_raw(), 4u);
  EXPECT_EQ(store.num_spilled(), 2u);  // ids 4,5 on disk; 6,7 in memory
  EXPECT_EQ(NumSpillFiles(), 2u);      // dropped chunks' files deleted
  EXPECT_FALSE(store.Contains(3));
  EXPECT_TRUE(store.IsSpilled(4));
  EXPECT_NE(store.GetRaw(6), nullptr);
}

TEST_F(TwoTierStoreTest, DestructorRemovesSpillFiles) {
  {
    ChunkStore store(SpillOptions(1));
    for (ChunkId id = 0; id < 4; ++id) {
      ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    }
    EXPECT_EQ(NumSpillFiles(), 3u);
  }
  EXPECT_EQ(NumSpillFiles(), 0u);
}

TEST_F(TwoTierStoreTest, PerTierHitAccounting) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
  }
  // ids 0..2 spilled, 3..4 in memory; all five materialized.
  store.RecordSampleAccess(0);  // disk hit
  store.RecordSampleAccess(4);  // memory hit
  store.RecordSampleAccess(3);  // memory hit
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.disk_hits, 1);
  EXPECT_EQ(counters.memory_hits, 2);
  EXPECT_EQ(counters.SampleHits(), 3);
  EXPECT_EQ(counters.sample_misses, 0);
  EXPECT_DOUBLE_EQ(counters.EmpiricalMu(), 1.0);
  EXPECT_DOUBLE_EQ(counters.MemoryMu() + counters.DiskMu(),
                   counters.EmpiricalMu());
}

TEST_F(TwoTierStoreTest, SpillWriteFaultDegradesToKeepInMemory) {
  testing::ScopedFaultScript script(
      {{"spill.write", testing::FaultRule::FirstN(2)}});
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.spill_failures, 2);
  // Two failed passes kept their chunks in memory (budget exceeded);
  // later inserts retried and succeeded.
  EXPECT_EQ(counters.chunks_spilled, 3);
  EXPECT_EQ(store.RawBytes(), 2 * kChunkBytes);
  // Nothing lost: every chunk still live.
  for (ChunkId id = 0; id < 5; ++id) EXPECT_TRUE(store.Contains(id));
}

TEST_F(TwoTierStoreTest, CorruptSpillFileIsDetectedAndChunkDropped) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
  }
  testing::ScopedFaultScript script(
      {{"spill.corrupt", testing::FaultRule::FirstN(1)}});
  EXPECT_EQ(store.FetchRaw(0), nullptr);
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.spill_corrupt_detected, 1);
  EXPECT_EQ(counters.spilled_chunks_dropped, 1);
  EXPECT_EQ(counters.raw_dropped, 0);  // reserved for retention drops
  // Recompute-from-nothing: the chunk is gone from every index.
  EXPECT_FALSE(store.Contains(0));
  EXPECT_FALSE(store.IsMaterialized(0));
  EXPECT_EQ(store.LiveIds().size(), 4u);
  // Exactly as many detections as injected corruptions.
  EXPECT_EQ(counters.spill_corrupt_detected,
            testing::FaultInjector::Global().StatsFor("spill.corrupt").triggers);
}

TEST_F(TwoTierStoreTest, ReadFailureKeepsChunkLiveForRetry) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  {
    testing::ScopedFaultScript script(
        {{"spill.read", testing::FaultRule::FirstN(1)}});
    EXPECT_EQ(store.FetchRaw(0), nullptr);
  }
  // Transient failure: the chunk is still live and the retry succeeds.
  EXPECT_TRUE(store.Contains(0));
  EXPECT_NE(store.FetchRaw(0), nullptr);
  EXPECT_EQ(store.counters().spilled_chunks_dropped, 0);
}

TEST_F(TwoTierStoreTest, ResetCountersRefreshesResidencyGauges) {
  ChunkStore store(SpillOptions(2));
  for (ChunkId id = 0; id < 5; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  store.ResetCounters();
  const ChunkStore::Counters counters = store.counters();
  EXPECT_EQ(counters.chunks_spilled, 0);
  EXPECT_EQ(counters.spill_corrupt_detected, 0);
  // The gauges mirror residency, which ResetCounters leaves intact.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_DOUBLE_EQ(registry.GetGauge("chunk_store.num_raw")->Value(), 5.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("chunk_store.spill_files")->Value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("chunk_store.disk_bytes")->Value(),
                   static_cast<double>(store.DiskBytes()));
}

TEST_F(TwoTierStoreTest, CompressionRatioIsReportedAndBelowOne) {
  ChunkStore store(SpillOptions(1));
  for (ChunkId id = 0; id < 8; ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  }
  const double ratio = store.counters().SpillCompressionRatio();
  EXPECT_GT(ratio, 0.0);
  // 'xxx...' records dictionary/token-compress well below raw size + header.
  EXPECT_LT(ratio, 1.5);
}

// --- Per-tier μ property grid (PR 3 grid re-validated per tier). ---

struct TierMuCase {
  size_t m;       ///< materialized bound
  size_t r;       ///< memory-tier capacity in chunks
  size_t window;  ///< 0 = uniform sampling
  size_t total_chunks;
};

class TierMuPropertyTest : public ::testing::TestWithParam<TierMuCase> {};

TEST_P(TierMuPropertyTest, PerTierEmpiricalMatchesAnalytical) {
  const TierMuCase param = GetParam();
  const fs::path dir =
      fs::temp_directory_path() /
      ("cdpipe_tier_mu_" + std::to_string(param.m) + "_" +
       std::to_string(param.r) + "_" + std::to_string(param.window) + "_" +
       std::to_string(param.total_chunks));
  fs::create_directories(dir);

  std::unique_ptr<Sampler> sampler;
  if (param.window > 0) {
    sampler = std::make_unique<WindowSampler>(param.window);
  } else {
    sampler = std::make_unique<UniformSampler>();
  }

  constexpr int kRepeats = 5;
  constexpr size_t kSampleSize = 10;
  double mem_sum = 0.0, disk_sum = 0.0, total_sum = 0.0;
  for (int rep = 0; rep < kRepeats; ++rep) {
    ChunkStore::Options options;
    options.max_materialized_chunks = param.m;
    options.memory_budget_bytes = param.r * kChunkBytes;
    options.spill_dir = dir.string();
    ChunkStore store(options);
    Rng rng(1234u + static_cast<uint64_t>(rep) * 7919u);
    for (ChunkId id = 0; id < static_cast<ChunkId>(param.total_chunks);
         ++id) {
      ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
      ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
      for (ChunkId picked :
           sampler->Sample(store.LiveIds(), kSampleSize, &rng)) {
        store.RecordSampleAccess(picked);
      }
    }
    const ChunkStore::Counters counters = store.counters();
    mem_sum += counters.MemoryMu();
    disk_sum += counters.DiskMu();
    total_sum += counters.EmpiricalMu();
  }
  const double mem = mem_sum / kRepeats;
  const double disk = disk_sum / kRepeats;
  const double total = total_sum / kRepeats;

  // The memory-tier materialized set is the newest min(m, r) chunks.
  const size_t mem_materialized = std::min(param.m, param.r);
  double analytical_mem, analytical_total;
  if (param.window > 0) {
    analytical_mem =
        MuWindow(param.total_chunks, mem_materialized, param.window);
    analytical_total = MuWindow(param.total_chunks, param.m, param.window);
  } else {
    analytical_mem = MuUniform(param.total_chunks, mem_materialized);
    analytical_total = MuUniform(param.total_chunks, param.m);
  }
  const double analytical_disk = analytical_total - analytical_mem;

  EXPECT_NEAR(total, analytical_total, 0.03)
      << "m=" << param.m << " r=" << param.r << " w=" << param.window;
  EXPECT_NEAR(mem, analytical_mem, 0.03)
      << "m=" << param.m << " r=" << param.r << " w=" << param.window;
  EXPECT_NEAR(disk, analytical_disk, 0.03)
      << "m=" << param.m << " r=" << param.r << " w=" << param.window;
  if (param.m > param.r) {
    EXPECT_GT(disk, 0.0);  // disk-tier hits exist whenever m exceeds r
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TierMuPropertyTest,
    ::testing::Values(
        // Uniform sampling: materialization reaches past the memory tier
        // (m > r), disk-μ strictly positive.
        TierMuCase{50, 20, 0, 200}, TierMuCase{100, 40, 0, 200},
        // Memory tier covers materialization (m <= r): all hits in memory.
        TierMuCase{20, 50, 0, 200},
        // Window sampling over both tiers.
        TierMuCase{40, 15, 80, 200}, TierMuCase{50, 50, 40, 200}),
    [](const ::testing::TestParamInfo<TierMuCase>& info) {
      return "m" + std::to_string(info.param.m) + "_r" +
             std::to_string(info.param.r) + "_w" +
             std::to_string(info.param.window) + "_N" +
             std::to_string(info.param.total_chunks);
    });

}  // namespace
}  // namespace cdpipe
