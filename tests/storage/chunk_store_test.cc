#include "src/storage/chunk_store.h"

#include <gtest/gtest.h>

#include <random>

#include "src/sampling/mu_theory.h"

namespace cdpipe {
namespace {

RawChunk MakeRaw(ChunkId id, size_t records = 2) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = id * 60;
  for (size_t i = 0; i < records; ++i) {
    chunk.records.push_back("record-" + std::to_string(id));
  }
  return chunk;
}

FeatureChunk MakeFeatures(ChunkId id) {
  FeatureChunk chunk;
  chunk.origin_id = id;
  chunk.event_time_seconds = id * 60;
  chunk.data.dim = 4;
  chunk.data.features.push_back(SparseVector::FromUnsorted(4, {{0, 1.0}}));
  chunk.data.labels.push_back(1.0);
  return chunk;
}

TEST(ChunkStoreTest, PutAndGetRaw) {
  ChunkStore store;
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  ASSERT_TRUE(store.PutRaw(MakeRaw(1)).ok());
  EXPECT_EQ(store.num_raw(), 2u);
  EXPECT_TRUE(store.Contains(0));
  ASSERT_NE(store.GetRaw(1), nullptr);
  EXPECT_EQ(store.GetRaw(1)->id, 1);
  EXPECT_EQ(store.GetRaw(99), nullptr);
  EXPECT_GT(store.RawBytes(), 0u);
}

TEST(ChunkStoreTest, IdsMustIncrease) {
  ChunkStore store;
  ASSERT_TRUE(store.PutRaw(MakeRaw(5)).ok());
  EXPECT_FALSE(store.PutRaw(MakeRaw(5)).ok());
  EXPECT_FALSE(store.PutRaw(MakeRaw(3)).ok());
  EXPECT_TRUE(store.PutRaw(MakeRaw(6)).ok());
}

TEST(ChunkStoreTest, LiveIdsInOrder) {
  ChunkStore store;
  for (ChunkId id : {0, 1, 2}) ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
  EXPECT_EQ(store.LiveIds(), (std::vector<ChunkId>{0, 1, 2}));
}

TEST(ChunkStoreTest, FeaturesRequireRawChunk) {
  ChunkStore store;
  EXPECT_FALSE(store.PutFeatures(MakeFeatures(7)).ok());
  ASSERT_TRUE(store.PutRaw(MakeRaw(7)).ok());
  EXPECT_TRUE(store.PutFeatures(MakeFeatures(7)).ok());
  EXPECT_TRUE(store.IsMaterialized(7));
  EXPECT_NE(store.GetFeatures(7), nullptr);
}

TEST(ChunkStoreTest, EvictsOldestMaterialized) {
  ChunkStore::Options options;
  options.max_materialized_chunks = 2;
  ChunkStore store(options);
  for (ChunkId id : {0, 1, 2}) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
  }
  EXPECT_EQ(store.num_materialized(), 2u);
  EXPECT_FALSE(store.IsMaterialized(0));  // oldest evicted
  EXPECT_TRUE(store.IsMaterialized(1));
  EXPECT_TRUE(store.IsMaterialized(2));
  // The raw chunk survives eviction (only the content is dropped).
  EXPECT_TRUE(store.Contains(0));
  EXPECT_EQ(store.counters().evictions, 1);
}

TEST(ChunkStoreTest, MaterializationDisabledStoresNothing) {
  ChunkStore::Options options;
  options.max_materialized_chunks = 0;
  ChunkStore store(options);
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  EXPECT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  EXPECT_EQ(store.num_materialized(), 0u);
  EXPECT_FALSE(store.IsMaterialized(0));
}

TEST(ChunkStoreTest, ReinsertReplacesWithoutEviction) {
  ChunkStore::Options options;
  options.max_materialized_chunks = 2;
  ChunkStore store(options);
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  ASSERT_TRUE(store.PutRaw(MakeRaw(1)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(1)).ok());
  FeatureChunk replacement = MakeFeatures(0);
  replacement.data.labels[0] = -1.0;
  ASSERT_TRUE(store.PutFeatures(std::move(replacement)).ok());
  EXPECT_EQ(store.num_materialized(), 2u);
  EXPECT_EQ(store.counters().evictions, 0);
  EXPECT_DOUBLE_EQ(store.GetFeatures(0)->data.labels[0], -1.0);
}

TEST(ChunkStoreTest, BoundedRawDropsOldestAndItsFeatures) {
  ChunkStore::Options options;
  options.max_raw_chunks = 2;
  ChunkStore store(options);
  for (ChunkId id : {0, 1}) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
  }
  ASSERT_TRUE(store.PutRaw(MakeRaw(2)).ok());
  EXPECT_EQ(store.num_raw(), 2u);
  EXPECT_FALSE(store.Contains(0));
  EXPECT_FALSE(store.IsMaterialized(0));
  EXPECT_EQ(store.LiveIds(), (std::vector<ChunkId>{1, 2}));
  EXPECT_EQ(store.counters().raw_dropped, 1);
}

TEST(ChunkStoreTest, SampleAccessCountsHitsAndMisses) {
  ChunkStore::Options options;
  options.max_materialized_chunks = 1;
  ChunkStore store(options);
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  ASSERT_TRUE(store.PutRaw(MakeRaw(1)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(1)).ok());  // evicts 0
  store.RecordSampleAccess(0);
  store.RecordSampleAccess(1);
  store.RecordSampleAccess(1);
  EXPECT_EQ(store.counters().memory_hits, 2);
  EXPECT_EQ(store.counters().disk_hits, 0);
  EXPECT_EQ(store.counters().SampleHits(), 2);
  EXPECT_EQ(store.counters().sample_misses, 1);
  EXPECT_NEAR(store.counters().EmpiricalMu(), 2.0 / 3.0, 1e-12);
}

TEST(ChunkStoreTest, ResetCountersKeepsData) {
  ChunkStore store;
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  store.RecordSampleAccess(0);
  store.ResetCounters();
  EXPECT_EQ(store.counters().sample_misses, 0);
  EXPECT_EQ(store.counters().raw_inserted, 0);
  EXPECT_EQ(store.num_raw(), 1u);
}

TEST(ChunkStoreTest, ByteAccountingFollowsEviction) {
  ChunkStore::Options options;
  options.max_materialized_chunks = 1;
  ChunkStore store(options);
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  ASSERT_TRUE(store.PutRaw(MakeRaw(1)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  const size_t one = store.MaterializedBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(1)).ok());
  EXPECT_EQ(store.MaterializedBytes(), one);  // evicted 0, stored 1
}

TEST(ChunkStoreTest, EmptyMuIsZero) {
  ChunkStore store;
  EXPECT_DOUBLE_EQ(store.counters().EmpiricalMu(), 0.0);
}

// Regression: refreshing the features of an already-materialized chunk must
// count as a re-materialization, not a second insertion — otherwise the
// insertion counter inflates and μ-accounting drifts from reality.
TEST(ChunkStoreTest, RematerializationIsNotAnInsertion) {
  ChunkStore store;
  ASSERT_TRUE(store.PutRaw(MakeRaw(0)).ok());
  ASSERT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  EXPECT_EQ(store.counters().features_inserted, 1);
  EXPECT_EQ(store.counters().features_rematerialized, 0);

  ASSERT_TRUE(store.PutFeatures(MakeFeatures(0)).ok());
  EXPECT_EQ(store.counters().features_inserted, 1);
  EXPECT_EQ(store.counters().features_rematerialized, 1);
  EXPECT_EQ(store.num_materialized(), 1u);
  EXPECT_EQ(store.counters().evictions, 0);
}

TEST(ChunkStoreTest, EmpiricalMuMatchesAnalyticalUnderUniformSampling) {
  // A bounded store keeps the m newest of N chunks materialized; uniform
  // sampling over all N live chunks must measure μ ≈ m/N (§3: MuUniform).
  constexpr size_t kTotal = 16;
  constexpr size_t kMaterialized = 4;
  ChunkStore::Options options;
  options.max_materialized_chunks = kMaterialized;
  ChunkStore store(options);
  for (ChunkId id = 0; id < static_cast<ChunkId>(kTotal); ++id) {
    ASSERT_TRUE(store.PutRaw(MakeRaw(id)).ok());
    ASSERT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
  }
  ASSERT_EQ(store.num_materialized(), kMaterialized);

  std::mt19937 rng(42);
  std::uniform_int_distribution<ChunkId> pick(
      0, static_cast<ChunkId>(kTotal) - 1);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) store.RecordSampleAccess(pick(rng));

  // MuUniformAtN is the steady-state formula for a fixed store of N chunks
  // (MuUniform averages over the growing stream n = 1..N instead).
  const double analytical = MuUniformAtN(kTotal, kMaterialized);
  EXPECT_DOUBLE_EQ(analytical,
                   static_cast<double>(kMaterialized) / kTotal);
  EXPECT_NEAR(store.counters().EmpiricalMu(), analytical, 0.01);
}

}  // namespace
}  // namespace cdpipe
