#include "src/common/retry.h"

#include <gtest/gtest.h>

#include <chrono>

#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

TEST(IsRetryableTest, TransientCodesOnly) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("flaky")));
  EXPECT_TRUE(IsRetryable(Status::IoError("disk hiccup")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("missing")));
  EXPECT_FALSE(IsRetryable(Status::Internal("task threw")));
}

TEST(RetryTest, SucceedsFirstTryWithoutRetrying) {
  const int64_t attempts_before = CounterValue("retry.attempts");
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(CounterValue("retry.attempts"), attempts_before);
}

TEST(RetryTest, RetriesTransientFailureUntilSuccess) {
  const int64_t attempts_before = CounterValue("retry.attempts");
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        return ++calls < 3 ? Status::Unavailable("not yet") : Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(CounterValue("retry.attempts") - attempts_before, 2);
}

TEST(RetryTest, ExhaustionReturnsLastErrorAndCounts) {
  const int64_t exhausted_before = CounterValue("retry.exhausted");
  RetryPolicy policy;
  policy.max_attempts = 2;
  int calls = 0;
  const Status status =
      RetryWithBackoff(policy, "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(CounterValue("retry.exhausted") - exhausted_before, 1);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("logic error");
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonePolicyRunsExactlyOnce) {
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy::None(), "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("down");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ZeroMaxAttemptsClampsToSingleTry) {
  // A misconfigured (or adversarially zeroed) budget still runs the op
  // once: retry never silently swallows the operation itself.
  RetryPolicy policy;
  policy.max_attempts = 0;
  int calls = 0;
  const Status status =
      RetryWithBackoff(policy, "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("down");
      });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 1);

  policy.max_attempts = -5;
  calls = 0;
  EXPECT_TRUE(RetryWithBackoff(policy, "test.op", [&]() -> Status {
                ++calls;
                return Status::OK();
              }).ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, LargeAttemptCountsKeepBackoffBounded) {
  // 500 attempts with a 10x multiplier would push the raw geometric
  // backoff to ~1e488 seconds (inf in double); the policy must clamp the
  // growth at max_backoff so the total sleep stays attempts * max_backoff.
  RetryPolicy policy;
  policy.max_attempts = 500;
  policy.initial_backoff_seconds = 1e-12;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 1e-6;
  int calls = 0;
  const auto start = std::chrono::steady_clock::now();
  const Status status =
      RetryWithBackoff(policy, "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("persistently down");
      });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 500);
  // Generous bound: 500 sleeps of <= 1us each, plus logging overhead —
  // far below the seconds an unclamped overflow-to-inf sleep would take.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 30.0);
}

TEST(RetryTest, ExhaustedStatusStaysRetryableForShedCallers) {
  // The admission layer sheds work whose ingest retries exhaust; that
  // decision keys off the returned code, so exhaustion must hand back the
  // original transient code untouched (not remap it to Internal).
  RetryPolicy policy;
  policy.max_attempts = 2;
  const Status status = RetryWithBackoff(
      policy, "test.op",
      []() -> Status { return Status::Unavailable("overloaded"); });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(status))
      << "callers distinguish transient-exhausted from permanent failures";
}

TEST(RetryTest, RecoversFromInjectedFault) {
  // End-to-end over a real fault site: FirstN(2) fails twice, then the
  // site recovers and the third attempt succeeds.
  testing::ScopedFaultScript script(
      {{"retry_test.op", testing::FaultRule::FirstN(2)}});
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        CDPIPE_FAULT_POINT("retry_test.op");
        return Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace cdpipe
