#include "src/common/retry.h"

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

TEST(IsRetryableTest, TransientCodesOnly) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("flaky")));
  EXPECT_TRUE(IsRetryable(Status::IoError("disk hiccup")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad")));
  EXPECT_FALSE(IsRetryable(Status::NotFound("missing")));
  EXPECT_FALSE(IsRetryable(Status::Internal("task threw")));
}

TEST(RetryTest, SucceedsFirstTryWithoutRetrying) {
  const int64_t attempts_before = CounterValue("retry.attempts");
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(CounterValue("retry.attempts"), attempts_before);
}

TEST(RetryTest, RetriesTransientFailureUntilSuccess) {
  const int64_t attempts_before = CounterValue("retry.attempts");
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        return ++calls < 3 ? Status::Unavailable("not yet") : Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(CounterValue("retry.attempts") - attempts_before, 2);
}

TEST(RetryTest, ExhaustionReturnsLastErrorAndCounts) {
  const int64_t exhausted_before = CounterValue("retry.exhausted");
  RetryPolicy policy;
  policy.max_attempts = 2;
  int calls = 0;
  const Status status =
      RetryWithBackoff(policy, "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("still down");
      });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(CounterValue("retry.exhausted") - exhausted_before, 1);
}

TEST(RetryTest, NonRetryableFailsImmediately) {
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        return Status::InvalidArgument("logic error");
      });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, NonePolicyRunsExactlyOnce) {
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy::None(), "test.op", [&]() -> Status {
        ++calls;
        return Status::Unavailable("down");
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RecoversFromInjectedFault) {
  // End-to-end over a real fault site: FirstN(2) fails twice, then the
  // site recovers and the third attempt succeeds.
  testing::ScopedFaultScript script(
      {{"retry_test.op", testing::FaultRule::FirstN(2)}});
  int calls = 0;
  const Status status =
      RetryWithBackoff(RetryPolicy{}, "test.op", [&]() -> Status {
        ++calls;
        CDPIPE_FAULT_POINT("retry_test.op");
        return Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace cdpipe
