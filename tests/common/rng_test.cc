#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesMidpoint) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextUniform(2.0, 6.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.02);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(23);
  constexpr uint64_t kBuckets = 10;
  constexpr int kN = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kN; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, 500);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(37);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(41);
  constexpr int kN = 100000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(43);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(47);
  constexpr int kN = 50000;
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    small_sum += static_cast<double>(rng.NextPoisson(3.0));
    large_sum += static_cast<double>(rng.NextPoisson(100.0));
  }
  EXPECT_NEAR(small_sum / kN, 3.0, 0.1);
  EXPECT_NEAR(large_sum / kN, 100.0, 0.5);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(53);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctInRangeCorrectCount) {
  const auto [n, k] = GetParam();
  Rng rng(67);
  const std::vector<size_t> sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), std::min(n, k));
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), sample.size());
  for (size_t s : sample) EXPECT_LT(s, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<size_t, size_t>{10, 3},
                      std::pair<size_t, size_t>{10, 10},
                      std::pair<size_t, size_t>{10, 20},
                      std::pair<size_t, size_t>{1000, 1},
                      std::pair<size_t, size_t>{1000, 500},
                      std::pair<size_t, size_t>{1000, 999},
                      std::pair<size_t, size_t>{5, 0},
                      std::pair<size_t, size_t>{100000, 10}));

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(71);
  constexpr size_t kN = 20;
  constexpr size_t kK = 5;
  constexpr int kTrials = 40000;
  std::vector<int> counts(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (size_t s : rng.SampleWithoutReplacement(kN, kK)) ++counts[s];
  }
  const double expected = static_cast<double>(kTrials) * kK / kN;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.05);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(73);
  Rng child = parent.Fork();
  // The child stream must not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace cdpipe
