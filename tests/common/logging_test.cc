#include "src/common/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>

namespace cdpipe {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_level_(GetLogLevel()) {}
  ~LoggingTest() override { SetLogLevel(saved_level_); }

 private:
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelIsGlobalAndSettable) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DisabledMessagesAreCheap) {
  SetLogLevel(LogLevel::kError);
  // Streaming into a suppressed message must not crash or emit.
  for (int i = 0; i < 1000; ++i) {
    CDPIPE_LOG(Debug) << "suppressed " << i;
    CDPIPE_LOG(Info) << "also suppressed " << i;
  }
  SUCCEED();
}

TEST_F(LoggingTest, EnabledMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  CDPIPE_LOG(Warning) << "a visible warning with a number " << 42;
  SUCCEED();
}

TEST_F(LoggingTest, PrefixHasTimestampLevelThreadAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  CDPIPE_LOG(Warning) << "formatted message " << 7;
  const std::string output = ::testing::internal::GetCapturedStderr();
  // "[YYYY-MM-DD HH:MM:SS.mmm WARN t<id> <file>:<line>] formatted message 7"
  const std::regex prefix(
      R"(^\[\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} WARN t\d+ )"
      R"([^ ]*logging_test\.cc:\d+\] formatted message 7\n$)");
  EXPECT_TRUE(std::regex_search(output, prefix)) << "got: " << output;
}

TEST_F(LoggingTest, LevelTagMatchesSeverity) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  CDPIPE_LOG(Debug) << "d";
  CDPIPE_LOG(Info) << "i";
  CDPIPE_LOG(Error) << "e";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find(" DEBUG t"), std::string::npos);
  EXPECT_NE(output.find(" INFO t"), std::string::npos);
  EXPECT_NE(output.find(" ERROR t"), std::string::npos);
}

TEST(ParseLogLevelTest, AcceptsNamesAndDigits) {
  const LogLevel fallback = LogLevel::kWarning;
  EXPECT_EQ(ParseLogLevelOrDefault("debug", fallback), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevelOrDefault("DEBUG", fallback), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevelOrDefault("0", fallback), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevelOrDefault("info", fallback), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevelOrDefault("1", fallback), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevelOrDefault("warn", fallback), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevelOrDefault("Warning", fallback), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevelOrDefault("2", fallback), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevelOrDefault("error", fallback), LogLevel::kError);
  EXPECT_EQ(ParseLogLevelOrDefault("3", fallback), LogLevel::kError);
}

TEST(ParseLogLevelTest, UnknownValuesFallBack) {
  EXPECT_EQ(ParseLogLevelOrDefault("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(ParseLogLevelOrDefault("verbose", LogLevel::kInfo),
            LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevelOrDefault("42", LogLevel::kWarning),
            LogLevel::kWarning);
}

TEST(CheckTest, PassingChecksAreSilent) {
  CDPIPE_CHECK(1 + 1 == 2) << "never printed";
  CDPIPE_CHECK_EQ(3, 3);
  CDPIPE_CHECK_NE(3, 4);
  CDPIPE_CHECK_LT(3, 4);
  CDPIPE_CHECK_LE(4, 4);
  CDPIPE_CHECK_GT(5, 4);
  CDPIPE_CHECK_GE(5, 5);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ CDPIPE_CHECK(false) << "boom"; }, "check failed: false");
  EXPECT_DEATH({ CDPIPE_CHECK_EQ(1, 2); }, "check failed");
}

}  // namespace
}  // namespace cdpipe
