#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_level_(GetLogLevel()) {}
  ~LoggingTest() override { SetLogLevel(saved_level_); }

 private:
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelIsGlobalAndSettable) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DisabledMessagesAreCheap) {
  SetLogLevel(LogLevel::kError);
  // Streaming into a suppressed message must not crash or emit.
  for (int i = 0; i < 1000; ++i) {
    CDPIPE_LOG(Debug) << "suppressed " << i;
    CDPIPE_LOG(Info) << "also suppressed " << i;
  }
  SUCCEED();
}

TEST_F(LoggingTest, EnabledMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kDebug);
  CDPIPE_LOG(Warning) << "a visible warning with a number " << 42;
  SUCCEED();
}

TEST(CheckTest, PassingChecksAreSilent) {
  CDPIPE_CHECK(1 + 1 == 2) << "never printed";
  CDPIPE_CHECK_EQ(3, 3);
  CDPIPE_CHECK_NE(3, 4);
  CDPIPE_CHECK_LT(3, 4);
  CDPIPE_CHECK_LE(4, 4);
  CDPIPE_CHECK_GT(5, 4);
  CDPIPE_CHECK_GE(5, 5);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ CDPIPE_CHECK(false) << "boom"; }, "check failed: false");
  EXPECT_DEATH({ CDPIPE_CHECK_EQ(1, 2); }, "check failed");
}

}  // namespace
}  // namespace cdpipe
