#include "src/common/status.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  CDPIPE_ASSIGN_OR_RETURN(int half, HalveEven(x));
  CDPIPE_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterViaMacro(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> inner_fail = QuarterViaMacro(6);  // 6/2=3 is odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  CDPIPE_RETURN_NOT_OK(FailWhenNegative(a));
  CDPIPE_RETURN_NOT_OK(FailWhenNegative(b));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cdpipe
