#include "src/common/string_util.h"

#include <cstring>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoDelimiter) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitStringTest, EmptyInput) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("xy"), "xy");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(std::move(ParseDouble("3.25")).ValueOrDie(), 3.25);
  EXPECT_DOUBLE_EQ(std::move(ParseDouble("-1e3")).ValueOrDie(), -1000.0);
  EXPECT_DOUBLE_EQ(std::move(ParseDouble(" 7 ")).ValueOrDie(), 7.0);
  EXPECT_DOUBLE_EQ(std::move(ParseDouble("0")).ValueOrDie(), 0.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("--2").ok());
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(std::move(ParseInt64("42")).ValueOrDie(), 42);
  EXPECT_EQ(std::move(ParseInt64("-7")).ValueOrDie(), -7);
  EXPECT_EQ(std::move(ParseInt64("  123 ")).ValueOrDie(), 123);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
}

TEST(DateTimeTest, EpochRoundTrip) {
  EXPECT_EQ(std::move(ParseDateTime("1970-01-01 00:00:00")).ValueOrDie(), 0);
  EXPECT_EQ(FormatDateTime(0), "1970-01-01 00:00:00");
}

TEST(DateTimeTest, KnownTimestamps) {
  // 2015-01-01 00:00:00 UTC == 1420070400.
  EXPECT_EQ(std::move(ParseDateTime("2015-01-01 00:00:00")).ValueOrDie(),
            1420070400);
  EXPECT_EQ(FormatDateTime(1420070400), "2015-01-01 00:00:00");
}

TEST(DateTimeTest, RoundTripSweep) {
  // Round trip across month/era boundaries including a leap February.
  for (int64_t t : {951782399LL,    // 2000-02-28 23:59:59 (leap year)
                    951782400LL,    // 2000-02-29 00:00:00
                    1456703999LL,   // 2016-02-28 23:59:59
                    1456704000LL,   // 2016-02-29
                    1483228799LL,   // 2016-12-31 23:59:59
                    1483228800LL})  // 2017-01-01
  {
    const std::string text = FormatDateTime(t);
    EXPECT_EQ(std::move(ParseDateTime(text)).ValueOrDie(), t) << text;
  }
}

TEST(DateTimeTest, LeapDayParses) {
  EXPECT_TRUE(ParseDateTime("2016-02-29 12:00:00").ok());
  EXPECT_FALSE(ParseDateTime("2015-02-29 12:00:00").ok());
}

TEST(DateTimeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDateTime("2015-13-01 00:00:00").ok());
  EXPECT_FALSE(ParseDateTime("2015-01-32 00:00:00").ok());
  EXPECT_FALSE(ParseDateTime("2015-01-01 24:00:00").ok());
  EXPECT_FALSE(ParseDateTime("2015-01-01 00:60:00").ok());
  EXPECT_FALSE(ParseDateTime("2015-01-01").ok());
  EXPECT_FALSE(ParseDateTime("2015/01/01 00:00:00").ok());
  EXPECT_FALSE(ParseDateTime("").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(FastParseTest, AgreesWithResultVariants) {
  // The fast variants must accept exactly the grammar of the Result-based
  // ones and produce bit-identical values.
  for (const char* text :
       {"1.5", "+1", "-3.25", " 2.5 ", "1e-3", "nan", "-inf", "0.1234", "",
        "x", "1.5x", "1 2", "++1", "0x10"}) {
    double fast = 0.0;
    const bool ok = ParseDoubleFast(text, &fast);
    Result<double> slow = ParseDouble(text);
    EXPECT_EQ(ok, slow.ok()) << "'" << text << "'";
    if (ok && slow.ok()) {
      EXPECT_EQ(std::memcmp(&fast, &*slow, sizeof(double)), 0)
          << "'" << text << "'";
    }
  }
  for (const char* text :
       {"42", "+7", "-19", " 8 ", "", "x", "42x", "4.2", "99999999999999999999",
        "007"}) {
    int64_t fast = 0;
    const bool ok = ParseInt64Fast(text, &fast);
    Result<int64_t> slow = ParseInt64(text);
    EXPECT_EQ(ok, slow.ok()) << "'" << text << "'";
    if (ok && slow.ok()) EXPECT_EQ(fast, *slow) << "'" << text << "'";
  }
  for (const char* text :
       {"2015-01-01 00:00:00", "2016-02-29 12:34:56", "2015-02-29 12:00:00",
        "2015-13-01 00:00:00", "2015-01-01 24:00:00", "2015-01-01", "",
        " 2015-06-15 08:30:00 "}) {
    int64_t fast = 0;
    const bool ok = ParseDateTimeFast(text, &fast);
    Result<int64_t> slow = ParseDateTime(text);
    EXPECT_EQ(ok, slow.ok()) << "'" << text << "'";
    if (ok && slow.ok()) EXPECT_EQ(fast, *slow) << "'" << text << "'";
  }
}

}  // namespace
}  // namespace cdpipe
