#include "src/common/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_GE(watch.ElapsedMicros(), 15000);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.015);
}

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 100.0);
}

TEST(ManualClockTest, AdvanceAndSet) {
  ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.0);
  clock.AdvanceSeconds(2.5);
  clock.AdvanceSeconds(1.5);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 4.0);
  clock.SetSeconds(1.0);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.0);
}

}  // namespace
}  // namespace cdpipe
