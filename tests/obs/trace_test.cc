#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/correlation.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace obs {
namespace {

// The tracer is a process-wide singleton; every test starts from a known
// state and restores it (gtest_discover_tests runs each test in its own
// process, but the tests must also pass under a plain ./cdpipe_tests run).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().SetRingCapacityForNewThreads(1u << 16);
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    CDPIPE_TRACE_SPAN("invisible", "test");
    ScopedSpan dynamic(std::string("also-invisible"), "test");
  }
  EXPECT_EQ(Tracer::Global().NumBufferedEvents(), 0u);
  EXPECT_EQ(Tracer::Global().ToChromeTraceJson().find("invisible"),
            std::string::npos);
}

TEST_F(TraceTest, DisabledSpanCostStaysNanoseconds) {
  // Acceptance bar: instrumentation left in per-row hot paths must be a few
  // ns when tracing is off.  The disabled constructor is one relaxed atomic
  // load; assert a very generous 200ns average to stay CI-proof.
  constexpr int kIterations = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) {
    CDPIPE_TRACE_SPAN("hot", "bench");
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double nanos_per_span =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kIterations;
  EXPECT_LT(nanos_per_span, 200.0);
  EXPECT_EQ(Tracer::Global().NumBufferedEvents(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpans) {
  Tracer::Global().Enable();
  {
    CDPIPE_TRACE_SPAN("outer", "test");
    {
      CDPIPE_TRACE_SPAN("inner", "test");
      ScopedSpan dynamic(std::string("dynamic-name"), "test");
    }
  }
  Tracer::Global().Disable();
  EXPECT_EQ(Tracer::Global().NumBufferedEvents(), 3u);

  const std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"dynamic-name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
}

TEST_F(TraceTest, EscapesAndTruncatesNames) {
  Tracer::Global().Enable();
  {
    ScopedSpan quoted(std::string("with \"quotes\" and \\slash"), "test");
    ScopedSpan long_name(std::string(200, 'x'), "test");
  }
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"),
            std::string::npos);
  // Names are copied into 64-byte fixed storage: 63 chars + NUL.
  EXPECT_NE(json.find(std::string(63, 'x')), std::string::npos);
  EXPECT_EQ(json.find(std::string(64, 'x')), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSpansFromManyThreads) {
  Tracer::Global().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        CDPIPE_TRACE_SPAN("worker", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Tracer::Global().Disable();
  EXPECT_EQ(Tracer::Global().NumBufferedEvents(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(Tracer::Global().NumDroppedEvents(), 0u);
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  Tracer::Global().SetRingCapacityForNewThreads(4);
  Tracer::Global().Enable();
  // A fresh std::thread gets a fresh ring with the new capacity.
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      Tracer::Global().RecordComplete(("event" + std::to_string(i)).c_str(),
                                      "test", /*start_us=*/i,
                                      /*duration_us=*/1);
    }
  });
  recorder.join();
  Tracer::Global().Disable();

  EXPECT_EQ(Tracer::Global().NumBufferedEvents(), 4u);
  EXPECT_EQ(Tracer::Global().NumDroppedEvents(), 6u);
  const std::string json = Tracer::Global().ToChromeTraceJson();
  // Only the newest 4 events survive, emitted oldest-first.
  EXPECT_EQ(json.find("event5"), std::string::npos);
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("event" + std::to_string(i)), std::string::npos)
        << "event" << i;
  }
  EXPECT_LT(json.find("event6"), json.find("event9"));
}

TEST_F(TraceTest, WriteChromeTraceProducesLoadableFile) {
  Tracer::Global().Enable();
  {
    CDPIPE_TRACE_SPAN("on-disk", "test");
  }
  Tracer::Global().Disable();

  const std::string path =
      ::testing::TempDir() + "/cdpipe_trace_test_out.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path).ok());

  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(contents, Tracer::Global().ToChromeTraceJson());
  EXPECT_NE(contents.find("\"on-disk\""), std::string::npos);
  EXPECT_NE(contents.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(
      Tracer::Global().WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, ClearDropsBufferedEvents) {
  Tracer::Global().Enable();
  {
    CDPIPE_TRACE_SPAN("gone", "test");
  }
  Tracer::Global().Disable();
  ASSERT_GE(Tracer::Global().NumBufferedEvents(), 1u);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().NumBufferedEvents(), 0u);
  EXPECT_EQ(Tracer::Global().NumDroppedEvents(), 0u);
}

TEST_F(TraceTest, NowMicrosIsMonotonic) {
  const int64_t a = Tracer::NowMicros();
  const int64_t b = Tracer::NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST_F(TraceTest, SpansCaptureCorrelationScope) {
  Tracer::Global().Enable();
  {
    CorrelationScope scope(1, 42);
    CDPIPE_TRACE_SPAN("correlated", "test");
  }
  {
    CDPIPE_TRACE_SPAN("uncorrelated", "test");
  }
  Tracer::Global().Disable();
  const std::string json = Tracer::Global().ToChromeTraceJson();
  // The correlated span carries its ids as Chrome-trace args; the
  // uncorrelated one omits the args object entirely.
  const size_t correlated = json.find("\"name\":\"correlated\"");
  ASSERT_NE(correlated, std::string::npos);
  const size_t args = json.find(
      "\"args\":{\"deployment\":1,\"entity\":42}", correlated);
  const size_t next_event = json.find('}', json.find('}', correlated) + 1);
  EXPECT_NE(args, std::string::npos) << json;
  const size_t uncorrelated = json.find("\"name\":\"uncorrelated\"");
  ASSERT_NE(uncorrelated, std::string::npos);
  EXPECT_EQ(json.find("\"args\"", uncorrelated), std::string::npos);
  (void)next_event;
}

TEST_F(TraceTest, DropsFeedTheTraceDroppedCounter) {
  obs::Counter* dropped =
      MetricsRegistry::Global().GetCounter("obs.trace_dropped");
  const int64_t before = dropped->Value();
  Tracer::Global().SetRingCapacityForNewThreads(2);
  Tracer::Global().Enable();
  std::thread recorder([] {
    for (int i = 0; i < 7; ++i) {
      Tracer::Global().RecordComplete("drop-me", "test", i, 1);
    }
  });
  recorder.join();
  Tracer::Global().Disable();
  EXPECT_EQ(dropped->Value() - before, 5);
}

}  // namespace
}  // namespace obs
}  // namespace cdpipe
