#include "src/obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace obs {
namespace {

/// Minimal HTTP client for the loopback tests: one request, reads to EOF.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class ObsServerTest : public ::testing::Test {
 protected:
  ObsServerTest() : journal_(64) {
    options_.metrics = &metrics_;
    options_.journal = &journal_;
    options_.health = &health_;
    options_.stall_deadline_seconds = 5.0;
  }

  MetricsRegistry metrics_;
  EventJournal journal_;
  HealthRegistry health_;
  ObsServer::Options options_;
};

TEST_F(ObsServerTest, RoutesMetricsEndpoint) {
  metrics_.GetCounter("unit.requests")->Add(3);
  ObsServer server(options_);
  const std::string response =
      server.HandleRequest("GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("cdpipe_unit_requests 3"), std::string::npos);
}

TEST_F(ObsServerTest, RoutesHealthAndReadiness) {
  ObsServer server(options_);
  const std::string healthz =
      server.HandleRequest("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(healthz.find("200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos);

  health_.GetHeartbeat("engine")->Beat();
  const std::string readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(readyz.find("200 OK"), std::string::npos);
  EXPECT_NE(readyz.find("\"ready\":true"), std::string::npos);
  EXPECT_NE(readyz.find("\"name\":\"engine\""), std::string::npos);
}

TEST_F(ObsServerTest, ReadyzReturns503WhenSubsystemStalls) {
  // Tight deadline + a busy heartbeat that went silent = not ready.
  options_.stall_deadline_seconds = 1e-9;
  Heartbeat* engine = health_.GetHeartbeat("engine");
  engine->BeginWork();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ObsServer server(options_);
  const std::string readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(readyz.find("503 Service Unavailable"), std::string::npos)
      << readyz;
  // The 503 body is a one-line plaintext reason naming the stalled
  // subsystem — no JSON parser needed on the probe side.
  EXPECT_NE(readyz.find("text/plain"), std::string::npos) << readyz;
  EXPECT_NE(readyz.find("not ready:"), std::string::npos) << readyz;
  EXPECT_NE(readyz.find("stalled=engine"), std::string::npos) << readyz;
  EXPECT_NE(readyz.find("busy=1"), std::string::npos) << readyz;
  EXPECT_EQ(readyz.find("\"ready\""), std::string::npos) << readyz;
  engine->EndWork();
}

TEST_F(ObsServerTest, ReadyzReturns503WhileIngestOverloaded) {
  health_.GetHeartbeat("engine")->Beat();
  metrics_.GetGauge("ingest.load_state")->Set(2.0);
  ObsServer server(options_);
  const std::string overloaded =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(overloaded.find("503 Service Unavailable"), std::string::npos)
      << overloaded;
  EXPECT_NE(overloaded.find("ingest overloaded"), std::string::npos)
      << overloaded;

  // Back under the watermarks (or the controller destroyed): ready again,
  // and the 200 body is the unchanged JSON shape.
  metrics_.GetGauge("ingest.load_state")->Set(1.0);
  const std::string recovered =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(recovered.find("200 OK"), std::string::npos) << recovered;
  EXPECT_NE(recovered.find("\"ready\":true"), std::string::npos) << recovered;
}

TEST_F(ObsServerTest, ReadyzFollowsAttachedWatchdog) {
  Watchdog::Options watchdog_options;
  watchdog_options.stall_deadline_seconds = 0.001;
  watchdog_options.health = &health_;
  watchdog_options.journal = &journal_;
  Watchdog watchdog(watchdog_options);

  Heartbeat* engine = health_.GetHeartbeat("engine");
  engine->BeginWork();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watchdog.PollOnce();
  ASSERT_FALSE(watchdog.ready());

  options_.watchdog = &watchdog;
  ObsServer server(options_);
  const std::string readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(readyz.find("503 Service Unavailable"), std::string::npos);
  engine->EndWork();
}

TEST_F(ObsServerTest, RoutesEventsWithCountParameter) {
  for (int i = 0; i < 5; ++i) {
    journal_.Append(EventKind::kIngest, CorrelationId{1, i}, "e2e");
  }
  ObsServer server(options_);
  const std::string all =
      server.HandleRequest("GET /events HTTP/1.0\r\n\r\n");
  EXPECT_NE(all.find("\"appended\":5"), std::string::npos) << all;
  EXPECT_NE(all.find("\"kind\":\"ingest\""), std::string::npos);

  const std::string two =
      server.HandleRequest("GET /events?n=2 HTTP/1.0\r\n\r\n");
  // Only the newest two events: entities 3 and 4.
  EXPECT_EQ(two.find("\"entity\":2"), std::string::npos) << two;
  EXPECT_NE(two.find("\"entity\":3"), std::string::npos);
  EXPECT_NE(two.find("\"entity\":4"), std::string::npos);
}

TEST_F(ObsServerTest, RejectsUnknownPathAndMethod) {
  ObsServer server(options_);
  EXPECT_NE(server.HandleRequest("GET /nope HTTP/1.0\r\n\r\n")
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("POST /metrics HTTP/1.0\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("garbage").find("400 Bad Request"),
            std::string::npos);
}

TEST_F(ObsServerTest, ServesOverRealSockets) {
  journal_.Append(EventKind::kTrainStep, CorrelationId{1, 1}, "rows=10");
  metrics_.GetCounter("socket.test")->Increment();
  ObsServer server(options_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0)
      << "ephemeral port must be resolved after Start";

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("cdpipe_socket_test 1"), std::string::npos);

  const std::string events = HttpGet(server.port(), "/events?n=10");
  EXPECT_NE(events.find("\"kind\":\"train_step\""), std::string::npos);

  const std::string trace = HttpGet(server.port(), "/trace");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.Stop();
  // Stop is idempotent and the port refuses connections afterwards.
  server.Stop();
  EXPECT_EQ(HttpGet(server.port(), "/healthz"), "");
}

TEST_F(ObsServerTest, StartFailsOnBadHost) {
  options_.host = "not-an-ip";
  ObsServer server(options_);
  EXPECT_FALSE(server.Start().ok());
}

}  // namespace
}  // namespace obs
}  // namespace cdpipe
