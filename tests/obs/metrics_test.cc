#include "src/obs/metrics.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/exporters.h"

namespace cdpipe {
namespace obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(CounterTest, HotPathIsLockFree) {
  // The whole design rests on counters being a single atomic add; if the
  // platform degrades std::atomic<int64_t> to a lock, the "lock-free hot
  // path" claim is void.
  std::atomic<int64_t> probe{0};
  EXPECT_TRUE(probe.is_lock_free());
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketAssignmentUsesLeSemantics) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);  // bucket 0 (<= 1.0)
  histogram.Observe(1.0);  // bucket 0 (le: boundary belongs to the bucket)
  histogram.Observe(1.5);  // bucket 1
  histogram.Observe(4.0);  // bucket 2
  histogram.Observe(9.0);  // overflow

  HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);
  EXPECT_EQ(snapshot.total_count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), (0.5 + 1.0 + 1.5 + 4.0 + 9.0) / 5.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram histogram({1.0, 2.0});
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.P50(), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.P99(), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 0.0);
}

TEST(HistogramTest, SingleSampleQuantileStaysInItsBucket) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(1.7);
  HistogramSnapshot snapshot = histogram.Snapshot();
  // Every quantile of a single sample lands in [1.0, 2.0]: the bucket that
  // holds the sample, interpolated from its lower edge (q=0 returns the
  // edge itself).
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.0), 1.0);
  for (double q : {0.25, 0.5, 0.95, 1.0}) {
    const double value = snapshot.Quantile(q);
    EXPECT_GT(value, 1.0) << "q=" << q;
    EXPECT_LE(value, 2.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileInterpolatesAtBucketBoundary) {
  Histogram histogram({1.0, 2.0});
  // 50 samples in bucket (<=1.0), 50 in (1.0, 2.0]: the median sits exactly
  // at the boundary between the two buckets.
  for (int i = 0; i < 50; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 50; ++i) histogram.Observe(1.5);
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.5), 1.0);
  // p25 = halfway through the first bucket (interpolated from 0).
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.25), 0.5);
  // p75 = halfway through the second bucket.
  EXPECT_DOUBLE_EQ(snapshot.Quantile(0.75), 1.5);
}

TEST(HistogramTest, OverflowQuantileClampsToLastFiniteBound) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(100.0);
  histogram.Observe(200.0);
  EXPECT_DOUBLE_EQ(histogram.Snapshot().P95(), 2.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram histogram({1.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Reset();
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.total_count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.0);
  for (uint64_t count : snapshot.counts) EXPECT_EQ(count, 0u);
}

TEST(HistogramTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("events");
  Counter* b = registry.GetCounter("events");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("other"), a);
  // Different kinds live in different namespaces.
  EXPECT_NE(static_cast<void*>(registry.GetGauge("events")),
            static_cast<void*>(a));
  EXPECT_EQ(registry.NumMetrics(), 3u);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedByFirstRegistration) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("lat", {1.0, 2.0});
  Histogram* second = registry.GetHistogram("lat", {9.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->upper_bounds(), std::vector<double>({1.0, 2.0}));
  // Empty bounds pick the default latency buckets.
  Histogram* defaulted = registry.GetHistogram("lat2");
  EXPECT_EQ(defaulted->upper_bounds(),
            Histogram::DefaultLatencyBoundsSeconds());
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b_counter")->Add(2);
  registry.GetCounter("a_counter")->Add(1);
  registry.GetGauge("depth")->Set(7.0);
  registry.GetHistogram("lat", {1.0})->Observe(0.5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a_counter");
  EXPECT_EQ(snapshot.counters[0].value, 1);
  EXPECT_EQ(snapshot.counters[1].name, "b_counter");
  EXPECT_EQ(snapshot.counters[1].value, 2);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 7.0);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].hist.total_count, 1u);
}

TEST(MetricsRegistryTest, ResetValuesKeepsPointersValid) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("events");
  counter->Add(5);
  registry.ResetValues();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(registry.GetCounter("events"), counter);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersAndKeepsGauges) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(10);
  registry.GetGauge("depth")->Set(3.0);
  Histogram* histogram = registry.GetHistogram("lat", {1.0, 2.0});
  histogram->Observe(0.5);
  MetricsSnapshot before = registry.Snapshot();

  registry.GetCounter("events")->Add(7);
  registry.GetCounter("fresh")->Add(2);
  registry.GetGauge("depth")->Set(9.0);
  histogram->Observe(1.5);
  histogram->Observe(1.5);
  MetricsSnapshot after = registry.Snapshot();

  MetricsSnapshot delta = MetricsSnapshot::Delta(before, after);
  ASSERT_EQ(delta.counters.size(), 2u);
  EXPECT_EQ(delta.counters[0].name, "events");
  EXPECT_EQ(delta.counters[0].value, 7);
  EXPECT_EQ(delta.counters[1].name, "fresh");
  EXPECT_EQ(delta.counters[1].value, 2);  // only-in-after counts from zero
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.gauges[0].value, 9.0);  // gauges keep `after`
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].hist.total_count, 2u);
  EXPECT_EQ(delta.histograms[0].hist.counts[1], 2u);
  EXPECT_EQ(delta.histograms[0].hist.counts[0], 0u);
  EXPECT_DOUBLE_EQ(delta.histograms[0].hist.sum, 3.0);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesFromManyThreads) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Mix registration (mutex path) and updates (lock-free path).
      Counter* counter = registry.GetCounter("shared.counter");
      Histogram* histogram =
          registry.GetHistogram("shared.lat", {1.0, 2.0, 4.0});
      Gauge* gauge = registry.GetGauge("shared.gauge");
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>((t + i) % 5));
        gauge->Add(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(),
            kThreads * kOpsPerThread);
  HistogramSnapshot histogram =
      registry.GetHistogram("shared.lat")->Snapshot();
  EXPECT_EQ(histogram.total_count,
            static_cast<uint64_t>(kThreads * kOpsPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t count : histogram.counts) bucket_total += count;
  EXPECT_EQ(bucket_total, histogram.total_count);
  EXPECT_DOUBLE_EQ(registry.GetGauge("shared.gauge")->Value(),
                   static_cast<double>(kThreads * kOpsPerThread));
}

TEST(MetricsRegistryTest, DisabledPathCostStaysNanoseconds) {
  // The acceptance bar: instrumentation left in hot paths must cost a few
  // nanoseconds per event.  A relaxed atomic add is ~1ns; we assert a very
  // generous 200ns average so the test never flakes on loaded CI machines.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench.counter");
  constexpr int kIterations = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIterations; ++i) counter->Increment();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double nanos_per_op =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()) /
      kIterations;
  EXPECT_EQ(counter->Value(), kIterations);
  EXPECT_LT(nanos_per_op, 200.0);
}

TEST(ExportersTest, PrometheusNameSanitizes) {
  EXPECT_EQ(PrometheusName("chunk_store.sample_hits"),
            "cdpipe_chunk_store_sample_hits");
  EXPECT_EQ(PrometheusName("weird-name/42"), "cdpipe_weird_name_42");
}

TEST(ExportersTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(3);
  registry.GetGauge("depth")->Set(1.5);
  Histogram* histogram = registry.GetHistogram("lat", {1.0, 2.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(9.0);

  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE cdpipe_events counter"), std::string::npos);
  EXPECT_NE(text.find("cdpipe_events 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cdpipe_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cdpipe_lat histogram"), std::string::npos);
  // Buckets are cumulative: le="2" covers both the 0.5 and 1.5 samples.
  EXPECT_NE(text.find("cdpipe_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("cdpipe_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("cdpipe_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("cdpipe_lat_count 3"), std::string::npos);
  EXPECT_NE(text.find("cdpipe_lat_sum 11"), std::string::npos);
}

TEST(ExportersTest, JsonFormatParsesStructurally) {
  MetricsRegistry registry;
  registry.GetCounter("events")->Add(3);
  registry.GetGauge("depth")->Set(1.5);
  registry.GetHistogram("lat", {1.0, 2.0})->Observe(1.5);

  const std::string json = ToJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"events\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  // Balanced braces/brackets — the cheapest structural validity check
  // without a JSON parser dependency.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ExportersTest, HelpTextEscaping) {
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(PrometheusEscapeHelp("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ExportersTest, HelpLinesPrecedeTypeLines) {
  MetricsRegistry registry;
  registry.GetCounter("helped.counter", "Counts things.\nSecond line \\ ok");
  registry.GetGauge("helped.gauge", "Current level");
  registry.GetHistogram("helped.hist", {1.0, 2.0}, "Latency");
  registry.GetCounter("plain.counter");  // no help -> no HELP line

  const std::string text = ToPrometheusText(registry.Snapshot());
  const size_t help_pos =
      text.find("# HELP cdpipe_helped_counter Counts things.\\nSecond line "
                "\\\\ ok\n");
  const size_t type_pos = text.find("# TYPE cdpipe_helped_counter counter\n");
  ASSERT_NE(help_pos, std::string::npos) << text;
  ASSERT_NE(type_pos, std::string::npos);
  EXPECT_LT(help_pos, type_pos);
  EXPECT_NE(text.find("# HELP cdpipe_helped_gauge Current level\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP cdpipe_helped_hist Latency\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# HELP cdpipe_plain_counter"), std::string::npos);

  // First non-empty help wins; SetHelp overrides.
  registry.GetCounter("helped.counter", "different help");
  EXPECT_NE(ToPrometheusText(registry.Snapshot())
                .find("# HELP cdpipe_helped_counter Counts things."),
            std::string::npos);
  registry.SetHelp("helped.counter", "replaced");
  EXPECT_NE(ToPrometheusText(registry.Snapshot())
                .find("# HELP cdpipe_helped_counter replaced\n"),
            std::string::npos);
}

// Line-by-line format-compliance check against the text exposition format:
// every line is a comment (`# HELP`/`# TYPE`) or a `name[{labels}] value`
// sample with a legal metric name and a parseable value.
TEST(ExportersTest, PrometheusOutputIsFormatCompliant) {
  MetricsRegistry registry;
  registry.GetCounter("compliance.requests", "Requests served")->Add(7);
  registry.GetGauge("compliance.level")->Set(-2.5);
  registry.GetHistogram("compliance.latency", {0.1, 1.0, 10.0},
                        "Request latency");
  registry.GetHistogram("compliance.latency")->Observe(0.5);
  registry.GetCounter("weird-name/with.bad chars")->Increment();

  const std::string text = ToPrometheusText(registry.Snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n') << "exposition must end with a newline";

  const auto is_name_char = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    return first ? alpha : (alpha || (c >= '0' && c <= '9'));
  };
  size_t start = 0;
  int samples = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    // Sample line: <name>[{label="value"}] <value>
    size_t i = 0;
    ASSERT_TRUE(is_name_char(line[0], true)) << line;
    while (i < line.size() && is_name_char(line[i], false)) ++i;
    EXPECT_EQ(line.compare(0, 7, "cdpipe_"), 0) << line;
    if (i < line.size() && line[i] == '{') {
      const size_t close = line.find('}', i);
      ASSERT_NE(close, std::string::npos) << line;
      const std::string labels = line.substr(i + 1, close - i - 1);
      EXPECT_NE(labels.find("=\""), std::string::npos) << line;
      i = close + 1;
    }
    ASSERT_LT(i, line.size()) << line;
    ASSERT_EQ(line[i], ' ') << line;
    const std::string value = line.substr(i + 1);
    ASSERT_FALSE(value.empty()) << line;
    // Parseable as a double and consumes the whole token.
    size_t consumed = 0;
    (void)std::stod(value, &consumed);
    EXPECT_EQ(consumed, value.size()) << line;
    ++samples;
  }
  // 3 plain metrics + sanitized metric + histogram (3 finite buckets +
  // +Inf + sum + count).
  EXPECT_EQ(samples, 9);

  // Histogram buckets are cumulative and le="+Inf" equals _count.
  EXPECT_NE(text.find("cdpipe_compliance_latency_bucket{le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cdpipe_compliance_latency_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cdpipe_compliance_latency_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cdpipe_compliance_latency histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace cdpipe
