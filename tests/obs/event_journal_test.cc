#include "src/obs/event_journal.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/correlation.h"

namespace cdpipe {
namespace obs {
namespace {

TEST(CorrelationIdTest, ToStringFormats) {
  EXPECT_EQ((CorrelationId{1, 42}).ToString(), "d1/42");
  EXPECT_EQ((CorrelationId{1, -1}).ToString(), "d1/-");
  EXPECT_EQ((CorrelationId{0, 42}).ToString(), "-/42");
  EXPECT_EQ((CorrelationId{0, -1}).ToString(), "-/-");
  EXPECT_TRUE((CorrelationId{}).empty());
  EXPECT_FALSE((CorrelationId{1, -1}).empty());
}

TEST(CorrelationScopeTest, NestsAndRestores) {
  EXPECT_TRUE(CorrelationScope::Current().empty());
  {
    CorrelationScope outer(1, 10);
    EXPECT_EQ(CorrelationScope::Current(), (CorrelationId{1, 10}));
    {
      CorrelationScope inner(2, 20);
      EXPECT_EQ(CorrelationScope::Current(), (CorrelationId{2, 20}));
      EXPECT_EQ(CorrelationScope::WithEntity(99), (CorrelationId{2, 99}));
    }
    EXPECT_EQ(CorrelationScope::Current(), (CorrelationId{1, 10}));
  }
  EXPECT_TRUE(CorrelationScope::Current().empty());
}

TEST(CorrelationScopeTest, IsPerThread) {
  CorrelationScope scope(7, 70);
  CorrelationId seen_on_other_thread{9, 9};
  std::thread other([&] { seen_on_other_thread = CorrelationScope::Current(); });
  other.join();
  EXPECT_TRUE(seen_on_other_thread.empty());
  EXPECT_EQ(CorrelationScope::Current(), (CorrelationId{7, 70}));
}

TEST(EventJournalTest, AppendAndTailRoundTrip) {
  EventJournal journal(16);
  journal.Append(EventKind::kIngest, CorrelationId{1, 5}, "records=100");
  journal.Append(EventKind::kSample, CorrelationId{1, -1}, "hits=3 misses=1");

  const std::vector<JournalEvent> tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].kind, EventKind::kIngest);
  EXPECT_EQ(tail[0].corr, (CorrelationId{1, 5}));
  EXPECT_STREQ(tail[0].detail, "records=100");
  EXPECT_EQ(tail[1].kind, EventKind::kSample);
  EXPECT_GE(tail[1].timestamp_us, tail[0].timestamp_us);
  EXPECT_EQ(journal.TotalAppended(), 2u);
  EXPECT_EQ(journal.TotalDropped(), 0u);
}

TEST(EventJournalTest, PicksUpCorrelationScope) {
  EventJournal journal(16);
  {
    CorrelationScope scope(3, 33);
    journal.Append(EventKind::kTrainStep, "rows=64");
  }
  journal.Append(EventKind::kStall, "engine");
  const std::vector<JournalEvent> tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].corr, (CorrelationId{3, 33}));
  EXPECT_TRUE(tail[1].corr.empty());
}

TEST(EventJournalTest, DisableSuppressesAppends) {
  EventJournal journal(16);
  journal.Disable();
  journal.Append(EventKind::kIngest, "while-disabled");
  EXPECT_EQ(journal.TotalAppended(), 0u);
  journal.Enable();
  journal.Append(EventKind::kIngest, "while-enabled");
  EXPECT_EQ(journal.TotalAppended(), 1u);
}

TEST(EventJournalTest, WrapDropsOldestWithExactAccounting) {
  EventJournal journal(4);
  for (int i = 0; i < 10; ++i) {
    journal.Append(EventKind::kIngest, CorrelationId{1, i}, "");
  }
  EXPECT_EQ(journal.TotalAppended(), 10u);
  EXPECT_EQ(journal.TotalDropped(), 6u);

  const std::vector<JournalEvent> tail = journal.Tail(10);
  ASSERT_EQ(tail.size(), 4u);
  // Newest four survive, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].corr.entity, 6 + i);
  }
}

TEST(EventJournalTest, TruncatesLongDetail) {
  EventJournal journal(4);
  const std::string long_detail(200, 'd');
  journal.Append(EventKind::kIngest, long_detail.c_str());
  const std::vector<JournalEvent> tail = journal.Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(std::strlen(tail[0].detail), sizeof(tail[0].detail) - 1);
}

TEST(EventJournalTest, TailToJsonShape) {
  EventJournal journal(8);
  journal.Append(EventKind::kMaterializeMiss, CorrelationId{2, 7},
                 "quote\"back\\slash");
  const std::string json = journal.TailToJson(8);
  EXPECT_EQ(json.rfind("{\"appended\":1,\"dropped\":0,\"capacity\":8,", 0), 0u)
      << json;
  EXPECT_NE(json.find("\"kind\":\"materialize_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"deployment\":2"), std::string::npos);
  EXPECT_NE(json.find("\"entity\":7"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(EventJournalTest, ClearResetsState) {
  EventJournal journal(4);
  for (int i = 0; i < 6; ++i) journal.Append(EventKind::kEvict, "");
  journal.Clear();
  EXPECT_EQ(journal.TotalAppended(), 0u);
  EXPECT_EQ(journal.TotalDropped(), 0u);
  EXPECT_TRUE(journal.Tail(10).empty());
  journal.Append(EventKind::kIngest, "fresh");
  EXPECT_EQ(journal.Tail(10).size(), 1u);
}

TEST(EventJournalTest, EventKindNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kIngest), "ingest");
  EXPECT_STREQ(EventKindName(EventKind::kMaterializeHit), "materialize_hit");
  EXPECT_STREQ(EventKindName(EventKind::kDriftTrigger), "drift_trigger");
  EXPECT_STREQ(EventKindName(EventKind::kStall), "stall");
  EXPECT_STREQ(EventKindName(EventKind::kRecover), "recover");
}

// Multi-producer correctness: no lost appends, exact drop accounting, and
// per-producer sequence numbers that stay dense and monotonic.  Run under
// TSan in CI.
TEST(EventJournalTest, MultiProducerNoLostUpdates) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  // Large enough that nothing wraps: every append must be retrievable.
  EventJournal journal(kThreads * kPerThread);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(EventKind::kIngest, CorrelationId{1, t}, "mp");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(journal.TotalAppended(),
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(journal.TotalDropped(), 0u);

  const std::vector<JournalEvent> tail =
      journal.Tail(kThreads * kPerThread);
  ASSERT_EQ(tail.size(), static_cast<size_t>(kThreads * kPerThread));

  // Each producer's sequence numbers are exactly 1..kPerThread.
  std::map<uint32_t, std::vector<uint64_t>> seqs_by_producer;
  for (const JournalEvent& e : tail) {
    seqs_by_producer[e.producer].push_back(e.seq);
  }
  ASSERT_EQ(seqs_by_producer.size(), static_cast<size_t>(kThreads));
  for (auto& [producer, seqs] : seqs_by_producer) {
    ASSERT_EQ(seqs.size(), static_cast<size_t>(kPerThread))
        << "producer " << producer;
    std::sort(seqs.begin(), seqs.end());
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_EQ(seqs[i], static_cast<uint64_t>(i + 1))
          << "producer " << producer;
    }
  }
}

TEST(EventJournalTest, MultiProducerWrapKeepsAccountingExact) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  constexpr size_t kCapacity = 64;
  EventJournal journal(kCapacity);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(EventKind::kEvict, "wrap");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const uint64_t appended = journal.TotalAppended();
  EXPECT_EQ(appended, static_cast<uint64_t>(kThreads * kPerThread));
  // Drop-oldest invariant with no appends in flight: everything not live in
  // the ring was counted as dropped.
  EXPECT_EQ(journal.TotalDropped(), appended - kCapacity);
  EXPECT_EQ(journal.Tail(kCapacity * 2).size(), kCapacity);
}

// Sustained producer overload: a tiny ring wrapped >1000 times by one
// producer.  Drop-oldest must stay exact — the survivors are precisely the
// newest `capacity` events, their sequence numbers a dense suffix with no
// gaps, and everything else is accounted as dropped.
TEST(EventJournalTest, SustainedOverloadManyWrapsKeepsDenseSeqSuffix) {
  constexpr size_t kCapacity = 8;
  constexpr int kAppends = 10000;  // 1250 full wraps
  EventJournal journal(kCapacity);
  for (int i = 0; i < kAppends; ++i) {
    journal.Append(EventKind::kIngest, CorrelationId{1, i}, "overload");
  }

  EXPECT_EQ(journal.TotalAppended(), static_cast<uint64_t>(kAppends));
  EXPECT_EQ(journal.TotalDropped(),
            static_cast<uint64_t>(kAppends) - kCapacity);

  const std::vector<JournalEvent> tail = journal.Tail(kCapacity * 2);
  ASSERT_EQ(tail.size(), kCapacity);
  for (size_t i = 0; i < tail.size(); ++i) {
    // Newest kCapacity events, oldest first: seqs (kAppends-7)..kAppends.
    EXPECT_EQ(tail[i].seq, static_cast<uint64_t>(kAppends - kCapacity + 1 + i));
    EXPECT_EQ(tail[i].corr.entity,
              static_cast<int64_t>(kAppends - kCapacity + i));
  }
}

// The multi-producer flavor of the same invariant: because drop-oldest
// removes a prefix of the global append order, each producer's surviving
// sequence numbers must form a contiguous ascending suffix — a gap would
// mean an event was lost without being counted as dropped.
TEST(EventJournalTest, SustainedMultiProducerOverloadHasNoSeqGaps) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  constexpr size_t kCapacity = 32;
  EventJournal journal(kCapacity);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&journal] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Append(EventKind::kIngest, "mp-overload");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const uint64_t appended = journal.TotalAppended();
  EXPECT_EQ(appended, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(journal.TotalDropped(), appended - kCapacity);

  const std::vector<JournalEvent> tail = journal.Tail(kCapacity);
  ASSERT_EQ(tail.size(), kCapacity);
  std::map<uint32_t, std::vector<uint64_t>> seqs_by_producer;
  for (const JournalEvent& e : tail) {
    seqs_by_producer[e.producer].push_back(e.seq);
  }
  for (const auto& [producer, seqs] : seqs_by_producer) {
    for (size_t i = 1; i < seqs.size(); ++i) {
      // Tail preserves append order, so per-producer seqs arrive ascending;
      // density (no gap) is the lost-event detector.
      ASSERT_EQ(seqs[i], seqs[i - 1] + 1)
          << "seq gap for producer " << producer;
    }
  }
}

// Readers racing writers: Tail must only ever return fully published
// events (never torn ones) and must not crash or hang.  Run under TSan.
TEST(EventJournalTest, ConcurrentReadersSeeConsistentEvents) {
  EventJournal journal(32);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      journal.Append(EventKind::kIngest, CorrelationId{1, i % 97},
                     "payload-with-fixed-text");
      ++i;
    }
  });
  std::thread reader([&] {
    for (int pass = 0; pass < 200; ++pass) {
      for (const JournalEvent& e : journal.Tail(32)) {
        ASSERT_EQ(e.kind, EventKind::kIngest);
        ASSERT_EQ(e.corr.deployment, 1u);
        ASSERT_STREQ(e.detail, "payload-with-fixed-text");
      }
    }
  });
  reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

}  // namespace
}  // namespace obs
}  // namespace cdpipe
