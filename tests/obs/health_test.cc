#include "src/obs/health.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/event_journal.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace obs {
namespace {

TEST(HeartbeatTest, BeatUpdatesTimestampAndCount) {
  Heartbeat heartbeat;
  EXPECT_EQ(heartbeat.last_beat_us(), -1);
  EXPECT_EQ(heartbeat.beats(), 0u);
  heartbeat.Beat();
  EXPECT_GE(heartbeat.last_beat_us(), 0);
  EXPECT_EQ(heartbeat.beats(), 1u);
}

TEST(HeartbeatTest, WorkScopeTracksBusyCount) {
  Heartbeat heartbeat;
  {
    Heartbeat::WorkScope outer(&heartbeat);
    EXPECT_EQ(heartbeat.busy(), 1);
    {
      Heartbeat::WorkScope inner(&heartbeat);
      EXPECT_EQ(heartbeat.busy(), 2);
    }
    EXPECT_EQ(heartbeat.busy(), 1);
  }
  EXPECT_EQ(heartbeat.busy(), 0);
  EXPECT_EQ(heartbeat.beats(), 4u);  // two BeginWork + two EndWork
  Heartbeat::WorkScope null_scope(nullptr);  // must be a safe no-op
}

TEST(HealthRegistryTest, ReturnsStablePointers) {
  HealthRegistry registry;
  Heartbeat* a = registry.GetHeartbeat("engine");
  Heartbeat* b = registry.GetHeartbeat("engine");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetHeartbeat("trainer"), a);
  EXPECT_EQ(registry.NumSubsystems(), 2u);
}

TEST(HealthRegistryTest, SnapshotComputesStallState) {
  HealthRegistry registry;
  Heartbeat* idle = registry.GetHeartbeat("idle");
  Heartbeat* busy = registry.GetHeartbeat("busy");
  idle->Beat();
  busy->BeginWork();

  const int64_t now = Tracer::NowMicros();
  // Far future: both are silent for > deadline, but only the busy one
  // counts as stalled.
  const int64_t later = now + 10 * 1000 * 1000;
  std::vector<SubsystemHealth> snapshot = registry.Snapshot(5.0, later);
  ASSERT_EQ(snapshot.size(), 2u);
  const SubsystemHealth& busy_health =
      snapshot[0].name == "busy" ? snapshot[0] : snapshot[1];
  const SubsystemHealth& idle_health =
      snapshot[0].name == "idle" ? snapshot[0] : snapshot[1];
  EXPECT_TRUE(busy_health.stalled);
  EXPECT_GT(busy_health.age_seconds, 5.0);
  EXPECT_FALSE(idle_health.stalled) << "idle subsystems never stall";

  // Within the deadline nothing is stalled.
  snapshot = registry.Snapshot(5.0, now + 1000);
  for (const SubsystemHealth& s : snapshot) EXPECT_FALSE(s.stalled);
  busy->EndWork();
}

TEST(HealthRegistryTest, NeverBeatSubsystemIsNotStalled) {
  HealthRegistry registry;
  registry.GetHeartbeat("registered-but-silent");
  const std::vector<SubsystemHealth> snapshot =
      registry.Snapshot(0.001, Tracer::NowMicros() + 1000000);
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_FALSE(snapshot[0].stalled);
}

TEST(HealthToJsonTest, EmitsReadyFlagAndSubsystems) {
  SubsystemHealth s;
  s.name = "engine";
  s.busy = 1;
  s.beats = 12;
  s.age_seconds = 0.25;
  s.stalled = true;
  const std::string json = HealthToJson({s}, /*ready=*/false);
  EXPECT_EQ(json.rfind("{\"ready\":false,", 0), 0u) << json;
  EXPECT_NE(json.find("\"name\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"busy\":1"), std::string::npos);
  EXPECT_NE(json.find("\"beats\":12"), std::string::npos);
  EXPECT_NE(json.find("\"stalled\":true"), std::string::npos);
  EXPECT_EQ(HealthToJson({}, true), "{\"ready\":true,\"subsystems\":[]}");
}

TEST(WatchdogTest, DetectsStallAndRecovery) {
  HealthRegistry registry;
  EventJournal journal(64);
  Watchdog::Options options;
  options.stall_deadline_seconds = 0.01;
  options.health = &registry;
  options.journal = &journal;
  Watchdog watchdog(options);
  EXPECT_TRUE(watchdog.ready());

  Heartbeat* engine = registry.GetHeartbeat("engine");
  engine->BeginWork();
  // Let the heartbeat go silent past the 10ms deadline, then poll inline.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  watchdog.PollOnce();
  EXPECT_FALSE(watchdog.ready());
  EXPECT_EQ(watchdog.stall_events(), 1);

  // A second poll while still stalled must not double-count.
  watchdog.PollOnce();
  EXPECT_EQ(watchdog.stall_events(), 1);

  // The stall event names the subsystem.
  std::vector<JournalEvent> events = journal.Tail(10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kStall);
  EXPECT_STREQ(events[0].detail, "engine");

  // Progress resumes: readiness flips back and a recover event is logged.
  engine->Beat();
  watchdog.PollOnce();
  EXPECT_TRUE(watchdog.ready());
  EXPECT_EQ(watchdog.recover_events(), 1);
  events = journal.Tail(10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, EventKind::kRecover);
  engine->EndWork();
}

TEST(WatchdogTest, BackgroundThreadPollsOnItsOwn) {
  HealthRegistry registry;
  EventJournal journal(64);
  Watchdog::Options options;
  options.stall_deadline_seconds = 0.01;
  options.poll_interval_seconds = 0.005;
  options.health = &registry;
  options.journal = &journal;
  Watchdog watchdog(options);

  Heartbeat* trainer = registry.GetHeartbeat("trainer");
  trainer->BeginWork();
  watchdog.Start();
  // The background loop must notice the silent-but-busy trainer without any
  // manual PollOnce calls.
  for (int i = 0; i < 200 && watchdog.ready(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(watchdog.ready());
  watchdog.Stop();
  trainer->EndWork();
  EXPECT_GE(watchdog.stall_events(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace cdpipe
