#include "src/sampling/sampler.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

std::vector<ChunkId> Ids(size_t n) {
  std::vector<ChunkId> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<ChunkId>(i);
  return out;
}

void ExpectValidSample(const std::vector<ChunkId>& sample,
                       const std::vector<ChunkId>& live, size_t requested) {
  EXPECT_EQ(sample.size(), std::min(requested, live.size()));
  std::set<ChunkId> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), sample.size());
  for (ChunkId id : sample) {
    EXPECT_TRUE(std::find(live.begin(), live.end(), id) != live.end());
  }
}

class AllSamplersTest : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(AllSamplersTest, SampleIsDistinctAndLive) {
  auto sampler = MakeSampler(GetParam(), /*window_size=*/50);
  Rng rng(1);
  const auto live = Ids(100);
  // The window sampler draws from the most recent 50 chunks only, so its
  // sample size caps at the window size.
  const size_t cap = GetParam() == SamplerKind::kWindow ? 50 : live.size();
  for (size_t s : {1u, 10u, 99u, 100u, 150u}) {
    ExpectValidSample(sampler->Sample(live, s, &rng), live,
                      std::min(s, cap));
  }
}

TEST_P(AllSamplersTest, DeterministicGivenRng) {
  auto sampler = MakeSampler(GetParam(), 50);
  const auto live = Ids(200);
  Rng rng1(7);
  Rng rng2(7);
  EXPECT_EQ(sampler->Sample(live, 20, &rng1),
            sampler->Sample(live, 20, &rng2));
}

TEST_P(AllSamplersTest, CloneBehavesIdentically) {
  auto sampler = MakeSampler(GetParam(), 50);
  auto clone = sampler->Clone();
  const auto live = Ids(100);
  Rng rng1(3);
  Rng rng2(3);
  EXPECT_EQ(sampler->Sample(live, 10, &rng1), clone->Sample(live, 10, &rng2));
  EXPECT_EQ(sampler->kind(), clone->kind());
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllSamplersTest,
                         ::testing::Values(SamplerKind::kUniform,
                                           SamplerKind::kWindow,
                                           SamplerKind::kTime));

TEST(UniformSamplerTest, CoversAllChunksUniformly) {
  UniformSampler sampler;
  Rng rng(11);
  const auto live = Ids(20);
  std::vector<int> counts(20, 0);
  constexpr int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    for (ChunkId id : sampler.Sample(live, 5, &rng)) ++counts[id];
  }
  const double expected = kTrials * 5.0 / 20.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.06);
}

TEST(WindowSamplerTest, OnlySamplesFromWindow) {
  WindowSampler sampler(10);
  Rng rng(13);
  const auto live = Ids(100);
  for (int t = 0; t < 100; ++t) {
    for (ChunkId id : sampler.Sample(live, 5, &rng)) {
      EXPECT_GE(id, 90);  // only the 10 most recent
    }
  }
}

TEST(WindowSamplerTest, WindowLargerThanLiveFallsBackToAll) {
  WindowSampler sampler(1000);
  Rng rng(17);
  const auto live = Ids(10);
  ExpectValidSample(sampler.Sample(live, 5, &rng), live, 5);
}

TEST(WindowSamplerTest, NameIncludesWindow) {
  WindowSampler sampler(42);
  EXPECT_EQ(sampler.name(), "window-based(w=42)");
  EXPECT_EQ(sampler.window_size(), 42u);
}

TEST(TimeBasedSamplerTest, PrefersRecentChunks) {
  TimeBasedSampler sampler;
  Rng rng(19);
  const auto live = Ids(100);
  int64_t newest_half = 0;
  int64_t total = 0;
  for (int t = 0; t < 2000; ++t) {
    for (ChunkId id : sampler.Sample(live, 10, &rng)) {
      ++total;
      if (id >= 50) ++newest_half;
    }
  }
  // With linear rank weights the newest half carries 75% of the mass.
  const double fraction = static_cast<double>(newest_half) / total;
  EXPECT_GT(fraction, 0.68);
  EXPECT_LT(fraction, 0.82);
}

TEST(TimeBasedSamplerTest, MarginalInclusionFollowsRankWeights) {
  // Single-draw (s=1) inclusion probability of chunk i should be
  // proportional to i+1.
  TimeBasedSampler sampler;
  Rng rng(23);
  const auto live = Ids(10);
  std::vector<int> counts(10, 0);
  constexpr int kTrials = 110000;
  for (int t = 0; t < kTrials; ++t) {
    ++counts[sampler.Sample(live, 1, &rng)[0]];
  }
  const double total_weight = 55.0;  // 1 + 2 + ... + 10
  for (size_t i = 0; i < 10; ++i) {
    const double expected = kTrials * (i + 1) / total_weight;
    EXPECT_NEAR(counts[i], expected, expected * 0.1 + 30) << "rank " << i;
  }
}

TEST(MakeSamplerTest, FactoryKinds) {
  EXPECT_EQ(MakeSampler(SamplerKind::kUniform)->kind(), SamplerKind::kUniform);
  EXPECT_EQ(MakeSampler(SamplerKind::kWindow, 5)->kind(),
            SamplerKind::kWindow);
  EXPECT_EQ(MakeSampler(SamplerKind::kTime)->kind(), SamplerKind::kTime);
  EXPECT_STREQ(SamplerKindName(SamplerKind::kUniform), "uniform");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kWindow), "window-based");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kTime), "time-based");
}

}  // namespace
}  // namespace cdpipe
