// Property test for the paper's §3.2.2 analysis: the *empirical*
// materialization utilization rate μ measured by ChunkStore's hit/miss
// counters must converge to the closed-form estimates (formulas 4 and 5)
// under the deployment protocol — one sampling operation after each
// arriving chunk, with the m most recent chunks materialized.

#include <gtest/gtest.h>

#include <memory>

#include "src/common/rng.h"
#include "src/sampling/mu_theory.h"
#include "src/sampling/sampler.h"
#include "src/storage/chunk_store.h"

namespace cdpipe {
namespace {

RawChunk MakeRaw(ChunkId id) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = static_cast<int64_t>(id) * 60;
  chunk.records = {"r"};
  return chunk;
}

FeatureChunk MakeFeatures(ChunkId id) {
  FeatureChunk chunk;
  chunk.origin_id = id;
  chunk.event_time_seconds = static_cast<int64_t>(id) * 60;
  return chunk;
}

/// Replays the §3.2.2 deployment protocol over one (sampler, m, N) cell and
/// returns the empirical μ, averaged over `repeats` seeds.
double EmpiricalMu(const Sampler& sampler, size_t m, size_t total_chunks,
                   size_t sample_size, int repeats) {
  double sum = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    ChunkStore::Options options;
    options.max_materialized_chunks = m;
    ChunkStore store(options);
    Rng rng(1234u + static_cast<uint64_t>(rep) * 7919u);
    for (ChunkId id = 0; id < static_cast<ChunkId>(total_chunks); ++id) {
      EXPECT_TRUE(store.PutRaw(MakeRaw(id)).ok());
      EXPECT_TRUE(store.PutFeatures(MakeFeatures(id)).ok());
      // A fresh materialization replaces the sampled-out eviction order, so
      // exactly the m most recent chunks are materialized — the paper's
      // eviction model.  Now one proactive sampling operation:
      for (ChunkId picked :
           sampler.Sample(store.LiveIds(), sample_size, &rng)) {
        store.RecordSampleAccess(picked);
      }
    }
    sum += store.counters().EmpiricalMu();
  }
  return sum / static_cast<double>(repeats);
}

struct MuCase {
  size_t m;
  size_t total_chunks;
};

class MuUniformPropertyTest : public ::testing::TestWithParam<MuCase> {};

TEST_P(MuUniformPropertyTest, EmpiricalMatchesAnalytical) {
  const MuCase param = GetParam();
  UniformSampler sampler;
  const double empirical =
      EmpiricalMu(sampler, param.m, param.total_chunks,
                  /*sample_size=*/10, /*repeats=*/5);
  const double analytical = MuUniform(param.total_chunks, param.m);
  EXPECT_NEAR(empirical, analytical, 0.03)
      << "m=" << param.m << " N=" << param.total_chunks;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MuUniformPropertyTest,
    ::testing::Values(MuCase{20, 200}, MuCase{50, 200}, MuCase{100, 200},
                      MuCase{40, 400}, MuCase{120, 400}, MuCase{240, 400},
                      MuCase{300, 400}),
    [](const ::testing::TestParamInfo<MuCase>& info) {
      return "m" + std::to_string(info.param.m) + "_N" +
             std::to_string(info.param.total_chunks);
    });

struct WindowCase {
  size_t m;
  size_t window;
  size_t total_chunks;
};

class MuWindowPropertyTest : public ::testing::TestWithParam<WindowCase> {};

TEST_P(MuWindowPropertyTest, EmpiricalMatchesAnalytical) {
  const WindowCase param = GetParam();
  WindowSampler sampler(param.window);
  const double empirical =
      EmpiricalMu(sampler, param.m, param.total_chunks,
                  /*sample_size=*/10, /*repeats=*/5);
  const double analytical =
      MuWindow(param.total_chunks, param.m, param.window);
  EXPECT_NEAR(empirical, analytical, 0.03)
      << "m=" << param.m << " w=" << param.window
      << " N=" << param.total_chunks;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MuWindowPropertyTest,
    ::testing::Values(WindowCase{50, 40, 200},   // m >= w: μ = 1
                      WindowCase{40, 80, 200},   // m < w
                      WindowCase{20, 100, 200},  // m << w
                      WindowCase{100, 150, 400},
                      WindowCase{150, 150, 400}),
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      return "m" + std::to_string(info.param.m) + "_w" +
             std::to_string(info.param.window) + "_N" +
             std::to_string(info.param.total_chunks);
    });

TEST(MuEmpiricalPropertyTest, SeedInvarianceOfConvergence) {
  // Different seed families converge to the same analytical value — the
  // estimate is a property of (m, N), not of the Rng stream.
  UniformSampler sampler;
  const double a = EmpiricalMu(sampler, 60, 300, 10, 3);
  const double analytical = MuUniform(300, 60);
  EXPECT_NEAR(a, analytical, 0.04);
}

}  // namespace
}  // namespace cdpipe
