#include "src/sampling/mu_theory.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sampling/sampler.h"

namespace cdpipe {
namespace {

TEST(HarmonicNumberTest, ExactSmallValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_DOUBLE_EQ(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25);
}

TEST(HarmonicNumberTest, AsymptoticMatchesExactSum) {
  for (size_t t : {100u, 1000u, 10000u}) {
    double exact = 0.0;
    for (size_t i = 1; i <= t; ++i) exact += 1.0 / static_cast<double>(i);
    EXPECT_NEAR(HarmonicNumber(t), exact, 1e-9) << t;
  }
}

TEST(MuUniformTest, PaperOperatingPoint) {
  // §3.2.2: N = 12000, m = 7200 (m/n = 0.6) -> μ ≈ 0.91.
  EXPECT_NEAR(MuUniform(12000, 7200), 0.91, 0.005);
  // Table 4: m/n = 0.2 -> μ ≈ 0.52.
  EXPECT_NEAR(MuUniform(12000, 2400), 0.52, 0.005);
}

TEST(MuUniformTest, Extremes) {
  EXPECT_DOUBLE_EQ(MuUniform(1000, 0), 0.0);
  EXPECT_DOUBLE_EQ(MuUniform(1000, 1000), 1.0);
  EXPECT_DOUBLE_EQ(MuUniform(1000, 5000), 1.0);  // m clamped to N
}

TEST(MuUniformTest, MonotoneInM) {
  double prev = 0.0;
  for (size_t m = 0; m <= 12000; m += 600) {
    const double mu = MuUniform(12000, m);
    EXPECT_GE(mu, prev);
    prev = mu;
  }
}

TEST(MuWindowTest, PaperOperatingPoints) {
  // Table 4, w = 6000: m/n = 0.2 -> 0.58, m/n = 0.6 -> 1.0.
  EXPECT_NEAR(MuWindow(12000, 2400, 6000), 0.58, 0.005);
  EXPECT_DOUBLE_EQ(MuWindow(12000, 7200, 6000), 1.0);
}

TEST(MuWindowTest, WindowEqualOrSmallerThanMIsFullyMaterialized) {
  EXPECT_DOUBLE_EQ(MuWindow(10000, 5000, 5000), 1.0);
  EXPECT_DOUBLE_EQ(MuWindow(10000, 5000, 4000), 1.0);
}

TEST(MuWindowTest, ReducesToUniformWhenWindowIsEverything) {
  EXPECT_NEAR(MuWindow(12000, 2400, 12000), MuUniform(12000, 2400), 1e-9);
}

TEST(MuTimeLinearTest, PaperOperatingPoints) {
  // Table 4 empirical values for time-based sampling: 0.68 and 0.97.
  EXPECT_NEAR(MuTimeLinear(12000, 2400), 0.68, 0.01);
  EXPECT_NEAR(MuTimeLinear(12000, 7200), 0.97, 0.01);
}

TEST(MuTimeLinearTest, DominatesUniform) {
  // Recency weighting can only help: the materialized chunks are the newest.
  for (size_t m : {1200u, 2400u, 4800u, 7200u, 9600u}) {
    EXPECT_GT(MuTimeLinear(12000, m), MuUniform(12000, m)) << m;
  }
}

TEST(MuUniformAtNTest, PiecewiseForm) {
  EXPECT_DOUBLE_EQ(MuUniformAtN(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(MuUniformAtN(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(MuUniformAtN(20, 10), 0.5);
}

// Property test: the closed-form μ matches a direct simulation of the
// deployment protocol (one sampling operation after every arriving chunk,
// m newest chunks materialized).
class MuSimulationTest
    : public ::testing::TestWithParam<std::tuple<SamplerKind, size_t>> {};

TEST_P(MuSimulationTest, TheoryMatchesSimulation) {
  const auto [kind, m] = GetParam();
  constexpr size_t kN = 1200;
  constexpr size_t kWindow = 600;
  constexpr size_t kSampleSize = 10;
  auto sampler = MakeSampler(kind, kWindow);
  Rng rng(kind == SamplerKind::kUniform ? 5u : 6u);

  int64_t hits = 0;
  int64_t draws = 0;
  std::vector<ChunkId> live;
  for (size_t n = 1; n <= kN; ++n) {
    live.push_back(static_cast<ChunkId>(n - 1));
    // The m newest chunks are materialized (oldest-first eviction).
    const ChunkId oldest_materialized =
        n > m ? static_cast<ChunkId>(n - m) : 0;
    for (ChunkId id : sampler->Sample(live, kSampleSize, &rng)) {
      ++draws;
      if (id >= oldest_materialized) ++hits;
    }
  }
  const double empirical = static_cast<double>(hits) / draws;

  double theory = 0.0;
  switch (kind) {
    case SamplerKind::kUniform:
      theory = MuUniform(kN, m);
      break;
    case SamplerKind::kWindow:
      theory = MuWindow(kN, m, kWindow);
      break;
    case SamplerKind::kTime:
      theory = MuTimeLinear(kN, m);
      break;
  }
  EXPECT_NEAR(empirical, theory, 0.02)
      << SamplerKindName(kind) << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MuSimulationTest,
    ::testing::Combine(::testing::Values(SamplerKind::kUniform,
                                         SamplerKind::kWindow,
                                         SamplerKind::kTime),
                       ::testing::Values(240u, 720u, 1100u)));

}  // namespace
}  // namespace cdpipe
