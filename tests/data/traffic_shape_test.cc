#include "src/data/traffic_shape.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace cdpipe {
namespace {

std::vector<int64_t> Gaps(const std::vector<int64_t>& arrivals) {
  std::vector<int64_t> gaps;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  return gaps;
}

TEST(TrafficShapeTest, UniformShapeIsStrictlyPeriodic) {
  TrafficShapeConfig config;
  config.shape = TrafficShape::kUniform;
  config.base_period_seconds = 60.0;
  config.start_seconds = 120.0;
  const std::vector<int64_t> arrivals = ShapedArrivalTimes(config, 10);
  ASSERT_EQ(arrivals.size(), 10u);
  EXPECT_EQ(arrivals.front(), 120);
  for (int64_t gap : Gaps(arrivals)) EXPECT_EQ(gap, 60);
}

TEST(TrafficShapeTest, FlashCrowdCompressesPeriodicBursts) {
  TrafficShapeConfig config;
  config.shape = TrafficShape::kFlashCrowd;
  config.base_period_seconds = 60.0;
  config.burst_every = 8;
  config.burst_length = 4;
  config.burst_factor = 6.0;
  const std::vector<int64_t> arrivals = ShapedArrivalTimes(config, 16);
  const std::vector<int64_t> gaps = Gaps(arrivals);
  // Gap i follows chunk i: positions 0..3 of each 8-cycle are in-burst.
  for (size_t i = 0; i < gaps.size(); ++i) {
    if (i % 8 < 4) {
      EXPECT_EQ(gaps[i], 10) << "in-burst gap " << i;
    } else {
      EXPECT_EQ(gaps[i], 60) << "off-burst gap " << i;
    }
  }
}

TEST(TrafficShapeTest, SustainedOverloadScalesEveryGap) {
  TrafficShapeConfig config;
  config.shape = TrafficShape::kSustainedOverload;
  config.base_period_seconds = 60.0;
  config.overload_factor = 3.0;
  const std::vector<int64_t> gaps = Gaps(ShapedArrivalTimes(config, 8));
  for (int64_t gap : gaps) EXPECT_EQ(gap, 20);
}

TEST(TrafficShapeTest, DiurnalCurvePeaksMidPeriodAndRecovers) {
  TrafficShapeConfig config;
  config.shape = TrafficShape::kDiurnal;
  config.base_period_seconds = 60.0;
  config.diurnal_amplitude = 5.0;
  config.diurnal_period_chunks = 12;
  const std::vector<int64_t> gaps = Gaps(ShapedArrivalTimes(config, 14));
  // Trough at phase 0 (rate 1x -> gap == base), peak at phase pi
  // (chunk 6: rate 6x -> gap == 10).
  EXPECT_EQ(gaps.front(), 60);
  const int64_t min_gap = *std::min_element(gaps.begin(), gaps.end());
  EXPECT_EQ(min_gap, 10);
  EXPECT_EQ(gaps[6], 10);
  // One full period later (chunk 12) the curve is back at the trough rate.
  EXPECT_EQ(gaps[12], 60);
}

TEST(TrafficShapeTest, JitteredArrivalsAreSeededAndMonotonic) {
  TrafficShapeConfig config;
  config.shape = TrafficShape::kFlashCrowd;
  config.base_period_seconds = 2.0;
  config.burst_factor = 50.0;  // sub-second in-burst gaps stress rounding
  config.jitter_fraction = 0.5;
  config.seed = 99;
  const std::vector<int64_t> first = ShapedArrivalTimes(config, 64);
  const std::vector<int64_t> second = ShapedArrivalTimes(config, 64);
  EXPECT_EQ(first, second) << "same seed must give identical arrivals";
  for (int64_t gap : Gaps(first)) EXPECT_GE(gap, 0);

  config.seed = 100;
  EXPECT_NE(ShapedArrivalTimes(config, 64), first)
      << "different seed must move the jitter";
}

TEST(TrafficShapeTest, ApplyRewritesOnlyEventTimes) {
  std::vector<RawChunk> stream(3);
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].id = static_cast<ChunkId>(i + 7);
    stream[i].event_time_seconds = 1000 + static_cast<int64_t>(i);
    stream[i].records.push_back("+1 1:1");
  }
  TrafficShapeConfig config;
  config.base_period_seconds = 5.0;
  ApplyTrafficShape(config, &stream);
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].event_time_seconds, static_cast<int64_t>(5 * i));
    EXPECT_EQ(stream[i].id, static_cast<ChunkId>(i + 7));
    EXPECT_EQ(stream[i].num_rows(), 1u);
  }
}

}  // namespace
}  // namespace cdpipe
