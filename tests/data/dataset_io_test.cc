#include "src/data/dataset_io.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

std::vector<std::string> MakeRecords(size_t n) {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) out.push_back("record-" + std::to_string(i));
  return out;
}

TEST(DiscretizeRecordsTest, EvenSplit) {
  auto chunks = DiscretizeRecords(MakeRecords(10), 5, 1000, 60);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].id, 0);
  EXPECT_EQ(chunks[1].id, 1);
  EXPECT_EQ(chunks[0].event_time_seconds, 1000);
  EXPECT_EQ(chunks[1].event_time_seconds, 1060);
  EXPECT_EQ(chunks[0].records.size(), 5u);
  EXPECT_EQ(chunks[0].records[0], "record-0");
  EXPECT_EQ(chunks[1].records[4], "record-9");
}

TEST(DiscretizeRecordsTest, RaggedTail) {
  auto chunks = DiscretizeRecords(MakeRecords(7), 3, 0, 1);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].records.size(), 1u);
}

TEST(DiscretizeRecordsTest, CustomFirstId) {
  auto chunks = DiscretizeRecords(MakeRecords(4), 2, 0, 1, /*first_id=*/100);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].id, 100);
  EXPECT_EQ(chunks[1].id, 101);
}

TEST(DiscretizeRecordsTest, EmptyInput) {
  EXPECT_TRUE(DiscretizeRecords({}, 5, 0, 1).empty());
}

TEST(FlattenChunksTest, InverseOfDiscretize) {
  auto records = MakeRecords(11);
  auto chunks = DiscretizeRecords(records, 4, 0, 1);
  EXPECT_EQ(FlattenChunks(chunks), records);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdpipe_io_test.txt")
          .string();
  auto records = MakeRecords(5);
  ASSERT_TRUE(SaveRecords(path, records).ok());
  auto loaded = LoadRecords(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, records);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  auto result = LoadRecords("/nonexistent/definitely/not/here.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DatasetIoTest, SaveToBadPathFails) {
  EXPECT_FALSE(SaveRecords("/nonexistent/dir/file.txt", {"x"}).ok());
}

}  // namespace
}  // namespace cdpipe
