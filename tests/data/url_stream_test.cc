#include "src/data/url_stream.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/pipeline/input_parser.h"
#include "src/pipeline/pipeline.h"

namespace cdpipe {
namespace {

UrlStreamGenerator::Config SmallConfig() {
  UrlStreamGenerator::Config config;
  config.feature_dim = 5000;
  config.initial_active_features = 300;
  config.new_features_per_chunk = 2;
  config.records_per_chunk = 50;
  config.nnz_per_record = 12;
  config.seed = 3;
  return config;
}

TEST(UrlStreamTest, ChunkShapeAndTimestamps) {
  UrlStreamGenerator generator(SmallConfig());
  auto chunks = generator.Generate(3);
  ASSERT_EQ(chunks.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(chunks[i].id, static_cast<ChunkId>(i));
    EXPECT_EQ(chunks[i].event_time_seconds, static_cast<int64_t>(i * 60));
    EXPECT_EQ(chunks[i].records.size(), 50u);
  }
}

TEST(UrlStreamTest, RecordsParseAsLibSvm) {
  UrlStreamGenerator generator(SmallConfig());
  RawChunk chunk = generator.NextChunk();
  InputParser::Options options;
  options.feature_dim = SmallConfig().feature_dim;
  options.strict = true;  // every generated record must parse
  InputParser parser(options);
  RawChunk wrapped = chunk;
  auto result = parser.Transform(Pipeline::WrapRaw(wrapped));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& features = std::get<FeatureData>(*result);
  EXPECT_EQ(features.num_rows(), 50u);
  for (double label : features.labels) {
    EXPECT_TRUE(label == 1.0 || label == -1.0);
  }
}

TEST(UrlStreamTest, BothClassesPresent) {
  UrlStreamGenerator generator(SmallConfig());
  int positive = 0;
  int total = 0;
  for (const RawChunk& chunk : generator.Generate(20)) {
    for (const std::string& record : chunk.records) {
      ++total;
      if (record[0] == '+') ++positive;
    }
  }
  EXPECT_GT(positive, total / 10);
  EXPECT_LT(positive, total * 9 / 10);
}

TEST(UrlStreamTest, NewFeaturesActivateOverTime) {
  UrlStreamGenerator generator(SmallConfig());
  const size_t before = generator.num_active_features();
  generator.Generate(10);
  EXPECT_EQ(generator.num_active_features(), before + 20);
}

TEST(UrlStreamTest, MissingValuesAppear) {
  UrlStreamGenerator::Config config = SmallConfig();
  config.missing_prob = 0.2;
  UrlStreamGenerator generator(config);
  bool saw_nan = false;
  for (const RawChunk& chunk : generator.Generate(5)) {
    for (const std::string& record : chunk.records) {
      if (record.find(":nan") != std::string::npos) saw_nan = true;
    }
  }
  EXPECT_TRUE(saw_nan);
}

TEST(UrlStreamTest, DeterministicGivenSeed) {
  UrlStreamGenerator a(SmallConfig());
  UrlStreamGenerator b(SmallConfig());
  EXPECT_EQ(a.NextChunk().records, b.NextChunk().records);
}

TEST(UrlStreamTest, DifferentSeedsDiffer) {
  UrlStreamGenerator::Config other = SmallConfig();
  other.seed = 4;
  UrlStreamGenerator a(SmallConfig());
  UrlStreamGenerator b(other);
  EXPECT_NE(a.NextChunk().records, b.NextChunk().records);
}

TEST(UrlPipelineTest, FactoryBuildsFiveStagePipeline) {
  UrlPipelineConfig config;
  config.raw_dim = 5000;
  config.hash_bits = 8;
  auto pipeline = MakeUrlPipeline(config);
  // parser, imputer, scaler, hasher (the model is attached separately).
  EXPECT_EQ(pipeline->num_components(), 4u);
  LinearModel::Options model_options = MakeUrlModelOptions(config);
  EXPECT_EQ(model_options.loss, LossKind::kHinge);
  EXPECT_EQ(model_options.initial_dim, 256u);
}

TEST(UrlPipelineTest, EndToEndOverGeneratedChunk) {
  UrlPipelineConfig pipe_config;
  pipe_config.raw_dim = 5000;
  pipe_config.hash_bits = 8;
  auto pipeline = MakeUrlPipeline(pipe_config);
  UrlStreamGenerator generator(SmallConfig());
  RawChunk chunk = generator.NextChunk();
  auto features = pipeline->UpdateAndTransform(chunk);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(features->num_rows(), 50u);
  EXPECT_EQ(features->dim, 256u);
  // No NaN survives the imputer.
  for (const SparseVector& x : features->features) {
    for (double v : x.values()) EXPECT_FALSE(std::isnan(v));
  }
}

}  // namespace
}  // namespace cdpipe
