#include "src/data/taxi_stream.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/string_util.h"
#include "src/pipeline/input_parser.h"

namespace cdpipe {
namespace {

TaxiStreamGenerator::Config SmallConfig() {
  TaxiStreamGenerator::Config config;
  config.records_per_chunk = 100;
  config.seed = 21;
  return config;
}

TEST(TaxiStreamTest, ChunkShapeAndHourlyTimestamps) {
  TaxiStreamGenerator generator(SmallConfig());
  auto chunks = generator.Generate(3);
  ASSERT_EQ(chunks.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(chunks[i].id, static_cast<ChunkId>(i));
    EXPECT_EQ(chunks[i].event_time_seconds,
              1420070400 + static_cast<int64_t>(i) * 3600);
    EXPECT_EQ(chunks[i].records.size(), 100u);
  }
}

TEST(TaxiStreamTest, RecordsParseAgainstRawSchema) {
  TaxiStreamGenerator generator(SmallConfig());
  RawChunk chunk = generator.NextChunk();
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TaxiRawSchema();
  options.strict = true;
  InputParser parser(options);
  auto result = parser.Transform(Pipeline::WrapRaw(chunk));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& table = std::get<TableData>(*result);
  ASSERT_EQ(table.num_rows(), 100u);
  // Pickup before dropoff for every trip.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_LE(table.column(0).ints()[r], table.column(1).ints()[r]);
    const int64_t passengers = table.column(6).ints()[r];
    EXPECT_GE(passengers, 1);
    EXPECT_LE(passengers, 6);
  }
}

TEST(TaxiStreamTest, PickupTimesWithinChunkWindow) {
  TaxiStreamGenerator generator(SmallConfig());
  RawChunk chunk = generator.NextChunk();
  for (const std::string& record : chunk.records) {
    const auto fields = SplitString(record, ',');
    const int64_t pickup =
        std::move(ParseDateTime(fields[0])).ValueOrDie();
    EXPECT_GE(pickup, chunk.event_time_seconds);
    EXPECT_LT(pickup, chunk.event_time_seconds + 3600);
  }
}

TEST(TaxiStreamTest, AnomaliesAppearAtConfiguredRate) {
  TaxiStreamGenerator::Config config = SmallConfig();
  config.anomaly_prob = 0.2;
  TaxiStreamGenerator generator(config);
  int anomalies = 0;
  int total = 0;
  for (const RawChunk& chunk : generator.Generate(20)) {
    for (const std::string& record : chunk.records) {
      ++total;
      const auto fields = SplitString(record, ',');
      const int64_t pickup =
          std::move(ParseDateTime(fields[0])).ValueOrDie();
      const int64_t dropoff =
          std::move(ParseDateTime(fields[1])).ValueOrDie();
      const int64_t duration = dropoff - pickup;
      const double plon = std::move(ParseDouble(fields[2])).ValueOrDie();
      const double plat = std::move(ParseDouble(fields[3])).ValueOrDie();
      const double dlon = std::move(ParseDouble(fields[4])).ValueOrDie();
      const double dlat = std::move(ParseDouble(fields[5])).ValueOrDie();
      if (duration < 10 || duration > 22 * 3600 ||
          (plon == dlon && plat == dlat)) {
        ++anomalies;
      }
    }
  }
  const double rate = static_cast<double>(anomalies) / total;
  EXPECT_NEAR(rate, 0.2, 0.04);
}

TEST(TaxiStreamTest, ExpectedDurationReflectsRushHour) {
  // 8am weekday is slower than 3am weekday.
  EXPECT_GT(TaxiStreamGenerator::ExpectedDurationSeconds(5.0, 8, false),
            TaxiStreamGenerator::ExpectedDurationSeconds(5.0, 3, false));
  // Weekends are faster than weekdays at the same hour.
  EXPECT_LT(TaxiStreamGenerator::ExpectedDurationSeconds(5.0, 8, true),
            TaxiStreamGenerator::ExpectedDurationSeconds(5.0, 8, false));
  // Longer trips take longer.
  EXPECT_GT(TaxiStreamGenerator::ExpectedDurationSeconds(10.0, 12, false),
            TaxiStreamGenerator::ExpectedDurationSeconds(2.0, 12, false));
}

TEST(TaxiStreamTest, DeterministicGivenSeed) {
  TaxiStreamGenerator a(SmallConfig());
  TaxiStreamGenerator b(SmallConfig());
  EXPECT_EQ(a.NextChunk().records, b.NextChunk().records);
}

TEST(TaxiPipelineTest, EndToEndOverGeneratedChunks) {
  auto pipeline = MakeTaxiPipeline();
  EXPECT_EQ(pipeline->num_components(), 5u);
  TaxiStreamGenerator generator(SmallConfig());
  RawChunk chunk = generator.NextChunk();
  auto features = pipeline->UpdateAndTransform(chunk);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  // Anomalies are filtered but most rows survive.
  EXPECT_GT(features->num_rows(), 80u);
  EXPECT_LE(features->num_rows(), 100u);
  EXPECT_EQ(features->dim, 12u);  // 11 features + intercept
  // Labels are log1p(duration) of sane trips.
  for (double label : features->labels) {
    EXPECT_GT(label, std::log1p(10.0) - 1e-9);
    EXPECT_LT(label, std::log1p(22.0 * 3600.0) + 1e-9);
  }
}

TEST(TaxiPipelineTest, ModelOptionsAreSquaredLoss) {
  LinearModel::Options options = MakeTaxiModelOptions(1e-3);
  EXPECT_EQ(options.loss, LossKind::kSquared);
  EXPECT_DOUBLE_EQ(options.l2_reg, 1e-3);
  EXPECT_EQ(options.initial_dim, 12u);
}

TEST(TaxiPipelineTest, AnomaliesAreFilteredOut) {
  auto pipeline = MakeTaxiPipeline();
  TaxiStreamGenerator::Config config = SmallConfig();
  config.anomaly_prob = 0.5;
  TaxiStreamGenerator generator(config);
  RawChunk chunk = generator.NextChunk();
  auto features = pipeline->UpdateAndTransform(chunk);
  ASSERT_TRUE(features.ok());
  // About half the rows are anomalies; all must be gone.
  EXPECT_LT(features->num_rows(), 75u);
  for (double label : features->labels) {
    const double duration = std::expm1(label);
    EXPECT_GE(duration, 10.0 - 1e-6);
    EXPECT_LE(duration, 22.0 * 3600.0 + 1e-6);
  }
}

}  // namespace
}  // namespace cdpipe
