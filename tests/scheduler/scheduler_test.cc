#include "src/scheduler/scheduler.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(EwmaTrackerTest, FirstObservationInitializes) {
  EwmaTracker tracker(0.5);
  EXPECT_FALSE(tracker.initialized());
  tracker.Observe(10.0);
  EXPECT_TRUE(tracker.initialized());
  EXPECT_DOUBLE_EQ(tracker.value(), 10.0);
}

TEST(EwmaTrackerTest, ExponentialBlend) {
  EwmaTracker tracker(0.5);
  tracker.Observe(10.0);
  tracker.Observe(20.0);  // 0.5*20 + 0.5*10 = 15
  EXPECT_DOUBLE_EQ(tracker.value(), 15.0);
  EXPECT_EQ(tracker.count(), 2);
}

TEST(EwmaTrackerTest, AlphaControlsRecencyWeight) {
  // A small alpha barely moves toward the new observation; a large alpha
  // almost replaces the old value.
  EwmaTracker slow(0.2);
  slow.Observe(10.0);
  slow.Observe(20.0);  // 0.2*20 + 0.8*10 = 12
  EXPECT_DOUBLE_EQ(slow.value(), 12.0);

  EwmaTracker fast(0.9);
  fast.Observe(10.0);
  fast.Observe(20.0);  // 0.9*20 + 0.1*10 = 19
  EXPECT_DOUBLE_EQ(fast.value(), 19.0);

  // Third observation compounds: 0.2*5 + 0.8*12 = 10.6.
  slow.Observe(5.0);
  EXPECT_DOUBLE_EQ(slow.value(), 10.6);
}

TEST(EwmaTrackerTest, CountIncludesInitializingObservation) {
  EwmaTracker tracker(0.5);
  EXPECT_EQ(tracker.count(), 0);
  tracker.Observe(1.0);
  EXPECT_EQ(tracker.count(), 1);
  tracker.Observe(1.0);
  tracker.Observe(1.0);
  EXPECT_EQ(tracker.count(), 3);
  // Identical observations leave the blended value fixed.
  EXPECT_DOUBLE_EQ(tracker.value(), 1.0);
}

TEST(StaticSchedulerTest, FiresEveryInterval) {
  StaticScheduler scheduler(10.0);
  EXPECT_FALSE(scheduler.ShouldTrain(0.0));  // arms at t=0, due at t=10
  EXPECT_FALSE(scheduler.ShouldTrain(9.9));
  EXPECT_TRUE(scheduler.ShouldTrain(10.0));
  scheduler.OnTrainingCompleted(/*start=*/10.0, /*duration=*/1.0);
  EXPECT_FALSE(scheduler.ShouldTrain(15.0));
  EXPECT_TRUE(scheduler.ShouldTrain(20.0));
}

TEST(StaticSchedulerTest, NameShowsInterval) {
  StaticScheduler scheduler(5.0);
  EXPECT_EQ(scheduler.name(), "static(5.000s)");
  EXPECT_DOUBLE_EQ(scheduler.interval_seconds(), 5.0);
}

TEST(DynamicSchedulerTest, Formula6) {
  DynamicScheduler scheduler(DynamicScheduler::Options{.slack = 2.0});
  scheduler.OnPredictionLoad(/*qps=*/100.0, /*latency=*/0.01);
  // T' = S * T * pr * pl = 2 * 5 * 100 * 0.01 = 10.
  EXPECT_NEAR(scheduler.ComputeDelaySeconds(5.0), 10.0, 1e-9);
}

TEST(DynamicSchedulerTest, UsesInitialIntervalBeforeMeasurements) {
  DynamicScheduler scheduler(DynamicScheduler::Options{
      .slack = 1.5, .initial_interval_seconds = 3.0});
  EXPECT_DOUBLE_EQ(scheduler.ComputeDelaySeconds(1.0), 3.0);
}

TEST(DynamicSchedulerTest, MinIntervalGuardsAgainstZeroLoad) {
  DynamicScheduler scheduler(DynamicScheduler::Options{
      .slack = 1.0, .min_interval_seconds = 0.5});
  scheduler.OnPredictionLoad(1e-9, 1e-9);
  EXPECT_DOUBLE_EQ(scheduler.ComputeDelaySeconds(1.0), 0.5);
}

TEST(DynamicSchedulerTest, LargerSlackDelaysMore) {
  DynamicScheduler small(DynamicScheduler::Options{.slack = 1.0});
  DynamicScheduler large(DynamicScheduler::Options{.slack = 3.0});
  small.OnPredictionLoad(50.0, 0.02);
  large.OnPredictionLoad(50.0, 0.02);
  EXPECT_LT(small.ComputeDelaySeconds(2.0), large.ComputeDelaySeconds(2.0));
}

TEST(DynamicSchedulerTest, SchedulingCycle) {
  DynamicScheduler scheduler(DynamicScheduler::Options{
      .slack = 1.0, .initial_interval_seconds = 1.0});
  EXPECT_FALSE(scheduler.ShouldTrain(0.0));
  EXPECT_TRUE(scheduler.ShouldTrain(1.0));
  scheduler.OnPredictionLoad(10.0, 0.1);  // pr*pl = 1
  scheduler.OnTrainingCompleted(/*start=*/1.0, /*duration=*/2.0);
  // Next due at 1 + 2 + 1*2*1 = 5.
  EXPECT_FALSE(scheduler.ShouldTrain(4.9));
  EXPECT_TRUE(scheduler.ShouldTrain(5.0));
}

TEST(DynamicSchedulerTest, NameShowsSlack) {
  DynamicScheduler scheduler(DynamicScheduler::Options{.slack = 1.25});
  EXPECT_EQ(scheduler.name(), "dynamic(S=1.25)");
}

}  // namespace
}  // namespace cdpipe
