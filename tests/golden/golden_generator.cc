// Regenerates the transform-equivalence golden files.
//
//   cdpipe_golden_generator <output-dir>
//
// Writes one `<case>.golden` file per fixture in golden_pipelines.h.  The
// committed files under tests/golden/data/ were produced by the seed
// row-at-a-time pipeline implementation and are the reference the columnar
// path is held to, bit for bit; regenerate them only when a fixture is
// deliberately changed, never to paper over an output difference.

#include <fstream>
#include <iostream>
#include <string>

#include "tests/golden/golden_pipelines.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " <output-dir>\n";
    return 2;
  }
  const std::string out_dir = argv[1];
  for (cdpipe::golden::GoldenCase& c : cdpipe::golden::AllGoldenCases()) {
    const std::string path = out_dir + "/" + c.name + ".golden";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      std::cerr << "cannot open " << path << "\n";
      return 1;
    }
    cdpipe::Serializer serializer(&os);
    const cdpipe::Status status =
        cdpipe::golden::WriteGoldenCase(&serializer, &c);
    if (!status.ok() || !serializer.ok()) {
      std::cerr << "case " << c.name << " failed: " << status.ToString()
                << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}
