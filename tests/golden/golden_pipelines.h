#ifndef CDPIPE_TESTS_GOLDEN_GOLDEN_PIPELINES_H_
#define CDPIPE_TESTS_GOLDEN_GOLDEN_PIPELINES_H_

// The fixture pipelines and input chunks of the transform-equivalence
// golden suite.  The golden files under tests/golden/data/ were generated
// by cdpipe_golden_generator from the *seed row-at-a-time* implementation;
// the equivalence test asserts that the current (columnar) implementation
// reproduces them bit for bit, for both pipeline entry points.
//
// Everything here must stay deterministic: fixed seeds, fixed record
// counts, and fixture data that never exercises implementation-defined
// hashing (the one-hot fixtures keep every dictionary below capacity so the
// std::hash fallback for unknown categories is never taken).

#include <memory>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"
#include "src/dataframe/chunk.h"
#include "src/io/serialization.h"
#include "src/pipeline/column_projector.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/missing_value_imputer.h"
#include "src/pipeline/one_hot_encoder.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/zscore_anomaly_detector.h"

namespace cdpipe {
namespace golden {

/// One equivalence fixture: a pipeline factory plus its input stream.
struct GoldenCase {
  std::string name;
  std::unique_ptr<Pipeline> pipeline;
  std::vector<RawChunk> chunks;
};

inline RawChunk MakeChunk(ChunkId id, std::vector<std::string> records) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = id * 60;
  chunk.records = std::move(records);
  return chunk;
}

/// URL scenario: libsvm parser -> imputer -> scaler -> hasher (paper §5.1).
inline GoldenCase MakeUrlGoldenCase() {
  GoldenCase out;
  out.name = "url";
  UrlPipelineConfig config;
  config.raw_dim = 1u << 16;
  config.hash_bits = 12;
  out.pipeline = MakeUrlPipeline(config);
  UrlStreamGenerator::Config stream;
  stream.feature_dim = config.raw_dim;
  stream.initial_active_features = 3000;
  stream.records_per_chunk = 150;
  stream.missing_prob = 0.02;
  stream.seed = 7;
  UrlStreamGenerator generator(stream);
  out.chunks = generator.Generate(3);
  return out;
}

/// Taxi scenario: csv parser -> feature extractor -> anomaly filter ->
/// scaler -> assembler (paper §5.1).
inline GoldenCase MakeTaxiGoldenCase() {
  GoldenCase out;
  out.name = "taxi";
  out.pipeline = MakeTaxiPipeline();
  TaxiStreamGenerator::Config stream;
  stream.records_per_chunk = 150;
  stream.anomaly_prob = 0.03;
  stream.seed = 11;
  TaxiStreamGenerator generator(stream);
  out.chunks = generator.Generate(3);
  return out;
}

/// Bare libsvm parser on a hand-written fixture with malformed records,
/// nan values, duplicate and unsorted indices, and whitespace quirks.
inline GoldenCase MakeLibSvmGoldenCase() {
  GoldenCase out;
  out.name = "libsvm";
  out.pipeline = std::make_unique<Pipeline>();
  InputParser::Options parser;
  parser.format = InputParser::Format::kLibSvm;
  parser.feature_dim = 32;
  parser.binarize_labels = true;
  CDPIPE_CHECK(
      out.pipeline->AddComponent(std::make_unique<InputParser>(parser)).ok());
  out.chunks.push_back(MakeChunk(0, {
                                        "+1 0:1.5 3:2.25 7:-0.125",
                                        "-1 1:0.5 2:nan 30:4",
                                        "1 5:1 5:2 4:3",         // dup + unsorted
                                        "0 0:0.0 31:1e-3",       // label <= 0
                                        "not-a-label 1:2",       // malformed
                                        "+1 40:1",               // out of range
                                        "-1  6:2.5   9:1.25 ",   // extra spaces
                                        "",                      // empty record
                                        "+1",                    // no features
                                        "-1 3:+4.5 8:-1e2",
                                    }));
  out.chunks.push_back(MakeChunk(1, {
                                        "+1 0:nan 1:nan",
                                        "-1 31:7",
                                        "bad:row",
                                        "+1 2:0.001 3:1000000",
                                    }));
  return out;
}

/// Categorical table fixture covering the remaining table components:
/// csv parser -> imputer (table mode) -> z-score detector ->
/// column projector -> one-hot encoder.
inline GoldenCase MakeCategoricalGoldenCase() {
  GoldenCase out;
  out.name = "categorical";
  auto schema =
      std::move(Schema::Make({Field{"when", ValueType::kTimestamp},
                              Field{"x", ValueType::kDouble},
                              Field{"n", ValueType::kInt64},
                              Field{"color", ValueType::kString},
                              Field{"label", ValueType::kDouble}}))
          .ValueOrDie();

  out.pipeline = std::make_unique<Pipeline>();
  InputParser::Options parser;
  parser.format = InputParser::Format::kCsv;
  parser.csv_schema = schema;
  CDPIPE_CHECK(
      out.pipeline->AddComponent(std::make_unique<InputParser>(parser)).ok());

  MissingValueImputer::Options imputer;
  imputer.columns = {"x"};
  imputer.default_value = -1.0;
  CDPIPE_CHECK(out.pipeline
                   ->AddComponent(std::make_unique<MissingValueImputer>(imputer))
                   .ok());

  ZScoreAnomalyDetector::Options zscore;
  zscore.columns = {"x"};
  zscore.threshold = 2.5;
  zscore.min_observations = 6;
  CDPIPE_CHECK(out.pipeline
                   ->AddComponent(std::make_unique<ZScoreAnomalyDetector>(zscore))
                   .ok());

  CDPIPE_CHECK(out.pipeline
                   ->AddComponent(std::make_unique<ColumnProjector>(
                       std::vector<std::string>{"x", "n", "color", "label"}))
                   .ok());

  OneHotEncoder::Options encoder;
  encoder.numeric_columns = {"x", "n"};
  // Capacity 8 with only 4 distinct fixture values: the dictionary never
  // fills, so the hashed-slot fallback (std::hash, implementation-defined)
  // is never taken and the goldens stay portable.
  encoder.categorical_columns = {{"color", 8}};
  encoder.label_column = "label";
  CDPIPE_CHECK(
      out.pipeline->AddComponent(std::make_unique<OneHotEncoder>(encoder))
          .ok());

  out.chunks.push_back(MakeChunk(
      0, {
             "2015-01-01 08:00:00,1.5,3,red,10.5",
             "2015-01-01 08:01:00,2.5,1,green,11.0",
             "2015-01-01 08:02:00,,2,blue,9.5",        // null x -> imputed
             "2015-01-01 08:03:00,1.75,4,red,10.0",
             "2015-01-01 08:04:00,2.25,0,,8.5",        // null color
             "2015-01-01 08:05:00,1.25,2,green,12.0",
             "totally,broken,row",                     // malformed: dropped
             "2015-01-01 08:06:00,2.0,5,amber,10.25",
         }));
  out.chunks.push_back(MakeChunk(
      1, {
             "2015-01-01 09:00:00,1.9,2,blue,9.75",
             "2015-01-01 09:01:00,250.0,3,red,10.5",   // z-score outlier
             "2015-01-01 09:02:00,2.1,1,green,11.25",
             "2015-01-01 09:03:00,,6,amber,9.0",       // null x -> imputed
             "2015-01-01 09:04:00,1.6,2,red,10.75",
         }));
  return out;
}

inline std::vector<GoldenCase> AllGoldenCases() {
  std::vector<GoldenCase> cases;
  cases.push_back(MakeUrlGoldenCase());
  cases.push_back(MakeTaxiGoldenCase());
  cases.push_back(MakeLibSvmGoldenCase());
  cases.push_back(MakeCategoricalGoldenCase());
  return cases;
}

/// Serializes one FeatureData bit-exactly (hexfloat doubles).
inline void WriteFeatureData(Serializer* out, const FeatureData& data) {
  out->WriteInt("golden.dim", static_cast<int64_t>(data.dim));
  out->WriteInt("golden.rows", static_cast<int64_t>(data.num_rows()));
  out->WriteDoubleVector("golden.labels", data.labels);
  for (const SparseVector& x : data.features) {
    out->WriteUint32Vector("golden.indices", x.indices());
    out->WriteDoubleVector("golden.values", x.values());
  }
}

inline Result<FeatureData> ReadFeatureData(Deserializer* in) {
  FeatureData data;
  CDPIPE_ASSIGN_OR_RETURN(int64_t dim, in->ReadInt("golden.dim"));
  CDPIPE_ASSIGN_OR_RETURN(int64_t rows, in->ReadInt("golden.rows"));
  data.dim = static_cast<uint32_t>(dim);
  CDPIPE_ASSIGN_OR_RETURN(data.labels, in->ReadDoubleVector("golden.labels"));
  data.features.reserve(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    CDPIPE_ASSIGN_OR_RETURN(auto indices,
                            in->ReadUint32Vector("golden.indices"));
    CDPIPE_ASSIGN_OR_RETURN(auto values,
                            in->ReadDoubleVector("golden.values"));
    CDPIPE_ASSIGN_OR_RETURN(
        SparseVector x,
        SparseVector::FromSorted(data.dim, std::move(indices),
                                 std::move(values)));
    data.features.push_back(std::move(x));
  }
  return data;
}

/// The golden protocol: for each chunk, the online path's output
/// (UpdateAndTransform, statistics folding in chunk by chunk); then, with
/// the statistics frozen after the last chunk, the pure Transform output
/// for every chunk (the re-materialization view of the same data).
inline Status WriteGoldenCase(Serializer* out, GoldenCase* c) {
  out->WriteString("golden.case", c->name);
  out->WriteInt("golden.num_chunks", static_cast<int64_t>(c->chunks.size()));
  for (const RawChunk& chunk : c->chunks) {
    CDPIPE_ASSIGN_OR_RETURN(FeatureData data,
                            c->pipeline->UpdateAndTransform(chunk));
    WriteFeatureData(out, data);
  }
  for (const RawChunk& chunk : c->chunks) {
    CDPIPE_ASSIGN_OR_RETURN(FeatureData data, c->pipeline->Transform(chunk));
    WriteFeatureData(out, data);
  }
  return Status::OK();
}

}  // namespace golden
}  // namespace cdpipe

#endif  // CDPIPE_TESTS_GOLDEN_GOLDEN_PIPELINES_H_
