#include "src/engine/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GT(max_in_flight.load(), 1);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace cdpipe
