#include "src/engine/execution_engine.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(ExecutionEngineTest, SingleThreadedRunsInline) {
  ExecutionEngine engine(1);
  EXPECT_EQ(engine.num_threads(), 1u);
  std::vector<int> order;
  Status status = engine.ParallelFor(5, [&](size_t i) {
    order.push_back(static_cast<int>(i));
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // in order, inline
}

TEST(ExecutionEngineTest, ParallelRunsEverything) {
  ExecutionEngine engine(4);
  EXPECT_EQ(engine.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(64);
  Status status = engine.ParallelFor(64, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionEngineTest, FirstErrorWins) {
  ExecutionEngine engine(1);
  Status status = engine.ParallelFor(10, [&](size_t i) -> Status {
    if (i == 3) return Status::Internal("three");
    if (i == 7) return Status::Internal("seven");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "three");
}

TEST(ExecutionEngineTest, ParallelErrorReportsLowestIndex) {
  ExecutionEngine engine(4);
  Status status = engine.ParallelFor(32, [&](size_t i) -> Status {
    if (i % 2 == 1) return Status::Internal("idx" + std::to_string(i));
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "idx1");
}

TEST(ExecutionEngineTest, SingleThreadedStopsAtFirstError) {
  ExecutionEngine engine(1);
  int ran = 0;
  Status status = engine.ParallelFor(10, [&](size_t i) -> Status {
    ++ran;
    if (i == 2) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ran, 3);  // inline execution aborts immediately
}

TEST(ExecutionEngineTest, ZeroTasksIsOk) {
  ExecutionEngine engine(2);
  EXPECT_TRUE(engine.ParallelFor(0, [](size_t) {
    return Status::Internal("never");
  }).ok());
}

}  // namespace
}  // namespace cdpipe
