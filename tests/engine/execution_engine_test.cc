#include "src/engine/execution_engine.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(ExecutionEngineTest, SingleThreadedRunsInline) {
  ExecutionEngine engine(1);
  EXPECT_EQ(engine.num_threads(), 1u);
  std::vector<int> order;
  Status status = engine.ParallelFor(5, [&](size_t i) {
    order.push_back(static_cast<int>(i));
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // in order, inline
}

TEST(ExecutionEngineTest, ParallelRunsEverything) {
  ExecutionEngine engine(4);
  EXPECT_EQ(engine.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(64);
  Status status = engine.ParallelFor(64, [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionEngineTest, FirstErrorWins) {
  ExecutionEngine engine(1);
  Status status = engine.ParallelFor(10, [&](size_t i) -> Status {
    if (i == 3) return Status::Internal("three");
    if (i == 7) return Status::Internal("seven");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "three");
}

TEST(ExecutionEngineTest, ParallelErrorReportsLowestIndex) {
  ExecutionEngine engine(4);
  Status status = engine.ParallelFor(32, [&](size_t i) -> Status {
    if (i % 2 == 1) return Status::Internal("idx" + std::to_string(i));
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "idx1");
}

TEST(ExecutionEngineTest, SingleThreadedStopsAtFirstError) {
  ExecutionEngine engine(1);
  int ran = 0;
  Status status = engine.ParallelFor(10, [&](size_t i) -> Status {
    ++ran;
    if (i == 2) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ran, 3);  // inline execution aborts immediately
}

TEST(ExecutionEngineTest, ZeroTasksIsOk) {
  ExecutionEngine engine(2);
  EXPECT_TRUE(engine.ParallelFor(0, [](size_t) {
    return Status::Internal("never");
  }).ok());
}

TEST(ExecutionEngineTest, RangeSingleThreadedRunsBlocksInOrder) {
  ExecutionEngine engine(1);
  std::vector<std::pair<size_t, size_t>> blocks;
  Status status = engine.ParallelForRange(10, 3, [&](size_t begin, size_t end) {
    blocks.push_back({begin, end});
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(blocks, (std::vector<std::pair<size_t, size_t>>{
                        {0, 3}, {3, 6}, {6, 9}, {9, 10}}));
}

TEST(ExecutionEngineTest, RangeCoversEveryIndexExactlyOnce) {
  ExecutionEngine engine(4);
  std::vector<std::atomic<int>> hits(1000);
  // grain 0 = auto: pick a block size from count and thread count.
  Status status = engine.ParallelForRange(1000, 0, [&](size_t begin,
                                                       size_t end) {
    EXPECT_LT(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionEngineTest, RangeGrainLargerThanCountIsOneBlock) {
  ExecutionEngine engine(4);
  int calls = 0;
  Status status =
      engine.ParallelForRange(7, 100, [&](size_t begin, size_t end) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 7u);
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
}

TEST(ExecutionEngineTest, RangeZeroCountIsOk) {
  ExecutionEngine engine(2);
  EXPECT_TRUE(engine
                  .ParallelForRange(0, 4,
                                    [](size_t, size_t) {
                                      return Status::Internal("never");
                                    })
                  .ok());
}

TEST(ExecutionEngineTest, RangeErrorReportsLowestBlock) {
  ExecutionEngine engine(4);
  Status status =
      engine.ParallelForRange(40, 5, [&](size_t begin, size_t) -> Status {
        if (begin == 10 || begin == 30) {
          return Status::Internal("begin" + std::to_string(begin));
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "begin10");
}

TEST(ExecutionEngineTest, RangeSingleThreadedStopsAtFirstError) {
  ExecutionEngine engine(1);
  int blocks_run = 0;
  Status status =
      engine.ParallelForRange(20, 4, [&](size_t begin, size_t) -> Status {
        ++blocks_run;
        if (begin == 8) return Status::Internal("stop");
        return Status::OK();
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(blocks_run, 3);  // blocks [0,4) [4,8) [8,12), then abort
}

}  // namespace
}  // namespace cdpipe
