#include "src/linalg/dense_vector.h"

#include <gtest/gtest.h>

#include "src/linalg/sparse_vector.h"

namespace cdpipe {
namespace {

TEST(DenseVectorTest, ConstructionAndAccess) {
  DenseVector v(4, 1.5);
  EXPECT_EQ(v.dim(), 4u);
  EXPECT_FALSE(v.empty());
  for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 1.5);
  v[2] = -3.0;
  EXPECT_DOUBLE_EQ(v[2], -3.0);
}

TEST(DenseVectorTest, FromValues) {
  DenseVector v(std::vector<double>{1, 2, 3});
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(DenseVectorTest, ResizeZeroFills) {
  DenseVector v(std::vector<double>{1, 2});
  v.Resize(4);
  EXPECT_EQ(v.dim(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(DenseVectorTest, FillAndScale) {
  DenseVector v(3);
  v.Fill(2.0);
  v.Scale(-0.5);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], -1.0);
}

TEST(DenseVectorTest, AxpyDense) {
  DenseVector v(std::vector<double>{1, 2, 3});
  DenseVector u(std::vector<double>{1, 1, 1});
  v.Axpy(2.0, u);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(DenseVectorTest, AxpySparse) {
  DenseVector v(std::vector<double>{1, 2, 3, 4});
  SparseVector s =
      SparseVector::FromUnsorted(4, {{0, 1.0}, {3, -2.0}});
  v.Axpy(3.0, s);
  EXPECT_DOUBLE_EQ(v[0], 4.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_DOUBLE_EQ(v[3], -2.0);
}

TEST(DenseVectorTest, DotDenseAndSparse) {
  DenseVector v(std::vector<double>{1, 2, 3});
  DenseVector u(std::vector<double>{4, 5, 6});
  EXPECT_DOUBLE_EQ(v.Dot(u), 32.0);
  SparseVector s = SparseVector::FromUnsorted(3, {{1, 2.0}});
  EXPECT_DOUBLE_EQ(v.Dot(s), 4.0);
}

TEST(DenseVectorTest, Norms) {
  DenseVector v(std::vector<double>{3, -4});
  EXPECT_DOUBLE_EQ(v.L2NormSquared(), 25.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
}

TEST(DenseVectorTest, ByteSize) {
  DenseVector v(10);
  EXPECT_EQ(v.ByteSize(), 80u);
}

TEST(DenseVectorTest, ToStringTruncates) {
  DenseVector v(100, 1.0);
  const std::string s = v.ToString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("100 total"), std::string::npos);
}

}  // namespace
}  // namespace cdpipe
