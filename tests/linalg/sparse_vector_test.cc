#include "src/linalg/sparse_vector.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/linalg/dense_vector.h"

namespace cdpipe {
namespace {

TEST(SparseVectorTest, EmptyVector) {
  SparseVector v(10);
  EXPECT_EQ(v.dim(), 10u);
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.Get(3), 0.0);
  EXPECT_DOUBLE_EQ(v.L2Norm(), 0.0);
}

TEST(SparseVectorTest, FromSortedValid) {
  auto v = SparseVector::FromSorted(8, {1, 4, 7}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->nnz(), 3u);
  EXPECT_DOUBLE_EQ(v->Get(4), 2.0);
  EXPECT_DOUBLE_EQ(v->Get(5), 0.0);
}

TEST(SparseVectorTest, FromSortedRejectsUnsorted) {
  EXPECT_FALSE(SparseVector::FromSorted(8, {4, 1}, {1.0, 2.0}).ok());
  EXPECT_FALSE(SparseVector::FromSorted(8, {1, 1}, {1.0, 2.0}).ok());
}

TEST(SparseVectorTest, FromSortedRejectsOutOfRange) {
  EXPECT_FALSE(SparseVector::FromSorted(8, {8}, {1.0}).ok());
}

TEST(SparseVectorTest, FromSortedRejectsSizeMismatch) {
  EXPECT_FALSE(SparseVector::FromSorted(8, {1, 2}, {1.0}).ok());
}

TEST(SparseVectorTest, FromUnsortedSortsAndMerges) {
  SparseVector v =
      SparseVector::FromUnsorted(10, {{5, 1.0}, {2, 2.0}, {5, 3.0}});
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(2), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 4.0);  // duplicates accumulate
  EXPECT_EQ(v.indices()[0], 2u);
  EXPECT_EQ(v.indices()[1], 5u);
}

TEST(SparseVectorTest, PushBackAppends) {
  SparseVector v(16);
  v.PushBack(3, 1.5);
  v.PushBack(9, -2.0);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_DOUBLE_EQ(v.Get(9), -2.0);
}

TEST(SparseVectorTest, ScaleAndTransform) {
  SparseVector v = SparseVector::FromUnsorted(4, {{0, 1.0}, {2, 2.0}});
  v.Scale(3.0);
  EXPECT_DOUBLE_EQ(v.Get(0), 3.0);
  EXPECT_DOUBLE_EQ(v.Get(2), 6.0);
  v.TransformValues([](uint32_t index, double value) {
    return index == 0 ? value : -value;
  });
  EXPECT_DOUBLE_EQ(v.Get(0), 3.0);
  EXPECT_DOUBLE_EQ(v.Get(2), -6.0);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v = SparseVector::FromUnsorted(3, {{0, 1.0}, {2, 2.0}});
  DenseVector d(std::vector<double>{10, 20, 30});
  EXPECT_DOUBLE_EQ(v.Dot(d), 70.0);
}

TEST(SparseVectorTest, DotSparseSparse) {
  SparseVector a = SparseVector::FromUnsorted(10, {{1, 2.0}, {5, 3.0}});
  SparseVector b =
      SparseVector::FromUnsorted(10, {{5, 4.0}, {7, 1.0}, {1, 1.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 14.0);
  EXPECT_DOUBLE_EQ(b.Dot(a), 14.0);
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  SparseVector a = SparseVector::FromUnsorted(10, {{1, 2.0}});
  SparseVector b = SparseVector::FromUnsorted(10, {{2, 3.0}});
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(SparseVectorTest, ToDenseRoundTrip) {
  SparseVector v = SparseVector::FromUnsorted(5, {{1, 2.0}, {4, -1.0}});
  DenseVector d = v.ToDense();
  EXPECT_EQ(d.dim(), 5u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[4], -1.0);
  EXPECT_DOUBLE_EQ(v.Dot(v), d.Dot(d));
}

TEST(SparseVectorTest, EqualityOperator) {
  SparseVector a = SparseVector::FromUnsorted(5, {{1, 2.0}});
  SparseVector b = SparseVector::FromUnsorted(5, {{1, 2.0}});
  SparseVector c = SparseVector::FromUnsorted(5, {{1, 3.0}});
  SparseVector d = SparseVector::FromUnsorted(6, {{1, 2.0}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(SparseVectorTest, WithDimWidensWithoutTouchingEntries) {
  SparseVector v = SparseVector::FromUnsorted(8, {{1, 2.0}, {6, -1.0}});
  auto wide = v.WithDim(32);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->dim(), 32u);
  EXPECT_EQ(wide->nnz(), 2u);
  EXPECT_DOUBLE_EQ(wide->Get(1), 2.0);
  EXPECT_DOUBLE_EQ(wide->Get(6), -1.0);
  EXPECT_EQ(v.dim(), 8u);  // original untouched
}

TEST(SparseVectorTest, WithDimRejectsShrinkBelowMaxIndex) {
  SparseVector v = SparseVector::FromUnsorted(8, {{1, 2.0}, {6, -1.0}});
  auto narrow = v.WithDim(6);
  ASSERT_FALSE(narrow.ok());
  EXPECT_EQ(narrow.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(v.WithDim(7).ok());  // max index 6 < 7 is fine
}

TEST(SparseVectorTest, WithDimOnEmptyAllowsAnyDim) {
  SparseVector v(16);
  auto zero = v.WithDim(0);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->dim(), 0u);
  auto wide = v.WithDim(1000);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->dim(), 1000u);
  EXPECT_EQ(wide->nnz(), 0u);
}

TEST(SparseVectorTest, ByteSizeCountsBothArrays) {
  SparseVector v = SparseVector::FromUnsorted(100, {{1, 1.0}, {2, 2.0}});
  EXPECT_EQ(v.ByteSize(), 2 * (sizeof(uint32_t) + sizeof(double)));
}

// Property check: sparse-sparse dot equals dense-dense dot on random data.
class SparseDotPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseDotPropertyTest, MatchesDenseDot) {
  Rng rng(GetParam());
  constexpr uint32_t kDim = 64;
  auto random_sparse = [&]() {
    std::vector<std::pair<uint32_t, double>> entries;
    const size_t nnz = 1 + rng.NextBounded(20);
    for (size_t i = 0; i < nnz; ++i) {
      entries.emplace_back(static_cast<uint32_t>(rng.NextBounded(kDim)),
                           rng.NextGaussian());
    }
    return SparseVector::FromUnsorted(kDim, std::move(entries));
  };
  for (int trial = 0; trial < 50; ++trial) {
    SparseVector a = random_sparse();
    SparseVector b = random_sparse();
    EXPECT_NEAR(a.Dot(b), a.ToDense().Dot(b.ToDense()), 1e-9);
    EXPECT_NEAR(a.L2NormSquared(), a.ToDense().L2NormSquared(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDotPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cdpipe
