#include "src/pipeline/zscore_anomaly_detector.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/io/serialization.h"
#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

std::shared_ptr<const Schema> OneColumnSchema() {
  return std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
}

TableData MakeTable(std::vector<double> values) {
  std::vector<Row> rows;
  for (double v : values) rows.push_back({Value::Double(v)});
  return testing::TableFromRows(OneColumnSchema(), rows);
}

ZScoreAnomalyDetector::Options BaseOptions(double threshold = 3.0,
                                           int64_t min_observations = 10) {
  ZScoreAnomalyDetector::Options options;
  options.columns = {"x"};
  options.threshold = threshold;
  options.min_observations = min_observations;
  return options;
}

TableData GaussianTable(Rng* rng, size_t n, double mean, double sd) {
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) values.push_back(rng->NextGaussian(mean, sd));
  return MakeTable(std::move(values));
}

TEST(ZScoreDetectorTest, LearnsMomentsIncrementally) {
  Rng rng(1);
  ZScoreAnomalyDetector detector(BaseOptions());
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 500, 10.0, 2.0)))
                  .ok());
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 500, 10.0, 2.0)))
                  .ok());
  EXPECT_EQ(detector.CountOf(0), 1000);
  EXPECT_NEAR(detector.MeanOf(0), 10.0, 0.3);
  EXPECT_NEAR(detector.StdDevOf(0), 2.0, 0.3);
}

TEST(ZScoreDetectorTest, DropsOutliersKeepsInliers) {
  Rng rng(2);
  ZScoreAnomalyDetector detector(BaseOptions(/*threshold=*/3.0));
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 1000, 0.0, 1.0)))
                  .ok());
  auto result = detector.Transform(
      DataBatch(MakeTable({0.0, 1.5, -2.0, 50.0, -40.0, 0.5})));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  EXPECT_EQ(out.num_rows(), 4u);  // 50 and -40 dropped
  EXPECT_EQ(detector.num_dropped(), 2u);
}

TEST(ZScoreDetectorTest, ColdDetectorDropsNothing) {
  ZScoreAnomalyDetector detector(BaseOptions(3.0, /*min_observations=*/100));
  ASSERT_TRUE(detector.Update(DataBatch(MakeTable({1, 2, 3}))).ok());
  // Only 3 observations < 100: even a wild value passes.
  auto result = detector.Transform(DataBatch(MakeTable({1e9})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
}

TEST(ZScoreDetectorTest, ConstantColumnDropsNothing) {
  ZScoreAnomalyDetector detector(BaseOptions(3.0, 5));
  ASSERT_TRUE(detector.Update(
                      DataBatch(MakeTable({7, 7, 7, 7, 7, 7, 7, 7})))
                  .ok());
  auto result = detector.Transform(DataBatch(MakeTable({7, 7})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 2u);
}

TEST(ZScoreDetectorTest, NullCellsNeverVote) {
  Rng rng(3);
  ZScoreAnomalyDetector detector(BaseOptions(3.0, 10));
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 100, 0.0, 1.0)))
                  .ok());
  TableData table = testing::TableFromRows(OneColumnSchema(),
                                           {{Value::Null()}});
  auto result = detector.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
}

TEST(ZScoreDetectorTest, FalsePositiveRateBounded) {
  // Property: on clean Gaussian data with threshold 4σ, the drop rate must
  // be tiny (P(|z| > 4) ≈ 6e-5).
  Rng rng(4);
  ZScoreAnomalyDetector detector(BaseOptions(/*threshold=*/4.0, 100));
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 2000, 5.0, 3.0)))
                  .ok());
  auto result =
      detector.Transform(DataBatch(GaussianTable(&rng, 5000, 5.0, 3.0)));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(std::get<TableData>(*result).num_rows(), 4990u);
}

TEST(ZScoreDetectorTest, CatchesInjectedAnomalies) {
  // Property: with a 10σ contamination, essentially every anomaly is
  // removed while inliers survive.
  Rng rng(5);
  ZScoreAnomalyDetector detector(BaseOptions(4.0, 100));
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 2000, 0.0, 1.0)))
                  .ok());
  TableData mixed = GaussianTable(&rng, 100, 0.0, 1.0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        mixed
            .AppendRow({Value::Double(rng.NextBernoulli(0.5) ? 15.0 : -15.0)})
            .ok());
  }
  auto result = detector.Transform(DataBatch(mixed));
  ASSERT_TRUE(result.ok());
  const size_t kept = std::get<TableData>(*result).num_rows();
  EXPECT_GE(kept, 98u);   // inliers survive
  EXPECT_LE(kept, 102u);  // anomalies removed
}

TEST(ZScoreDetectorTest, RejectsNonNumericColumn) {
  ZScoreAnomalyDetector detector(BaseOptions());
  auto schema =
      std::move(Schema::Make({Field{"x", ValueType::kString}})).ValueOrDie();
  TableData table =
      testing::TableFromRows(schema, {{Value::String("abc")}});
  EXPECT_FALSE(detector.Update(DataBatch(table)).ok());
}

TEST(ZScoreDetectorTest, CheckpointRoundTrip) {
  Rng rng(6);
  ZScoreAnomalyDetector detector(BaseOptions(3.0, 10));
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 200, 2.0, 0.5)))
                  .ok());
  std::ostringstream os;
  Serializer out(&os);
  ASSERT_TRUE(detector.SaveState(&out).ok());

  ZScoreAnomalyDetector restored(BaseOptions(3.0, 10));
  std::istringstream is(os.str());
  Deserializer in(&is);
  ASSERT_TRUE(restored.LoadState(&in).ok());
  EXPECT_EQ(restored.CountOf(0), detector.CountOf(0));
  EXPECT_DOUBLE_EQ(restored.MeanOf(0), detector.MeanOf(0));
  EXPECT_DOUBLE_EQ(restored.StdDevOf(0), detector.StdDevOf(0));
}

TEST(ZScoreDetectorTest, ResetAndCloneAndContract) {
  Rng rng(7);
  ZScoreAnomalyDetector detector(BaseOptions());
  ASSERT_TRUE(detector.Update(DataBatch(GaussianTable(&rng, 100, 0.0, 1.0)))
                  .ok());
  auto clone = detector.Clone();
  EXPECT_EQ(static_cast<ZScoreAnomalyDetector*>(clone.get())->CountOf(0),
            100);
  detector.Reset();
  EXPECT_EQ(detector.CountOf(0), 0);
  EXPECT_TRUE(detector.is_stateful());
  EXPECT_TRUE(detector.supports_online_statistics());
  EXPECT_EQ(detector.kind(), ComponentKind::kDataTransformation);
}

}  // namespace
}  // namespace cdpipe
