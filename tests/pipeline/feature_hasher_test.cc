#include "src/pipeline/feature_hasher.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

FeatureData MakeFeatures(
    std::vector<std::vector<std::pair<uint32_t, double>>> rows, uint32_t dim) {
  FeatureData out;
  out.dim = dim;
  for (auto& row : rows) {
    out.features.push_back(SparseVector::FromUnsorted(dim, std::move(row)));
    out.labels.push_back(1.0);
  }
  return out;
}

TEST(FeatureHasherTest, OutputDimIsPowerOfTwo) {
  FeatureHasher::Options options;
  options.bits = 10;
  FeatureHasher hasher(options);
  EXPECT_EQ(hasher.output_dim(), 1024u);
}

TEST(FeatureHasherTest, BucketsWithinRange) {
  FeatureHasher::Options options;
  options.bits = 8;
  FeatureHasher hasher(options);
  for (uint32_t i = 0; i < 10000; ++i) {
    EXPECT_LT(hasher.BucketOf(i), 256u);
    const double sign = hasher.SignOf(i);
    EXPECT_TRUE(sign == 1.0 || sign == -1.0);
  }
}

TEST(FeatureHasherTest, DeterministicMapping) {
  FeatureHasher::Options options;
  FeatureHasher a(options);
  FeatureHasher b(options);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.BucketOf(i), b.BucketOf(i));
    EXPECT_EQ(a.SignOf(i), b.SignOf(i));
  }
}

TEST(FeatureHasherTest, DifferentSeedsGiveDifferentMappings) {
  FeatureHasher::Options oa;
  FeatureHasher::Options ob;
  ob.seed = oa.seed + 1;
  FeatureHasher a(oa);
  FeatureHasher b(ob);
  int same = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    if (a.BucketOf(i) == b.BucketOf(i)) ++same;
  }
  EXPECT_LT(same, 100);  // ~1000/2^18 expected collisions, allow slack
}

TEST(FeatureHasherTest, TransformPreservesValueMagnitude) {
  FeatureHasher::Options options;
  options.bits = 12;
  options.signed_hash = false;
  FeatureHasher hasher(options);
  auto result =
      hasher.Transform(MakeFeatures({{{123456, 2.5}}}, 1u << 20));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  EXPECT_EQ(out.dim, 4096u);
  ASSERT_EQ(out.features[0].nnz(), 1u);
  EXPECT_DOUBLE_EQ(out.features[0].values()[0], 2.5);
  EXPECT_EQ(out.features[0].indices()[0], hasher.BucketOf(123456));
}

TEST(FeatureHasherTest, SignedHashAppliesSign) {
  FeatureHasher::Options options;
  options.bits = 12;
  options.signed_hash = true;
  FeatureHasher hasher(options);
  auto result = hasher.Transform(MakeFeatures({{{77, 2.0}}}, 1000));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  EXPECT_DOUBLE_EQ(out.features[0].values()[0], 2.0 * hasher.SignOf(77));
}

TEST(FeatureHasherTest, CollidingIndicesAccumulate) {
  FeatureHasher::Options options;
  options.bits = 1;  // only 2 buckets: collisions guaranteed
  options.signed_hash = false;
  FeatureHasher hasher(options);
  auto result = hasher.Transform(
      MakeFeatures({{{0, 1.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}}}, 100));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  double total = 0.0;
  for (double v : out.features[0].values()) total += v;
  EXPECT_DOUBLE_EQ(total, 4.0);  // all mass preserved
  EXPECT_LE(out.features[0].nnz(), 2u);
}

TEST(FeatureHasherTest, LabelsPassThrough) {
  FeatureHasher hasher;
  FeatureData in = MakeFeatures({{{1, 1.0}}, {{2, 1.0}}}, 100);
  in.labels = {1.0, -1.0};
  auto result = hasher.Transform(DataBatch(std::move(in)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<FeatureData>(*result).labels,
            (std::vector<double>{1.0, -1.0}));
}

TEST(FeatureHasherTest, BucketsSpreadAcrossRange) {
  FeatureHasher::Options options;
  options.bits = 8;
  FeatureHasher hasher(options);
  std::set<uint32_t> buckets;
  for (uint32_t i = 0; i < 2000; ++i) buckets.insert(hasher.BucketOf(i));
  // With 2000 keys into 256 buckets nearly every bucket should be hit.
  EXPECT_GT(buckets.size(), 250u);
}

TEST(FeatureHasherTest, RejectsTableBatch) {
  FeatureHasher hasher;
  TableData table(std::move(Schema::Make({})).ValueOrDie());
  EXPECT_FALSE(hasher.Transform(DataBatch(table)).ok());
}

TEST(FeatureHasherTest, StatelessContract) {
  FeatureHasher hasher;
  EXPECT_FALSE(hasher.is_stateful());
  EXPECT_EQ(hasher.kind(), ComponentKind::kFeatureExtraction);
  auto clone = hasher.Clone();
  EXPECT_EQ(static_cast<FeatureHasher*>(clone.get())->output_dim(),
            hasher.output_dim());
}

}  // namespace
}  // namespace cdpipe
