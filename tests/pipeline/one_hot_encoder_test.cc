#include "src/pipeline/one_hot_encoder.h"

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

std::shared_ptr<const Schema> EncoderSchema() {
  return std::move(Schema::Make({Field{"amount", ValueType::kDouble},
                                 Field{"color", ValueType::kString},
                                 Field{"label", ValueType::kDouble}}))
      .ValueOrDie();
}

TableData MakeTable(
    std::vector<std::tuple<double, std::string, double>> rows) {
  std::vector<Row> out;
  for (const auto& [amount, color, label] : rows) {
    out.push_back(
        {Value::Double(amount), Value::String(color), Value::Double(label)});
  }
  return testing::TableFromRows(EncoderSchema(), out);
}

OneHotEncoder::Options BaseOptions(uint32_t max_cardinality = 4) {
  OneHotEncoder::Options options;
  options.numeric_columns = {"amount"};
  options.categorical_columns = {{"color", max_cardinality}};
  options.label_column = "label";
  return options;
}

TEST(OneHotEncoderTest, OutputDimIsNumericPlusBlocks) {
  OneHotEncoder encoder(BaseOptions(8));
  EXPECT_EQ(encoder.output_dim(), 9u);
}

TEST(OneHotEncoderTest, EncodesKnownCategories) {
  OneHotEncoder encoder(BaseOptions());
  DataBatch batch = MakeTable({{1.5, "red", 1.0}, {2.0, "blue", -1.0}});
  ASSERT_TRUE(encoder.Update(batch).ok());
  EXPECT_EQ(encoder.CardinalityOf(0), 2u);

  auto result = encoder.Transform(batch);
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.dim, 5u);  // 1 numeric + block of 4
  // Row 0: amount at index 0, "red" (first seen -> slot 0) at index 1.
  EXPECT_DOUBLE_EQ(out.features[0].Get(0), 1.5);
  EXPECT_DOUBLE_EQ(out.features[0].Get(1), 1.0);
  // Row 1: "blue" -> slot 1 -> index 2.
  EXPECT_DOUBLE_EQ(out.features[1].Get(2), 1.0);
  EXPECT_DOUBLE_EQ(out.labels[0], 1.0);
  EXPECT_DOUBLE_EQ(out.labels[1], -1.0);
}

TEST(OneHotEncoderTest, OutputIsSparseOneNonzeroPerCategorical) {
  OneHotEncoder encoder(BaseOptions(1000));
  DataBatch batch = MakeTable({{1.0, "a", 0.0}});
  ASSERT_TRUE(encoder.Update(batch).ok());
  auto result = encoder.Transform(batch);
  ASSERT_TRUE(result.ok());
  // 1 numeric + 1 one-hot nonzero despite a 1000-wide block (the O(p)
  // guarantee of §3.2.1).
  EXPECT_EQ(std::get<FeatureData>(*result).features[0].nnz(), 2u);
}

TEST(OneHotEncoderTest, UnknownValueHashesIntoBlock) {
  OneHotEncoder encoder(BaseOptions(4));
  DataBatch training = MakeTable({{1.0, "red", 0.0}});
  ASSERT_TRUE(encoder.Update(training).ok());
  // "violet" was never folded in; it must still land inside the block.
  auto result = encoder.Transform(MakeTable({{1.0, "violet", 0.0}}));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  ASSERT_EQ(out.features[0].nnz(), 2u);
  const uint32_t slot = out.features[0].indices()[1];
  EXPECT_GE(slot, 1u);
  EXPECT_LT(slot, 5u);
}

TEST(OneHotEncoderTest, DictionaryCapacityRespected) {
  OneHotEncoder encoder(BaseOptions(2));
  DataBatch batch = MakeTable(
      {{1, "a", 0}, {1, "b", 0}, {1, "c", 0}, {1, "d", 0}});
  ASSERT_TRUE(encoder.Update(batch).ok());
  EXPECT_EQ(encoder.CardinalityOf(0), 2u);  // capped at max_cardinality
}

TEST(OneHotEncoderTest, IncrementalDictionaryGrowsAcrossUpdates) {
  OneHotEncoder encoder(BaseOptions(8));
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "a", 0}})).ok());
  EXPECT_EQ(encoder.CardinalityOf(0), 1u);
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "b", 0}})).ok());
  EXPECT_EQ(encoder.CardinalityOf(0), 2u);
  // Re-seeing "a" does not grow the dictionary.
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "a", 0}})).ok());
  EXPECT_EQ(encoder.CardinalityOf(0), 2u);
}

TEST(OneHotEncoderTest, StableIndicesAcrossDictionaryGrowth) {
  OneHotEncoder encoder(BaseOptions(8));
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "a", 0}})).ok());
  auto before = encoder.Transform(MakeTable({{1, "a", 0}}));
  ASSERT_TRUE(before.ok());
  const uint32_t slot_before =
      std::get<FeatureData>(*before).features[0].indices()[1];
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "b", 0}, {1, "c", 0}})).ok());
  auto after = encoder.Transform(MakeTable({{1, "a", 0}}));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(std::get<FeatureData>(*after).features[0].indices()[1],
            slot_before);
}

TEST(OneHotEncoderTest, NullCategoricalSkipped) {
  OneHotEncoder encoder(BaseOptions());
  TableData table = testing::TableFromRows(
      EncoderSchema(),
      {{Value::Double(2.0), Value::Null(), Value::Double(1)}});
  auto result = encoder.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<FeatureData>(*result).features[0].nnz(), 1u);
}

TEST(OneHotEncoderTest, NonStringCategoricalErrors) {
  OneHotEncoder::Options options;
  options.numeric_columns = {};
  options.categorical_columns = {{"amount", 4}};  // amount is a double column
  options.label_column = "label";
  OneHotEncoder encoder(options);
  DataBatch batch = MakeTable({{1.0, "x", 0.0}});
  EXPECT_FALSE(encoder.Update(batch).ok());
  EXPECT_FALSE(encoder.Transform(batch).ok());
}

TEST(OneHotEncoderTest, ResetAndClone) {
  OneHotEncoder encoder(BaseOptions());
  ASSERT_TRUE(encoder.Update(MakeTable({{1, "a", 0}})).ok());
  auto clone = encoder.Clone();
  EXPECT_EQ(static_cast<OneHotEncoder*>(clone.get())->CardinalityOf(0), 1u);
  encoder.Reset();
  EXPECT_EQ(encoder.CardinalityOf(0), 0u);
  EXPECT_EQ(static_cast<OneHotEncoder*>(clone.get())->CardinalityOf(0), 1u);
}

TEST(OneHotEncoderTest, StatefulContract) {
  OneHotEncoder encoder(BaseOptions());
  EXPECT_TRUE(encoder.is_stateful());
  EXPECT_TRUE(encoder.supports_online_statistics());
  EXPECT_EQ(encoder.kind(), ComponentKind::kFeatureExtraction);
}

}  // namespace
}  // namespace cdpipe
