#include "src/pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "src/data/url_stream.h"
#include "src/pipeline/feature_hasher.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/missing_value_imputer.h"
#include "src/pipeline/standard_scaler.h"

namespace cdpipe {
namespace {

RawChunk MakeChunk(std::vector<std::string> lines) {
  RawChunk chunk;
  chunk.id = 1;
  chunk.records = std::move(lines);
  return chunk;
}

std::unique_ptr<Pipeline> SmallUrlPipeline() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 6;
  return MakeUrlPipeline(config);
}

TEST(PipelineTest, WrapRawProducesSingleStringColumn) {
  // The chunk must outlive the table: WrapRaw borrows the record bytes.
  RawChunk chunk = MakeChunk({"a", "b"});
  TableData table = Pipeline::WrapRaw(chunk);
  EXPECT_EQ(table.schema()->num_fields(), 1u);
  EXPECT_EQ(table.schema()->field(0).name, "raw");
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(table.column(0).is_borrowed());
  EXPECT_EQ(table.column(0).StringAt(1), "b");
}

TEST(PipelineTest, RejectsNullComponent) {
  Pipeline pipeline;
  EXPECT_FALSE(pipeline.AddComponent(nullptr).ok());
}

// A stateful component whose statistics cannot be maintained incrementally
// (e.g. an exact-percentile scaler); the platform must refuse it (§3.1).
class NonIncrementalComponent : public PipelineComponent {
 public:
  std::string name() const override { return "exact_percentile"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }
  bool is_stateful() const override { return true; }
  bool supports_online_statistics() const override { return false; }
  Result<DataBatch> Transform(const DataBatch& batch) const override {
    return DataBatch(batch);
  }
  std::unique_ptr<PipelineComponent> Clone() const override {
    return std::make_unique<NonIncrementalComponent>(*this);
  }
};

TEST(PipelineTest, RejectsNonIncrementalStatefulComponent) {
  Pipeline pipeline;
  Status status =
      pipeline.AddComponent(std::make_unique<NonIncrementalComponent>());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, UrlPipelineEndToEnd) {
  auto pipeline = SmallUrlPipeline();
  EXPECT_EQ(pipeline->num_components(), 4u);
  RawChunk chunk = MakeChunk({"+1 3:1.0 17:2.0", "-1 5:nan 7:1.0"});
  size_t rows_scanned = 0;
  auto features = pipeline->UpdateAndTransform(chunk, &rows_scanned);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(features->num_rows(), 2u);
  EXPECT_EQ(features->dim, 64u);
  EXPECT_DOUBLE_EQ(features->labels[0], 1.0);
  EXPECT_DOUBLE_EQ(features->labels[1], -1.0);
  // 2 rows through parser(1 scan) + imputer(2) + scaler(2) + hasher(1)
  // = 2 * 6 = 12 row-scans.
  EXPECT_EQ(rows_scanned, 12u);
}

TEST(PipelineTest, TransformDoesNotMutateStatistics) {
  auto pipeline = SmallUrlPipeline();
  RawChunk chunk = MakeChunk({"+1 3:2.0", "+1 3:4.0"});
  ASSERT_TRUE(pipeline->UpdateAndTransform(chunk).ok());

  // A pure Transform must not change what a later Transform produces.
  RawChunk probe = MakeChunk({"+1 3:2.0"});
  auto first = pipeline->Transform(probe);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipeline->Transform(MakeChunk({"+1 3:100.0"})).ok());
  }
  auto second = pipeline->Transform(probe);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->features[0] == second->features[0]);
}

TEST(PipelineTest, UpdateAndTransformMutatesStatistics) {
  auto pipeline = SmallUrlPipeline();
  ASSERT_TRUE(
      pipeline->UpdateAndTransform(MakeChunk({"+1 3:2.0", "+1 3:6.0"})).ok());
  auto before = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(before.ok());
  // Feeding very different data changes the scaler statistics.
  ASSERT_TRUE(pipeline
                  ->UpdateAndTransform(
                      MakeChunk({"+1 3:100.0", "+1 3:-100.0", "+1 3:50.0"}))
                  .ok());
  auto after = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(before->features[0] == after->features[0]);
}

TEST(PipelineTest, TransformRecomputingStatisticsLeavesDeployedStateAlone) {
  auto pipeline = SmallUrlPipeline();
  ASSERT_TRUE(
      pipeline->UpdateAndTransform(MakeChunk({"+1 3:2.0", "+1 3:6.0"})).ok());
  auto probe_before = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(probe_before.ok());

  size_t rows_scanned = 0;
  auto recomputed = pipeline->TransformRecomputingStatistics(
      MakeChunk({"+1 3:50.0", "+1 3:70.0"}), &rows_scanned);
  ASSERT_TRUE(recomputed.ok());
  // Extra statistic-recomputation scans happened (2 stateful components,
  // each rescans): more scans than the pure transform path (2 rows * 4
  // components = 8).
  EXPECT_GT(rows_scanned, 8u);

  auto probe_after = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(probe_after.ok());
  EXPECT_TRUE(probe_before->features[0] == probe_after->features[0]);
}

TEST(PipelineTest, PipelineWithoutVectorizerFails) {
  Pipeline pipeline;
  InputParser::Options parser;
  parser.format = InputParser::Format::kCsv;
  parser.csv_schema =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  ASSERT_TRUE(
      pipeline.AddComponent(std::make_unique<InputParser>(parser)).ok());
  auto result = pipeline.UpdateAndTransform(MakeChunk({"1.5"}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineTest, CloneIsDeepIncludingStatistics) {
  auto pipeline = SmallUrlPipeline();
  ASSERT_TRUE(
      pipeline->UpdateAndTransform(MakeChunk({"+1 3:2.0", "+1 3:6.0"})).ok());
  auto clone = pipeline->Clone();

  auto original_out = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  auto clone_out = clone->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(original_out.ok());
  ASSERT_TRUE(clone_out.ok());
  EXPECT_TRUE(original_out->features[0] == clone_out->features[0]);

  // Diverge the clone: the original must not change.
  ASSERT_TRUE(clone->UpdateAndTransform(MakeChunk({"+1 3:1000.0"})).ok());
  auto original_again = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(original_again.ok());
  EXPECT_TRUE(original_out->features[0] == original_again->features[0]);
}

TEST(PipelineTest, ResetRestoresInitialBehaviour) {
  auto pipeline = SmallUrlPipeline();
  auto fresh = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(
      pipeline->UpdateAndTransform(MakeChunk({"+1 3:9.0", "+1 3:1.0"})).ok());
  pipeline->Reset();
  auto reset_out = pipeline->Transform(MakeChunk({"+1 3:2.0"}));
  ASSERT_TRUE(reset_out.ok());
  EXPECT_TRUE(fresh->features[0] == reset_out->features[0]);
}

TEST(PipelineTest, ToStringListsComponents) {
  auto pipeline = SmallUrlPipeline();
  const std::string s = pipeline->ToString();
  EXPECT_NE(s.find("input_parser"), std::string::npos);
  EXPECT_NE(s.find("feature_hasher"), std::string::npos);
}

}  // namespace
}  // namespace cdpipe
