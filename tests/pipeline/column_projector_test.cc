#include "src/pipeline/column_projector.h"

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

TableData MakeTable() {
  auto schema = std::move(Schema::Make({Field{"a", ValueType::kDouble},
                                        Field{"b", ValueType::kString},
                                        Field{"c", ValueType::kInt64}}))
                    .ValueOrDie();
  return testing::TableFromRows(
      schema, {{Value::Double(1.0), Value::String("x"), Value::Int64(7)},
               {Value::Double(2.0), Value::String("y"), Value::Int64(8)}});
}

TEST(ColumnProjectorTest, SelectsAndReorders) {
  ColumnProjector projector({"c", "a"});
  auto result = projector.Transform(DataBatch(MakeTable()));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  EXPECT_EQ(out.schema()->num_fields(), 2u);
  EXPECT_EQ(out.schema()->field(0).name, "c");
  EXPECT_EQ(out.schema()->field(1).name, "a");
  EXPECT_EQ(out.ValueAt(0, 0).int64_value(), 7);
  EXPECT_DOUBLE_EQ(out.ValueAt(1, 1).double_value(), 2.0);
}

TEST(ColumnProjectorTest, MissingColumnErrors) {
  ColumnProjector projector({"nope"});
  EXPECT_FALSE(projector.Transform(DataBatch(MakeTable())).ok());
}

TEST(ColumnProjectorTest, RejectsFeatureBatch) {
  ColumnProjector projector({"a"});
  EXPECT_FALSE(projector.Transform(DataBatch(FeatureData{})).ok());
}

TEST(ColumnProjectorTest, PreservesRowCount) {
  ColumnProjector projector({"b"});
  auto result = projector.Transform(DataBatch(MakeTable()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 2u);
}

TEST(ColumnProjectorTest, ContractAndClone) {
  ColumnProjector projector({"a"});
  EXPECT_FALSE(projector.is_stateful());
  EXPECT_EQ(projector.kind(), ComponentKind::kFeatureSelection);
  auto clone = projector.Clone();
  auto result = clone->Transform(DataBatch(MakeTable()));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).schema()->num_fields(), 1u);
}

}  // namespace
}  // namespace cdpipe
