#include "src/pipeline/fusion/fusion.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"
#include "src/dataframe/column_ops.h"
#include "src/io/serialization.h"
#include "src/obs/metrics.h"
#include "src/pipeline/anomaly_filter.h"
#include "src/pipeline/column_projector.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/pipeline.h"
#include "src/pipeline/vector_assembler.h"
#include "src/pipeline/zscore_anomaly_detector.h"

// Unit coverage for the fusion planner itself: plan-cache hit/miss/
// invalidation accounting, negative caching of unfusable pipelines,
// compile-time elision, and the cost-accounting / dropped-counter parity
// between the fused and interpreted execution paths.  Bitwise output
// equivalence at scale lives in tests/golden/transform_equivalence_test.cc;
// the CDPIPE_EXEC_MODE override is read once per process, so it is
// exercised end to end by the CI fault-suite run with the variable set,
// not here.

namespace cdpipe {
namespace {

RawChunk MakeChunk(ChunkId id, std::vector<std::string> records) {
  RawChunk chunk;
  chunk.id = id;
  chunk.records = std::move(records);
  return chunk;
}

std::unique_ptr<Pipeline> SmallUrlPipeline() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 6;
  return MakeUrlPipeline(config);
}

Result<FeatureData> TransformWith(Pipeline* pipeline, const RawChunk& chunk,
                                  ExecMode mode) {
  return pipeline->Transform(chunk, /*engine=*/nullptr,
                             /*rows_scanned=*/nullptr, mode);
}

bool BitEqual(const FeatureData& a, const FeatureData& b) {
  if (a.dim != b.dim || a.num_rows() != b.num_rows()) return false;
  if (std::memcmp(a.labels.data(), b.labels.data(),
                  a.labels.size() * sizeof(double)) != 0) {
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.features[r].indices() != b.features[r].indices()) return false;
    const auto& av = a.features[r].values();
    const auto& bv = b.features[r].values();
    if (av.size() != bv.size() ||
        std::memcmp(av.data(), bv.data(), av.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(SchemaFingerprintTest, SensitiveToNameTypeAndOrder) {
  auto base = std::move(Schema::Make({Field{"a", ValueType::kDouble},
                                      Field{"b", ValueType::kString}}))
                  .ValueOrDie();
  auto renamed = std::move(Schema::Make({Field{"a2", ValueType::kDouble},
                                         Field{"b", ValueType::kString}}))
                     .ValueOrDie();
  auto retyped = std::move(Schema::Make({Field{"a", ValueType::kInt64},
                                         Field{"b", ValueType::kString}}))
                     .ValueOrDie();
  auto reordered = std::move(Schema::Make({Field{"b", ValueType::kString},
                                           Field{"a", ValueType::kDouble}}))
                       .ValueOrDie();
  auto same = std::move(Schema::Make({Field{"a", ValueType::kDouble},
                                      Field{"b", ValueType::kString}}))
                  .ValueOrDie();
  const uint64_t fp = fusion::SchemaFingerprint(*base);
  EXPECT_EQ(fp, fusion::SchemaFingerprint(*same));
  EXPECT_NE(fp, fusion::SchemaFingerprint(*renamed));
  EXPECT_NE(fp, fusion::SchemaFingerprint(*retyped));
  EXPECT_NE(fp, fusion::SchemaFingerprint(*reordered));
}

TEST(PlanCacheTest, MissCompileThenHit) {
  auto pipeline = SmallUrlPipeline();
  RawChunk chunk = MakeChunk(0, {"+1 3:1.0 17:2.0", "-1 5:0.5 7:1.0"});
  ASSERT_TRUE(pipeline->UpdateAndTransform(chunk).ok());

  const fusion::PlanCache* cache = pipeline->plan_cache();
  EXPECT_EQ(cache->hits(), 0u);
  ASSERT_TRUE(TransformWith(pipeline.get(), chunk, ExecMode::kFused).ok());
  EXPECT_EQ(cache->misses(), 1u);
  EXPECT_EQ(cache->compiles(), 1u);

  // Unchanged statistics: the second fused call reuses the plan.
  ASSERT_TRUE(TransformWith(pipeline.get(), chunk, ExecMode::kFused).ok());
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->compiles(), 1u);

  // An interpreted call never consults the cache.
  ASSERT_TRUE(
      TransformWith(pipeline.get(), chunk, ExecMode::kInterpreted).ok());
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
}

TEST(PlanCacheTest, ResetInvalidatesCachedPlan) {
  auto pipeline = SmallUrlPipeline();
  RawChunk chunk = MakeChunk(0, {"+1 3:1.0", "-1 5:2.0"});
  ASSERT_TRUE(pipeline->UpdateAndTransform(chunk).ok());
  ASSERT_TRUE(TransformWith(pipeline.get(), chunk, ExecMode::kFused).ok());
  const uint64_t version_before = pipeline->state_version();
  const uint64_t compiles_before = pipeline->plan_cache()->compiles();

  pipeline->Reset();
  EXPECT_GT(pipeline->state_version(), version_before);
  ASSERT_TRUE(TransformWith(pipeline.get(), chunk, ExecMode::kFused).ok());
  EXPECT_GT(pipeline->plan_cache()->compiles(), compiles_before)
      << "stale plan survived Reset";
}

TEST(PlanCacheTest, LoadStateInvalidatesCachedPlan) {
  auto pipeline = SmallUrlPipeline();
  RawChunk chunk = MakeChunk(0, {"+1 3:1.0", "-1 5:2.0"});
  ASSERT_TRUE(pipeline->UpdateAndTransform(chunk).ok());

  std::stringstream state;
  Serializer out(&state);
  ASSERT_TRUE(pipeline->SaveState(&out).ok());

  ASSERT_TRUE(TransformWith(pipeline.get(), chunk, ExecMode::kFused).ok());
  const uint64_t compiles_before = pipeline->plan_cache()->compiles();

  // Restoring statistics — even identical ones — must recompile: the plan
  // snapshot cannot be proven equal to the restored state.
  Deserializer in(&state);
  ASSERT_TRUE(pipeline->LoadState(&in).ok());
  FeatureData fused =
      std::move(TransformWith(pipeline.get(), chunk, ExecMode::kFused))
          .ValueOrDie();
  EXPECT_GT(pipeline->plan_cache()->compiles(), compiles_before)
      << "stale plan survived LoadState";
  FeatureData interpreted =
      std::move(TransformWith(pipeline.get(), chunk, ExecMode::kInterpreted))
          .ValueOrDie();
  EXPECT_TRUE(BitEqual(interpreted, fused));
}

TEST(PlanCacheTest, UnfusablePipelineIsNegativeCached) {
  // A custom-predicate AnomalyFilter cannot contribute a block kernel, so
  // the whole pipeline must fall back to the interpreted loop — once; the
  // unfusable verdict is cached, not re-derived per chunk.
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"label", ValueType::kDouble}}))
                    .ValueOrDie();
  auto make_pipeline = [&](bool custom_predicate) {
    auto pipeline = std::make_unique<Pipeline>();
    InputParser::Options parser;
    parser.format = InputParser::Format::kCsv;
    parser.csv_schema = schema;
    CDPIPE_CHECK(
        pipeline->AddComponent(std::make_unique<InputParser>(parser)).ok());
    if (custom_predicate) {
      CDPIPE_CHECK(pipeline
                       ->AddComponent(std::make_unique<AnomalyFilter>(
                           "custom", [](const TableData& table,
                                        std::vector<uint8_t>* keep) -> Status {
                             CDPIPE_ASSIGN_OR_RETURN(
                                 size_t x, table.schema()->FieldIndex("x"));
                             CDPIPE_ASSIGN_OR_RETURN(
                                 auto view,
                                 NumericColumnView::Of(table.column(x),
                                                       "custom filter"));
                             for (size_t r = 0; r < table.num_rows(); ++r) {
                               if ((*keep)[r] != 0 && !view.IsNull(r) &&
                                   view[r] < 0.0) {
                                 (*keep)[r] = 0;
                               }
                             }
                             return Status::OK();
                           }))
                       .ok());
    } else {
      std::vector<AnomalyFilter::Rule> rules;
      AnomalyFilter::Rule rule;
      rule.column = "x";
      rule.min = 0.0;
      rules.push_back(rule);
      CDPIPE_CHECK(pipeline
                       ->AddComponent(std::make_unique<AnomalyFilter>(
                           "custom", std::move(rules)))
                       .ok());
    }
    VectorAssembler::Options assembler;
    assembler.feature_columns = {"x"};
    assembler.label_column = "label";
    CDPIPE_CHECK(
        pipeline->AddComponent(std::make_unique<VectorAssembler>(assembler))
            .ok());
    return pipeline;
  };

  RawChunk chunk = MakeChunk(0, {"1.5,1.0", "-2.0,0.0", "3.25,1.0"});
  auto custom = make_pipeline(/*custom_predicate=*/true);
  auto declarative = make_pipeline(/*custom_predicate=*/false);

  FeatureData fallback =
      std::move(TransformWith(custom.get(), chunk, ExecMode::kFused))
          .ValueOrDie();
  EXPECT_EQ(custom->plan_cache()->misses(), 1u);
  EXPECT_EQ(custom->plan_cache()->compiles(), 0u);
  // Second fused request hits the cached unfusable verdict.
  ASSERT_TRUE(TransformWith(custom.get(), chunk, ExecMode::kFused).ok());
  EXPECT_EQ(custom->plan_cache()->hits(), 1u);
  EXPECT_EQ(custom->plan_cache()->misses(), 1u);

  // The fallback output equals both the interpreted loop and the fused
  // output of the equivalent declarative-rule pipeline.
  FeatureData interpreted =
      std::move(TransformWith(custom.get(), chunk, ExecMode::kInterpreted))
          .ValueOrDie();
  FeatureData fused_rules =
      std::move(TransformWith(declarative.get(), chunk, ExecMode::kFused))
          .ValueOrDie();
  EXPECT_EQ(declarative->plan_cache()->compiles(), 1u);
  EXPECT_TRUE(BitEqual(interpreted, fallback));
  EXPECT_TRUE(BitEqual(interpreted, fused_rules));
  EXPECT_EQ(fallback.num_rows(), 2u);
}

TEST(FusedPlanTest, CompileElidesProjectionAndExecutes) {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"junk", ValueType::kString},
                                        Field{"label", ValueType::kDouble}}))
                    .ValueOrDie();
  std::vector<std::unique_ptr<PipelineComponent>> components;
  InputParser::Options parser;
  parser.format = InputParser::Format::kCsv;
  parser.csv_schema = schema;
  components.push_back(std::make_unique<InputParser>(parser));
  components.push_back(std::make_unique<ColumnProjector>(
      std::vector<std::string>{"x", "label"}));
  VectorAssembler::Options assembler;
  assembler.feature_columns = {"x"};
  assembler.label_column = "label";
  components.push_back(std::make_unique<VectorAssembler>(assembler));

  auto entry = std::move(Schema::Make({Field{"raw", ValueType::kString}}))
                   .ValueOrDie();
  std::shared_ptr<const fusion::FusedPlan> plan =
      fusion::FusedPlan::Compile(components, *entry);
  ASSERT_NE(plan, nullptr);
  // The projector contributes no runtime stage, only a compile-time
  // remapping: it must be accounted as elided at compile time.
  EXPECT_GE(plan->stats().compile_elided, 1u);
  EXPECT_EQ(plan->stats().fingerprint, fusion::SchemaFingerprint(*entry));

  std::vector<std::string> records = {"2.5,noise,1.0", "0.25,more,0.0"};
  fusion::ExecScratch scratch;
  FeatureData out;
  size_t rows_scanned = 0;
  ASSERT_TRUE(
      plan->Execute(records, 0, records.size(), &scratch, &out, &rows_scanned)
          .ok());
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.dim, 1u);
  EXPECT_DOUBLE_EQ(out.labels[0], 1.0);
  EXPECT_DOUBLE_EQ(out.features[0].values()[0], 2.5);
  // parser(1) + projector(1) + assembler(1) per row, same multiplicities as
  // the interpreted loop.
  EXPECT_EQ(rows_scanned, 6u);
}

TEST(FusedPlanTest, DeclinesChainWithoutVectorizingSink) {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble}}))
                    .ValueOrDie();
  std::vector<std::unique_ptr<PipelineComponent>> components;
  InputParser::Options parser;
  parser.format = InputParser::Format::kCsv;
  parser.csv_schema = schema;
  components.push_back(std::make_unique<InputParser>(parser));
  auto entry = std::move(Schema::Make({Field{"raw", ValueType::kString}}))
                   .ValueOrDie();
  EXPECT_EQ(fusion::FusedPlan::Compile(components, *entry), nullptr);
}

TEST(FusionParityTest, RowsScannedMatchesInterpreted) {
  auto pipeline = SmallUrlPipeline();
  RawChunk chunk =
      MakeChunk(0, {"+1 3:1.0 17:2.0", "-1 5:nan 7:1.0", "+1 9:4.0"});
  ASSERT_TRUE(pipeline->UpdateAndTransform(chunk).ok());

  size_t interpreted_scans = 0;
  size_t fused_scans = 0;
  ASSERT_TRUE(pipeline
                  ->Transform(chunk, nullptr, &interpreted_scans,
                              ExecMode::kInterpreted)
                  .ok());
  ASSERT_TRUE(
      pipeline->Transform(chunk, nullptr, &fused_scans, ExecMode::kFused)
          .ok());
  EXPECT_GT(interpreted_scans, 0u);
  EXPECT_EQ(interpreted_scans, fused_scans)
      << "cost accounting diverged between execution modes";
}

TEST(FusionParityTest, DroppedCountersMatchInterpreted) {
  // Two identical taxi pipelines fed identical chunks, one per execution
  // mode: the anomaly filter's dropped counter must agree — the fused
  // kernels report drops through the same component counters.
  auto interpreted = MakeTaxiPipeline();
  auto fused = MakeTaxiPipeline();
  TaxiStreamGenerator::Config stream;
  stream.records_per_chunk = 256;
  stream.anomaly_prob = 0.2;
  stream.seed = 41;
  std::vector<RawChunk> chunks = TaxiStreamGenerator(stream).Generate(2);

  ASSERT_TRUE(interpreted->UpdateAndTransform(chunks[0]).ok());
  ASSERT_TRUE(fused->UpdateAndTransform(chunks[0]).ok());

  auto filter_drops = [](const Pipeline& p) {
    for (size_t i = 0; i < p.num_components(); ++i) {
      if (const auto* filter =
              dynamic_cast<const AnomalyFilter*>(&p.component(i))) {
        return filter->num_dropped();
      }
    }
    ADD_FAILURE() << "taxi pipeline has no AnomalyFilter";
    return size_t{0};
  };
  const size_t interp_before = filter_drops(*interpreted);
  const size_t fused_before = filter_drops(*fused);
  ASSERT_EQ(interp_before, fused_before);

  FeatureData a = std::move(TransformWith(interpreted.get(), chunks[1],
                                          ExecMode::kInterpreted))
                      .ValueOrDie();
  FeatureData b =
      std::move(TransformWith(fused.get(), chunks[1], ExecMode::kFused))
          .ValueOrDie();
  EXPECT_TRUE(BitEqual(a, b));
  EXPECT_GT(fused->plan_cache()->compiles(), 0u);
  EXPECT_EQ(filter_drops(*interpreted) - interp_before,
            filter_drops(*fused) - fused_before)
      << "fused filter kernel under- or over-counted drops";
  EXPECT_GT(filter_drops(*fused), fused_before)
      << "fixture produced no anomalies; raise anomaly_prob";
}

TEST(FusionParityTest, ZScoreDropsAndElisionMatchInterpreted) {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"label", ValueType::kDouble}}))
                    .ValueOrDie();
  auto make_pipeline = [&] {
    auto pipeline = std::make_unique<Pipeline>();
    InputParser::Options parser;
    parser.format = InputParser::Format::kCsv;
    parser.csv_schema = schema;
    CDPIPE_CHECK(
        pipeline->AddComponent(std::make_unique<InputParser>(parser)).ok());
    ZScoreAnomalyDetector::Options zscore;
    zscore.columns = {"x"};
    zscore.threshold = 2.0;
    zscore.min_observations = 4;
    CDPIPE_CHECK(pipeline
                     ->AddComponent(
                         std::make_unique<ZScoreAnomalyDetector>(zscore))
                     .ok());
    VectorAssembler::Options assembler;
    assembler.feature_columns = {"x"};
    assembler.label_column = "label";
    CDPIPE_CHECK(
        pipeline->AddComponent(std::make_unique<VectorAssembler>(assembler))
            .ok());
    return pipeline;
  };
  auto zscore_drops = [](const Pipeline& p) {
    for (size_t i = 0; i < p.num_components(); ++i) {
      if (const auto* z = dynamic_cast<const ZScoreAnomalyDetector*>(
              &p.component(i))) {
        return z->num_dropped();
      }
    }
    ADD_FAILURE() << "pipeline has no ZScoreAnomalyDetector";
    return size_t{0};
  };

  auto interpreted = make_pipeline();
  auto fused = make_pipeline();
  RawChunk probe = MakeChunk(1, {"1.5,1.0", "100.0,0.0", "2.5,1.0"});

  // Below min_observations the detector is statistics-free: the fused plan
  // compiles it to an elided stage and drops nothing — same as interpreted.
  obs::Counter* elided = obs::MetricsRegistry::Global().GetCounter(
      "pipeline.stages_elided", "");
  const int64_t elided_before = elided->Value();
  FeatureData cold_a =
      std::move(TransformWith(interpreted.get(), probe,
                              ExecMode::kInterpreted))
          .ValueOrDie();
  FeatureData cold_b =
      std::move(TransformWith(fused.get(), probe, ExecMode::kFused))
          .ValueOrDie();
  EXPECT_TRUE(BitEqual(cold_a, cold_b));
  EXPECT_EQ(cold_b.num_rows(), 3u);
  EXPECT_EQ(zscore_drops(*fused), 0u);
  EXPECT_GT(elided->Value(), elided_before)
      << "statistics-free detector was not elided from the fused plan";

  // Warm both up past min_observations, then the outlier must be dropped
  // identically (and the recompile must pick up the new statistics).
  RawChunk warmup =
      MakeChunk(0, {"1.0,1.0", "2.0,0.0", "1.5,1.0", "2.5,0.0", "1.75,1.0"});
  ASSERT_TRUE(interpreted->UpdateAndTransform(warmup).ok());
  ASSERT_TRUE(fused->UpdateAndTransform(warmup).ok());
  FeatureData warm_a =
      std::move(TransformWith(interpreted.get(), probe,
                              ExecMode::kInterpreted))
          .ValueOrDie();
  FeatureData warm_b =
      std::move(TransformWith(fused.get(), probe, ExecMode::kFused))
          .ValueOrDie();
  EXPECT_TRUE(BitEqual(warm_a, warm_b));
  EXPECT_EQ(warm_b.num_rows(), 2u);
  EXPECT_EQ(zscore_drops(*interpreted), zscore_drops(*fused));
  EXPECT_EQ(zscore_drops(*fused), 1u);
}

}  // namespace
}  // namespace cdpipe
