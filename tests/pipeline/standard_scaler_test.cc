#include "src/pipeline/standard_scaler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

FeatureData MakeFeatures(
    std::vector<std::vector<std::pair<uint32_t, double>>> rows,
    uint32_t dim = 4) {
  FeatureData out;
  out.dim = dim;
  for (auto& row : rows) {
    out.features.push_back(SparseVector::FromUnsorted(dim, std::move(row)));
    out.labels.push_back(0.0);
  }
  return out;
}

TEST(ScalerFeatureModeTest, ComputesMomentsWithImplicitZeros) {
  StandardScaler scaler;
  // Dimension 0 values over 4 rows: 2, 0, 0, 2 -> mean 1, var 1.
  DataBatch batch =
      MakeFeatures({{{0, 2.0}}, {}, {}, {{0, 2.0}}});
  ASSERT_TRUE(scaler.Update(batch).ok());
  EXPECT_EQ(scaler.ObservationCount(), 4);
  EXPECT_DOUBLE_EQ(scaler.MeanOf(0), 1.0);
  EXPECT_DOUBLE_EQ(scaler.StdDevOf(0), 1.0);
}

TEST(ScalerFeatureModeTest, ScalesByStdDevWithoutCentering) {
  StandardScaler scaler;
  ASSERT_TRUE(
      scaler.Update(MakeFeatures({{{0, 2.0}}, {}, {}, {{0, 2.0}}})).ok());
  auto result = scaler.Transform(MakeFeatures({{{0, 3.0}}}));
  ASSERT_TRUE(result.ok());
  // sd = 1 -> value unchanged; sparsity preserved (zero entries untouched).
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).features[0].Get(0), 3.0);
}

TEST(ScalerFeatureModeTest, WithMeanCenters) {
  StandardScaler::Options options;
  options.with_mean = true;
  StandardScaler scaler(options);
  ASSERT_TRUE(
      scaler.Update(MakeFeatures({{{0, 2.0}}, {}, {}, {{0, 2.0}}})).ok());
  auto result = scaler.Transform(MakeFeatures({{{0, 3.0}}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).features[0].Get(0), 2.0);
}

TEST(ScalerFeatureModeTest, ConstantDimensionPassesThrough) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Update(MakeFeatures({{{1, 5.0}}, {{1, 5.0}}})).ok());
  // Variance over {5,5} is 0 -> no scaling.
  auto result = scaler.Transform(MakeFeatures({{{1, 5.0}}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).features[0].Get(1), 5.0);
}

TEST(ScalerFeatureModeTest, UnseenDimensionUntouched) {
  StandardScaler scaler;
  auto result = scaler.Transform(MakeFeatures({{{2, 7.0}}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).features[0].Get(2), 7.0);
}

TEST(ScalerFeatureModeTest, IncrementalEqualsBatch) {
  Rng rng(99);
  std::vector<std::vector<std::pair<uint32_t, double>>> all_rows;
  for (int i = 0; i < 50; ++i) {
    all_rows.push_back({{0, rng.NextGaussian(3.0, 2.0)},
                        {2, rng.NextGaussian(-1.0, 0.5)}});
  }
  StandardScaler incremental;
  StandardScaler batch;
  // Feed in three uneven parts vs all at once.
  auto part = [&](size_t lo, size_t hi) {
    return MakeFeatures(std::vector<std::vector<std::pair<uint32_t, double>>>(
        all_rows.begin() + lo, all_rows.begin() + hi));
  };
  ASSERT_TRUE(incremental.Update(part(0, 10)).ok());
  ASSERT_TRUE(incremental.Update(part(10, 11)).ok());
  ASSERT_TRUE(incremental.Update(part(11, 50)).ok());
  ASSERT_TRUE(batch.Update(part(0, 50)).ok());
  EXPECT_NEAR(incremental.MeanOf(0), batch.MeanOf(0), 1e-12);
  EXPECT_NEAR(incremental.StdDevOf(0), batch.StdDevOf(0), 1e-12);
  EXPECT_NEAR(incremental.MeanOf(2), batch.MeanOf(2), 1e-12);
  EXPECT_NEAR(incremental.StdDevOf(2), batch.StdDevOf(2), 1e-12);
}

TableData MakeTable(std::vector<std::pair<double, double>> xy) {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"y", ValueType::kDouble}}))
                    .ValueOrDie();
  std::vector<Row> rows;
  for (const auto& [x, y] : xy) {
    rows.push_back({Value::Double(x), Value::Double(y)});
  }
  return testing::TableFromRows(schema, rows);
}

TEST(ScalerTableModeTest, CentersAndScalesColumns) {
  StandardScaler::Options options;
  options.columns = {"x"};
  StandardScaler scaler(options);
  // x: {1, 3} -> mean 2, sd 1.
  ASSERT_TRUE(scaler.Update(DataBatch(MakeTable({{1, 0}, {3, 0}}))).ok());
  auto result = scaler.Transform(DataBatch(MakeTable({{4, 9}})));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  EXPECT_DOUBLE_EQ(out.ValueAt(0, 0).double_value(), 2.0);  // (4-2)/1
  EXPECT_DOUBLE_EQ(out.ValueAt(0, 1).double_value(), 9.0);  // untouched
}

TEST(ScalerTableModeTest, NullCellsSkipped) {
  StandardScaler::Options options;
  options.columns = {"x"};
  StandardScaler scaler(options);
  TableData table = MakeTable({{2, 0}});
  ASSERT_TRUE(table.AppendRow({Value::Null(), Value::Double(0)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Double(4), Value::Double(0)}).ok());
  ASSERT_TRUE(scaler.Update(DataBatch(table)).ok());
  // Stats over {2, 4}: mean 3, sd 1.
  EXPECT_DOUBLE_EQ(scaler.MeanOf(0), 3.0);
  auto result = scaler.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::get<TableData>(*result).ValueAt(1, 0).is_null());
}

TEST(ScalerTest, ResetClears) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Update(MakeFeatures({{{0, 2.0}}})).ok());
  scaler.Reset();
  EXPECT_EQ(scaler.ObservationCount(), 0);
  EXPECT_DOUBLE_EQ(scaler.MeanOf(0), 0.0);
}

TEST(ScalerTest, CloneIsIndependent) {
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Update(MakeFeatures({{{0, 2.0}}, {{0, 4.0}}})).ok());
  auto clone = scaler.Clone();
  auto* cloned = static_cast<StandardScaler*>(clone.get());
  EXPECT_DOUBLE_EQ(cloned->MeanOf(0), scaler.MeanOf(0));
  ASSERT_TRUE(cloned->Update(MakeFeatures({{{0, 100.0}}})).ok());
  EXPECT_NE(cloned->MeanOf(0), scaler.MeanOf(0));
}

TEST(ScalerTest, ContractFlags) {
  StandardScaler scaler;
  EXPECT_TRUE(scaler.is_stateful());
  EXPECT_TRUE(scaler.supports_online_statistics());
}

}  // namespace
}  // namespace cdpipe
