#include "src/pipeline/missing_value_imputer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

FeatureData MakeFeatures(std::vector<std::vector<std::pair<uint32_t, double>>>
                             rows,
                         uint32_t dim = 8) {
  FeatureData out;
  out.dim = dim;
  for (auto& row : rows) {
    out.features.push_back(SparseVector::FromUnsorted(dim, std::move(row)));
    out.labels.push_back(1.0);
  }
  return out;
}

TEST(ImputerFeatureModeTest, ReplacesNanWithRunningMean) {
  MissingValueImputer imputer;
  DataBatch batch = MakeFeatures({{{0, 2.0}}, {{0, 4.0}}});
  ASSERT_TRUE(imputer.Update(batch).ok());
  EXPECT_DOUBLE_EQ(imputer.MeanForDimension(0), 3.0);

  DataBatch with_missing = MakeFeatures({{{0, kNan}, {1, 5.0}}});
  auto result = imputer.Transform(with_missing);
  ASSERT_TRUE(result.ok());
  const auto& features = std::get<FeatureData>(*result);
  EXPECT_DOUBLE_EQ(features.features[0].Get(0), 3.0);
  EXPECT_DOUBLE_EQ(features.features[0].Get(1), 5.0);
}

TEST(ImputerFeatureModeTest, UnseenDimensionUsesDefault) {
  MissingValueImputer::Options options;
  options.default_value = -9.0;
  MissingValueImputer imputer(options);
  DataBatch with_missing = MakeFeatures({{{2, kNan}}});
  auto result = imputer.Transform(with_missing);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).features[0].Get(2), -9.0);
}

TEST(ImputerFeatureModeTest, UpdateSkipsNan) {
  MissingValueImputer imputer;
  DataBatch batch = MakeFeatures({{{0, kNan}}, {{0, 6.0}}});
  ASSERT_TRUE(imputer.Update(batch).ok());
  EXPECT_DOUBLE_EQ(imputer.MeanForDimension(0), 6.0);  // nan not counted
}

TEST(ImputerFeatureModeTest, IncrementalMeanMatchesBatchMean) {
  MissingValueImputer incremental;
  MissingValueImputer batch;
  DataBatch part1 = MakeFeatures({{{0, 1.0}}, {{0, 2.0}}});
  DataBatch part2 = MakeFeatures({{{0, 6.0}}});
  DataBatch all = MakeFeatures({{{0, 1.0}}, {{0, 2.0}}, {{0, 6.0}}});
  ASSERT_TRUE(incremental.Update(part1).ok());
  ASSERT_TRUE(incremental.Update(part2).ok());
  ASSERT_TRUE(batch.Update(all).ok());
  EXPECT_DOUBLE_EQ(incremental.MeanForDimension(0),
                   batch.MeanForDimension(0));
}

TEST(ImputerTableModeTest, FillsNullCells) {
  MissingValueImputer::Options options;
  options.columns = {"x"};
  MissingValueImputer imputer(options);

  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"y", ValueType::kDouble}}))
                    .ValueOrDie();
  TableData table = testing::TableFromRows(
      schema, {{Value::Double(2.0), Value::Double(1.0)},
               {Value::Double(6.0), Value::Null()}});
  DataBatch batch = table;
  ASSERT_TRUE(imputer.Update(batch).ok());

  TableData query = table;
  ASSERT_TRUE(query.AppendRow({Value::Null(), Value::Null()}).ok());
  auto result = imputer.Transform(DataBatch(query));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  EXPECT_DOUBLE_EQ(out.ValueAt(2, 0).double_value(), 4.0);  // imputed mean
  EXPECT_TRUE(out.ValueAt(2, 1).is_null());  // y not configured: untouched
}

TEST(ImputerTableModeTest, MissingColumnErrors) {
  MissingValueImputer::Options options;
  options.columns = {"zzz"};
  MissingValueImputer imputer(options);
  auto schema =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  TableData table =
      testing::TableFromRows(schema, {{Value::Double(1.0)}});
  EXPECT_FALSE(imputer.Update(DataBatch(table)).ok());
}

TEST(ImputerTest, ResetClearsStatistics) {
  MissingValueImputer imputer;
  ASSERT_TRUE(imputer.Update(MakeFeatures({{{0, 10.0}}})).ok());
  EXPECT_DOUBLE_EQ(imputer.MeanForDimension(0), 10.0);
  imputer.Reset();
  EXPECT_DOUBLE_EQ(imputer.MeanForDimension(0), 0.0);
}

TEST(ImputerTest, CloneCopiesStatistics) {
  MissingValueImputer imputer;
  ASSERT_TRUE(imputer.Update(MakeFeatures({{{3, 8.0}}})).ok());
  auto clone = imputer.Clone();
  auto* cloned = static_cast<MissingValueImputer*>(clone.get());
  EXPECT_DOUBLE_EQ(cloned->MeanForDimension(3), 8.0);
  // Statistics are independent after cloning.
  ASSERT_TRUE(cloned->Update(MakeFeatures({{{3, 0.0}}})).ok());
  EXPECT_DOUBLE_EQ(imputer.MeanForDimension(3), 8.0);
  EXPECT_DOUBLE_EQ(cloned->MeanForDimension(3), 4.0);
}

TEST(ImputerTest, IsStatefulAndSupportsOnlineStatistics) {
  MissingValueImputer imputer;
  EXPECT_TRUE(imputer.is_stateful());
  EXPECT_TRUE(imputer.supports_online_statistics());
  EXPECT_EQ(imputer.kind(), ComponentKind::kDataTransformation);
}

}  // namespace
}  // namespace cdpipe
