#include "src/pipeline/vector_assembler.h"

#include <array>

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

std::shared_ptr<const Schema> ThreeColumnSchema() {
  return std::move(Schema::Make({Field{"a", ValueType::kDouble},
                                 Field{"b", ValueType::kDouble},
                                 Field{"y", ValueType::kDouble}}))
      .ValueOrDie();
}

TableData MakeTable(std::vector<std::array<double, 3>> rows) {
  std::vector<Row> out;
  for (const auto& r : rows) {
    out.push_back(
        {Value::Double(r[0]), Value::Double(r[1]), Value::Double(r[2])});
  }
  return testing::TableFromRows(ThreeColumnSchema(), out);
}

VectorAssembler::Options BaseOptions(bool intercept = false) {
  VectorAssembler::Options options;
  options.feature_columns = {"a", "b"};
  options.label_column = "y";
  options.add_intercept = intercept;
  return options;
}

TEST(VectorAssemblerTest, PacksColumnsInOrder) {
  VectorAssembler assembler(BaseOptions());
  auto result = assembler.Transform(DataBatch(MakeTable({{1, 2, 3}})));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  EXPECT_EQ(out.dim, 2u);
  EXPECT_DOUBLE_EQ(out.features[0].Get(0), 1.0);
  EXPECT_DOUBLE_EQ(out.features[0].Get(1), 2.0);
  EXPECT_DOUBLE_EQ(out.labels[0], 3.0);
}

TEST(VectorAssemblerTest, InterceptAppendsConstantOne) {
  VectorAssembler assembler(BaseOptions(/*intercept=*/true));
  EXPECT_EQ(assembler.output_dim(), 3u);
  auto result = assembler.Transform(DataBatch(MakeTable({{0, 0, 5}})));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  EXPECT_DOUBLE_EQ(out.features[0].Get(2), 1.0);
  // zero-valued features are not stored.
  EXPECT_EQ(out.features[0].nnz(), 1u);
}

TEST(VectorAssemblerTest, NullFeatureBecomesZero) {
  VectorAssembler assembler(BaseOptions());
  TableData table = testing::TableFromRows(
      ThreeColumnSchema(),
      {{Value::Null(), Value::Double(2), Value::Double(1)}});
  auto result = assembler.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<FeatureData>(*result);
  EXPECT_DOUBLE_EQ(out.features[0].Get(0), 0.0);
  EXPECT_DOUBLE_EQ(out.features[0].Get(1), 2.0);
}

TEST(VectorAssemblerTest, NullLabelErrors) {
  VectorAssembler assembler(BaseOptions());
  TableData table = testing::TableFromRows(
      ThreeColumnSchema(),
      {{Value::Double(1), Value::Double(2), Value::Null()}});
  EXPECT_FALSE(assembler.Transform(DataBatch(table)).ok());
}

TEST(VectorAssemblerTest, MissingColumnErrors) {
  VectorAssembler::Options options;
  options.feature_columns = {"nope"};
  options.label_column = "y";
  VectorAssembler assembler(options);
  EXPECT_FALSE(assembler.Transform(DataBatch(MakeTable({{1, 2, 3}}))).ok());
}

TEST(VectorAssemblerTest, RejectsFeatureBatch) {
  VectorAssembler assembler(BaseOptions());
  EXPECT_FALSE(assembler.Transform(DataBatch(FeatureData{})).ok());
}

TEST(VectorAssemblerTest, EmptyTableGivesEmptyFeatures) {
  VectorAssembler assembler(BaseOptions());
  auto result = assembler.Transform(DataBatch(MakeTable({})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<FeatureData>(*result).num_rows(), 0u);
}

TEST(VectorAssemblerTest, ContractAndClone) {
  VectorAssembler assembler(BaseOptions(true));
  EXPECT_FALSE(assembler.is_stateful());
  EXPECT_EQ(assembler.kind(), ComponentKind::kFeatureSelection);
  auto clone = assembler.Clone();
  EXPECT_EQ(static_cast<VectorAssembler*>(clone.get())->output_dim(), 3u);
}

}  // namespace
}  // namespace cdpipe
