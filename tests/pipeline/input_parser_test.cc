#include "src/pipeline/input_parser.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

DataBatch WrapLines(std::vector<std::string> lines) {
  return testing::OwnedRawTable(lines);
}

TEST(InputParserLibSvmTest, ParsesLabelsAndFeatures) {
  InputParser::Options options;
  options.format = InputParser::Format::kLibSvm;
  options.feature_dim = 100;
  InputParser parser(options);

  auto result = parser.Transform(WrapLines({"+1 3:1.5 17:2.0", "-1 5:0.25"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& features = std::get<FeatureData>(*result);
  ASSERT_EQ(features.num_rows(), 2u);
  EXPECT_EQ(features.dim, 100u);
  EXPECT_DOUBLE_EQ(features.labels[0], 1.0);
  EXPECT_DOUBLE_EQ(features.labels[1], -1.0);
  EXPECT_DOUBLE_EQ(features.features[0].Get(3), 1.5);
  EXPECT_DOUBLE_EQ(features.features[0].Get(17), 2.0);
  EXPECT_DOUBLE_EQ(features.features[1].Get(5), 0.25);
}

TEST(InputParserLibSvmTest, BinarizesLabels) {
  InputParser::Options options;
  options.feature_dim = 10;
  options.binarize_labels = true;
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({"0 1:1", "3 1:1", "-2 1:1"}));
  ASSERT_TRUE(result.ok());
  const auto& features = std::get<FeatureData>(*result);
  EXPECT_DOUBLE_EQ(features.labels[0], -1.0);
  EXPECT_DOUBLE_EQ(features.labels[1], 1.0);
  EXPECT_DOUBLE_EQ(features.labels[2], -1.0);
}

TEST(InputParserLibSvmTest, KeepsRawLabelWhenNotBinarizing) {
  InputParser::Options options;
  options.feature_dim = 10;
  options.binarize_labels = false;
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({"2.75 1:1"}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<FeatureData>(*result).labels[0], 2.75);
}

TEST(InputParserLibSvmTest, ParsesNanAsMissing) {
  InputParser::Options options;
  options.feature_dim = 10;
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({"+1 2:nan 4:1.0"}));
  ASSERT_TRUE(result.ok());
  const auto& features = std::get<FeatureData>(*result);
  EXPECT_TRUE(std::isnan(features.features[0].Get(2)));
  EXPECT_DOUBLE_EQ(features.features[0].Get(4), 1.0);
}

TEST(InputParserLibSvmTest, DropsMalformedRecords) {
  InputParser::Options options;
  options.feature_dim = 10;
  InputParser parser(options);
  auto result = parser.Transform(WrapLines(
      {"+1 1:1.0", "not a record", "+1 999:1.0", "+1 3:abc", "-1 2:2.0"}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<FeatureData>(*result).num_rows(), 2u);
  EXPECT_EQ(parser.num_malformed(), 3u);
}

TEST(InputParserLibSvmTest, StrictModeFailsOnMalformed) {
  InputParser::Options options;
  options.feature_dim = 10;
  options.strict = true;
  InputParser parser(options);
  EXPECT_FALSE(parser.Transform(WrapLines({"garbage"})).ok());
}

TEST(InputParserLibSvmTest, RejectsNonTableInput) {
  InputParser::Options options;
  options.feature_dim = 10;
  InputParser parser(options);
  DataBatch features = FeatureData{};
  EXPECT_FALSE(parser.Transform(features).ok());
}

std::shared_ptr<const Schema> TestCsvSchema() {
  return std::move(Schema::Make({Field{"t", ValueType::kTimestamp},
                                 Field{"x", ValueType::kDouble},
                                 Field{"n", ValueType::kInt64},
                                 Field{"s", ValueType::kString}}))
      .ValueOrDie();
}

TEST(InputParserCsvTest, ParsesTypedColumns) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TestCsvSchema();
  InputParser parser(options);

  auto result =
      parser.Transform(WrapLines({"2015-01-01 00:00:00,1.5,7,hello"}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& table = std::get<TableData>(*result);
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.ValueAt(0, 0).int64_value(), 1420070400);
  EXPECT_DOUBLE_EQ(table.ValueAt(0, 1).double_value(), 1.5);
  EXPECT_EQ(table.ValueAt(0, 2).int64_value(), 7);
  EXPECT_EQ(table.ValueAt(0, 3).string_value(), "hello");
}

TEST(InputParserCsvTest, EmptyFieldBecomesNull) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TestCsvSchema();
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({"2015-01-01 00:00:00,,7,x"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::get<TableData>(*result).ValueAt(0, 1).is_null());
}

TEST(InputParserCsvTest, DropsWrongArityAndBadValues) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TestCsvSchema();
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({
      "2015-01-01 00:00:00,1.0,2,ok",
      "too,few",
      "2015-01-01 00:00:00,abc,2,bad-double",
      "not-a-date,1.0,2,bad-date",
  }));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
  EXPECT_EQ(parser.num_malformed(), 3u);
}

TEST(InputParserCsvTest, CustomDelimiter) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema =
      std::move(Schema::Make({Field{"a", ValueType::kDouble},
                              Field{"b", ValueType::kDouble}}))
          .ValueOrDie();
  options.delimiter = ';';
  InputParser parser(options);
  auto result = parser.Transform(WrapLines({"1.0;2.0"}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(std::get<TableData>(*result).ValueAt(0, 1).double_value(),
                   2.0);
}

TEST(InputParserTest, CloneKeepsConfigurationAndCounters) {
  InputParser::Options options;
  options.feature_dim = 10;
  InputParser parser(options);
  ASSERT_TRUE(parser.Transform(WrapLines({"bad"})).ok());
  EXPECT_EQ(parser.num_malformed(), 1u);
  auto clone = parser.Clone();
  EXPECT_EQ(static_cast<InputParser*>(clone.get())->num_malformed(), 1u);
  EXPECT_EQ(clone->name(), "input_parser");
  EXPECT_FALSE(clone->is_stateful());
}

}  // namespace
}  // namespace cdpipe
