#include "src/pipeline/taxi_feature_extractor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/string_util.h"
#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

std::shared_ptr<const Schema> RawSchema() {
  return std::move(Schema::Make({
                       Field{"pickup_datetime", ValueType::kTimestamp},
                       Field{"dropoff_datetime", ValueType::kTimestamp},
                       Field{"pickup_lon", ValueType::kDouble},
                       Field{"pickup_lat", ValueType::kDouble},
                       Field{"dropoff_lon", ValueType::kDouble},
                       Field{"dropoff_lat", ValueType::kDouble},
                   }))
      .ValueOrDie();
}

Row MakeTrip(const std::string& pickup, const std::string& dropoff,
             double plon, double plat, double dlon, double dlat) {
  return {Value::Timestamp(std::move(ParseDateTime(pickup)).ValueOrDie()),
          Value::Timestamp(std::move(ParseDateTime(dropoff)).ValueOrDie()),
          Value::Double(plon), Value::Double(plat), Value::Double(dlon),
          Value::Double(dlat)};
}

TEST(HaversineTest, KnownDistances) {
  // Same point.
  EXPECT_NEAR(HaversineKm(40.75, -73.97, 40.75, -73.97), 0.0, 1e-9);
  // One degree of latitude is ~111.2 km.
  EXPECT_NEAR(HaversineKm(40.0, -73.97, 41.0, -73.97), 111.2, 0.5);
  // JFK (40.6413, -73.7781) to Times Square (40.7580, -73.9855): ~21 km.
  EXPECT_NEAR(HaversineKm(40.6413, -73.7781, 40.7580, -73.9855), 21.6, 1.0);
}

TEST(BearingTest, CardinalDirections) {
  EXPECT_NEAR(BearingDegrees(40.0, -74.0, 41.0, -74.0), 0.0, 0.5);     // north
  EXPECT_NEAR(BearingDegrees(41.0, -74.0, 40.0, -74.0), 180.0, 0.5);   // south
  EXPECT_NEAR(BearingDegrees(40.0, -74.0, 40.0, -73.0), 90.0, 1.0);    // east
  EXPECT_NEAR(BearingDegrees(40.0, -73.0, 40.0, -74.0), 270.0, 1.0);   // west
}

TEST(BearingTest, AlwaysInRange) {
  for (double dlat = -1.0; dlat <= 1.0; dlat += 0.25) {
    for (double dlon = -1.0; dlon <= 1.0; dlon += 0.25) {
      if (dlat == 0.0 && dlon == 0.0) continue;
      const double b = BearingDegrees(40.0, -74.0, 40.0 + dlat, -74.0 + dlon);
      EXPECT_GE(b, 0.0);
      EXPECT_LT(b, 360.0);
    }
  }
}

TEST(TaxiFeatureExtractorTest, ComputesAllDerivedColumns) {
  TaxiFeatureExtractor extractor;
  // Wednesday 2015-01-07, 08:30 pickup, 20-minute trip.
  TableData table = testing::TableFromRows(
      RawSchema(), {MakeTrip("2015-01-07 08:30:00", "2015-01-07 08:50:00",
                             -73.97, 40.75, -73.98, 40.78)});
  auto result = extractor.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& out = std::get<TableData>(*result);
  ASSERT_EQ(out.num_rows(), 1u);
  const Schema& schema = *out.schema();

  auto value_of = [&](const std::string& name) {
    return out.ValueAt(0, std::move(schema.FieldIndex(name)).ValueOrDie())
        .double_value();
  };
  EXPECT_DOUBLE_EQ(value_of("duration_s"), 1200.0);
  EXPECT_NEAR(value_of("haversine_km"),
              HaversineKm(40.75, -73.97, 40.78, -73.98), 1e-9);
  EXPECT_NEAR(value_of("bearing"),
              BearingDegrees(40.75, -73.97, 40.78, -73.98), 1e-9);
  EXPECT_DOUBLE_EQ(value_of("hour_of_day"), 8.0);
  EXPECT_DOUBLE_EQ(value_of("day_of_week"), 2.0);  // Wednesday
  EXPECT_NEAR(value_of("log_duration"), std::log1p(1200.0), 1e-12);
}

TEST(TaxiFeatureExtractorTest, WeekdayAcrossWeek) {
  TaxiFeatureExtractor extractor;
  // 2015-01-05 is a Monday; sweep seven consecutive days.
  std::vector<Row> rows;
  for (int d = 0; d < 7; ++d) {
    rows.push_back(
        MakeTrip(StrFormat("2015-01-%02d 12:00:00", 5 + d),
                 StrFormat("2015-01-%02d 12:10:00", 5 + d), -73.97, 40.75,
                 -73.98, 40.76));
  }
  TableData table = testing::TableFromRows(RawSchema(), rows);
  auto result = extractor.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  const size_t dow =
      std::move(out.schema()->FieldIndex("day_of_week")).ValueOrDie();
  for (int d = 0; d < 7; ++d) {
    EXPECT_DOUBLE_EQ(out.ValueAt(d, dow).double_value(), d);
  }
}

TEST(TaxiFeatureExtractorTest, DropsRowsWithMissingEndpoints) {
  TaxiFeatureExtractor extractor;
  Row complete = MakeTrip("2015-01-07 08:30:00", "2015-01-07 08:50:00",
                          -73.97, 40.75, -73.98, 40.78);
  Row incomplete = complete;
  incomplete[2] = Value::Null();
  TableData table =
      testing::TableFromRows(RawSchema(), {complete, incomplete});
  auto result = extractor.Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
}

TEST(TaxiFeatureExtractorTest, MissingColumnErrors) {
  TaxiFeatureExtractor extractor;
  auto schema =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  TableData table =
      testing::TableFromRows(schema, {{Value::Double(1.0)}});
  EXPECT_FALSE(extractor.Transform(DataBatch(table)).ok());
}

TEST(TaxiFeatureExtractorTest, StatelessContract) {
  TaxiFeatureExtractor extractor;
  EXPECT_FALSE(extractor.is_stateful());
  EXPECT_EQ(extractor.kind(), ComponentKind::kFeatureExtraction);
  EXPECT_NE(extractor.Clone(), nullptr);
}

}  // namespace
}  // namespace cdpipe
