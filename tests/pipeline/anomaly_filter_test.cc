#include "src/pipeline/anomaly_filter.h"

#include <gtest/gtest.h>

#include "tests/testing/table_test_util.h"

namespace cdpipe {
namespace {

TableData MakeTable(std::vector<double> values) {
  auto schema =
      std::move(Schema::Make({Field{"v", ValueType::kDouble}})).ValueOrDie();
  std::vector<Row> rows;
  for (double v : values) rows.push_back({Value::Double(v)});
  return testing::TableFromRows(schema, rows);
}

TEST(AnomalyFilterTest, KeepInRangeFilters) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 10.0);
  auto result = filter->Transform(DataBatch(MakeTable({-1, 0, 5, 10, 11})));
  ASSERT_TRUE(result.ok());
  const auto& out = std::get<TableData>(*result);
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(out.ValueAt(0, 0).double_value(), 0.0);
  EXPECT_DOUBLE_EQ(out.ValueAt(2, 0).double_value(), 10.0);
  EXPECT_EQ(filter->num_dropped(), 2u);
}

TEST(AnomalyFilterTest, NullCellsDroppedByRangeFilter) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 10.0);
  TableData table = MakeTable({5});
  ASSERT_TRUE(table.AppendRow({Value::Null()}).ok());
  auto result = filter->Transform(DataBatch(table));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
}

TEST(AnomalyFilterTest, CustomPredicate) {
  AnomalyFilter filter(
      "odd-only",
      [](const TableData& table, std::vector<uint8_t>* keep) -> Status {
        for (size_t r = 0; r < table.num_rows(); ++r) {
          const double v = table.column(0).doubles()[r];
          (*keep)[r] = static_cast<int64_t>(v) % 2 == 1;
        }
        return Status::OK();
      });
  auto result = filter.Transform(DataBatch(MakeTable({1, 2, 3, 4, 5})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 3u);
  EXPECT_EQ(filter.name(), "anomaly_filter(odd-only)");
}

TEST(AnomalyFilterTest, PredicateErrorPropagates) {
  AnomalyFilter filter(
      "boom", [](const TableData&, std::vector<uint8_t>*) -> Status {
        return Status::Internal("boom");
      });
  EXPECT_FALSE(filter.Transform(DataBatch(MakeTable({1}))).ok());
}

TEST(AnomalyFilterTest, MissingColumnErrors) {
  auto filter = AnomalyFilter::KeepInRange("zzz", 0.0, 1.0);
  EXPECT_FALSE(filter->Transform(DataBatch(MakeTable({1}))).ok());
}

TEST(AnomalyFilterTest, RejectsFeatureBatch) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 1.0);
  EXPECT_FALSE(filter->Transform(DataBatch(FeatureData{})).ok());
}

TEST(AnomalyFilterTest, EmptyTablePassesThrough) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 1.0);
  auto result = filter->Transform(DataBatch(MakeTable({})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 0u);
}

TEST(AnomalyFilterTest, CloneCarriesPredicateAndCounter) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 1.0);
  ASSERT_TRUE(filter->Transform(DataBatch(MakeTable({5}))).ok());
  auto clone = filter->Clone();
  auto* cloned = static_cast<AnomalyFilter*>(clone.get());
  EXPECT_EQ(cloned->num_dropped(), 1u);
  auto result = cloned->Transform(DataBatch(MakeTable({0.5})));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::get<TableData>(*result).num_rows(), 1u);
}

TEST(AnomalyFilterTest, StatelessContract) {
  auto filter = AnomalyFilter::KeepInRange("v", 0.0, 1.0);
  EXPECT_FALSE(filter->is_stateful());
  EXPECT_EQ(filter->kind(), ComponentKind::kDataTransformation);
}

}  // namespace
}  // namespace cdpipe
