#include "src/core/pipeline_manager.h"

#include <gtest/gtest.h>

#include "src/data/url_stream.h"

namespace cdpipe {
namespace {

RawChunk MakeChunk(ChunkId id, std::vector<std::string> lines) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = id * 60;
  chunk.records = std::move(lines);
  return chunk;
}

UrlPipelineConfig SmallConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 6;
  return config;
}

std::unique_ptr<PipelineManager> MakeManager(CostModel* cost,
                                             bool online_statistics = true) {
  UrlPipelineConfig config = SmallConfig();
  return std::make_unique<PipelineManager>(
      MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.05}),
      cost, PipelineManager::Options{online_statistics});
}

TEST(PipelineManagerTest, OnlineStepProducesFeatureChunk) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  PrequentialEvaluator eval(std::make_unique<MisclassificationRate>());
  auto features = manager->OnlineStep(
      MakeChunk(3, {"+1 3:1.0", "-1 7:2.0"}), &eval, /*online_learn=*/true);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(features->origin_id, 3);
  EXPECT_EQ(features->num_rows(), 2u);
  EXPECT_EQ(eval.Count(), 2);
  EXPECT_GT(cost.SecondsIn(CostPhase::kPreprocessing), 0.0);
  EXPECT_GT(cost.WorkIn(CostPhase::kPreprocessing), 0);
  EXPECT_GT(cost.WorkIn(CostPhase::kOnlineTraining), 0);
  EXPECT_GT(cost.WorkIn(CostPhase::kPrediction), 0);
  EXPECT_EQ(manager->optimizer().step_count(), 1);
}

TEST(PipelineManagerTest, OnlineStepWithoutLearning) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  auto features = manager->OnlineStep(MakeChunk(0, {"+1 3:1.0"}),
                                      /*evaluator=*/nullptr,
                                      /*online_learn=*/false);
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(manager->optimizer().step_count(), 0);
  EXPECT_EQ(cost.WorkIn(CostPhase::kOnlineTraining), 0);
  EXPECT_EQ(cost.WorkIn(CostPhase::kPrediction), 0);
}

TEST(PipelineManagerTest, RematerializeIsPureAndCosted) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  ASSERT_TRUE(manager
                  ->OnlineStep(MakeChunk(0, {"+1 3:2.0", "+1 3:6.0"}),
                               nullptr, false)
                  .ok());
  RawChunk probe = MakeChunk(1, {"+1 3:2.0"});
  auto first = manager->Rematerialize(probe);
  ASSERT_TRUE(first.ok());
  auto second = manager->Rematerialize(probe);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->data.features[0] == second->data.features[0]);
  EXPECT_GT(cost.WorkIn(CostPhase::kMaterialization), 0);
}

TEST(PipelineManagerTest, NoOptimizationRematerializationCostsMore) {
  CostModel cost_opt;
  CostModel cost_noopt;
  auto with_opt = MakeManager(&cost_opt, /*online_statistics=*/true);
  auto without_opt = MakeManager(&cost_noopt, /*online_statistics=*/false);
  RawChunk chunk = MakeChunk(0, {"+1 3:2.0", "+1 5:1.0"});
  ASSERT_TRUE(with_opt->Rematerialize(chunk).ok());
  ASSERT_TRUE(without_opt->Rematerialize(chunk).ok());
  EXPECT_GT(cost_noopt.WorkIn(CostPhase::kMaterialization),
            cost_opt.WorkIn(CostPhase::kMaterialization));
}

TEST(PipelineManagerTest, TransformForInference) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  auto features =
      manager->TransformForInference(MakeChunk(0, {"+1 3:1.0"}));
  ASSERT_TRUE(features.ok());
  EXPECT_EQ(features->num_rows(), 1u);
  EXPECT_GT(cost.WorkIn(CostPhase::kPrediction), 0);
}

TEST(PipelineManagerTest, TrainStepUpdatesModel) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  auto features = manager->TransformForInference(
      MakeChunk(0, {"+1 3:1.0", "-1 7:1.0"}));
  ASSERT_TRUE(features.ok());
  const double weight_norm_before = manager->model().weights().L2Norm();
  ASSERT_TRUE(
      manager->TrainStep(*features, CostPhase::kProactiveTraining).ok());
  EXPECT_NE(manager->model().weights().L2Norm(), weight_norm_before);
  EXPECT_GT(cost.WorkIn(CostPhase::kProactiveTraining), 0);
}

TEST(PipelineManagerTest, RedeploySwapsModelAndOptimizer) {
  CostModel cost;
  auto manager = MakeManager(&cost);
  auto new_model = std::make_unique<LinearModel>(manager->model().options());
  new_model->set_bias(42.0);
  auto new_optimizer = MakeOptimizer(OptimizerOptions{});
  manager->Redeploy(std::move(new_model), std::move(new_optimizer));
  EXPECT_DOUBLE_EQ(manager->model().bias(), 42.0);
  EXPECT_EQ(manager->optimizer().step_count(), 0);
}

}  // namespace
}  // namespace cdpipe
