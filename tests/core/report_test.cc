#include "src/core/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

DeploymentReport MakeReport(size_t points) {
  DeploymentReport report;
  report.strategy = "test-strategy";
  report.metric_name = "misclassification";
  for (size_t i = 0; i < points; ++i) {
    DeploymentReport::PointRow row;
    row.chunk_index = static_cast<int64_t>(i);
    row.observations = static_cast<int64_t>((i + 1) * 10);
    row.cumulative_error = 0.5 / (i + 1);
    row.windowed_error = 0.4 / (i + 1);
    row.cumulative_seconds = 0.1 * (i + 1);
    row.cumulative_work = static_cast<int64_t>((i + 1) * 100);
    report.curve.push_back(row);
  }
  report.final_error = report.curve.empty() ? 0.0
                                            : report.curve.back().cumulative_error;
  return report;
}

TEST(ReportTest, CsvHasHeaderAndOneRowPerPoint) {
  DeploymentReport report = MakeReport(5);
  const std::string csv = report.CurveToCsv();
  EXPECT_EQ(csv.rfind("chunk_index,observations,", 0), 0u);
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 6u);
}

TEST(ReportTest, CsvOfEmptyCurveIsJustHeader) {
  DeploymentReport report = MakeReport(0);
  const std::string csv = report.CurveToCsv();
  size_t lines = 0;
  for (char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1u);
}

TEST(ReportTest, SampledCurveKeepsEndpoints) {
  DeploymentReport report = MakeReport(100);
  auto sampled = report.SampledCurve(7);
  ASSERT_EQ(sampled.size(), 7u);
  EXPECT_EQ(sampled.front().chunk_index, 0);
  EXPECT_EQ(sampled.back().chunk_index, 99);
  // Strictly increasing chunk indices.
  for (size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_GT(sampled[i].chunk_index, sampled[i - 1].chunk_index);
  }
}

TEST(ReportTest, SampledCurveShortCurvePassesThrough) {
  DeploymentReport report = MakeReport(3);
  EXPECT_EQ(report.SampledCurve(10).size(), 3u);
  EXPECT_EQ(report.SampledCurve(0).size(), 3u);  // 0 = no downsampling
}

TEST(ReportTest, SampledCurveExactCount) {
  DeploymentReport report = MakeReport(10);
  EXPECT_EQ(report.SampledCurve(10).size(), 10u);
}

TEST(ReportTest, SummaryMentionsStrategyAndMetric) {
  DeploymentReport report = MakeReport(4);
  report.proactive_iterations = 7;
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("test-strategy"), std::string::npos);
  EXPECT_NE(summary.find("misclassification"), std::string::npos);
  EXPECT_NE(summary.find("proactive=7"), std::string::npos);
}

TEST(ReportTest, StreamOperatorWritesSummary) {
  DeploymentReport report = MakeReport(1);
  std::ostringstream os;
  os << report;
  EXPECT_EQ(os.str(), report.Summary());
}

}  // namespace
}  // namespace cdpipe
