#include "src/core/deployment_builder.h"

#include <gtest/gtest.h>

#include "src/data/url_stream.h"

namespace cdpipe {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  return config;
}

DeploymentBuilder FullBuilder() {
  const UrlPipelineConfig config = PipeConfig();
  DeploymentBuilder builder;
  builder.Pipeline(MakeUrlPipeline(config))
      .Model(std::make_unique<LinearModel>(MakeUrlModelOptions(config)))
      .Optimizer(MakeOptimizer(OptimizerOptions{
          .kind = OptimizerKind::kAdam, .learning_rate = 0.01}))
      .Metric(std::make_unique<MisclassificationRate>())
      .Seed(5);
  return builder;
}

std::vector<RawChunk> SmallStream(size_t chunks) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1000;
  config.initial_active_features = 100;
  config.nnz_per_record = 8;
  config.records_per_chunk = 20;
  config.seed = 3;
  UrlStreamGenerator generator(config);
  return generator.Generate(chunks);
}

TEST(DeploymentBuilderTest, MissingIngredientsRejected) {
  DeploymentBuilder empty;
  auto result = empty.BuildOnline();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(result.status().message().find("Pipeline"), std::string::npos);

  const UrlPipelineConfig config = PipeConfig();
  DeploymentBuilder partial;
  partial.Pipeline(MakeUrlPipeline(config));
  auto result2 = partial.BuildContinuous();
  ASSERT_FALSE(result2.ok());
  EXPECT_NE(result2.status().message().find("Model"), std::string::npos);
}

TEST(DeploymentBuilderTest, BuildsOnline) {
  auto deployment = FullBuilder().BuildOnline();
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  auto report = (*deployment)->Run(SmallStream(10));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->strategy, "online");
}

TEST(DeploymentBuilderTest, BuildsContinuousWithKnobs) {
  auto deployment = FullBuilder()
                        .Sampler(SamplerKind::kWindow, 8)
                        .MaterializedChunkBudget(5)
                        .ProactiveEveryChunks(3)
                        .ProactiveSampleChunks(4)
                        .EvalWindow(100)
                        .BuildContinuous();
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  auto report = (*deployment)->Run(SmallStream(12));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->strategy, "continuous");
  EXPECT_EQ(report->proactive_iterations, 4);
}

TEST(DeploymentBuilderTest, BuildsPeriodicalWithKnobs) {
  auto deployment = FullBuilder()
                        .RetrainEveryChunks(5)
                        .WarmStart(false)
                        .RetrainOptions(BatchTrainer::Options{
                            .max_epochs = 2, .batch_size = 0})
                        .BuildPeriodical();
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  auto report = (*deployment)->Run(SmallStream(12));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->strategy, "periodical");
  EXPECT_EQ(report->retrainings, 2);
}

TEST(DeploymentBuilderTest, BuildsContinuousWithDriftDetector) {
  auto deployment =
      FullBuilder()
          .DriftDetector(MakeDriftDetector(DriftDetectorKind::kPageHinkley),
                         /*burst_iterations=*/2, /*window_chunks=*/5)
          .BuildContinuous();
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  auto report = (*deployment)->Run(SmallStream(10));
  ASSERT_TRUE(report.ok());
}

TEST(DeploymentBuilderTest, SingleShotConsumption) {
  DeploymentBuilder builder = FullBuilder();
  auto first = builder.BuildOnline();
  ASSERT_TRUE(first.ok());
  // Ingredients were moved out: a second build must fail cleanly.
  auto second = builder.BuildOnline();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace cdpipe
