#include "src/core/cost_model.h"

#include <thread>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(CostModelTest, StartsEmpty) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.TotalSeconds(), 0.0);
  EXPECT_EQ(cost.TotalWork(), 0);
}

TEST(CostModelTest, AccumulatesPerPhase) {
  CostModel cost;
  cost.AddSeconds(CostPhase::kPreprocessing, 1.0);
  cost.AddSeconds(CostPhase::kPreprocessing, 0.5);
  cost.AddSeconds(CostPhase::kRetraining, 2.0);
  cost.AddWork(CostPhase::kPrediction, 100);
  EXPECT_DOUBLE_EQ(cost.SecondsIn(CostPhase::kPreprocessing), 1.5);
  EXPECT_DOUBLE_EQ(cost.SecondsIn(CostPhase::kRetraining), 2.0);
  EXPECT_DOUBLE_EQ(cost.TotalSeconds(), 3.5);
  EXPECT_EQ(cost.WorkIn(CostPhase::kPrediction), 100);
  EXPECT_EQ(cost.TotalWork(), 100);
}

TEST(CostModelTest, TrainingSecondsSumsTrainingPhases) {
  CostModel cost;
  cost.AddSeconds(CostPhase::kOnlineTraining, 1.0);
  cost.AddSeconds(CostPhase::kProactiveTraining, 2.0);
  cost.AddSeconds(CostPhase::kRetraining, 4.0);
  cost.AddSeconds(CostPhase::kPrediction, 100.0);  // not training
  EXPECT_DOUBLE_EQ(cost.TrainingSeconds(), 7.0);
}

TEST(CostModelTest, ResetClearsEverything) {
  CostModel cost;
  cost.AddSeconds(CostPhase::kPrediction, 1.0);
  cost.AddWork(CostPhase::kPrediction, 5);
  cost.Reset();
  EXPECT_DOUBLE_EQ(cost.TotalSeconds(), 0.0);
  EXPECT_EQ(cost.TotalWork(), 0);
}

TEST(CostModelTest, ScopedTimerAddsElapsed) {
  CostModel cost;
  {
    CostModel::ScopedTimer timer(&cost, CostPhase::kMaterialization);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_GT(cost.SecondsIn(CostPhase::kMaterialization), 0.010);
  EXPECT_LT(cost.SecondsIn(CostPhase::kMaterialization), 5.0);
}

TEST(CostModelTest, ToStringMentionsNonEmptyPhases) {
  CostModel cost;
  cost.AddSeconds(CostPhase::kRetraining, 1.0);
  const std::string s = cost.ToString();
  EXPECT_NE(s.find("retraining"), std::string::npos);
  EXPECT_EQ(s.find("prediction"), std::string::npos);
}

TEST(CostModelTest, PhaseNames) {
  EXPECT_STREQ(CostPhaseName(CostPhase::kPreprocessing), "preprocessing");
  EXPECT_STREQ(CostPhaseName(CostPhase::kOnlineTraining), "online-training");
  EXPECT_STREQ(CostPhaseName(CostPhase::kProactiveTraining),
               "proactive-training");
  EXPECT_STREQ(CostPhaseName(CostPhase::kRetraining), "retraining");
  EXPECT_STREQ(CostPhaseName(CostPhase::kMaterialization), "materialization");
  EXPECT_STREQ(CostPhaseName(CostPhase::kPrediction), "prediction");
}

}  // namespace
}  // namespace cdpipe
