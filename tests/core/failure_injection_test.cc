// Failure-injection integration tests: a production deployment stream is
// dirty — malformed records, empty chunks, all-anomaly chunks, chunks with
// only missing values.  The platform must keep running, keep its accounting
// consistent, and never let a bad chunk poison the deployed state.

#include <gtest/gtest.h>

#include "src/core/continuous_deployment.h"
#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"

namespace cdpipe {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  return config;
}

std::unique_ptr<ContinuousDeployment> MakeUrlDeployment() {
  Deployment::Options options;
  options.seed = 3;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 3;
  continuous.sample_chunks = 5;
  const UrlPipelineConfig config = PipeConfig();
  return std::make_unique<ContinuousDeployment>(
      std::move(options), std::move(continuous), MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());
}

RawChunk Chunk(ChunkId id, std::vector<std::string> records) {
  RawChunk chunk;
  chunk.id = id;
  chunk.event_time_seconds = id * 60;
  chunk.records = std::move(records);
  return chunk;
}

TEST(FailureInjectionTest, MalformedRecordsAreDroppedNotFatal) {
  auto deployment = MakeUrlDeployment();
  std::vector<RawChunk> stream = {
      Chunk(0, {"+1 3:1.0", "-1 5:1.0"}),
      Chunk(1, {"complete garbage", "+1 not:even:close", ""}),
      Chunk(2, {"+1 7:1.0", "<html>surprise</html>", "-1 9:2.0"}),
      Chunk(3, {"+1 999999:1.0"}),  // out-of-range index
      Chunk(4, {"+1 3:1.0"}),
  };
  auto report = deployment->Run(stream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->chunks_processed, 5);
  // Only the parseable rows were evaluated: 2 + 0 + 2 + 0 + 1.
  EXPECT_EQ(report->curve.back().observations, 5);
}

TEST(FailureInjectionTest, EmptyChunksFlowThrough) {
  auto deployment = MakeUrlDeployment();
  std::vector<RawChunk> stream = {
      Chunk(0, {"+1 3:1.0"}),
      Chunk(1, {}),  // empty chunk
      Chunk(2, {}),
      Chunk(3, {"-1 5:1.0"}),
  };
  auto report = deployment->Run(stream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->chunks_processed, 4);
  EXPECT_EQ(report->curve.back().observations, 2);
}

TEST(FailureInjectionTest, AllMissingValuesChunk) {
  auto deployment = MakeUrlDeployment();
  std::vector<RawChunk> stream = {
      Chunk(0, {"+1 3:1.0", "-1 5:2.0"}),
      Chunk(1, {"+1 3:nan 5:nan 7:nan", "-1 2:nan"}),  // nothing observed
      Chunk(2, {"+1 3:1.0"}),
  };
  auto report = deployment->Run(stream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->curve.back().observations, 5);
}

TEST(FailureInjectionTest, TaxiAllAnomalyChunkYieldsNoTraining) {
  Deployment::Options options;
  options.seed = 3;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 2;
  continuous.sample_chunks = 3;
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeTaxiPipeline(),
      std::make_unique<LinearModel>(MakeTaxiModelOptions()),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kRmsprop,
                                     .learning_rate = 0.01}),
      std::make_unique<Rmse>());

  // Chunk of trips that all violate the sanity filter (zero distance).
  RawChunk anomalies = Chunk(0, {});
  for (int i = 0; i < 10; ++i) {
    anomalies.records.push_back(
        "2015-01-01 10:00:00,2015-01-01 10:05:00,-73.97,40.75,-73.97,40.75,1");
  }
  TaxiStreamGenerator::Config config;
  config.records_per_chunk = 20;
  config.anomaly_prob = 0.0;
  config.seed = 5;
  TaxiStreamGenerator generator(config);
  RawChunk good = generator.NextChunk();
  good.id = 1;

  auto report = deployment.Run({anomalies, good});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The anomaly chunk contributed zero prequential observations.
  EXPECT_EQ(report->curve.front().observations, 0);
  EXPECT_EQ(report->curve.back().observations, 20);
}

TEST(FailureInjectionTest, DuplicateChunkIdRejectedCleanly) {
  auto deployment = MakeUrlDeployment();
  std::vector<RawChunk> stream = {
      Chunk(5, {"+1 3:1.0"}),
      Chunk(5, {"-1 5:1.0"}),  // duplicate id: ingestion must fail
  };
  auto report = deployment->Run(stream);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(FailureInjectionTest, ProactiveTrainingSurvivesSparseHistory) {
  // Only empty/garbage history: proactive iterations sample chunks whose
  // feature sets are empty; training must be a clean no-op.
  auto deployment = MakeUrlDeployment();
  std::vector<RawChunk> stream;
  for (ChunkId id = 0; id < 12; ++id) {
    stream.push_back(Chunk(id, {"garbage record"}));
  }
  auto report = deployment->Run(stream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->curve.back().observations, 0);
  EXPECT_EQ(report->proactive_iterations, 4);  // every 3 chunks
}

}  // namespace
}  // namespace cdpipe
