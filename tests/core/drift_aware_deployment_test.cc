// Integration test of the drift-alleviation extension: a continuous
// deployment with a drift detector must notice an abrupt concept change and
// respond with burst proactive training, recovering faster than a plain
// continuous deployment with uniform sampling.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/continuous_deployment.h"
#include "src/data/url_stream.h"

namespace cdpipe {
namespace {

UrlStreamGenerator::Config StreamConfig(uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 2000;
  config.initial_active_features = 200;
  config.new_features_per_chunk = 0;
  config.perturbed_weights_per_chunk = 0;
  config.nnz_per_record = 10;
  config.records_per_chunk = 40;
  config.margin_threshold = 1.5;
  config.seed = seed;
  return config;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 2000;
  config.hash_bits = 8;
  return config;
}

/// First `half` chunks from one concept, second `half` from a re-seeded
/// (disjoint) concept, ids continuous after a bootstrap prefix.
std::vector<RawChunk> AbruptStream(uint64_t seed, size_t bootstrap,
                                   size_t half) {
  UrlStreamGenerator before(StreamConfig(seed));
  before.Generate(bootstrap);  // skip the bootstrap prefix
  std::vector<RawChunk> stream = before.Generate(half);
  UrlStreamGenerator after(StreamConfig(seed + 999));
  std::vector<RawChunk> tail = after.Generate(half);
  for (size_t i = 0; i < tail.size(); ++i) {
    tail[i].id = static_cast<ChunkId>(bootstrap + half + i);
    stream.push_back(std::move(tail[i]));
  }
  return stream;
}

struct RunResult {
  DeploymentReport report;
};

RunResult RunContinuous(bool with_detector, uint64_t seed) {
  constexpr size_t kBootstrap = 10;
  constexpr size_t kHalf = 40;

  UrlStreamGenerator bootstrap_generator(StreamConfig(seed));
  const std::vector<RawChunk> bootstrap =
      bootstrap_generator.Generate(kBootstrap);
  const std::vector<RawChunk> stream = AbruptStream(seed, kBootstrap, kHalf);

  Deployment::Options options;
  options.seed = 7;
  options.eval_window = 400;
  options.sampler = SamplerKind::kUniform;  // worst case under drift
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 4;
  continuous.sample_chunks = 10;
  if (with_detector) {
    PageHinkleyDetector::Options detector;
    detector.delta = 0.01;
    detector.lambda = 0.5;  // chunk-level signal: low threshold
    detector.burn_in = 5;
    continuous.drift_detector =
        std::make_unique<PageHinkleyDetector>(detector);
    continuous.drift_burst_iterations = 4;
    continuous.drift_window_chunks = 10;
  }
  UrlPipelineConfig pipe_config = PipeConfig();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeUrlPipeline(pipe_config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());

  Status init = deployment.InitialTrain(
      bootstrap, BatchTrainer::Options{.max_epochs = 30, .batch_size = 100,
                                       .tolerance = 1e-4});
  EXPECT_TRUE(init.ok()) << init.ToString();
  auto report = deployment.Run(stream);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return {std::move(report).ValueOrDie()};
}

TEST(DriftAwareDeploymentTest, DetectsAbruptDrift) {
  RunResult result = RunContinuous(/*with_detector=*/true, 31);
  EXPECT_GE(result.report.drift_events, 1);
  EXPECT_LE(result.report.drift_events, 10);  // not a false-alarm storm
}

TEST(DriftAwareDeploymentTest, NoDetectorMeansNoEvents) {
  RunResult result = RunContinuous(/*with_detector=*/false, 31);
  EXPECT_EQ(result.report.drift_events, 0);
}

TEST(DriftAwareDeploymentTest, BurstTrainingImprovesRecovery) {
  RunResult plain = RunContinuous(/*with_detector=*/false, 31);
  RunResult aware = RunContinuous(/*with_detector=*/true, 31);
  // The drift-aware run trains more (burst iterations)...
  EXPECT_GT(aware.report.proactive_iterations,
            plain.report.proactive_iterations);
  // ...and its post-drift windowed error must not be worse.
  EXPECT_LE(aware.report.curve.back().windowed_error,
            plain.report.curve.back().windowed_error + 1e-9);
}

TEST(DriftAwareDeploymentTest, StationaryStreamStaysQuiet) {
  constexpr size_t kBootstrap = 10;
  UrlStreamGenerator generator(StreamConfig(77));
  const std::vector<RawChunk> bootstrap = generator.Generate(kBootstrap);
  const std::vector<RawChunk> stream = generator.Generate(60);

  Deployment::Options options;
  options.seed = 7;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 4;
  continuous.sample_chunks = 10;
  PageHinkleyDetector::Options detector;
  detector.delta = 0.01;
  detector.lambda = 0.5;
  detector.burn_in = 5;
  continuous.drift_detector = std::make_unique<PageHinkleyDetector>(detector);
  UrlPipelineConfig pipe_config = PipeConfig();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeUrlPipeline(pipe_config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());
  ASSERT_TRUE(deployment
                  .InitialTrain(bootstrap, BatchTrainer::Options{
                                               .max_epochs = 30,
                                               .batch_size = 100,
                                               .tolerance = 1e-4})
                  .ok());
  auto report = deployment.Run(stream);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->drift_events, 1) << "false-alarm storm on stationary data";
}

}  // namespace
}  // namespace cdpipe
