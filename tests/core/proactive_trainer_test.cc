#include "src/core/proactive_trainer.h"

#include <gtest/gtest.h>

#include "src/data/url_stream.h"
#include "tests/testing/feature_data_test_util.h"

namespace cdpipe {
namespace {

TEST(MergeFeatureDataTest, ConcatenatesRows) {
  FeatureData a;
  a.dim = 3;
  a.features.push_back(SparseVector::FromUnsorted(3, {{0, 1.0}}));
  a.labels.push_back(1.0);
  FeatureData b;
  b.dim = 3;
  b.features.push_back(SparseVector::FromUnsorted(3, {{2, 2.0}}));
  b.features.push_back(SparseVector::FromUnsorted(3, {{1, 3.0}}));
  b.labels = {-1.0, 1.0};

  FeatureData merged = testing::MergeFeatureData({&a, &b});
  EXPECT_EQ(merged.num_rows(), 3u);
  EXPECT_EQ(merged.dim, 3u);
  EXPECT_TRUE(merged.Validate().ok());
  EXPECT_DOUBLE_EQ(merged.labels[1], -1.0);
}

TEST(MergeFeatureDataTest, WidensMixedDims) {
  FeatureData narrow;
  narrow.dim = 2;
  narrow.features.push_back(SparseVector::FromUnsorted(2, {{1, 5.0}}));
  narrow.labels.push_back(1.0);
  FeatureData wide;
  wide.dim = 6;
  wide.features.push_back(SparseVector::FromUnsorted(6, {{5, 1.0}}));
  wide.labels.push_back(-1.0);

  FeatureData merged = testing::MergeFeatureData({&narrow, &wide});
  EXPECT_EQ(merged.dim, 6u);
  EXPECT_TRUE(merged.Validate().ok());
  EXPECT_DOUBLE_EQ(merged.features[0].Get(1), 5.0);
}

TEST(MergeFeatureDataTest, EmptyInput) {
  FeatureData merged = testing::MergeFeatureData({});
  EXPECT_EQ(merged.num_rows(), 0u);
  EXPECT_EQ(merged.dim, 0u);
}

class ProactiveTrainerTest : public ::testing::Test {
 protected:
  ProactiveTrainerTest()
      : engine_(1) {
    UrlPipelineConfig config;
    config.raw_dim = 1000;
    config.hash_bits = 6;
    manager_ = std::make_unique<PipelineManager>(
        MakeUrlPipeline(config),
        std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
        MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                       .learning_rate = 0.05}),
        &cost_);
  }

  RawChunk MakeChunk(ChunkId id) {
    RawChunk chunk;
    chunk.id = id;
    chunk.records = {"+1 3:1.0 5:1.0", "-1 7:2.0"};
    return chunk;
  }

  FeatureChunk Materialize(const RawChunk& chunk) {
    return std::move(manager_->Rematerialize(chunk)).ValueOrDie();
  }

  CostModel cost_;
  ExecutionEngine engine_;
  std::unique_ptr<PipelineManager> manager_;
};

TEST_F(ProactiveTrainerTest, IterationOverMaterializedSample) {
  ProactiveTrainer trainer(manager_.get(), &engine_);
  RawChunk raw = MakeChunk(0);
  FeatureChunk features = Materialize(raw);
  DataManager::SampleSet sample;
  sample.materialized = {&features};

  ASSERT_TRUE(trainer.RunIteration(sample).ok());
  EXPECT_EQ(trainer.stats().iterations, 1);
  EXPECT_EQ(trainer.stats().rows_trained, 2);
  EXPECT_EQ(trainer.stats().chunks_rematerialized, 0);
  EXPECT_EQ(manager_->optimizer().step_count(), 1);
  EXPECT_GT(trainer.stats().last_duration_seconds, 0.0);
}

TEST_F(ProactiveTrainerTest, IterationRematerializesEvictedChunks) {
  ProactiveTrainer trainer(manager_.get(), &engine_);
  RawChunk raw0 = MakeChunk(0);
  RawChunk raw1 = MakeChunk(1);
  FeatureChunk features = Materialize(raw0);
  DataManager::SampleSet sample;
  sample.materialized = {&features};
  sample.to_rematerialize = {&raw1};

  ASSERT_TRUE(trainer.RunIteration(sample).ok());
  EXPECT_EQ(trainer.stats().chunks_rematerialized, 1);
  EXPECT_EQ(trainer.stats().rows_trained, 4);
  EXPECT_GT(cost_.WorkIn(CostPhase::kMaterialization), 0);
  EXPECT_GT(cost_.WorkIn(CostPhase::kProactiveTraining), 0);
}

TEST_F(ProactiveTrainerTest, EachIterationIsOneSgdStep) {
  // Iterations of proactive training are conditionally independent: each
  // one is exactly one optimizer step regardless of spacing (§3.3).
  ProactiveTrainer trainer(manager_.get(), &engine_);
  RawChunk raw = MakeChunk(0);
  FeatureChunk features = Materialize(raw);
  DataManager::SampleSet sample;
  sample.materialized = {&features};
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(trainer.RunIteration(sample).ok());
    EXPECT_EQ(manager_->optimizer().step_count(), i);
  }
  EXPECT_EQ(trainer.stats().iterations, 5);
  EXPECT_GT(trainer.stats().AverageDurationSeconds(), 0.0);
}

TEST_F(ProactiveTrainerTest, EmptySampleIsNoOp) {
  ProactiveTrainer trainer(manager_.get(), &engine_);
  DataManager::SampleSet sample;
  ASSERT_TRUE(trainer.RunIteration(sample).ok());
  EXPECT_EQ(trainer.stats().iterations, 1);
  EXPECT_EQ(manager_->optimizer().step_count(), 0);
}

TEST_F(ProactiveTrainerTest, ParallelRematerializationMatchesSerial) {
  ExecutionEngine parallel_engine(4);
  ProactiveTrainer serial(manager_.get(), &engine_);
  RawChunk raw0 = MakeChunk(0);
  RawChunk raw1 = MakeChunk(1);
  RawChunk raw2 = MakeChunk(2);
  DataManager::SampleSet sample;
  sample.to_rematerialize = {&raw0, &raw1, &raw2};
  ASSERT_TRUE(serial.RunIteration(sample).ok());
  const double weights_after_serial = manager_->model().weights().L2Norm();

  ProactiveTrainer parallel(manager_.get(), &parallel_engine);
  ASSERT_TRUE(parallel.RunIteration(sample).ok());
  // Both ran one iteration over the same merged batch; weights moved again
  // but the mechanism is identical.
  EXPECT_EQ(manager_->optimizer().step_count(), 2);
  EXPECT_NE(weights_after_serial, 0.0);
}

}  // namespace
}  // namespace cdpipe
