#include "src/core/admission.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace {

RawChunk MakeChunk(ChunkId id) {
  RawChunk chunk;
  chunk.id = id;
  chunk.records.push_back("+1 1:0.5");
  return chunk;
}

AdmissionController::Decision Offer(AdmissionController* admission,
                                    ChunkId id, double arrival) {
  RawChunk chunk = MakeChunk(id);
  return admission->Offer(&chunk, arrival);
}

TEST(AdmissionControllerTest, AdmitsFifoAndTracksVirtualCompletionTimes) {
  AdmissionController::Options options;
  options.queue_capacity = 8;
  options.service_seconds_per_chunk = 2.0;
  AdmissionController admission(options);

  for (ChunkId id = 1; id <= 4; ++id) {
    EXPECT_EQ(Offer(&admission, id, static_cast<double>(id)),
              AdmissionController::Decision::kAdmitted);
  }
  EXPECT_EQ(admission.depth(), 4u);

  // FIFO order; the drain clock serializes service: chunk 1 completes at
  // 1+2=3, chunk 2 at max(3, 2)+2=5, then 7, 9.
  const double expected_completions[] = {3.0, 5.0, 7.0, 9.0};
  for (ChunkId id = 1; id <= 4; ++id) {
    ASSERT_FALSE(admission.empty());
    AdmissionController::Admitted admitted = admission.Pop();
    EXPECT_EQ(admitted.chunk.id, id);
    EXPECT_FALSE(admitted.degraded);
    EXPECT_DOUBLE_EQ(admitted.completion_seconds,
                     expected_completions[id - 1]);
  }
  EXPECT_TRUE(admission.empty());
  EXPECT_EQ(admission.counters().offered, 4);
  EXPECT_EQ(admission.counters().admitted, 4);
  EXPECT_EQ(admission.counters().shed, 0);
  EXPECT_EQ(admission.counters().peak_queue_depth, 4);
}

TEST(AdmissionControllerTest, WatermarkStateMachineHasHysteresis) {
  AdmissionController::Options options;
  options.queue_capacity = 8;  // defaults: high = 6, low = 2
  options.policy = AdmissionPolicy::kShedNewest;
  AdmissionController admission(options);

  // Depth 1..2: normal.  3..5: pressured.  6: overloaded.
  for (ChunkId id = 1; id <= 2; ++id) Offer(&admission, id, 0.0);
  EXPECT_EQ(admission.state(), LoadState::kNormal);
  Offer(&admission, 3, 0.0);
  EXPECT_EQ(admission.state(), LoadState::kPressured);
  for (ChunkId id = 4; id <= 6; ++id) Offer(&admission, id, 0.0);
  EXPECT_EQ(admission.state(), LoadState::kOverloaded);

  // Draining through the mid-band keeps the overload verdict sticky.
  admission.Pop();  // depth 5
  admission.Pop();  // depth 4
  admission.Pop();  // depth 3
  EXPECT_EQ(admission.state(), LoadState::kOverloaded);
  admission.Pop();  // depth 2 == low watermark
  EXPECT_EQ(admission.state(), LoadState::kNormal);

  // normal -> pressured -> overloaded -> normal = 3 transitions.
  EXPECT_EQ(admission.counters().pressure_changes, 3);
}

TEST(AdmissionControllerTest, ShedOldestDisplacesQueueHead) {
  AdmissionController::Options options;
  options.queue_capacity = 2;
  options.high_watermark = 2;
  options.low_watermark = 1;
  options.policy = AdmissionPolicy::kShedOldest;
  AdmissionController admission(options);

  Offer(&admission, 1, 0.0);
  Offer(&admission, 2, 0.0);
  EXPECT_EQ(Offer(&admission, 3, 0.0),
            AdmissionController::Decision::kAdmittedReplacedOldest);

  EXPECT_EQ(admission.Pop().chunk.id, 2);
  EXPECT_EQ(admission.Pop().chunk.id, 3);
  EXPECT_EQ(admission.counters().offered, 3);
  EXPECT_EQ(admission.counters().admitted, 3);
  EXPECT_EQ(admission.counters().shed, 1);
  EXPECT_EQ(admission.counters().shed_oldest, 1);
  // chunks processed == admitted - shed_oldest.
  EXPECT_EQ(admission.counters().admitted - admission.counters().shed_oldest,
            2);
}

TEST(AdmissionControllerTest, ShedNewestDropsArrivalAndLeavesChunkIntact) {
  AdmissionController::Options options;
  options.queue_capacity = 2;
  options.high_watermark = 2;
  options.low_watermark = 1;
  options.policy = AdmissionPolicy::kShedNewest;
  AdmissionController admission(options);

  Offer(&admission, 1, 0.0);
  Offer(&admission, 2, 0.0);
  RawChunk arrival = MakeChunk(3);
  EXPECT_EQ(admission.Offer(&arrival, 0.0),
            AdmissionController::Decision::kShed);
  EXPECT_EQ(arrival.id, 3);  // untouched on shed
  EXPECT_EQ(arrival.num_rows(), 1u);

  EXPECT_EQ(admission.counters().shed_newest, 1);
  EXPECT_EQ(admission.counters().offered,
            admission.counters().admitted + admission.counters().shed_newest +
                admission.counters().shed_timeout);
}

TEST(AdmissionControllerTest, DegradePolicyFlagsAdmitsUnderPressure) {
  AdmissionController::Options options;
  options.queue_capacity = 4;
  options.high_watermark = 3;
  options.low_watermark = 1;
  options.policy = AdmissionPolicy::kDegrade;
  AdmissionController admission(options);

  // First three offers happen at normal/pressured states rising; the state
  // seen *at offer time* decides the flag.
  EXPECT_EQ(Offer(&admission, 1, 0.0),
            AdmissionController::Decision::kAdmitted);  // state was normal
  EXPECT_EQ(Offer(&admission, 2, 0.0),
            AdmissionController::Decision::kAdmitted);  // still normal
  EXPECT_EQ(Offer(&admission, 3, 0.0),
            AdmissionController::Decision::kAdmittedDegraded);  // pressured
  EXPECT_EQ(Offer(&admission, 4, 0.0),
            AdmissionController::Decision::kAdmittedDegraded);  // overloaded
  EXPECT_EQ(admission.counters().degraded_admits, 2);

  // Capacity stays a hard bound: the fifth arrival is shed, not queued.
  EXPECT_EQ(Offer(&admission, 5, 0.0),
            AdmissionController::Decision::kShed);
  EXPECT_EQ(admission.counters().shed_newest, 1);
  EXPECT_EQ(admission.depth(), 4u);

  EXPECT_FALSE(admission.Pop().degraded);
  EXPECT_FALSE(admission.Pop().degraded);
  EXPECT_TRUE(admission.Pop().degraded);
  EXPECT_TRUE(admission.Pop().degraded);
}

TEST(AdmissionControllerTest, BlockPolicyWouldBlockUntilVirtualDrain) {
  AdmissionController::Options options;
  options.queue_capacity = 2;
  options.high_watermark = 2;
  options.low_watermark = 1;
  options.policy = AdmissionPolicy::kBlock;
  options.service_seconds_per_chunk = 1.0;
  AdmissionController admission(options);

  Offer(&admission, 1, 0.0);
  Offer(&admission, 2, 0.0);
  RawChunk blocked = MakeChunk(3);
  EXPECT_EQ(admission.Offer(&blocked, 0.0),
            AdmissionController::Decision::kWouldBlock);
  // kWouldBlock is not an offer: re-offering must not double count.
  EXPECT_EQ(admission.counters().offered, 2);

  // The producer virtually waits for the head's completion, then re-offers
  // at that time.
  EXPECT_DOUBLE_EQ(admission.HeadCompletionSeconds(), 1.0);
  AdmissionController::Admitted head = admission.Pop();
  EXPECT_DOUBLE_EQ(head.completion_seconds, 1.0);
  EXPECT_EQ(admission.Offer(&blocked, head.completion_seconds),
            AdmissionController::Decision::kAdmitted);
  EXPECT_EQ(admission.counters().offered, 3);
  EXPECT_DOUBLE_EQ(admission.drain_free_at(), 1.0);
}

TEST(AdmissionControllerTest, ShedBlockedAccountsTimeoutSheds) {
  AdmissionController::Options options;
  options.queue_capacity = 2;
  options.high_watermark = 2;
  options.low_watermark = 1;
  AdmissionController admission(options);

  Offer(&admission, 1, 0.0);
  Offer(&admission, 2, 0.0);
  admission.ShedBlocked(3);
  EXPECT_EQ(admission.counters().offered, 3);
  EXPECT_EQ(admission.counters().shed, 1);
  EXPECT_EQ(admission.counters().shed_timeout, 1);
  EXPECT_EQ(admission.counters().offered,
            admission.counters().admitted + admission.counters().shed_newest +
                admission.counters().shed_timeout);
}

TEST(AdmissionControllerTest, ArrivalClockIsClampedMonotonic) {
  AdmissionController::Options options;
  options.queue_capacity = 4;
  options.service_seconds_per_chunk = 1.0;
  AdmissionController admission(options);

  Offer(&admission, 1, 10.0);
  // An out-of-order arrival timestamp is clamped to the last offer time.
  Offer(&admission, 2, 5.0);
  admission.Pop();  // completes at 11
  AdmissionController::Admitted second = admission.Pop();
  // Chunk 2's effective arrival is 10, service starts at drain 11.
  EXPECT_DOUBLE_EQ(second.completion_seconds, 12.0);
}

TEST(AdmissionControllerTest, DestructorResetsReadinessGauges) {
  obs::Gauge* load_state =
      obs::MetricsRegistry::Global().GetGauge("ingest.load_state");
  obs::Gauge* depth =
      obs::MetricsRegistry::Global().GetGauge("ingest.queue_depth");
  {
    AdmissionController::Options options;
    options.queue_capacity = 2;
    options.high_watermark = 2;
    options.low_watermark = 1;
    options.policy = AdmissionPolicy::kShedNewest;
    AdmissionController admission(options);
    Offer(&admission, 1, 0.0);
    Offer(&admission, 2, 0.0);
    EXPECT_DOUBLE_EQ(load_state->Value(), 2.0);
    EXPECT_DOUBLE_EQ(depth->Value(), 2.0);
  }
  // A stale overload verdict must never outlive the run (/readyz reads
  // this gauge).
  EXPECT_DOUBLE_EQ(load_state->Value(), 0.0);
  EXPECT_DOUBLE_EQ(depth->Value(), 0.0);
}

TEST(AdmissionControllerTest, DefaultsAndNamesAreStable) {
  AdmissionController admission(AdmissionController::Options{});
  EXPECT_EQ(admission.options().queue_capacity, 8u);
  EXPECT_EQ(admission.options().high_watermark, 6u);
  EXPECT_EQ(admission.options().low_watermark, 2u);

  EXPECT_STREQ(LoadStateName(LoadState::kNormal), "normal");
  EXPECT_STREQ(LoadStateName(LoadState::kPressured), "pressured");
  EXPECT_STREQ(LoadStateName(LoadState::kOverloaded), "overloaded");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kBlock), "block");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kShedOldest),
               "shed_oldest");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kShedNewest),
               "shed_newest");
  EXPECT_STREQ(AdmissionPolicyName(AdmissionPolicy::kDegrade), "degrade");
}

}  // namespace
}  // namespace cdpipe
