#include "src/core/data_manager.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

FeatureChunk MakeFeatures(ChunkId id) {
  FeatureChunk chunk;
  chunk.origin_id = id;
  chunk.data.dim = 2;
  chunk.data.features.push_back(SparseVector::FromUnsorted(2, {{0, 1.0}}));
  chunk.data.labels.push_back(1.0);
  return chunk;
}

DataManager MakeManager(size_t max_materialized = SIZE_MAX) {
  ChunkStore::Options store;
  store.max_materialized_chunks = max_materialized;
  return DataManager(store, MakeSampler(SamplerKind::kUniform));
}

TEST(DataManagerTest, IngestAssignsSequentialIds) {
  DataManager manager = MakeManager();
  auto id0 = manager.IngestRecords({"a"}, 0);
  auto id1 = manager.IngestRecords({"b"}, 60);
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id0, 0);
  EXPECT_EQ(*id1, 1);
  EXPECT_EQ(manager.next_id(), 2);
  EXPECT_EQ(manager.store().num_raw(), 2u);
}

TEST(DataManagerTest, IngestChunkRespectsIdOrdering) {
  DataManager manager = MakeManager();
  RawChunk chunk;
  chunk.id = 5;
  chunk.records = {"x"};
  ASSERT_TRUE(manager.IngestChunk(chunk).ok());
  EXPECT_EQ(manager.next_id(), 6);
  RawChunk stale;
  stale.id = 2;
  stale.records = {"y"};
  EXPECT_FALSE(manager.IngestChunk(stale).ok());
}

TEST(DataManagerTest, SampleOnEmptyStoreFails) {
  DataManager manager = MakeManager();
  Rng rng(1);
  EXPECT_FALSE(manager.SampleForTraining(3, &rng).ok());
}

TEST(DataManagerTest, SampleSplitsByMaterialization) {
  DataManager manager = MakeManager(/*max_materialized=*/2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(manager.IngestRecords({"r"}, i * 60).ok());
    ASSERT_TRUE(manager.StoreFeatures(MakeFeatures(i)).ok());
  }
  // Chunks 0,1 evicted; 2,3 materialized.
  Rng rng(2);
  auto sample = manager.SampleForTraining(4, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_chunks(), 4u);
  EXPECT_EQ(sample->materialized.size(), 2u);
  EXPECT_EQ(sample->to_rematerialize.size(), 2u);
  for (const FeatureChunk* chunk : sample->materialized) {
    EXPECT_GE(chunk->origin_id, 2);
  }
  for (const RawChunk* chunk : sample->to_rematerialize) {
    EXPECT_LT(chunk->id, 2);
  }
  EXPECT_EQ(manager.store().counters().SampleHits(), 2);
  EXPECT_EQ(manager.store().counters().sample_misses, 2);
}

TEST(DataManagerTest, SampleSmallerThanStore) {
  DataManager manager = MakeManager();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(manager.IngestRecords({"r"}, i).ok());
  }
  Rng rng(3);
  auto sample = manager.SampleForTraining(4, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_chunks(), 4u);
}

TEST(DataManagerTest, SetSamplerSwitchesStrategy) {
  DataManager manager = MakeManager();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(manager.IngestRecords({"r"}, i).ok());
  }
  manager.set_sampler(std::make_unique<WindowSampler>(5));
  EXPECT_EQ(manager.sampler().kind(), SamplerKind::kWindow);
  Rng rng(4);
  auto sample = manager.SampleForTraining(3, &rng);
  ASSERT_TRUE(sample.ok());
  for (const RawChunk* chunk : sample->to_rematerialize) {
    EXPECT_GE(chunk->id, 95);
  }
}

}  // namespace
}  // namespace cdpipe
