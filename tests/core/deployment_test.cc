// Integration tests of the three deployment strategies over a small
// synthetic URL stream: the paper's qualitative claims must hold even at
// toy scale — periodical costs far more work than continuous, continuous
// beats online on quality under drift, and μ accounting matches the
// storage configuration.

#include "src/core/deployment.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/continuous_deployment.h"
#include "src/core/online_deployment.h"
#include "src/scheduler/scheduler.h"
#include "src/core/periodical_deployment.h"
#include "src/data/url_stream.h"

namespace cdpipe {
namespace {

constexpr size_t kBootstrapChunks = 10;
constexpr size_t kStreamChunks = 60;

UrlStreamGenerator::Config StreamConfig() {
  UrlStreamGenerator::Config config;
  config.feature_dim = 2000;
  config.initial_active_features = 200;
  config.new_features_per_chunk = 1;
  config.perturbed_weights_per_chunk = 20;
  config.drift_step = 0.05;
  config.nnz_per_record = 10;
  config.records_per_chunk = 30;
  config.seed = 123;
  return config;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 2000;
  config.hash_bits = 8;
  return config;
}

Deployment::Options BaseOptions() {
  Deployment::Options options;
  options.eval_window = 500;
  options.seed = 99;
  return options;
}

struct Pieces {
  std::unique_ptr<Pipeline> pipeline;
  std::unique_ptr<LinearModel> model;
  std::unique_ptr<Optimizer> optimizer;
  std::unique_ptr<Metric> metric;
};

Pieces MakePieces() {
  UrlPipelineConfig config = PipeConfig();
  Pieces pieces;
  pieces.pipeline = MakeUrlPipeline(config);
  pieces.model = std::make_unique<LinearModel>(MakeUrlModelOptions(config));
  pieces.optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.02});
  pieces.metric = std::make_unique<MisclassificationRate>();
  return pieces;
}

BatchTrainer::Options InitialTrainOptions() {
  BatchTrainer::Options options;
  options.max_epochs = 10;
  options.batch_size = 0;  // batch gradient descent, as in the paper
  options.tolerance = 1e-4;
  return options;
}

DeploymentReport RunStrategy(Deployment* deployment,
                             const std::vector<RawChunk>& bootstrap,
                             const std::vector<RawChunk>& stream) {
  Status init = deployment->InitialTrain(bootstrap, InitialTrainOptions());
  EXPECT_TRUE(init.ok()) << init.ToString();
  auto report = deployment->Run(stream);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).ValueOrDie();
}

class DeploymentIntegrationTest : public ::testing::Test {
 protected:
  DeploymentIntegrationTest() {
    UrlStreamGenerator generator(StreamConfig());
    bootstrap_ = generator.Generate(kBootstrapChunks);
    stream_ = generator.Generate(kStreamChunks);
  }

  std::vector<RawChunk> bootstrap_;
  std::vector<RawChunk> stream_;
};

TEST_F(DeploymentIntegrationTest, OnlineDeploymentRuns) {
  Pieces p = MakePieces();
  OnlineDeployment deployment(BaseOptions(), std::move(p.pipeline),
                              std::move(p.model), std::move(p.optimizer),
                              std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_EQ(report.strategy, "online");
  EXPECT_EQ(report.chunks_processed, static_cast<int64_t>(kStreamChunks));
  EXPECT_EQ(report.curve.size(), kStreamChunks);
  EXPECT_EQ(report.proactive_iterations, 0);
  EXPECT_EQ(report.retrainings, 0);
  // Online visits each arriving point exactly once for training.
  EXPECT_EQ(report.cost.WorkIn(CostPhase::kOnlineTraining),
            static_cast<int64_t>(kStreamChunks * 30));
  // The model must do visibly better than chance (0.5).
  EXPECT_LT(report.final_error, 0.4);
}

TEST_F(DeploymentIntegrationTest, ContinuousDeploymentRunsProactively) {
  Pieces p = MakePieces();
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 5;
  continuous.sample_chunks = 8;
  ContinuousDeployment deployment(BaseOptions(), std::move(continuous),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_EQ(report.strategy, "continuous");
  EXPECT_EQ(report.proactive_iterations,
            static_cast<int64_t>(kStreamChunks / 5));
  EXPECT_GT(report.cost.WorkIn(CostPhase::kProactiveTraining), 0);
  EXPECT_GT(report.average_proactive_seconds, 0.0);
  // Everything stays materialized with unbounded storage: μ = 1.
  EXPECT_DOUBLE_EQ(report.empirical_mu, 1.0);
  EXPECT_LT(report.final_error, 0.4);
}

TEST_F(DeploymentIntegrationTest, ContinuousWithBoundedStorageRematerializes) {
  Pieces p = MakePieces();
  Deployment::Options options = BaseOptions();
  options.store.max_materialized_chunks = 10;
  options.sampler = SamplerKind::kUniform;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 5;
  continuous.sample_chunks = 20;
  ContinuousDeployment deployment(std::move(options), std::move(continuous),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_GT(report.storage.sample_misses, 0);
  EXPECT_GT(report.cost.WorkIn(CostPhase::kMaterialization), 0);
  EXPECT_LT(report.empirical_mu, 1.0);
  EXPECT_GT(report.empirical_mu, 0.0);
}

TEST_F(DeploymentIntegrationTest, PeriodicalDeploymentRetrains) {
  Pieces p = MakePieces();
  Deployment::Options options = BaseOptions();
  // Authentic periodical platform: no feature materialization.
  options.store.max_materialized_chunks = 0;
  PeriodicalDeployment::PeriodicalOptions periodical;
  periodical.retrain_every_chunks = 20;
  periodical.warm_start = true;
  periodical.retrain = InitialTrainOptions();
  PeriodicalDeployment deployment(std::move(options), std::move(periodical),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_EQ(report.retrainings, static_cast<int64_t>(kStreamChunks / 20));
  EXPECT_GT(report.cost.WorkIn(CostPhase::kRetraining), 0);
  EXPECT_GT(report.cost.WorkIn(CostPhase::kMaterialization), 0);
  EXPECT_LT(report.final_error, 0.4);
}

TEST_F(DeploymentIntegrationTest, PeriodicalCostsMoreWorkThanContinuous) {
  // The paper's headline: periodical deployment pays a far larger training
  // bill than continuous for the same stream.
  Pieces pc = MakePieces();
  ContinuousDeployment::ContinuousOptions continuous_options;
  continuous_options.proactive_every_chunks = 5;
  continuous_options.sample_chunks = 8;
  ContinuousDeployment continuous(
      BaseOptions(), std::move(continuous_options), std::move(pc.pipeline),
      std::move(pc.model), std::move(pc.optimizer), std::move(pc.metric));
  DeploymentReport continuous_report =
      RunStrategy(&continuous, bootstrap_, stream_);

  Pieces pp = MakePieces();
  Deployment::Options periodical_base = BaseOptions();
  periodical_base.store.max_materialized_chunks = 0;
  PeriodicalDeployment::PeriodicalOptions periodical_options;
  periodical_options.retrain_every_chunks = 20;
  periodical_options.retrain = InitialTrainOptions();
  PeriodicalDeployment periodical(
      std::move(periodical_base), std::move(periodical_options),
      std::move(pp.pipeline), std::move(pp.model), std::move(pp.optimizer),
      std::move(pp.metric));
  DeploymentReport periodical_report =
      RunStrategy(&periodical, bootstrap_, stream_);

  EXPECT_GT(periodical_report.total_work, 2 * continuous_report.total_work);
}

TEST_F(DeploymentIntegrationTest, CurvesAreMonotoneInCostAndObservations) {
  Pieces p = MakePieces();
  OnlineDeployment deployment(BaseOptions(), std::move(p.pipeline),
                              std::move(p.model), std::move(p.optimizer),
                              std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  for (size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_GE(report.curve[i].cumulative_seconds,
              report.curve[i - 1].cumulative_seconds);
    EXPECT_GE(report.curve[i].cumulative_work,
              report.curve[i - 1].cumulative_work);
    EXPECT_GE(report.curve[i].observations,
              report.curve[i - 1].observations);
  }
}

TEST_F(DeploymentIntegrationTest, ReportSerialization) {
  Pieces p = MakePieces();
  OnlineDeployment deployment(BaseOptions(), std::move(p.pipeline),
                              std::move(p.model), std::move(p.optimizer),
                              std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  const std::string csv = report.CurveToCsv();
  EXPECT_NE(csv.find("chunk_index,"), std::string::npos);
  // Header + one line per chunk.
  EXPECT_EQ(static_cast<size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            kStreamChunks + 1);
  auto sampled = report.SampledCurve(10);
  EXPECT_EQ(sampled.size(), 10u);
  EXPECT_EQ(sampled.front().chunk_index, report.curve.front().chunk_index);
  EXPECT_EQ(sampled.back().chunk_index, report.curve.back().chunk_index);
  EXPECT_NE(report.Summary().find("online"), std::string::npos);
}

TEST_F(DeploymentIntegrationTest, BoundedRawStorageKeepsRunning) {
  // With a bounded raw log (N in the paper's analysis), dropped chunks are
  // simply no longer sampleable; the deployment must keep running and the
  // sampler must never hand out dead ids.
  Pieces p = MakePieces();
  Deployment::Options options = BaseOptions();
  options.store.max_raw_chunks = 15;
  options.store.max_materialized_chunks = 8;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 3;
  continuous.sample_chunks = 20;  // more than the live chunk bound
  ContinuousDeployment deployment(std::move(options), std::move(continuous),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_EQ(report.chunks_processed, static_cast<int64_t>(kStreamChunks));
  EXPECT_EQ(std::as_const(deployment).data_manager().store().num_raw(), 15u);
  EXPECT_GT(report.storage.raw_dropped, 0);
  EXPECT_GT(report.proactive_iterations, 0);
}

TEST_F(DeploymentIntegrationTest, DynamicSchedulerDrivesProactiveTraining) {
  // Event-time driven dynamic scheduling (formula 6) fed by the measured
  // prediction load: with our microsecond-scale prediction latency the
  // computed delay collapses to min_interval, so proactive training runs
  // at chunk cadence — but entirely through the scheduler path.
  Pieces p = MakePieces();
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.sample_chunks = 8;
  DynamicScheduler::Options dynamic;
  dynamic.slack = 1.5;
  dynamic.initial_interval_seconds = 60.0;
  dynamic.min_interval_seconds = 60.0;  // one chunk period
  continuous.scheduler = std::make_unique<DynamicScheduler>(dynamic);
  ContinuousDeployment deployment(BaseOptions(), std::move(continuous),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_GT(report.proactive_iterations, 0);
  EXPECT_LE(report.proactive_iterations,
            static_cast<int64_t>(kStreamChunks));
}

TEST_F(DeploymentIntegrationTest, VeloxStyleErrorThresholdTriggersRetraining) {
  // With an absurdly low threshold, the error trigger fires as soon as the
  // cool-down allows, independent of the (long) fixed interval.
  Pieces p = MakePieces();
  Deployment::Options options = BaseOptions();
  options.store.max_materialized_chunks = 0;
  PeriodicalDeployment::PeriodicalOptions periodical;
  periodical.retrain_every_chunks = 1000;  // never by interval
  periodical.retrain = InitialTrainOptions();
  periodical.retrain_error_threshold = 1e-6;
  periodical.min_chunks_between_retrains = 20;
  PeriodicalDeployment deployment(std::move(options), std::move(periodical),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  // 60 chunks, cool-down 20: exactly 3 threshold-triggered retrainings.
  EXPECT_EQ(report.retrainings, 3);
}

TEST_F(DeploymentIntegrationTest, VeloxTriggerStaysQuietWhenErrorIsLow) {
  Pieces p = MakePieces();
  Deployment::Options options = BaseOptions();
  options.store.max_materialized_chunks = 0;
  PeriodicalDeployment::PeriodicalOptions periodical;
  periodical.retrain_every_chunks = 1000;
  periodical.retrain = InitialTrainOptions();
  periodical.retrain_error_threshold = 0.99;  // unreachable
  PeriodicalDeployment deployment(std::move(options), std::move(periodical),
                                  std::move(p.pipeline), std::move(p.model),
                                  std::move(p.optimizer),
                                  std::move(p.metric));
  DeploymentReport report = RunStrategy(&deployment, bootstrap_, stream_);
  EXPECT_EQ(report.retrainings, 0);
}

TEST_F(DeploymentIntegrationTest, ParallelEngineMatchesSingleThread) {
  // Re-materialization fan-out is pure and merged in sample order, so a
  // multi-threaded engine must produce the identical deployment outcome.
  auto run_with_threads = [&](size_t threads) {
    Pieces p = MakePieces();
    Deployment::Options options = BaseOptions();
    options.engine_threads = threads;
    options.store.max_materialized_chunks = 10;  // force re-materialization
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.proactive_every_chunks = 4;
    continuous.sample_chunks = 15;
    ContinuousDeployment deployment(
        std::move(options), std::move(continuous), std::move(p.pipeline),
        std::move(p.model), std::move(p.optimizer), std::move(p.metric));
    return RunStrategy(&deployment, bootstrap_, stream_).final_error;
  };
  EXPECT_DOUBLE_EQ(run_with_threads(1), run_with_threads(4));
}

TEST_F(DeploymentIntegrationTest, NoOptimizationCostsMoreThanOptimized) {
  // §5.4's baseline: disabling online statistics computation (and the
  // feature cache) forces statistics recomputation on every sampled chunk;
  // the same stream must cost strictly more work at identical sampling.
  auto run = [&](bool online_statistics, size_t max_materialized) {
    Pieces p = MakePieces();
    Deployment::Options options = BaseOptions();
    options.online_statistics = online_statistics;
    options.store.max_materialized_chunks = max_materialized;
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.proactive_every_chunks = 4;
    continuous.sample_chunks = 15;
    ContinuousDeployment deployment(
        std::move(options), std::move(continuous), std::move(p.pipeline),
        std::move(p.model), std::move(p.optimizer), std::move(p.metric));
    return RunStrategy(&deployment, bootstrap_, stream_);
  };
  DeploymentReport optimized = run(true, SIZE_MAX);
  DeploymentReport no_cache = run(true, 0);
  DeploymentReport no_opt = run(false, 0);
  EXPECT_GT(no_cache.total_work, optimized.total_work);
  EXPECT_GT(no_opt.total_work, no_cache.total_work);
  // Quality is essentially unaffected.  It is not bit-identical: a cached
  // feature chunk is frozen with the statistics as of its arrival, while a
  // re-materialized chunk is transformed with the *current* statistics —
  // an intentional property of dynamic materialization (§3.2).
  EXPECT_NEAR(no_cache.final_error, optimized.final_error, 0.05);
}

TEST_F(DeploymentIntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    Pieces p = MakePieces();
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.proactive_every_chunks = 5;
    continuous.sample_chunks = 8;
    ContinuousDeployment deployment(
        BaseOptions(), std::move(continuous), std::move(p.pipeline),
        std::move(p.model), std::move(p.optimizer), std::move(p.metric));
    return RunStrategy(&deployment, bootstrap_, stream_).final_error;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cdpipe
