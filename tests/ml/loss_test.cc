#include "src/ml/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(SquaredLossTest, ValueAndGradient) {
  LossGrad lg = EvalLoss(LossKind::kSquared, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(lg.loss, 2.0);         // 0.5 * 2^2
  EXPECT_DOUBLE_EQ(lg.dloss_dpred, 2.0);  // p - y

  lg = EvalLoss(LossKind::kSquared, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
  EXPECT_DOUBLE_EQ(lg.dloss_dpred, 0.0);
}

TEST(HingeLossTest, CorrectSideOfMarginHasZeroLoss) {
  LossGrad lg = EvalLoss(LossKind::kHinge, 2.0, 1.0);  // margin 2 >= 1
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
  EXPECT_DOUBLE_EQ(lg.dloss_dpred, 0.0);
  lg = EvalLoss(LossKind::kHinge, -3.0, -1.0);  // margin 3 >= 1
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
}

TEST(HingeLossTest, InsideMarginPenalized) {
  LossGrad lg = EvalLoss(LossKind::kHinge, 0.5, 1.0);  // margin 0.5
  EXPECT_DOUBLE_EQ(lg.loss, 0.5);
  EXPECT_DOUBLE_EQ(lg.dloss_dpred, -1.0);
  lg = EvalLoss(LossKind::kHinge, 0.5, -1.0);  // wrong side, margin -0.5
  EXPECT_DOUBLE_EQ(lg.loss, 1.5);
  EXPECT_DOUBLE_EQ(lg.dloss_dpred, 1.0);
}

TEST(LogisticLossTest, ValueMatchesClosedForm) {
  const double p = 0.7;
  const double y = 1.0;
  LossGrad lg = EvalLoss(LossKind::kLogistic, p, y);
  EXPECT_NEAR(lg.loss, std::log(1.0 + std::exp(-y * p)), 1e-12);
  EXPECT_NEAR(lg.dloss_dpred, -y * Sigmoid(-y * p), 1e-12);
}

TEST(LogisticLossTest, StableForExtremeMargins) {
  LossGrad lg = EvalLoss(LossKind::kLogistic, 1000.0, 1.0);
  EXPECT_NEAR(lg.loss, 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(lg.dloss_dpred));
  lg = EvalLoss(LossKind::kLogistic, -1000.0, 1.0);
  EXPECT_NEAR(lg.loss, 1000.0, 1e-9);
  EXPECT_NEAR(lg.dloss_dpred, -1.0, 1e-9);
  EXPECT_TRUE(std::isfinite(lg.loss));
}

TEST(SigmoidTest, SymmetryAndRange) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(5.0) + Sigmoid(-5.0), 1.0, 1e-12);
  EXPECT_GT(Sigmoid(100.0), 0.999);
  EXPECT_LT(Sigmoid(-100.0), 0.001);
}

// Property: the analytic gradient matches a central finite difference.
class LossGradientPropertyTest : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossGradientPropertyTest, MatchesFiniteDifference) {
  const LossKind kind = GetParam();
  const double eps = 1e-6;
  for (double label : {-1.0, 1.0, 2.5}) {
    if (kind != LossKind::kSquared && label == 2.5) continue;
    for (double pred : {-2.0, -0.3, 0.0, 0.4, 1.7}) {
      // Skip the hinge kink where the derivative is undefined.
      if (kind == LossKind::kHinge && std::abs(label * pred - 1.0) < 1e-3) {
        continue;
      }
      const double up = EvalLoss(kind, pred + eps, label).loss;
      const double down = EvalLoss(kind, pred - eps, label).loss;
      const double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(EvalLoss(kind, pred, label).dloss_dpred, numeric, 1e-5)
          << LossKindName(kind) << " pred=" << pred << " label=" << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradientPropertyTest,
                         ::testing::Values(LossKind::kSquared,
                                           LossKind::kHinge,
                                           LossKind::kLogistic));

TEST(LossKindTest, Names) {
  EXPECT_STREQ(LossKindName(LossKind::kSquared), "squared");
  EXPECT_STREQ(LossKindName(LossKind::kHinge), "hinge");
  EXPECT_STREQ(LossKindName(LossKind::kLogistic), "logistic");
}

}  // namespace
}  // namespace cdpipe
