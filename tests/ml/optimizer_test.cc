#include "src/ml/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

OptimizerOptions OptionsFor(OptimizerKind kind, double lr = 0.1) {
  OptimizerOptions options;
  options.kind = kind;
  options.learning_rate = lr;
  return options;
}

TEST(SgdOptimizerTest, PlainStep) {
  auto opt = MakeOptimizer(OptionsFor(OptimizerKind::kSgd, 0.5));
  DenseVector w(3);
  double bias = 0.0;
  opt->Step({{0, 2.0}, {2, -4.0}}, 1.0, &w, &bias);
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.0);
  EXPECT_DOUBLE_EQ(w[2], 2.0);
  EXPECT_DOUBLE_EQ(bias, -0.5);
  EXPECT_EQ(opt->step_count(), 1);
}

TEST(SgdOptimizerTest, DecaySchedule) {
  OptimizerOptions options = OptionsFor(OptimizerKind::kSgd, 1.0);
  options.decay = 1.0;  // eta_t = 1 / (1 + (t-1))
  auto opt = MakeOptimizer(options);
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);  // eta = 1
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);  // eta = 0.5
  EXPECT_DOUBLE_EQ(w[0], -1.5);
}

TEST(MomentumOptimizerTest, VelocityAccumulates) {
  OptimizerOptions options = OptionsFor(OptimizerKind::kMomentum, 1.0);
  options.momentum = 0.5;
  auto opt = MakeOptimizer(options);
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);  // v = 1, w = -1
  EXPECT_DOUBLE_EQ(w[0], -1.0);
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);  // v = 1.5, w = -2.5
  EXPECT_DOUBLE_EQ(w[0], -2.5);
}

TEST(MomentumOptimizerTest, LazyCatchupMatchesDenseUpdates) {
  // Coordinate 1 gets gradient only at steps 1 and 4; a dense momentum
  // implementation would keep pushing it by the decaying velocity at steps
  // 2 and 3.  The lazy implementation must produce the same weight.
  OptimizerOptions options = OptionsFor(OptimizerKind::kMomentum, 0.1);
  options.momentum = 0.9;
  auto lazy = MakeOptimizer(options);
  DenseVector w_lazy(2);
  double b_lazy = 0.0;
  lazy->Step({{0, 1.0}, {1, 2.0}}, 0.0, &w_lazy, &b_lazy);
  lazy->Step({{0, 1.0}}, 0.0, &w_lazy, &b_lazy);
  lazy->Step({{0, 1.0}}, 0.0, &w_lazy, &b_lazy);
  lazy->Step({{0, 1.0}, {1, 0.5}}, 0.0, &w_lazy, &b_lazy);

  // Dense reference for coordinate 1.
  double v = 0.0;
  double w_ref = 0.0;
  const double gamma = 0.9;
  const double eta = 0.1;
  for (double g : {2.0, 0.0, 0.0, 0.5}) {
    v = gamma * v + eta * g;
    w_ref -= v;
  }
  EXPECT_NEAR(w_lazy[1], w_ref, 1e-12);
}

TEST(AdamOptimizerTest, FirstStepHasLearningRateMagnitude) {
  // With bias correction, the first Adam step is ~lr * sign(g).
  auto opt = MakeOptimizer(OptionsFor(OptimizerKind::kAdam, 0.01));
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 123.0}}, -7.0, &w, &bias);
  EXPECT_NEAR(w[0], -0.01, 1e-6);
  EXPECT_NEAR(bias, 0.01, 1e-6);
}

TEST(AdamOptimizerTest, AdaptsPerCoordinate) {
  auto opt = MakeOptimizer(OptionsFor(OptimizerKind::kAdam, 0.01));
  DenseVector w(2);
  double bias = 0.0;
  // Coordinate 0 gets consistent large gradients, coordinate 1 small ones;
  // Adam normalizes, so both should move by comparable magnitudes.
  for (int i = 0; i < 10; ++i) {
    opt->Step({{0, 100.0}, {1, 0.001}}, 0.0, &w, &bias);
  }
  EXPECT_GT(std::abs(w[0]), 0.0);
  EXPECT_GT(std::abs(w[1]), 0.0);
  EXPECT_LT(std::abs(w[0]) / std::abs(w[1]), 3.0);
}

TEST(RmspropOptimizerTest, NormalizesByRms) {
  OptimizerOptions options = OptionsFor(OptimizerKind::kRmsprop, 0.1);
  options.rho = 0.0;  // mean_square == g^2 -> update = lr * sign(g)
  auto opt = MakeOptimizer(options);
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 50.0}}, 0.0, &w, &bias);
  EXPECT_NEAR(w[0], -0.1, 1e-6);
  opt->Step({{0, -50.0}}, 0.0, &w, &bias);
  EXPECT_NEAR(w[0], 0.0, 1e-5);
}

TEST(AdadeltaOptimizerTest, MovesWithoutLearningRate) {
  auto opt = MakeOptimizer(OptionsFor(OptimizerKind::kAdadelta));
  DenseVector w(1);
  double bias = 0.0;
  for (int i = 0; i < 5; ++i) opt->Step({{0, 1.0}}, 1.0, &w, &bias);
  EXPECT_LT(w[0], 0.0);
  EXPECT_LT(bias, 0.0);
}

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {};

// Property: every optimizer minimizes the 1-D quadratic 0.5(w-3)^2.
TEST_P(OptimizerConvergenceTest, MinimizesQuadratic) {
  OptimizerOptions options = OptionsFor(GetParam(), 0.05);
  options.rho = 0.9;
  auto opt = MakeOptimizer(options);
  DenseVector w(1);
  double bias = 0.0;
  for (int i = 0; i < 3000; ++i) {
    opt->Step({{0, w[0] - 3.0}}, 0.0, &w, &bias);
  }
  // AdaDelta converges slowly by design; accept a looser tolerance.
  const double tol = GetParam() == OptimizerKind::kAdadelta ? 1.0 : 0.05;
  EXPECT_NEAR(w[0], 3.0, tol) << OptimizerKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kRmsprop,
                                           OptimizerKind::kAdadelta));

class OptimizerCloneTest : public ::testing::TestWithParam<OptimizerKind> {};

// Property: Clone carries the adaptation state — the clone and the original
// produce identical updates afterwards (the basis of warm starting).
TEST_P(OptimizerCloneTest, CloneReproducesOriginal) {
  auto original = MakeOptimizer(OptionsFor(GetParam(), 0.1));
  DenseVector w(2);
  double bias = 0.0;
  for (int i = 0; i < 5; ++i) {
    original->Step({{0, 1.0}, {1, -0.5}}, 0.3, &w, &bias);
  }
  auto clone = original->Clone();
  EXPECT_EQ(clone->step_count(), original->step_count());

  DenseVector w1 = w;
  DenseVector w2 = w;
  double b1 = bias;
  double b2 = bias;
  original->Step({{0, 0.7}, {1, 0.2}}, -0.1, &w1, &b1);
  clone->Step({{0, 0.7}, {1, 0.2}}, -0.1, &w2, &b2);
  EXPECT_DOUBLE_EQ(w1[0], w2[0]);
  EXPECT_DOUBLE_EQ(w1[1], w2[1]);
  EXPECT_DOUBLE_EQ(b1, b2);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerCloneTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kRmsprop,
                                           OptimizerKind::kAdadelta));

class OptimizerResetTest : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerResetTest, ResetClearsStepCountAndState) {
  auto opt = MakeOptimizer(OptionsFor(GetParam(), 0.1));
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);
  opt->Reset();
  EXPECT_EQ(opt->step_count(), 0);

  // After reset, the first update must match a fresh optimizer's.
  auto fresh = MakeOptimizer(OptionsFor(GetParam(), 0.1));
  DenseVector w1(1);
  DenseVector w2(1);
  double b1 = 0.0;
  double b2 = 0.0;
  opt->Step({{0, 2.0}}, 0.0, &w1, &b1);
  fresh->Step({{0, 2.0}}, 0.0, &w2, &b2);
  EXPECT_DOUBLE_EQ(w1[0], w2[0]);
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerResetTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kRmsprop,
                                           OptimizerKind::kAdadelta));

TEST(OptimizerTest, GrowsStateForNewCoordinates) {
  auto opt = MakeOptimizer(OptionsFor(OptimizerKind::kAdam, 0.01));
  DenseVector w(1);
  double bias = 0.0;
  opt->Step({{0, 1.0}}, 0.0, &w, &bias);
  // A much larger coordinate appears later (growing feature space).
  w.Resize(1000);
  opt->Step({{999, 1.0}}, 0.0, &w, &bias);
  EXPECT_LT(w[999], 0.0);
}

TEST(OptimizerTest, KindNamesAndFactory) {
  for (OptimizerKind kind :
       {OptimizerKind::kSgd, OptimizerKind::kMomentum, OptimizerKind::kAdam,
        OptimizerKind::kRmsprop, OptimizerKind::kAdadelta}) {
    auto opt = MakeOptimizer(OptionsFor(kind));
    EXPECT_EQ(opt->kind(), kind);
    EXPECT_EQ(opt->name(), OptimizerKindName(kind));
  }
}

}  // namespace
}  // namespace cdpipe
