#include "src/ml/trainer.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace cdpipe {
namespace {

// y = 3 x0 - 1 x1 + 0.5, noise-free.
FeatureData MakeLinearData(Rng* rng, size_t n) {
  FeatureData out;
  out.dim = 2;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng->NextGaussian();
    const double x1 = rng->NextGaussian();
    out.features.push_back(
        SparseVector::FromUnsorted(2, {{0, x0}, {1, x1}}));
    out.labels.push_back(3 * x0 - x1 + 0.5);
  }
  return out;
}

TEST(BatchTrainerTest, FitsLinearRegression) {
  Rng rng(5);
  FeatureData data = MakeLinearData(&rng, 500);
  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                         .l2_reg = 0.0,
                                         .fit_bias = true,
                                         .initial_dim = 2});
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                            .learning_rate = 0.05});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 200,
                                             .batch_size = 50,
                                             .tolerance = 1e-6,
                                             .compute_final_loss = true});
  auto stats = trainer.Train({&data}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NEAR(model.weights()[0], 3.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.05);
  EXPECT_NEAR(model.bias(), 0.5, 0.05);
  EXPECT_LT(stats->final_loss, 0.01);
  EXPECT_GT(stats->sgd_iterations, 0);
  EXPECT_GT(stats->examples_visited, 0);
}

TEST(BatchTrainerTest, FinalLossScanIsOptIn) {
  Rng rng(5);
  FeatureData data = MakeLinearData(&rng, 100);
  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                         .initial_dim = 2});
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                            .learning_rate = 0.05});
  // Default options: no full-dataset loss pass at end of Train.
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 5,
                                             .batch_size = 20,
                                             .tolerance = 0.0});
  auto stats = trainer.Train({&data}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->final_loss, 0.0);
}

TEST(BatchTrainerTest, FullBatchModeUsesOneIterationPerEpoch) {
  Rng rng(6);
  FeatureData data = MakeLinearData(&rng, 100);
  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                         .initial_dim = 2});
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kSgd,
                                            .learning_rate = 0.1});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 7,
                                             .batch_size = 0,  // full batch
                                             .tolerance = 0.0});
  auto stats = trainer.Train({&data}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epochs_run, 7);
  EXPECT_EQ(stats->sgd_iterations, 7);
  EXPECT_EQ(stats->examples_visited, 700);
}

TEST(BatchTrainerTest, ConvergenceStopsEarly) {
  Rng rng(7);
  FeatureData data = MakeLinearData(&rng, 200);
  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                         .initial_dim = 2});
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                            .learning_rate = 0.1});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 10000,
                                             .batch_size = 0,
                                             .tolerance = 1e-5});
  auto stats = trainer.Train({&data}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->converged);
  EXPECT_LT(stats->epochs_run, 10000);
}

TEST(BatchTrainerTest, TrainsAcrossMultipleChunksWithMixedDims) {
  Rng rng(8);
  FeatureData chunk1 = MakeLinearData(&rng, 50);
  FeatureData chunk2 = MakeLinearData(&rng, 50);
  chunk2.dim = 3;  // widen nominal dim; indices unchanged
  for (auto& f : chunk2.features) {
    f = std::move(SparseVector::FromSorted(
                      3, std::vector<uint32_t>(f.indices()),
                      std::vector<double>(f.values())))
            .ValueOrDie();
  }
  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared});
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                            .learning_rate = 0.05});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 100,
                                             .batch_size = 32});
  auto stats = trainer.Train({&chunk1, &chunk2}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(model.dim(), 3u);
  EXPECT_NEAR(model.weights()[0], 3.0, 0.15);
}

TEST(BatchTrainerTest, EmptyInputReturnsZeroStats) {
  Rng rng(9);
  LinearModel model(LinearModel::Options{});
  auto opt = MakeOptimizer(OptimizerOptions{});
  BatchTrainer trainer(BatchTrainer::Options{});
  auto stats = trainer.Train({}, &model, opt.get(), &rng);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epochs_run, 0);
  EXPECT_EQ(stats->sgd_iterations, 0);
}

TEST(BatchTrainerTest, NullChunkRejected) {
  Rng rng(10);
  LinearModel model(LinearModel::Options{});
  auto opt = MakeOptimizer(OptimizerOptions{});
  BatchTrainer trainer(BatchTrainer::Options{});
  EXPECT_FALSE(trainer.Train({nullptr}, &model, opt.get(), &rng).ok());
}

TEST(BatchTrainerTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    Rng data_rng(11);
    FeatureData data = MakeLinearData(&data_rng, 100);
    LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                           .initial_dim = 2});
    auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                              .learning_rate = 0.05});
    BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 5,
                                               .batch_size = 10,
                                               .tolerance = 0.0});
    Rng rng(seed);
    EXPECT_TRUE(trainer.Train({&data}, &model, opt.get(), &rng).ok());
    return model.weights()[0];
  };
  EXPECT_DOUBLE_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace cdpipe
