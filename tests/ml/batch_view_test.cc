#include "src/ml/batch_view.h"

#include <vector>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

FeatureData MakeChunk(uint32_t dim, std::vector<double> labels) {
  FeatureData chunk;
  chunk.dim = dim;
  for (size_t r = 0; r < labels.size(); ++r) {
    chunk.features.push_back(SparseVector::FromUnsorted(
        dim, {{static_cast<uint32_t>(r % dim), 1.0 + static_cast<double>(r)}}));
    chunk.labels.push_back(labels[r]);
  }
  return chunk;
}

TEST(BatchViewTest, CollectRowsFlattensChunkThenRowOrder) {
  FeatureData a = MakeChunk(4, {1.0, 2.0});
  FeatureData b = MakeChunk(4, {3.0});
  auto rows = BatchView::CollectRows({&a, &b}, nullptr);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  const BatchView view(4, *rows);
  EXPECT_EQ(view.num_rows(), 3u);
  EXPECT_FALSE(view.empty());
  EXPECT_DOUBLE_EQ(view.label(0), 1.0);
  EXPECT_DOUBLE_EQ(view.label(1), 2.0);
  EXPECT_DOUBLE_EQ(view.label(2), 3.0);
  // feature(i) is a reference into the owning chunk, not a copy.
  EXPECT_EQ(&view.feature(0), &a.features[0]);
  EXPECT_EQ(&view.feature(2), &b.features[0]);
}

TEST(BatchViewTest, CollectRowsReportsMaxNominalDim) {
  FeatureData narrow = MakeChunk(4, {1.0});
  FeatureData wide = MakeChunk(9, {1.0, -1.0});
  uint32_t dim = 0;
  auto rows = BatchView::CollectRows({&narrow, &wide}, &dim);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(dim, 9u);

  // Dim widening is just a number on the view: rows from the narrow chunk
  // keep their original SparseVector (no reallocation).
  const BatchView view(dim, *rows);
  EXPECT_EQ(view.dim(), 9u);
  EXPECT_EQ(view.feature(0).dim(), 4u);
}

TEST(BatchViewTest, CollectRowsRejectsNullChunk) {
  FeatureData a = MakeChunk(4, {1.0});
  auto rows = BatchView::CollectRows({&a, nullptr}, nullptr);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchViewTest, CollectRowsRejectsMalformedChunk) {
  FeatureData bad = MakeChunk(4, {1.0, -1.0});
  bad.labels.pop_back();  // rows/labels length mismatch
  auto rows = BatchView::CollectRows({&bad}, nullptr);
  EXPECT_FALSE(rows.ok());
}

TEST(BatchViewTest, EmptyViewAndEmptyChunks) {
  const BatchView empty(0, nullptr, 0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.num_rows(), 0u);

  uint32_t dim = 123;
  auto rows = BatchView::CollectRows({}, &dim);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(dim, 0u);
}

TEST(BatchViewTest, SubrangeConstructionSlicesRowArray) {
  FeatureData a = MakeChunk(4, {1.0, 2.0, 3.0, 4.0, 5.0});
  auto rows = BatchView::CollectRows({&a}, nullptr);
  ASSERT_TRUE(rows.ok());
  // Mini-batch style: a window into the collected row array.
  const BatchView batch(4, rows->data() + 1, 3);
  ASSERT_EQ(batch.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(batch.label(0), 2.0);
  EXPECT_DOUBLE_EQ(batch.label(2), 4.0);
}

}  // namespace
}  // namespace cdpipe
