// End-to-end coverage of the logistic-regression path: the third loss kind
// the platform supports (the paper leverages Spark MLlib's
// LogisticRegression class).

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/ml/linear_model.h"
#include "src/ml/loss.h"
#include "src/ml/trainer.h"

namespace cdpipe {
namespace {

FeatureData MakeSeparableData(Rng* rng, size_t n) {
  // True separator: 1.5 x0 - x1 + 0.5 > 0; labels in {-1, +1}.
  FeatureData out;
  out.dim = 2;
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng->NextGaussian();
    const double x1 = rng->NextGaussian();
    out.features.push_back(SparseVector::FromUnsorted(2, {{0, x0}, {1, x1}}));
    out.labels.push_back(1.5 * x0 - x1 + 0.5 > 0 ? 1.0 : -1.0);
  }
  return out;
}

TEST(LogisticRegressionTest, LearnsSeparableProblem) {
  Rng rng(13);
  FeatureData train = MakeSeparableData(&rng, 800);
  FeatureData test = MakeSeparableData(&rng, 400);

  LinearModel model(LinearModel::Options{.loss = LossKind::kLogistic,
                                         .l2_reg = 1e-4,
                                         .initial_dim = 2});
  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.05});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 60,
                                             .batch_size = 64,
                                             .tolerance = 1e-5});
  auto stats = trainer.Train({&train}, &model, optimizer.get(), &rng);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  int errors = 0;
  for (size_t r = 0; r < test.num_rows(); ++r) {
    if (model.PredictLabel(test.features[r]) != test.labels[r]) ++errors;
  }
  EXPECT_LT(errors, 20);  // < 5%
}

TEST(LogisticRegressionTest, MarginMapsToCalibratedProbability) {
  Rng rng(14);
  FeatureData train = MakeSeparableData(&rng, 800);
  LinearModel model(LinearModel::Options{.loss = LossKind::kLogistic,
                                         .l2_reg = 1e-3,
                                         .initial_dim = 2});
  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.05});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 60,
                                             .batch_size = 64});
  ASSERT_TRUE(trainer.Train({&train}, &model, optimizer.get(), &rng).ok());

  // Points deep on the positive side get probability ~1; deep negative ~0;
  // Sigmoid(margin) is the posterior.
  const double p_positive =
      Sigmoid(model.Predict(SparseVector::FromUnsorted(2, {{0, 3.0}, {1, -3.0}})));
  const double p_negative =
      Sigmoid(model.Predict(SparseVector::FromUnsorted(2, {{0, -3.0}, {1, 3.0}})));
  EXPECT_GT(p_positive, 0.9);
  EXPECT_LT(p_negative, 0.1);
}

TEST(LogisticRegressionTest, LogisticLossDecreasesDuringTraining) {
  Rng rng(15);
  FeatureData train = MakeSeparableData(&rng, 500);
  LinearModel model(LinearModel::Options{.loss = LossKind::kLogistic,
                                         .initial_dim = 2});
  const double loss_before = std::move(model.AverageLoss(train)).ValueOrDie();
  EXPECT_NEAR(loss_before, std::log(2.0), 1e-9);  // untrained: log 2

  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.05});
  BatchTrainer trainer(BatchTrainer::Options{.max_epochs = 30,
                                             .batch_size = 64});
  ASSERT_TRUE(trainer.Train({&train}, &model, optimizer.get(), &rng).ok());
  const double loss_after = std::move(model.AverageLoss(train)).ValueOrDie();
  EXPECT_LT(loss_after, loss_before / 2.0);
}

}  // namespace
}  // namespace cdpipe
