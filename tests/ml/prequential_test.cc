#include "src/ml/prequential.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(PrequentialTest, CumulativeTracksMetric) {
  PrequentialEvaluator eval(std::make_unique<MisclassificationRate>());
  eval.Observe(1.0, 1.0);
  eval.Observe(-1.0, 1.0);
  EXPECT_EQ(eval.Count(), 2);
  EXPECT_DOUBLE_EQ(eval.CumulativeValue(), 0.5);
  EXPECT_EQ(eval.metric_name(), "misclassification");
}

TEST(PrequentialTest, WindowDisabledFallsBackToCumulative) {
  PrequentialEvaluator eval(std::make_unique<MisclassificationRate>(), 0);
  eval.Observe(-1.0, 1.0);
  EXPECT_DOUBLE_EQ(eval.WindowedValue(), eval.CumulativeValue());
}

TEST(PrequentialTest, WindowedForgetsOldErrors) {
  PrequentialEvaluator eval(std::make_unique<MisclassificationRate>(), 100);
  // First 100 observations are all wrong.
  for (int i = 0; i < 100; ++i) eval.Observe(-1.0, 1.0);
  // Next 400 are all right.
  for (int i = 0; i < 400; ++i) eval.Observe(1.0, 1.0);
  EXPECT_NEAR(eval.CumulativeValue(), 0.2, 1e-9);
  EXPECT_LT(eval.WindowedValue(), 0.05);  // the window has moved on
}

TEST(PrequentialTest, WindowedSeesRecentDegradation) {
  PrequentialEvaluator eval(std::make_unique<MisclassificationRate>(), 100);
  for (int i = 0; i < 1000; ++i) eval.Observe(1.0, 1.0);
  for (int i = 0; i < 100; ++i) eval.Observe(-1.0, 1.0);
  EXPECT_LT(eval.CumulativeValue(), 0.15);
  EXPECT_GT(eval.WindowedValue(), 0.6);  // drift visible in the window
}

TEST(PrequentialTest, RecordPointBuildsCurve) {
  PrequentialEvaluator eval(std::make_unique<Rmse>());
  eval.Observe(1.0, 2.0);
  eval.RecordPoint();
  eval.Observe(2.0, 2.0);
  eval.RecordPoint();
  ASSERT_EQ(eval.curve().size(), 2u);
  EXPECT_EQ(eval.curve()[0].observations, 1);
  EXPECT_EQ(eval.curve()[1].observations, 2);
  EXPECT_DOUBLE_EQ(eval.curve()[0].cumulative, 1.0);
  EXPECT_NEAR(eval.curve()[1].cumulative, std::sqrt(0.5), 1e-12);
}

TEST(PrequentialTest, EmptyEvaluatorIsZero) {
  PrequentialEvaluator eval(std::make_unique<Rmse>(), 10);
  EXPECT_EQ(eval.Count(), 0);
  EXPECT_DOUBLE_EQ(eval.CumulativeValue(), 0.0);
  EXPECT_DOUBLE_EQ(eval.WindowedValue(), 0.0);
}

}  // namespace
}  // namespace cdpipe
