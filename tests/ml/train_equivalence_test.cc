// Equivalence suite for the zero-copy training path: the BatchView-based
// sharded trainer must produce *bit-identical* weights and bias to the
// legacy copy path.  Both paths feed the same deterministic gradient
// kernel — shard count depends only on the row count and shard partials
// merge in fixed shard order — so any divergence is a bug, not roundoff.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/proactive_trainer.h"
#include "src/engine/execution_engine.h"
#include "src/ml/batch_view.h"
#include "src/ml/trainer.h"
#include "src/sampling/sampler.h"
#include "tests/testing/feature_data_test_util.h"

namespace cdpipe {
namespace {

// Sparse chunk with `rows` rows of ~`nnz` entries; every `empty_every`-th
// row has nnz=0.  Labels in {-1, +1}.
FeatureData MakeChunk(uint32_t dim, size_t rows, size_t nnz, uint64_t seed,
                      size_t empty_every = 0) {
  Rng rng(seed);
  FeatureData chunk;
  chunk.dim = dim;
  for (size_t r = 0; r < rows; ++r) {
    std::vector<std::pair<uint32_t, double>> entries;
    if (empty_every == 0 || (r + 1) % empty_every != 0) {
      for (size_t k = 0; k < nnz; ++k) {
        entries.push_back(
            {static_cast<uint32_t>(rng.NextUint64() % dim), rng.NextGaussian()});
      }
    }
    chunk.features.push_back(SparseVector::FromUnsorted(dim, std::move(entries)));
    chunk.labels.push_back(rng.NextUint64() % 2 == 0 ? 1.0 : -1.0);
  }
  return chunk;
}

struct TrainedParams {
  std::vector<double> weights;
  double bias = 0.0;
};

TrainedParams TrainOnce(const std::vector<const FeatureData*>& parts,
                        LossKind loss, bool legacy_copy,
                        ExecutionEngine* engine) {
  LinearModel model(LinearModel::Options{.loss = loss, .l2_reg = 1e-3});
  auto optimizer = MakeOptimizer(
      OptimizerOptions{.kind = OptimizerKind::kAdam, .learning_rate = 0.02});
  BatchTrainer trainer(BatchTrainer::Options{
      .max_epochs = 4,
      .batch_size = 100,
      .tolerance = 0.0,
      .shuffle = true,
      .use_legacy_copy_path = legacy_copy});
  Rng rng(7);
  auto stats = trainer.Train(parts, &model, optimizer.get(), &rng, engine);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  TrainedParams params;
  params.weights = model.weights().values();
  params.bias = model.bias();
  return params;
}

void ExpectBitIdentical(const TrainedParams& a, const TrainedParams& b) {
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i << " diverged";
  }
  EXPECT_EQ(a.bias, b.bias);
}

class TrainPathEquivalenceTest
    : public ::testing::TestWithParam<LossKind> {};

TEST_P(TrainPathEquivalenceTest, ShardedViewMatchesLegacyCopyOnMixedDims) {
  // Mixed nominal dims (a grown one-hot dictionary), empty rows, and enough
  // rows (> 256) that the gradient kernel actually shards.
  FeatureData a = MakeChunk(40, 300, 5, 1, /*empty_every=*/7);
  FeatureData b = MakeChunk(64, 300, 5, 2);
  FeatureData c = MakeChunk(64, 57, 5, 3, /*empty_every=*/3);
  std::vector<const FeatureData*> parts = {&a, &b, &c};

  ExecutionEngine engine(4);
  TrainedParams legacy = TrainOnce(parts, GetParam(), /*legacy=*/true, nullptr);
  TrainedParams view_serial =
      TrainOnce(parts, GetParam(), /*legacy=*/false, nullptr);
  TrainedParams view_sharded =
      TrainOnce(parts, GetParam(), /*legacy=*/false, &engine);

  ExpectBitIdentical(legacy, view_serial);
  ExpectBitIdentical(legacy, view_sharded);
}

INSTANTIATE_TEST_SUITE_P(Losses, TrainPathEquivalenceTest,
                         ::testing::Values(LossKind::kSquared,
                                           LossKind::kHinge,
                                           LossKind::kLogistic));

// Proactive-style equivalence: per-iteration SGD over sampler-drawn chunk
// subsets, merged copy path vs zero-copy view path, uniform and window
// samplers.
class SamplerDrivenEquivalenceTest
    : public ::testing::TestWithParam<SamplerKind> {};

TEST_P(SamplerDrivenEquivalenceTest, IterationsMatchMergedCopyPath) {
  std::vector<FeatureData> chunks;
  std::vector<ChunkId> ids;
  for (uint64_t c = 0; c < 12; ++c) {
    // Dims grow over time like a real one-hot dictionary.
    chunks.push_back(MakeChunk(32 + 4 * static_cast<uint32_t>(c), 80, 4,
                               100 + c, /*empty_every=*/11));
    ids.push_back(static_cast<ChunkId>(c));
  }
  std::unique_ptr<Sampler> sampler =
      GetParam() == SamplerKind::kWindow
          ? std::unique_ptr<Sampler>(std::make_unique<WindowSampler>(6))
          : std::unique_ptr<Sampler>(std::make_unique<UniformSampler>());

  LinearModel copy_model(LinearModel::Options{.loss = LossKind::kHinge});
  LinearModel view_model(LinearModel::Options{.loss = LossKind::kHinge});
  auto copy_opt = MakeOptimizer(OptimizerOptions{});
  auto view_opt = MakeOptimizer(OptimizerOptions{});
  ExecutionEngine engine(3);

  Rng copy_rng(5);
  Rng view_rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    const std::vector<ChunkId> copy_ids = sampler->Sample(ids, 5, &copy_rng);
    const std::vector<ChunkId> view_ids = sampler->Sample(ids, 5, &view_rng);
    ASSERT_EQ(copy_ids, view_ids);
    std::vector<const FeatureData*> parts;
    for (ChunkId id : copy_ids) parts.push_back(&chunks[id]);

    // Copy path: merge into one FeatureData, serial update.
    FeatureData merged = testing::MergeFeatureData(parts);
    copy_model.EnsureDim(merged.dim);
    ASSERT_TRUE(copy_model.Update(merged, copy_opt.get()).ok());

    // View path: zero-copy, sharded across the engine.
    uint32_t dim = 0;
    auto rows = BatchView::CollectRows(parts, &dim);
    ASSERT_TRUE(rows.ok());
    const BatchView batch(dim, *rows);
    view_model.EnsureDim(dim);
    ASSERT_TRUE(view_model.Update(batch, view_opt.get(), &engine).ok());

    ASSERT_EQ(copy_model.dim(), view_model.dim());
    for (uint32_t i = 0; i < copy_model.dim(); ++i) {
      ASSERT_EQ(copy_model.weights()[i], view_model.weights()[i])
          << "iteration " << iter << " weight " << i;
    }
    ASSERT_EQ(copy_model.bias(), view_model.bias()) << "iteration " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Samplers, SamplerDrivenEquivalenceTest,
                         ::testing::Values(SamplerKind::kUniform,
                                           SamplerKind::kWindow));

TEST(ShardedGradientTest, MatchesSerialGradientBitwise) {
  // Direct kernel check at a row count that produces several shards.
  FeatureData chunk = MakeChunk(128, 2000, 8, 9, /*empty_every=*/13);
  std::vector<const FeatureData*> parts = {&chunk};
  uint32_t dim = 0;
  auto rows = BatchView::CollectRows(parts, &dim);
  ASSERT_TRUE(rows.ok());
  const BatchView batch(dim, *rows);

  LinearModel model(LinearModel::Options{.loss = LossKind::kSquared,
                                         .l2_reg = 0.01,
                                         .initial_dim = 128});
  ExecutionEngine engine(4);
  std::vector<GradEntry> serial_grad, sharded_grad;
  double serial_bias = 0.0, sharded_bias = 0.0;
  ASSERT_TRUE(
      model.ComputeGradient(batch, &serial_grad, &serial_bias, nullptr).ok());
  ASSERT_TRUE(
      model.ComputeGradient(batch, &sharded_grad, &sharded_bias, &engine).ok());

  ASSERT_EQ(serial_grad.size(), sharded_grad.size());
  for (size_t i = 0; i < serial_grad.size(); ++i) {
    EXPECT_EQ(serial_grad[i].index, sharded_grad[i].index);
    EXPECT_EQ(serial_grad[i].value, sharded_grad[i].value);
  }
  EXPECT_EQ(serial_bias, sharded_bias);
}

TEST(ShardedGradientTest, ViewGradientMatchesFeatureDataGradient) {
  FeatureData chunk = MakeChunk(64, 120, 6, 11);
  std::vector<const FeatureData*> parts = {&chunk};
  uint32_t dim = 0;
  auto rows = BatchView::CollectRows(parts, &dim);
  ASSERT_TRUE(rows.ok());

  LinearModel model(
      LinearModel::Options{.loss = LossKind::kLogistic, .initial_dim = 64});
  std::vector<GradEntry> legacy_grad, view_grad;
  double legacy_bias = 0.0, view_bias = 0.0;
  ASSERT_TRUE(model.ComputeGradient(chunk, &legacy_grad, &legacy_bias).ok());
  ASSERT_TRUE(model
                  .ComputeGradient(BatchView(dim, *rows), &view_grad,
                                   &view_bias, nullptr)
                  .ok());
  ASSERT_EQ(legacy_grad.size(), view_grad.size());
  for (size_t i = 0; i < legacy_grad.size(); ++i) {
    EXPECT_EQ(legacy_grad[i].index, view_grad[i].index);
    EXPECT_EQ(legacy_grad[i].value, view_grad[i].value);
  }
  EXPECT_EQ(legacy_bias, view_bias);
}

}  // namespace
}  // namespace cdpipe
