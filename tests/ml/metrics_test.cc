#include "src/ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(MisclassificationTest, CountsSignDisagreements) {
  MisclassificationRate metric;
  EXPECT_DOUBLE_EQ(metric.Value(), 0.0);  // empty
  metric.Add(0.7, 1.0);    // correct
  metric.Add(-0.2, 1.0);   // wrong
  metric.Add(-3.0, -1.0);  // correct
  metric.Add(0.1, -1.0);   // wrong
  EXPECT_EQ(metric.Count(), 4);
  EXPECT_DOUBLE_EQ(metric.Value(), 0.5);
}

TEST(MisclassificationTest, MarginZeroCountsAsPositive) {
  MisclassificationRate metric;
  metric.Add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(metric.Value(), 0.0);
  metric.Add(0.0, -1.0);
  EXPECT_DOUBLE_EQ(metric.Value(), 0.5);
}

TEST(RmseTest, MatchesClosedForm) {
  Rmse metric;
  metric.Add(1.0, 3.0);  // err 2
  metric.Add(5.0, 1.0);  // err 4
  EXPECT_DOUBLE_EQ(metric.Value(), std::sqrt((4.0 + 16.0) / 2.0));
}

TEST(RmseTest, PerfectPredictionsGiveZero) {
  Rmse metric;
  for (int i = 0; i < 5; ++i) metric.Add(i, i);
  EXPECT_DOUBLE_EQ(metric.Value(), 0.0);
}

TEST(RmsleTest, MatchesClosedForm) {
  Rmsle metric;
  metric.Add(std::expm1(2.0), std::expm1(1.0));
  // log1p of both: 2 and 1 -> error 1.
  EXPECT_NEAR(metric.Value(), 1.0, 1e-12);
}

TEST(RmsleTest, ClampsNegativePredictions) {
  Rmsle metric;
  metric.Add(-5.0, 0.0);  // clamp to 0 -> error 0
  EXPECT_DOUBLE_EQ(metric.Value(), 0.0);
}

TEST(RmsleEqualsRmseInLogSpace, Property) {
  // RMSE over log1p-space values equals RMSLE over raw-space values — the
  // identity the Taxi pipeline relies on.
  Rmse log_space;
  Rmsle raw_space;
  const double preds[] = {10.0, 300.0, 4000.0};
  const double labels[] = {12.0, 250.0, 5000.0};
  for (int i = 0; i < 3; ++i) {
    log_space.Add(std::log1p(preds[i]), std::log1p(labels[i]));
    raw_space.Add(preds[i], labels[i]);
  }
  EXPECT_NEAR(log_space.Value(), raw_space.Value(), 1e-12);
}

TEST(MaeTest, MeanAbsoluteError) {
  MeanAbsoluteError metric;
  metric.Add(1.0, 4.0);
  metric.Add(2.0, 1.0);
  EXPECT_DOUBLE_EQ(metric.Value(), 2.0);
}

template <typename M>
void CheckResetAndClone() {
  M metric;
  metric.Add(1.0, -1.0);
  metric.Add(0.5, 1.0);
  auto clone = metric.Clone();
  EXPECT_EQ(clone->Count(), metric.Count());
  EXPECT_DOUBLE_EQ(clone->Value(), metric.Value());
  clone->Add(9.0, -9.0);
  EXPECT_NE(clone->Count(), metric.Count());
  metric.Reset();
  EXPECT_EQ(metric.Count(), 0);
  EXPECT_DOUBLE_EQ(metric.Value(), 0.0);
}

TEST(MetricCommonTest, ResetAndCloneForAllMetrics) {
  CheckResetAndClone<MisclassificationRate>();
  CheckResetAndClone<Rmse>();
  CheckResetAndClone<Rmsle>();
  CheckResetAndClone<MeanAbsoluteError>();
}

TEST(MetricCommonTest, Names) {
  EXPECT_EQ(MisclassificationRate().name(), "misclassification");
  EXPECT_EQ(Rmse().name(), "rmse");
  EXPECT_EQ(Rmsle().name(), "rmsle");
  EXPECT_EQ(MeanAbsoluteError().name(), "mae");
}

}  // namespace
}  // namespace cdpipe
