#include "src/ml/linear_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace cdpipe {
namespace {

FeatureData MakeBatch(
    std::vector<std::pair<std::vector<std::pair<uint32_t, double>>, double>>
        rows,
    uint32_t dim) {
  FeatureData out;
  out.dim = dim;
  for (auto& [entries, label] : rows) {
    out.features.push_back(SparseVector::FromUnsorted(dim, std::move(entries)));
    out.labels.push_back(label);
  }
  return out;
}

LinearModel::Options RegressionOptions(uint32_t dim, double l2 = 0.0) {
  LinearModel::Options options;
  options.loss = LossKind::kSquared;
  options.l2_reg = l2;
  options.initial_dim = dim;
  return options;
}

TEST(LinearModelTest, PredictIsDotPlusBias) {
  LinearModel model(RegressionOptions(3));
  (*model.mutable_weights())[0] = 2.0;
  (*model.mutable_weights())[2] = -1.0;
  model.set_bias(0.5);
  SparseVector x = SparseVector::FromUnsorted(3, {{0, 1.0}, {2, 3.0}});
  EXPECT_DOUBLE_EQ(model.Predict(x), 2.0 - 3.0 + 0.5);
}

TEST(LinearModelTest, PredictToleratesWiderInput) {
  LinearModel model(RegressionOptions(2));
  (*model.mutable_weights())[1] = 1.0;
  // Input nominally 10-dimensional; dims >= 2 have zero weight.
  SparseVector x = SparseVector::FromUnsorted(10, {{1, 2.0}, {7, 100.0}});
  EXPECT_DOUBLE_EQ(model.Predict(x), 2.0);
}

TEST(LinearModelTest, PredictLabelSignsMargin) {
  LinearModel::Options options;
  options.loss = LossKind::kHinge;
  options.initial_dim = 1;
  LinearModel model(options);
  (*model.mutable_weights())[0] = 1.0;
  EXPECT_DOUBLE_EQ(model.PredictLabel(
                       SparseVector::FromUnsorted(1, {{0, 5.0}})),
                   1.0);
  EXPECT_DOUBLE_EQ(model.PredictLabel(
                       SparseVector::FromUnsorted(1, {{0, -5.0}})),
                   -1.0);
}

TEST(LinearModelTest, GradientOfSquaredLoss) {
  LinearModel model(RegressionOptions(2));
  // w = 0, b = 0; batch: x = (1, 2), y = 3 -> residual -3.
  FeatureData batch = MakeBatch({{{{0, 1.0}, {1, 2.0}}, 3.0}}, 2);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  ASSERT_TRUE(model.ComputeGradient(batch, &grad, &bias_grad).ok());
  ASSERT_EQ(grad.size(), 2u);
  EXPECT_EQ(grad[0].index, 0u);
  EXPECT_DOUBLE_EQ(grad[0].value, -3.0);
  EXPECT_DOUBLE_EQ(grad[1].value, -6.0);
  EXPECT_DOUBLE_EQ(bias_grad, -3.0);
}

TEST(LinearModelTest, GradientAveragesOverBatch) {
  LinearModel model(RegressionOptions(1));
  FeatureData batch =
      MakeBatch({{{{0, 1.0}}, 2.0}, {{{0, 1.0}}, 4.0}}, 1);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  ASSERT_TRUE(model.ComputeGradient(batch, &grad, &bias_grad).ok());
  ASSERT_EQ(grad.size(), 1u);
  EXPECT_DOUBLE_EQ(grad[0].value, -3.0);  // mean of (-2, -4)
  EXPECT_DOUBLE_EQ(bias_grad, -3.0);
}

TEST(LinearModelTest, L2RegularizationAddsLambdaW) {
  LinearModel model(RegressionOptions(1, /*l2=*/0.5));
  (*model.mutable_weights())[0] = 2.0;
  // Choose data so the data gradient is zero: x=1, y = prediction.
  FeatureData batch = MakeBatch({{{{0, 1.0}}, 2.0}}, 1);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  ASSERT_TRUE(model.ComputeGradient(batch, &grad, &bias_grad).ok());
  ASSERT_EQ(grad.size(), 1u);
  EXPECT_DOUBLE_EQ(grad[0].value, 1.0);  // 0 + 0.5 * 2
}

TEST(LinearModelTest, ZeroLossExamplesContributeNothing) {
  LinearModel::Options options;
  options.loss = LossKind::kHinge;
  options.initial_dim = 1;
  LinearModel model(options);
  (*model.mutable_weights())[0] = 10.0;  // margin for x=1,y=1 is 10 >= 1
  FeatureData batch = MakeBatch({{{{0, 1.0}}, 1.0}}, 1);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  ASSERT_TRUE(model.ComputeGradient(batch, &grad, &bias_grad).ok());
  EXPECT_TRUE(grad.empty());
  EXPECT_DOUBLE_EQ(bias_grad, 0.0);
}

TEST(LinearModelTest, EmptyBatchIsNoOp) {
  LinearModel model(RegressionOptions(2));
  auto opt = MakeOptimizer(OptimizerOptions{});
  FeatureData batch;
  batch.dim = 2;
  ASSERT_TRUE(model.Update(batch, opt.get()).ok());
  EXPECT_EQ(opt->step_count(), 0);
}

TEST(LinearModelTest, UpdateGrowsDimension) {
  LinearModel model(RegressionOptions(1));
  auto opt = MakeOptimizer(OptimizerOptions{});
  FeatureData batch = MakeBatch({{{{6, 1.0}}, 1.0}}, 7);
  ASSERT_TRUE(model.Update(batch, opt.get()).ok());
  EXPECT_EQ(model.dim(), 7u);
  EXPECT_NE(model.weights()[6], 0.0);
}

TEST(LinearModelTest, AverageLoss) {
  LinearModel model(RegressionOptions(1));
  FeatureData batch =
      MakeBatch({{{{0, 1.0}}, 1.0}, {{{0, 1.0}}, 3.0}}, 1);
  // w = 0 -> losses 0.5 and 4.5 -> mean 2.5.
  EXPECT_DOUBLE_EQ(std::move(model.AverageLoss(batch)).ValueOrDie(), 2.5);
  FeatureData empty;
  empty.dim = 1;
  EXPECT_FALSE(model.AverageLoss(empty).ok());
}

TEST(LinearModelTest, NoBiasModelKeepsBiasZero) {
  LinearModel::Options options = RegressionOptions(1);
  options.fit_bias = false;
  LinearModel model(options);
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kSgd,
                                            .learning_rate = 0.1});
  for (int i = 0; i < 20; ++i) {
    FeatureData batch = MakeBatch({{{{0, 1.0}}, 5.0}}, 1);
    ASSERT_TRUE(model.Update(batch, opt.get()).ok());
  }
  EXPECT_DOUBLE_EQ(model.bias(), 0.0);
  EXPECT_GT(model.weights()[0], 1.0);
}

TEST(LinearModelTest, SgdRecoversLinearFunction) {
  // y = 2 x0 - 3 x1 + 1 with small noise; plain SGD should recover it.
  Rng rng(77);
  LinearModel model(RegressionOptions(2));
  auto opt = MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kSgd,
                                            .learning_rate = 0.05});
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::pair<std::vector<std::pair<uint32_t, double>>, double>>
        rows;
    for (int r = 0; r < 8; ++r) {
      const double x0 = rng.NextGaussian();
      const double x1 = rng.NextGaussian();
      const double y = 2 * x0 - 3 * x1 + 1 + rng.NextGaussian(0.0, 0.01);
      rows.push_back({{{0, x0}, {1, x1}}, y});
    }
    FeatureData batch = MakeBatch(std::move(rows), 2);
    ASSERT_TRUE(model.Update(batch, opt.get()).ok());
  }
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -3.0, 0.05);
  EXPECT_NEAR(model.bias(), 1.0, 0.05);
}

TEST(LinearModelTest, HingeSgdSeparatesLinearlySeparableData) {
  Rng rng(88);
  LinearModel::Options options;
  options.loss = LossKind::kHinge;
  options.l2_reg = 1e-4;
  options.initial_dim = 2;
  LinearModel model(options);
  auto opt = MakeOptimizer(
      OptimizerOptions{.kind = OptimizerKind::kAdam, .learning_rate = 0.05});
  // True separator: x0 - x1 > 0.
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::pair<std::vector<std::pair<uint32_t, double>>, double>>
        rows;
    for (int r = 0; r < 8; ++r) {
      const double x0 = rng.NextGaussian();
      const double x1 = rng.NextGaussian();
      rows.push_back({{{0, x0}, {1, x1}}, x0 - x1 > 0 ? 1.0 : -1.0});
    }
    FeatureData batch = MakeBatch(std::move(rows), 2);
    ASSERT_TRUE(model.Update(batch, opt.get()).ok());
  }
  int errors = 0;
  for (int r = 0; r < 500; ++r) {
    const double x0 = rng.NextGaussian();
    const double x1 = rng.NextGaussian();
    const double truth = x0 - x1 > 0 ? 1.0 : -1.0;
    SparseVector x = SparseVector::FromUnsorted(2, {{0, x0}, {1, x1}});
    if (model.PredictLabel(x) != truth) ++errors;
  }
  EXPECT_LT(errors, 25);  // < 5% error on separable data
}

TEST(LinearModelTest, DimMismatchFailsPrecondition) {
  LinearModel model(RegressionOptions(2));
  FeatureData batch = MakeBatch({{{{5, 1.0}}, 1.0}}, 6);
  std::vector<GradEntry> grad;
  double bias_grad = 0.0;
  Status status = model.ComputeGradient(batch, &grad, &bias_grad);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(LinearModelTest, ToStringMentionsLossAndDim) {
  LinearModel model(RegressionOptions(4, 0.1));
  const std::string s = model.ToString();
  EXPECT_NE(s.find("squared"), std::string::npos);
  EXPECT_NE(s.find("dim=4"), std::string::npos);
}

}  // namespace
}  // namespace cdpipe
