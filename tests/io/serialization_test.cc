#include "src/io/serialization.h"

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace cdpipe {
namespace {

TEST(EncodeDoubleTest, RoundTripsExactly) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.NextGaussian() * std::pow(10.0, rng.NextInt(-30, 30));
    const double decoded =
        std::move(DecodeDouble(EncodeDouble(value))).ValueOrDie();
    EXPECT_EQ(decoded, value);
  }
}

TEST(EncodeDoubleTest, SpecialValues) {
  for (double value : {0.0, -0.0, 1.0, -1.0,
                       std::numeric_limits<double>::min(),
                       std::numeric_limits<double>::max(),
                       std::numeric_limits<double>::denorm_min()}) {
    EXPECT_EQ(std::move(DecodeDouble(EncodeDouble(value))).ValueOrDie(),
              value);
  }
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(std::move(DecodeDouble(EncodeDouble(inf))).ValueOrDie(), inf);
  EXPECT_TRUE(std::isnan(
      std::move(DecodeDouble(EncodeDouble(std::nan("")))).ValueOrDie()));
}

TEST(DecodeDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeDouble("").ok());
  EXPECT_FALSE(DecodeDouble("12x").ok());
  EXPECT_FALSE(DecodeDouble("abc").ok());
}

TEST(SerializationTest, AllTypesRoundTrip) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteInt("count", -42);
  out.WriteDouble("pi", 3.14159);
  out.WriteString("name", "hello world");
  out.WriteString("empty", "");
  out.WriteDoubleVector("dv", {1.5, -2.5, 0.0});
  out.WriteUint32Vector("uv", {7, 0, 4000000000u});
  out.WritePairs("pv", {{3, 1.25}, {9, -0.5}});
  ASSERT_TRUE(out.ok());

  std::istringstream is(os.str());
  Deserializer in(&is);
  EXPECT_EQ(std::move(in.ReadInt("count")).ValueOrDie(), -42);
  EXPECT_DOUBLE_EQ(std::move(in.ReadDouble("pi")).ValueOrDie(), 3.14159);
  EXPECT_EQ(std::move(in.ReadString("name")).ValueOrDie(), "hello world");
  EXPECT_EQ(std::move(in.ReadString("empty")).ValueOrDie(), "");
  EXPECT_EQ(std::move(in.ReadDoubleVector("dv")).ValueOrDie(),
            (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(std::move(in.ReadUint32Vector("uv")).ValueOrDie(),
            (std::vector<uint32_t>{7, 0, 4000000000u}));
  auto pairs = std::move(in.ReadPairs("pv")).ValueOrDie();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, 3u);
  EXPECT_DOUBLE_EQ(pairs[1].second, -0.5);
}

TEST(SerializationTest, EmptyVectorsRoundTrip) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteDoubleVector("dv", {});
  out.WriteUint32Vector("uv", {});
  out.WritePairs("pv", {});
  std::istringstream is(os.str());
  Deserializer in(&is);
  EXPECT_TRUE(std::move(in.ReadDoubleVector("dv")).ValueOrDie().empty());
  EXPECT_TRUE(std::move(in.ReadUint32Vector("uv")).ValueOrDie().empty());
  EXPECT_TRUE(std::move(in.ReadPairs("pv")).ValueOrDie().empty());
}

TEST(SerializationTest, KeyMismatchDetected) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteInt("alpha", 1);
  std::istringstream is(os.str());
  Deserializer in(&is);
  Result<int64_t> r = in.ReadInt("beta");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("key mismatch"), std::string::npos);
}

TEST(SerializationTest, TypeMismatchDetected) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteInt("x", 1);
  std::istringstream is(os.str());
  Deserializer in(&is);
  EXPECT_FALSE(in.ReadDouble("x").ok());
}

TEST(SerializationTest, TruncationDetected) {
  std::istringstream is("");
  Deserializer in(&is);
  Result<int64_t> r = in.ReadInt("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, StringWithSpacesPreserved) {
  std::ostringstream os;
  Serializer out(&os);
  out.WriteString("s", "a b  c\t!");
  std::istringstream is(os.str());
  Deserializer in(&is);
  EXPECT_EQ(std::move(in.ReadString("s")).ValueOrDie(), "a b  c\t!");
}

TEST(SerializationTest, SequentialKeysReadInOrder) {
  std::ostringstream os;
  Serializer out(&os);
  for (int i = 0; i < 10; ++i) out.WriteInt("k" + std::to_string(i), i);
  std::istringstream is(os.str());
  Deserializer in(&is);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::move(in.ReadInt("k" + std::to_string(i))).ValueOrDie(), i);
  }
}

}  // namespace
}  // namespace cdpipe
