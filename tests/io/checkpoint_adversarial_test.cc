// Adversarial checkpoint inputs: truncated files, flipped bytes, empty
// files.  Every one must produce a clean Status error — no crash — and must
// leave the deployed pipeline/model/optimizer completely untouched (loads
// are atomic: deserialize into scratch copies, commit only on full success).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"

namespace cdpipe {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  return config;
}

std::unique_ptr<PipelineManager> MakeManager(CostModel* cost) {
  const UrlPipelineConfig config = PipeConfig();
  return std::make_unique<PipelineManager>(
      MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(
          OptimizerOptions{.kind = OptimizerKind::kAdam, .learning_rate = 0.05}),
      cost);
}

RawChunk MakeChunk(ChunkId id, uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1000;
  config.initial_active_features = 100;
  config.nnz_per_record = 6;
  config.records_per_chunk = 20;
  config.seed = seed;
  UrlStreamGenerator generator(config);
  RawChunk chunk = generator.NextChunk();
  chunk.id = id;
  return chunk;
}

/// Fixture with a trained "writer" manager, its serialized checkpoint, and
/// a trained "reader" whose pre-load state is fingerprinted so corruption
/// tests can assert it never changed.
class CheckpointAdversarialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    writer_ = MakeManager(&writer_cost_);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(writer_->OnlineStep(MakeChunk(i, 20 + i), nullptr, true).ok());
    }
    std::ostringstream buffer;
    ASSERT_TRUE(SaveCheckpoint(*writer_, &buffer).ok());
    checkpoint_ = buffer.str();

    reader_ = MakeManager(&reader_cost_);
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(reader_->OnlineStep(MakeChunk(i, 50 + i), nullptr, true).ok());
    }
    reader_weights_before_ = reader_->model().weights().values();
    reader_steps_before_ = reader_->optimizer().step_count();
  }

  /// Attempts a load of `bytes` and asserts it fails cleanly with the
  /// reader's state bit-identical to before.
  void ExpectRejectedWithoutStateChange(const std::string& bytes,
                                        const std::string& label) {
    std::istringstream input(bytes);
    const Status status = LoadCheckpoint(&input, reader_.get());
    EXPECT_FALSE(status.ok()) << label << ": corrupt input accepted";
    EXPECT_EQ(reader_->model().weights().values(), reader_weights_before_)
        << label << ": model mutated by failed load";
    EXPECT_EQ(reader_->optimizer().step_count(), reader_steps_before_)
        << label << ": optimizer mutated by failed load";
  }

  CostModel writer_cost_, reader_cost_;
  std::unique_ptr<PipelineManager> writer_, reader_;
  std::string checkpoint_;
  std::vector<double> reader_weights_before_;
  int64_t reader_steps_before_ = 0;
};

TEST_F(CheckpointAdversarialTest, IntactCheckpointStillLoads) {
  std::istringstream input(checkpoint_);
  const Status status = LoadCheckpoint(&input, reader_.get());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reader_->model().weights().values(),
            writer_->model().weights().values());
}

TEST_F(CheckpointAdversarialTest, EmptyFileRejected) {
  ExpectRejectedWithoutStateChange("", "empty");
}

TEST_F(CheckpointAdversarialTest, WhitespaceOnlyRejected) {
  ExpectRejectedWithoutStateChange("\n\n\n", "whitespace");
}

TEST_F(CheckpointAdversarialTest, TruncationAtEveryQuarterRejected) {
  for (const double fraction : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const size_t keep =
        static_cast<size_t>(static_cast<double>(checkpoint_.size()) * fraction);
    ExpectRejectedWithoutStateChange(
        checkpoint_.substr(0, keep),
        "truncated to " + std::to_string(keep) + " bytes");
  }
}

TEST_F(CheckpointAdversarialTest, MissingChecksumTrailerRejected) {
  const size_t trailer = checkpoint_.rfind("checksum ");
  ASSERT_NE(trailer, std::string::npos);
  ExpectRejectedWithoutStateChange(checkpoint_.substr(0, trailer),
                                   "trailer stripped");
}

TEST_F(CheckpointAdversarialTest, FlippedByteAnywhereRejected) {
  // Flip a byte at several positions across the payload.  The checksum
  // verification makes every flip detectable, including flips inside
  // hexfloat weight values that would otherwise parse fine.
  for (const double fraction : {0.05, 0.3, 0.55, 0.8, 0.95}) {
    const size_t pos =
        static_cast<size_t>(static_cast<double>(checkpoint_.size()) * fraction);
    std::string corrupt = checkpoint_;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x20);
    ExpectRejectedWithoutStateChange(
        corrupt, "byte flipped at offset " + std::to_string(pos));
  }
}

TEST_F(CheckpointAdversarialTest, ChecksumMentionedInError) {
  std::string corrupt = checkpoint_;
  corrupt[corrupt.size() / 2] ^= 0x01;
  std::istringstream input(corrupt);
  const Status status = LoadCheckpoint(&input, reader_.get());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("checksum"), std::string::npos);
}

TEST_F(CheckpointAdversarialTest, WrongMagicRejected) {
  std::string corrupt = checkpoint_;
  corrupt.replace(0, 5, "bogus");
  ExpectRejectedWithoutStateChange(corrupt, "wrong magic");
}

TEST_F(CheckpointAdversarialTest, GarbageBodyWithValidShapeRejected) {
  ExpectRejectedWithoutStateChange(
      "magic s 17 cdpipe-checkpoint\nversion i 2\ngarbage follows\n",
      "garbage body");
}

TEST_F(CheckpointAdversarialTest, ReaderRecoversAfterRejectedLoad) {
  // A failed load must not poison the manager: the intact checkpoint still
  // loads afterwards.
  std::string corrupt = checkpoint_;
  corrupt[corrupt.size() / 3] ^= 0x40;
  ExpectRejectedWithoutStateChange(corrupt, "pre-recovery flip");

  std::istringstream input(checkpoint_);
  const Status status = LoadCheckpoint(&input, reader_.get());
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reader_->model().weights().values(),
            writer_->model().weights().values());
}

}  // namespace
}  // namespace cdpipe
