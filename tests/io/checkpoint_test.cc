// Checkpoint round-trip: a deployment restored from a checkpoint must
// behave bit-identically to the one that wrote it — same predictions, same
// transformed features, same next optimizer step.

#include "src/io/checkpoint.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"
#include "src/io/serialization.h"
#include "src/ml/prequential.h"
#include "src/pipeline/one_hot_encoder.h"

namespace cdpipe {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 2000;
  config.hash_bits = 8;
  return config;
}

std::unique_ptr<PipelineManager> MakeManager(CostModel* cost,
                                             OptimizerKind kind) {
  const UrlPipelineConfig config = PipeConfig();
  return std::make_unique<PipelineManager>(
      MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = kind, .learning_rate = 0.05}),
      cost);
}

RawChunk MakeChunk(ChunkId id, uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 2000;
  config.initial_active_features = 150;
  config.nnz_per_record = 8;
  config.records_per_chunk = 30;
  config.seed = seed;
  UrlStreamGenerator generator(config);
  RawChunk chunk = generator.NextChunk();
  chunk.id = id;
  return chunk;
}

class CheckpointRoundTripTest
    : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(CheckpointRoundTripTest, RestoredManagerContinuesIdentically) {
  CostModel cost_a;
  auto original = MakeManager(&cost_a, GetParam());

  // Accumulate nontrivial state: statistics + several optimizer steps.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        original->OnlineStep(MakeChunk(i, 10 + i), nullptr, true).ok());
  }

  std::ostringstream buffer;
  ASSERT_TRUE(SaveCheckpoint(*original, &buffer).ok());

  CostModel cost_b;
  auto restored = MakeManager(&cost_b, GetParam());
  std::istringstream input(buffer.str());
  Status load = LoadCheckpoint(&input, restored.get());
  ASSERT_TRUE(load.ok()) << load.ToString();

  // Same model parameters...
  EXPECT_EQ(restored->model().weights().values(),
            original->model().weights().values());
  EXPECT_EQ(restored->model().bias(), original->model().bias());
  EXPECT_EQ(restored->optimizer().step_count(),
            original->optimizer().step_count());

  // ...same transformed features (pipeline statistics restored)...
  RawChunk probe = MakeChunk(100, 99);
  auto features_a = original->Rematerialize(probe);
  auto features_b = restored->Rematerialize(probe);
  ASSERT_TRUE(features_a.ok());
  ASSERT_TRUE(features_b.ok());
  ASSERT_EQ(features_a->num_rows(), features_b->num_rows());
  for (size_t r = 0; r < features_a->num_rows(); ++r) {
    EXPECT_TRUE(features_a->data.features[r] == features_b->data.features[r]);
  }

  // ...and the *next* training step produces identical weights (optimizer
  // adaptation state restored bit-exactly).
  RawChunk next = MakeChunk(101, 123);
  ASSERT_TRUE(original->OnlineStep(next, nullptr, true).ok());
  ASSERT_TRUE(restored->OnlineStep(next, nullptr, true).ok());
  EXPECT_EQ(restored->model().weights().values(),
            original->model().weights().values());
  EXPECT_EQ(restored->model().bias(), original->model().bias());
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, CheckpointRoundTripTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kRmsprop,
                                           OptimizerKind::kAdadelta));

TEST(CheckpointTest, OptimizerKindMismatchRejected) {
  CostModel cost_a;
  auto original = MakeManager(&cost_a, OptimizerKind::kAdam);
  std::ostringstream buffer;
  ASSERT_TRUE(SaveCheckpoint(*original, &buffer).ok());

  CostModel cost_b;
  auto restored = MakeManager(&cost_b, OptimizerKind::kRmsprop);
  std::istringstream input(buffer.str());
  Status load = LoadCheckpoint(&input, restored.get());
  ASSERT_FALSE(load.ok());
  EXPECT_NE(load.message().find("optimizer"), std::string::npos);
}

TEST(CheckpointTest, GarbageInputRejected) {
  CostModel cost;
  auto manager = MakeManager(&cost, OptimizerKind::kAdam);
  std::istringstream garbage("not a checkpoint at all");
  EXPECT_FALSE(LoadCheckpoint(&garbage, manager.get()).ok());
}

TEST(CheckpointTest, FileRoundTrip) {
  const std::string path = "/tmp/cdpipe_checkpoint_test.ckpt";
  CostModel cost_a;
  auto original = MakeManager(&cost_a, OptimizerKind::kAdam);
  ASSERT_TRUE(original->OnlineStep(MakeChunk(0, 1), nullptr, true).ok());
  ASSERT_TRUE(SaveCheckpointToFile(*original, path).ok());

  CostModel cost_b;
  auto restored = MakeManager(&cost_b, OptimizerKind::kAdam);
  Status load = LoadCheckpointFromFile(path, restored.get());
  ASSERT_TRUE(load.ok()) << load.ToString();
  EXPECT_EQ(restored->model().weights().values(),
            original->model().weights().values());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileFails) {
  CostModel cost;
  auto manager = MakeManager(&cost, OptimizerKind::kAdam);
  EXPECT_FALSE(
      LoadCheckpointFromFile("/nonexistent/nope.ckpt", manager.get()).ok());
}

TEST(CheckpointTest, TaxiPipelineRoundTrip) {
  // Exercises the table-mode scaler (per-column moments + counts) through
  // the checkpoint path.
  CostModel cost_a;
  auto original = std::make_unique<PipelineManager>(
      MakeTaxiPipeline(),
      std::make_unique<LinearModel>(MakeTaxiModelOptions()),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kRmsprop,
                                     .learning_rate = 0.01}),
      &cost_a);
  TaxiStreamGenerator::Config config;
  config.records_per_chunk = 30;
  config.seed = 9;
  TaxiStreamGenerator generator(config);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        original->OnlineStep(generator.NextChunk(), nullptr, true).ok());
  }

  std::ostringstream buffer;
  ASSERT_TRUE(SaveCheckpoint(*original, &buffer).ok());

  CostModel cost_b;
  auto restored = std::make_unique<PipelineManager>(
      MakeTaxiPipeline(),
      std::make_unique<LinearModel>(MakeTaxiModelOptions()),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kRmsprop,
                                     .learning_rate = 0.01}),
      &cost_b);
  std::istringstream input(buffer.str());
  Status load = LoadCheckpoint(&input, restored.get());
  ASSERT_TRUE(load.ok()) << load.ToString();

  RawChunk probe = generator.NextChunk();
  auto features_a = original->Rematerialize(probe);
  auto features_b = restored->Rematerialize(probe);
  ASSERT_TRUE(features_a.ok());
  ASSERT_TRUE(features_b.ok());
  ASSERT_EQ(features_a->num_rows(), features_b->num_rows());
  for (size_t r = 0; r < features_a->num_rows(); ++r) {
    EXPECT_TRUE(features_a->data.features[r] == features_b->data.features[r]);
  }
  EXPECT_EQ(restored->model().bias(), original->model().bias());
}

TEST(OneHotCheckpointTest, DictionaryRoundTrip) {
  OneHotEncoder::Options options;
  options.numeric_columns = {};
  options.categorical_columns = {{"color", 8}};
  options.label_column = "label";
  OneHotEncoder encoder(options);

  auto schema = std::move(Schema::Make({Field{"color", ValueType::kString},
                                        Field{"label", ValueType::kDouble}}))
                    .ValueOrDie();
  TableData table(schema);
  for (const char* color : {"red", "green", "blue"}) {
    ASSERT_TRUE(
        table.AppendRow({Value::String(color), Value::Double(1.0)}).ok());
  }
  ASSERT_TRUE(encoder.Update(DataBatch(table)).ok());

  std::ostringstream os;
  Serializer out(&os);
  ASSERT_TRUE(encoder.SaveState(&out).ok());

  OneHotEncoder restored(options);
  std::istringstream is(os.str());
  Deserializer in(&is);
  ASSERT_TRUE(restored.LoadState(&in).ok());
  EXPECT_EQ(restored.CardinalityOf(0), 3u);

  auto a = encoder.Transform(DataBatch(table));
  auto b = restored.Transform(DataBatch(table));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(std::get<FeatureData>(*a).features[r] ==
                std::get<FeatureData>(*b).features[r]);
  }
}

}  // namespace
}  // namespace cdpipe
