#ifndef CDPIPE_TESTS_TESTING_FEATURE_DATA_TEST_UTIL_H_
#define CDPIPE_TESTS_TESTING_FEATURE_DATA_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {
namespace testing {

/// Merges feature chunks (possibly with different nominal dims, e.g. when a
/// one-hot dictionary grew between materializations) into one training
/// batch whose dim is the maximum of the inputs.
///
/// Tests-only: production training consumes sampled chunks zero-copy
/// through BatchView; this copying merge survives as the reference
/// implementation the equivalence tests compare that path against.
inline FeatureData MergeFeatureData(
    const std::vector<const FeatureData*>& parts) {
  FeatureData out;
  size_t total_rows = 0;
  for (const FeatureData* part : parts) {
    CDPIPE_CHECK(part != nullptr);
    out.dim = std::max(out.dim, part->dim);
    total_rows += part->num_rows();
  }
  out.features.reserve(total_rows);
  out.labels.reserve(total_rows);
  for (const FeatureData* part : parts) {
    for (size_t r = 0; r < part->num_rows(); ++r) {
      const SparseVector& x = part->features[r];
      if (x.dim() == out.dim) {
        out.features.push_back(x);
      } else {
        // Widen the nominal dimension; indices are untouched.
        out.features.push_back(std::move(x.WithDim(out.dim)).ValueOrDie());
      }
      out.labels.push_back(part->labels[r]);
    }
  }
  return out;
}

}  // namespace testing
}  // namespace cdpipe

#endif  // CDPIPE_TESTS_TESTING_FEATURE_DATA_TEST_UTIL_H_
