#include "src/testing/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cdpipe {
namespace testing {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Check("any.site").ok());
  EXPECT_FALSE(injector.ShouldTrigger("any.site"));
  EXPECT_EQ(injector.TotalTriggers(), 0);
}

TEST_F(FaultInjectorTest, ArmingEnablesAndDisarmAllDisables) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::Never());
  EXPECT_TRUE(injector.enabled());
  injector.DisarmAll();
  EXPECT_FALSE(injector.enabled());
}

TEST_F(FaultInjectorTest, NeverRuleCountsInvocationsButDoesNotFire) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::Never());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.Check("site.a").ok());
  }
  const FaultSiteStats stats = injector.StatsFor("site.a");
  EXPECT_EQ(stats.invocations, 10);
  EXPECT_EQ(stats.triggers, 0);
}

TEST_F(FaultInjectorTest, EveryNFiresOnExactIndices) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::EveryN(3));
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!injector.Check("site.a").ok());
  }
  // 1-based invocations 3, 6, 9 fire.
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.StatsFor("site.a").triggers, 3);
}

TEST_F(FaultInjectorTest, FirstNFiresThenRecovers) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::FirstN(2));
  EXPECT_FALSE(injector.Check("site.a").ok());
  EXPECT_FALSE(injector.Check("site.a").ok());
  EXPECT_TRUE(injector.Check("site.a").ok());
  EXPECT_TRUE(injector.Check("site.a").ok());
  EXPECT_EQ(injector.StatsFor("site.a").triggers, 2);
}

TEST_F(FaultInjectorTest, ProbabilityRuleIsDeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector injector;
    injector.Arm("site.a", FaultRule::Probability(0.5, seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!injector.Check("site.a").ok());
    }
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(FaultInjectorTest, SameSeedDifferentSitesDrawDifferentSequences) {
  // The per-site Rng is seeded with rule.seed XOR hash(site), so two sites
  // armed with the same rule do not fire in lockstep.
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::Probability(0.5, 7));
  injector.Arm("site.b", FaultRule::Probability(0.5, 7));
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(!injector.Check("site.a").ok());
    b.push_back(!injector.Check("site.b").ok());
  }
  EXPECT_NE(a, b);
}

TEST_F(FaultInjectorTest, MaxTriggersCapsFirings) {
  FaultInjector injector;
  FaultRule rule = FaultRule::EveryN(1);
  rule.max_triggers = 2;
  injector.Arm("site.a", rule);
  EXPECT_FALSE(injector.Check("site.a").ok());
  EXPECT_FALSE(injector.Check("site.a").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(injector.Check("site.a").ok());
  }
  EXPECT_EQ(injector.StatsFor("site.a").triggers, 2);
}

TEST_F(FaultInjectorTest, InjectedStatusCarriesCodeAndSite) {
  FaultInjector injector;
  FaultRule rule = FaultRule::EveryN(1);
  rule.code = StatusCode::kIoError;
  rule.message = "disk on fire";
  injector.Arm("storage.write", rule);
  const Status status = injector.Check("storage.write");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.ToString().find("disk on fire"), std::string::npos);
  EXPECT_NE(status.ToString().find("storage.write"), std::string::npos);
}

TEST_F(FaultInjectorTest, ThrowingRuleThrows) {
  FaultInjector injector;
  FaultRule rule = FaultRule::EveryN(1);
  rule.throws = true;
  rule.message = "task exploded";
  injector.Arm("engine.task", rule);
  EXPECT_THROW((void)injector.Check("engine.task"), std::runtime_error);
}

TEST_F(FaultInjectorTest, DisarmedSiteIsInert) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::EveryN(1));
  injector.Arm("site.b", FaultRule::Never());
  injector.Disarm("site.a");
  EXPECT_TRUE(injector.Check("site.a").ok());
  EXPECT_TRUE(injector.enabled());  // site.b is still armed
}

TEST_F(FaultInjectorTest, RearmingResetsCountersAndRng) {
  FaultInjector injector;
  injector.Arm("site.a", FaultRule::EveryN(2));
  (void)injector.Check("site.a");
  (void)injector.Check("site.a");
  injector.Arm("site.a", FaultRule::EveryN(2));
  EXPECT_EQ(injector.StatsFor("site.a").invocations, 0);
  // The reset counter means the next firing is invocation 2 again.
  EXPECT_TRUE(injector.Check("site.a").ok());
  EXPECT_FALSE(injector.Check("site.a").ok());
}

TEST_F(FaultInjectorTest, ScopedScriptArmsAndDisarms) {
  FaultInjector& global = FaultInjector::Global();
  {
    ScopedFaultScript script({{"site.x", FaultRule::EveryN(1)}});
    EXPECT_TRUE(global.enabled());
    EXPECT_FALSE(global.Check("site.x").ok());
  }
  EXPECT_FALSE(global.enabled());
  EXPECT_TRUE(global.Check("site.x").ok());
}

TEST_F(FaultInjectorTest, EmptyScriptIsArmedButInertControl) {
  FaultInjector& global = FaultInjector::Global();
  {
    ScopedFaultScript script({});
    EXPECT_TRUE(global.enabled());
    EXPECT_TRUE(global.Check("anything").ok());
    EXPECT_EQ(global.TotalTriggers(), 0);
  }
  EXPECT_FALSE(global.enabled());
}

TEST_F(FaultInjectorTest, MacrosRouteThroughGlobalInjector) {
  auto guarded = []() -> Status {
    CDPIPE_FAULT_POINT("macro.site");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().ok());
  {
    ScopedFaultScript script({{"macro.site", FaultRule::EveryN(1)}});
    EXPECT_FALSE(guarded().ok());
    EXPECT_TRUE(CDPIPE_FAULT_TRIGGERED("macro.site"));
  }
  EXPECT_TRUE(guarded().ok());
  EXPECT_FALSE(CDPIPE_FAULT_TRIGGERED("macro.site"));
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
