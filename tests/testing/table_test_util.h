#ifndef CDPIPE_TESTS_TESTING_TABLE_TEST_UTIL_H_
#define CDPIPE_TESTS_TESTING_TABLE_TEST_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "src/dataframe/chunk.h"

namespace cdpipe {
namespace testing {

/// An *owned* single-string-column table in the pipeline's entry shape
/// (what `Pipeline::WrapRaw` produces), for feeding parsers in tests
/// without keeping a RawChunk alive: WrapRaw borrows its records, so a
/// test that wraps a temporary chunk would read freed memory.  This copy
/// has no such lifetime to manage.
inline TableData OwnedRawTable(const std::vector<std::string>& lines) {
  static const std::shared_ptr<const Schema> kRawSchema =
      std::move(Schema::Make({Field{"raw", ValueType::kString}})).ValueOrDie();
  Column raw(ValueType::kString);
  raw.Reserve(lines.size());
  for (const std::string& line : lines) raw.AppendString(line);
  std::vector<Column> columns;
  columns.push_back(std::move(raw));
  return std::move(TableData::Make(kRawSchema, std::move(columns)))
      .ValueOrDie();
}

/// Row-at-a-time table construction (the seed's brace-literal idiom).
inline TableData TableFromRows(std::shared_ptr<const Schema> schema,
                               const std::vector<Row>& rows) {
  return std::move(TableData::FromRows(std::move(schema), rows)).ValueOrDie();
}

}  // namespace testing
}  // namespace cdpipe

#endif  // CDPIPE_TESTS_TESTING_TABLE_TEST_UTIL_H_
