#include "src/dataframe/schema.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(SchemaTest, MakeAndLookup) {
  auto schema = std::move(Schema::Make({Field{"a", ValueType::kDouble},
                                        Field{"b", ValueType::kString}}))
                    .ValueOrDie();
  EXPECT_EQ(schema->num_fields(), 2u);
  EXPECT_EQ(std::move(schema->FieldIndex("a")).ValueOrDie(), 0u);
  EXPECT_EQ(std::move(schema->FieldIndex("b")).ValueOrDie(), 1u);
  EXPECT_TRUE(schema->HasField("a"));
  EXPECT_FALSE(schema->HasField("c"));
  EXPECT_EQ(schema->field(1).type, ValueType::kString);
}

TEST(SchemaTest, MissingFieldIsNotFound) {
  auto schema =
      std::move(Schema::Make({Field{"a", ValueType::kDouble}})).ValueOrDie();
  Result<size_t> idx = schema->FieldIndex("zzz");
  ASSERT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto result = Schema::Make(
      {Field{"x", ValueType::kDouble}, Field{"x", ValueType::kInt64}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, AddFieldCreatesNewSchema) {
  auto schema =
      std::move(Schema::Make({Field{"a", ValueType::kDouble}})).ValueOrDie();
  auto extended =
      std::move(schema->AddField(Field{"b", ValueType::kInt64})).ValueOrDie();
  EXPECT_EQ(schema->num_fields(), 1u);  // original untouched
  EXPECT_EQ(extended->num_fields(), 2u);
  EXPECT_TRUE(extended->HasField("b"));
}

TEST(SchemaTest, AddDuplicateFieldRejected) {
  auto schema =
      std::move(Schema::Make({Field{"a", ValueType::kDouble}})).ValueOrDie();
  EXPECT_FALSE(schema->AddField(Field{"a", ValueType::kInt64}).ok());
}

TEST(SchemaTest, EmptySchema) {
  auto schema = std::move(Schema::Make({})).ValueOrDie();
  EXPECT_EQ(schema->num_fields(), 0u);
  EXPECT_EQ(schema->ToString(), "{}");
}

TEST(SchemaTest, ToStringListsFields) {
  auto schema = std::move(Schema::Make({Field{"t", ValueType::kTimestamp}}))
                    .ValueOrDie();
  EXPECT_EQ(schema->ToString(), "{t: timestamp}");
}

TEST(SchemaTest, Equality) {
  auto a =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  auto b =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  auto c =
      std::move(Schema::Make({Field{"x", ValueType::kInt64}})).ValueOrDie();
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

}  // namespace
}  // namespace cdpipe
