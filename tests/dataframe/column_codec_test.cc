// Round-trip and adversarial tests for the disk-tier column codec: a
// decoded column must be cell-for-cell (bit-for-bit for doubles) identical
// to the encoded one, and no corrupted input may crash, hang, or produce a
// partially decoded column.

#include "src/dataframe/column_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/dataframe/column.h"
#include "src/dataframe/value.h"

namespace cdpipe {
namespace {

// Cell-for-cell equality; doubles compared bit-for-bit (NaN payloads
// included).
void ExpectColumnsIdentical(const Column& a, const Column& b) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
    switch (a.type()) {
      case ValueType::kDouble: {
        uint64_t abits, bbits;
        std::memcpy(&abits, &a.doubles()[i], 8);
        std::memcpy(&bbits, &b.doubles()[i], 8);
        EXPECT_EQ(abits, bbits) << "row " << i;
        break;
      }
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        EXPECT_EQ(a.ints()[i], b.ints()[i]) << "row " << i;
        break;
      case ValueType::kString:
        EXPECT_EQ(a.StringAt(i), b.StringAt(i)) << "row " << i;
        break;
      default:
        FAIL() << "untyped column";
    }
  }
}

Column RoundTrip(const Column& col) {
  std::string bytes;
  EncodeColumn(col, &bytes);
  size_t offset = 0;
  Result<Column> decoded = DecodeColumn(bytes, &offset);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(offset, bytes.size()) << "decoder must consume the encoding";
  return std::move(*decoded);
}

TEST(ColumnCodecTest, DoubleRoundTripIsBitIdentical) {
  Column col(ValueType::kDouble);
  col.AppendDouble(0.0);
  col.AppendDouble(-0.0);
  col.AppendDouble(1.0 / 3.0);
  col.AppendDouble(std::numeric_limits<double>::infinity());
  col.AppendDouble(-std::numeric_limits<double>::infinity());
  col.AppendDouble(std::numeric_limits<double>::quiet_NaN());
  col.AppendDouble(std::numeric_limits<double>::denorm_min());
  col.AppendDouble(std::numeric_limits<double>::max());
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, Int64DeltaChainRoundTrip) {
  Column col(ValueType::kInt64);
  col.AppendInt64(0);
  col.AppendInt64(std::numeric_limits<int64_t>::max());
  col.AppendInt64(std::numeric_limits<int64_t>::min());
  col.AppendInt64(-1);
  col.AppendInt64(1);
  for (int64_t v = 1000; v < 1100; ++v) col.AppendInt64(v);  // small deltas
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, TimestampColumnKeepsItsType) {
  Column col(ValueType::kTimestamp);
  for (int64_t t = 0; t < 50; ++t) col.AppendInt64(1500000000 + t * 60);
  const Column decoded = RoundTrip(col);
  EXPECT_EQ(decoded.type(), ValueType::kTimestamp);
  ExpectColumnsIdentical(col, decoded);
}

TEST(ColumnCodecTest, StringRoundTripWithEmbeddedControlBytes) {
  Column col(ValueType::kString);
  col.AppendString("");
  col.AppendString(std::string("nul\0inside", 10));
  col.AppendString("plain");
  col.AppendString("trailing space ");
  col.AppendString(" leading");
  col.AppendString("double  space");
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, RepetitiveStringsDictionaryCompress) {
  Column col(ValueType::kString);
  for (int i = 0; i < 200; ++i) {
    col.AppendString(i % 2 == 0 ? "credit_card" : "cash");
  }
  std::string bytes;
  EncodeColumn(col, &bytes);
  // 200 rows of ~10 bytes each raw; the dictionary mode must beat that by a
  // wide margin.
  EXPECT_LT(bytes.size(), 500u);
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, TokenizedStringsCompressSharedVocabulary) {
  // CSV-ish rows share a small token vocabulary; the tokenized mode must
  // reproduce every cell exactly (single-space joins only).
  Column col(ValueType::kString);
  for (int i = 0; i < 100; ++i) {
    col.AppendString("ride yellow manhattan " + std::to_string(i % 7));
  }
  std::string bytes;
  EncodeColumn(col, &bytes);
  EXPECT_LT(bytes.size(), col.ByteSize());
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, NullBitmapRoundTripsForEveryType) {
  {
    Column col(ValueType::kDouble);
    col.AppendDouble(1.5);
    col.AppendNull();
    col.AppendDouble(2.5);
    ExpectColumnsIdentical(col, RoundTrip(col));
  }
  {
    Column col(ValueType::kInt64);
    col.AppendNull();
    col.AppendInt64(7);
    col.AppendNull();
    ExpectColumnsIdentical(col, RoundTrip(col));
  }
  {
    Column col(ValueType::kString);
    col.AppendString("a");
    col.AppendNull();
    col.AppendString("b");
    ExpectColumnsIdentical(col, RoundTrip(col));
  }
}

TEST(ColumnCodecTest, NullBitmapBeyondOneWord) {
  // Nulls past row 64 exercise the second bitmap word.
  Column col(ValueType::kInt64);
  for (int i = 0; i < 130; ++i) {
    if (i % 7 == 0) {
      col.AppendNull();
    } else {
      col.AppendInt64(i);
    }
  }
  ExpectColumnsIdentical(col, RoundTrip(col));
}

TEST(ColumnCodecTest, BorrowedViewColumnEncodesAndDecodesOwning) {
  // The spill path encodes RawChunk records through a borrowed-view column;
  // the decoded column must own its bytes.
  const std::vector<std::string> backing = {"alpha", "", "gamma delta"};
  Column col(ValueType::kString);
  for (const std::string& s : backing) col.AppendBorrowedString(s);
  ASSERT_TRUE(col.is_borrowed());
  const Column decoded = RoundTrip(col);
  EXPECT_FALSE(decoded.is_borrowed());
  ExpectColumnsIdentical(col, decoded);
}

TEST(ColumnCodecTest, EmptyColumnRoundTrips) {
  for (ValueType type : {ValueType::kDouble, ValueType::kInt64,
                         ValueType::kTimestamp, ValueType::kString}) {
    Column col(type);
    ExpectColumnsIdentical(col, RoundTrip(col));
  }
}

TEST(ColumnCodecTest, ColumnsConcatenateAndDecodeInSequence) {
  Column a(ValueType::kInt64);
  a.AppendInt64(42);
  Column b(ValueType::kString);
  b.AppendString("x");
  std::string bytes;
  EncodeColumn(a, &bytes);
  EncodeColumn(b, &bytes);
  size_t offset = 0;
  Result<Column> first = DecodeColumn(bytes, &offset);
  ASSERT_TRUE(first.ok());
  Result<Column> second = DecodeColumn(bytes, &offset);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(offset, bytes.size());
  ExpectColumnsIdentical(a, *first);
  ExpectColumnsIdentical(b, *second);
}

// --- Adversarial corpus: every mutation must fail cleanly. ---

std::string EncodeSample() {
  Column col(ValueType::kString);
  col.AppendString("hello world");
  col.AppendString("hello");
  col.AppendNull();
  std::string bytes;
  EncodeColumn(col, &bytes);
  return bytes;
}

TEST(ColumnCodecAdversarialTest, EveryTruncationFailsCleanly) {
  const std::string bytes = EncodeSample();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string_view truncated(bytes.data(), cut);
    size_t offset = 0;
    Result<Column> decoded = DecodeColumn(truncated, &offset);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut << " of " << bytes.size();
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(ColumnCodecAdversarialTest, EmptyInputIsInvalid) {
  size_t offset = 0;
  Result<Column> decoded = DecodeColumn(std::string_view(), &offset);
  EXPECT_FALSE(decoded.ok());
}

TEST(ColumnCodecAdversarialTest, BadTypeByteIsRejected) {
  std::string bytes = EncodeSample();
  bytes[0] = static_cast<char>(0x7F);
  size_t offset = 0;
  EXPECT_FALSE(DecodeColumn(bytes, &offset).ok());
}

TEST(ColumnCodecAdversarialTest, ImplausibleRowCountIsRejectedBeforeAlloc) {
  // Type byte + a varint claiming ~2^60 rows in a 10-byte buffer: the
  // decoder must reject on plausibility, not attempt the allocation.
  std::string bytes;
  bytes.push_back(static_cast<char>(ValueType::kInt64));
  uint64_t rows = 1ull << 60;
  while (rows >= 0x80) {
    bytes.push_back(static_cast<char>(rows & 0x7F) | 0x80);
    rows >>= 7;
  }
  bytes.push_back(static_cast<char>(rows));
  size_t offset = 0;
  Result<Column> decoded = DecodeColumn(bytes, &offset);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ColumnCodecAdversarialTest, OverlongVarintIsRejected) {
  std::string bytes;
  bytes.push_back(static_cast<char>(ValueType::kInt64));
  for (int i = 0; i < 11; ++i) bytes.push_back(static_cast<char>(0x80));
  bytes.push_back(1);
  size_t offset = 0;
  EXPECT_FALSE(DecodeColumn(bytes, &offset).ok());
}

TEST(ColumnCodecAdversarialTest, SingleBitFlipsNeverCrash) {
  // Exhaustive single-bit corruption.  Most flips are detected; a flip in a
  // string payload byte legitimately decodes to different bytes — the
  // invariant here is no crash/UB and no out-of-bounds read (ASan-enforced
  // in CI).  Container-level integrity is the spill file checksum's job.
  const std::string bytes = EncodeSample();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      size_t offset = 0;
      Result<Column> decoded = DecodeColumn(mutated, &offset);
      if (decoded.ok()) {
        EXPECT_LE(offset, mutated.size());
      }
    }
  }
}

TEST(ColumnCodecAdversarialTest, DictionaryCodeOutOfRangeIsRejected) {
  // Encode a dictionary-mode column, then bump a per-row code beyond the
  // dictionary size; decode must reject rather than index out of bounds.
  Column col(ValueType::kString);
  for (int i = 0; i < 64; ++i) col.AppendString(i % 2 ? "aaaa" : "bbbb");
  std::string bytes;
  EncodeColumn(col, &bytes);
  bool rejected_some = false;
  for (size_t byte = bytes.size() - 8; byte < bytes.size(); ++byte) {
    std::string mutated = bytes;
    mutated[byte] = static_cast<char>(0x7D);  // large in-range varint value
    size_t offset = 0;
    if (!DecodeColumn(mutated, &offset).ok()) rejected_some = true;
  }
  EXPECT_TRUE(rejected_some);
}

TEST(ColumnCodecAdversarialTest, ZigZagIsAnExactInvolution) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1},
                    std::numeric_limits<int64_t>::max(),
                    std::numeric_limits<int64_t>::min(), int64_t{123456789},
                    int64_t{-987654321}}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

}  // namespace
}  // namespace cdpipe
