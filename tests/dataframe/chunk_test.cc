#include "src/dataframe/chunk.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TableData MakeTable() {
  TableData table;
  table.schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                         Field{"s", ValueType::kString}}))
                     .ValueOrDie();
  table.rows.push_back({Value::Double(1.0), Value::String("abc")});
  table.rows.push_back({Value::Double(2.0), Value::String("de")});
  return table;
}

TEST(TableDataTest, NumRowsAndByteSize) {
  TableData table = MakeTable();
  EXPECT_EQ(table.num_rows(), 2u);
  // 4 cells + 5 string bytes.
  EXPECT_EQ(table.ByteSize(), 4 * sizeof(Value) + 5);
}

TEST(FeatureDataTest, ValidatePasses) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(4, {{1, 1.0}}));
  data.labels.push_back(1.0);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(FeatureDataTest, ValidateCatchesCountMismatch) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(4, {{1, 1.0}}));
  EXPECT_FALSE(data.Validate().ok());
}

TEST(FeatureDataTest, ValidateCatchesDimMismatch) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(5, {{1, 1.0}}));
  data.labels.push_back(1.0);
  EXPECT_FALSE(data.Validate().ok());
}

TEST(BatchHelpersTest, NumRowsAndBytes) {
  DataBatch table_batch = MakeTable();
  EXPECT_EQ(BatchNumRows(table_batch), 2u);
  EXPECT_GT(BatchByteSize(table_batch), 0u);

  FeatureData features;
  features.dim = 3;
  features.features.push_back(SparseVector::FromUnsorted(3, {{0, 1.0}}));
  features.labels.push_back(-1.0);
  DataBatch feature_batch = std::move(features);
  EXPECT_EQ(BatchNumRows(feature_batch), 1u);
  EXPECT_EQ(BatchByteSize(feature_batch),
            sizeof(double) + sizeof(uint32_t) + sizeof(double));
}

TEST(RawChunkTest, ByteSizeSumsRecords) {
  RawChunk chunk;
  chunk.records = {"abc", "de"};
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.ByteSize(), 5u);
}

TEST(FeatureChunkTest, ForwardsToData) {
  FeatureChunk chunk;
  chunk.origin_id = 9;
  chunk.data.dim = 2;
  chunk.data.features.push_back(SparseVector::FromUnsorted(2, {{0, 1.0}}));
  chunk.data.labels.push_back(1.0);
  EXPECT_EQ(chunk.num_rows(), 1u);
  EXPECT_GT(chunk.ByteSize(), 0u);
}

}  // namespace
}  // namespace cdpipe
