#include "src/dataframe/chunk.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TableData MakeTable() {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"s", ValueType::kString}}))
                    .ValueOrDie();
  return std::move(TableData::FromRows(
                       schema, {{Value::Double(1.0), Value::String("abc")},
                                {Value::Double(2.0), Value::String("de")}}))
      .ValueOrDie();
}

TEST(TableDataTest, NumRowsAndByteSize) {
  TableData table = MakeTable();
  EXPECT_EQ(table.num_rows(), 2u);
  // Column x: 2 doubles.  Column s: 5 arena bytes + 3 uint32 offsets.
  EXPECT_EQ(table.ByteSize(),
            2 * sizeof(double) + 5 + 3 * sizeof(uint32_t));
}

TEST(TableDataTest, ByteSizeCountsNullBitmapWords) {
  auto schema =
      std::move(Schema::Make({Field{"x", ValueType::kDouble}})).ValueOrDie();
  TableData table(schema);
  ASSERT_TRUE(table.AppendRow({Value::Double(1.0)}).ok());
  const size_t before = table.ByteSize();
  ASSERT_TRUE(table.AppendRow({Value::Null()}).ok());
  // The second row adds its placeholder double plus the lazily allocated
  // bitmap word (one uint64 covers the first 64 rows).
  EXPECT_EQ(table.ByteSize(), before + sizeof(double) + sizeof(uint64_t));
}

TEST(TableDataTest, ByteSizeOfBorrowedColumnExcludesPayload) {
  const std::string record(1000, 'x');
  Column borrowed(ValueType::kString);
  borrowed.AppendBorrowedString(record);

  Column owned(ValueType::kString);
  owned.AppendString(record);

  // The borrowed column accounts only its view table — the kilobyte of
  // payload belongs to the raw chunk.  The owned column pays the arena.
  EXPECT_EQ(borrowed.ByteSize(), sizeof(std::string_view));
  EXPECT_GE(owned.ByteSize(), record.size());
}

TEST(TableDataTest, CommitAppendedRowRequiresEveryColumn) {
  auto schema = std::move(Schema::Make({Field{"x", ValueType::kDouble},
                                        Field{"n", ValueType::kInt64}}))
                    .ValueOrDie();
  TableData table(schema);
  table.mutable_column(0).AppendDouble(1.0);
  // Column n has not been appended to: the commit must refuse.
  EXPECT_FALSE(table.CommitAppendedRow());
  table.mutable_column(1).AppendInt64(7);
  EXPECT_TRUE(table.CommitAppendedRow());
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.ValueAt(0, 1).int64_value(), 7);
}

TEST(TableDataTest, PromoteColumnToDoubleWidensAndKeepsNulls) {
  auto schema =
      std::move(Schema::Make({Field{"n", ValueType::kInt64}})).ValueOrDie();
  TableData table(schema);
  ASSERT_TRUE(table.AppendRow({Value::Int64(3)}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(table.PromoteColumnToDouble(0).ok());
  EXPECT_EQ(table.schema()->field(0).type, ValueType::kDouble);
  EXPECT_EQ(table.column(0).doubles()[0], 3.0);
  EXPECT_TRUE(table.column(0).IsNull(1));
  // Promoting a string column is an error, not a silent rewrite.
  auto str_schema =
      std::move(Schema::Make({Field{"s", ValueType::kString}})).ValueOrDie();
  TableData strings(str_schema);
  EXPECT_FALSE(strings.PromoteColumnToDouble(0).ok());
}

TEST(FeatureDataTest, ValidatePasses) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(4, {{1, 1.0}}));
  data.labels.push_back(1.0);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(FeatureDataTest, ValidateCatchesCountMismatch) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(4, {{1, 1.0}}));
  EXPECT_FALSE(data.Validate().ok());
}

TEST(FeatureDataTest, ValidateCatchesDimMismatch) {
  FeatureData data;
  data.dim = 4;
  data.features.push_back(SparseVector::FromUnsorted(5, {{1, 1.0}}));
  data.labels.push_back(1.0);
  EXPECT_FALSE(data.Validate().ok());
}

TEST(BatchHelpersTest, NumRowsAndBytes) {
  DataBatch table_batch = MakeTable();
  EXPECT_EQ(BatchNumRows(table_batch), 2u);
  EXPECT_EQ(BatchByteSize(table_batch),
            std::get<TableData>(table_batch).ByteSize());

  FeatureData features;
  features.dim = 3;
  features.features.push_back(SparseVector::FromUnsorted(3, {{0, 1.0}}));
  features.labels.push_back(-1.0);
  DataBatch feature_batch = std::move(features);
  EXPECT_EQ(BatchNumRows(feature_batch), 1u);
  EXPECT_EQ(BatchByteSize(feature_batch),
            sizeof(double) + sizeof(uint32_t) + sizeof(double));
}

TEST(RawChunkTest, ByteSizeSumsRecords) {
  RawChunk chunk;
  chunk.records = {"abc", "de"};
  EXPECT_EQ(chunk.num_rows(), 2u);
  EXPECT_EQ(chunk.ByteSize(), 5u);
}

TEST(FeatureChunkTest, ForwardsToData) {
  FeatureChunk chunk;
  chunk.origin_id = 9;
  chunk.data.dim = 2;
  chunk.data.features.push_back(SparseVector::FromUnsorted(2, {{0, 1.0}}));
  chunk.data.labels.push_back(1.0);
  EXPECT_EQ(chunk.num_rows(), 1u);
  EXPECT_GT(chunk.ByteSize(), 0u);
}

}  // namespace
}  // namespace cdpipe
