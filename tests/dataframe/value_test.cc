#include "src/dataframe/value.h"

#include <gtest/gtest.h>

namespace cdpipe {
namespace {

TEST(ValueTest, NullValue) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.ToString(), "null");
  EXPECT_FALSE(v.AsDouble().ok());
}

TEST(ValueTest, DoubleValue) {
  Value v = Value::Double(2.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.double_value(), 2.5);
  EXPECT_DOUBLE_EQ(std::move(v.AsDouble()).ValueOrDie(), 2.5);
}

TEST(ValueTest, Int64Value) {
  Value v = Value::Int64(-7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.int64_value(), -7);
  EXPECT_DOUBLE_EQ(std::move(v.AsDouble()).ValueOrDie(), -7.0);
}

TEST(ValueTest, TimestampValue) {
  Value v = Value::Timestamp(1420070400);
  EXPECT_EQ(v.type(), ValueType::kTimestamp);
  EXPECT_EQ(v.int64_value(), 1420070400);
  EXPECT_EQ(v.ToString(), "2015-01-01 00:00:00");
}

TEST(ValueTest, StringValue) {
  Value v = Value::String("hello");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.string_value(), "hello");
  EXPECT_FALSE(v.AsDouble().ok());
  EXPECT_EQ(v.ToString(), "hello");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Double(1.0), Value::Double(1.0));
  EXPECT_FALSE(Value::Double(1.0) == Value::Double(2.0));
  EXPECT_FALSE(Value::Double(1.0) == Value::Int64(1));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  // A timestamp and a plain int64 with the same payload are distinct.
  EXPECT_FALSE(Value::Timestamp(5) == Value::Int64(5));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kTimestamp), "timestamp");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace cdpipe
