#include "src/drift/drift_detector.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace cdpipe {
namespace {

TEST(DriftStateTest, Names) {
  EXPECT_STREQ(DriftStateName(DriftState::kStable), "stable");
  EXPECT_STREQ(DriftStateName(DriftState::kWarning), "warning");
  EXPECT_STREQ(DriftStateName(DriftState::kDrift), "drift");
}

class DetectorKindTest : public ::testing::TestWithParam<DriftDetectorKind> {
 protected:
  std::unique_ptr<DriftDetector> Make() {
    if (GetParam() == DriftDetectorKind::kPageHinkley) {
      PageHinkleyDetector::Options options;
      options.lambda = 15.0;
      options.delta = 0.03;
      return std::make_unique<PageHinkleyDetector>(options);
    }
    return std::make_unique<DdmDetector>();
  }
};

TEST_P(DetectorKindTest, StableOnConstantLowError) {
  auto detector = Make();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    detector->Observe(rng.NextBernoulli(0.05) ? 1.0 : 0.0);
  }
  EXPECT_EQ(detector->drifts_detected(), 0)
      << "false alarm on a stationary 5% error stream";
}

TEST_P(DetectorKindTest, FiresOnAbruptErrorIncrease) {
  auto detector = Make();
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    detector->Observe(rng.NextBernoulli(0.05) ? 1.0 : 0.0);
  }
  ASSERT_EQ(detector->drifts_detected(), 0);
  // Error jumps from 5% to 60%.
  int steps_to_detect = -1;
  for (int i = 0; i < 500; ++i) {
    if (detector->Observe(rng.NextBernoulli(0.6) ? 1.0 : 0.0) ==
        DriftState::kDrift) {
      steps_to_detect = i;
      break;
    }
  }
  EXPECT_GE(steps_to_detect, 0) << "drift never detected";
  EXPECT_LT(steps_to_detect, 300) << "detection too slow";
  EXPECT_EQ(detector->drifts_detected(), 1);
}

TEST_P(DetectorKindTest, WarningPrecedesOrAccompaniesDrift) {
  auto detector = Make();
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    detector->Observe(rng.NextBernoulli(0.05) ? 1.0 : 0.0);
  }
  // A milder shift (5% -> 30%) so the statistic passes through the warning
  // band on its way to the drift threshold.
  bool saw_warning = false;
  for (int i = 0; i < 2000; ++i) {
    const DriftState state =
        detector->Observe(rng.NextBernoulli(0.3) ? 1.0 : 0.0);
    if (state == DriftState::kWarning) saw_warning = true;
    if (state == DriftState::kDrift) break;
  }
  EXPECT_TRUE(saw_warning);
}

TEST_P(DetectorKindTest, ResetRestartsBaselineButKeepsLifetimeCount) {
  auto detector = Make();
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    detector->Observe(rng.NextBernoulli(0.05) ? 1.0 : 0.0);
  }
  for (int i = 0; i < 500; ++i) {
    if (detector->Observe(rng.NextBernoulli(0.6) ? 1.0 : 0.0) ==
        DriftState::kDrift) {
      break;
    }
  }
  ASSERT_EQ(detector->drifts_detected(), 1);
  detector->Reset();
  EXPECT_EQ(detector->state(), DriftState::kStable);
  EXPECT_EQ(detector->observations(), 0);
  EXPECT_EQ(detector->drifts_detected(), 1);  // lifetime counter survives
  // After reset the detector adapts to the new 60% baseline: no refire.
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (detector->Observe(rng.NextBernoulli(0.6) ? 1.0 : 0.0) ==
        DriftState::kDrift) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 0);
}

TEST_P(DetectorKindTest, CloneIsIndependent) {
  auto detector = Make();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    detector->Observe(rng.NextBernoulli(0.05) ? 1.0 : 0.0);
  }
  auto clone = detector->Clone();
  EXPECT_EQ(clone->observations(), detector->observations());
  clone->Observe(1.0);
  EXPECT_NE(clone->observations(), detector->observations());
}

INSTANTIATE_TEST_SUITE_P(Kinds, DetectorKindTest,
                         ::testing::Values(DriftDetectorKind::kPageHinkley,
                                           DriftDetectorKind::kDdm));

TEST(PageHinkleyTest, StatisticGrowsUnderShift) {
  PageHinkleyDetector detector;
  for (int i = 0; i < 100; ++i) detector.Observe(0.1);
  const double before = detector.Statistic();
  for (int i = 0; i < 50; ++i) detector.Observe(0.9);
  EXPECT_GT(detector.Statistic(), before);
}

TEST(PageHinkleyTest, BurnInSuppressesEarlyAlarms) {
  PageHinkleyDetector::Options options;
  options.lambda = 0.001;  // absurdly sensitive
  options.burn_in = 100;
  PageHinkleyDetector detector(options);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(detector.Observe(rng.NextDouble()), DriftState::kStable);
  }
}

TEST(DdmTest, ErrorRateTracksStream) {
  DdmDetector detector;
  for (int i = 0; i < 60; ++i) detector.Observe(i % 2 == 0 ? 1.0 : 0.0);
  EXPECT_NEAR(detector.ErrorRate(), 0.5, 1e-9);
}

TEST(DdmTest, FractionalSignalsAveraged) {
  // The platform feeds chunk-mean error fractions; DDM averages them.
  DdmDetector detector;
  for (int i = 0; i < 40; ++i) detector.Observe(0.2);
  EXPECT_NEAR(detector.ErrorRate(), 0.2, 1e-9);
  for (int i = 0; i < 10; ++i) detector.Observe(0.7);
  EXPECT_GT(detector.ErrorRate(), 0.2);
}

TEST(MakeDriftDetectorTest, Factory) {
  EXPECT_EQ(MakeDriftDetector(DriftDetectorKind::kPageHinkley)->name(),
            "page-hinkley");
  EXPECT_EQ(MakeDriftDetector(DriftDetectorKind::kDdm)->name(), "ddm");
}

}  // namespace
}  // namespace cdpipe
