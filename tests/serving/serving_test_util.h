#ifndef CDPIPE_TESTS_SERVING_SERVING_TEST_UTIL_H_
#define CDPIPE_TESTS_SERVING_SERVING_TEST_UTIL_H_

#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/data/url_stream.h"
#include "src/ml/linear_model.h"
#include "src/ml/optimizer.h"
#include "src/pipeline/pipeline.h"

namespace cdpipe {
namespace serving_test {

/// A small warmed-up URL deployment state for serving tests: a pipeline
/// whose statistics have seen one chunk, a model that has taken one SGD
/// step, a stream of mutation chunks, and a fixed probe batch.  Everything
/// is seeded, so two fixtures are bit-identical.
struct ServingFixture {
  std::unique_ptr<Pipeline> pipeline;
  std::unique_ptr<LinearModel> model;
  std::unique_ptr<Optimizer> optimizer;
  std::vector<RawChunk> chunks;  ///< mutation stream (ids from 0)
  RawChunk probe;                ///< fixed probe batch (id 9000)
};

inline ServingFixture MakeServingFixture(size_t num_chunks = 8) {
  UrlPipelineConfig pipe_config;
  pipe_config.raw_dim = 500;
  pipe_config.hash_bits = 7;

  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = 500;
  stream_config.initial_active_features = 80;
  stream_config.nnz_per_record = 6;
  stream_config.records_per_chunk = 16;
  stream_config.seed = 77;
  UrlStreamGenerator generator(stream_config);

  ServingFixture fixture;
  fixture.pipeline = MakeUrlPipeline(pipe_config);
  fixture.model =
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config));
  fixture.optimizer = MakeOptimizer(
      OptimizerOptions{.kind = OptimizerKind::kSgd, .learning_rate = 0.05});
  fixture.chunks = generator.Generate(num_chunks + 1);
  fixture.probe = fixture.chunks.back();
  fixture.probe.id = 9000;
  fixture.chunks.pop_back();

  // Warm up: statistics from chunk 0, one SGD step on its features.
  FeatureData warm =
      fixture.pipeline->UpdateAndTransform(fixture.chunks[0]).ValueOrDie();
  fixture.model->EnsureDim(warm.dim);
  CDPIPE_CHECK(fixture.model->Update(warm, fixture.optimizer.get()).ok());
  return fixture;
}

/// The serial reference prediction: transform the probe through `pipeline`
/// (pure path) and score each surviving row — exactly what the prediction
/// service computes against a snapshot of the same state.
inline std::vector<double> SerialScores(const Pipeline& pipeline,
                                        const LinearModel& model,
                                        const RawChunk& probe,
                                        ExecMode mode = ExecMode::kFused) {
  size_t rows_scanned = 0;
  FeatureData features =
      pipeline.Transform(probe, nullptr, &rows_scanned, mode).ValueOrDie();
  std::vector<double> scores;
  model.PredictBatch(features, &scores);
  return scores;
}

}  // namespace serving_test
}  // namespace cdpipe

#endif  // CDPIPE_TESTS_SERVING_SERVING_TEST_UTIL_H_
