// TSan-verified bit-stability of concurrent serving: N reader threads
// hammer the prediction service while the trainer publishes epochs at max
// rate.  Every response must be internally consistent (one epoch's
// pipeline statistics + model weights + plan cache), its scores must be
// bit-identical to a serial predict against the state published as that
// epoch, and no reader may ever observe an epoch regression or a torn
// snapshot.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"
#include "tests/serving/serving_test_util.h"

namespace cdpipe {
namespace serving {
namespace {

using serving_test::MakeServingFixture;
using serving_test::SerialScores;
using serving_test::ServingFixture;

TEST(SnapshotStabilityTest, ReadersSeeBitIdenticalEpochsUnderMaxRatePublish) {
  constexpr int kReaders = 4;
  constexpr uint64_t kEpochs = 40;

  ServingFixture fixture = MakeServingFixture(/*num_chunks=*/8);
  SnapshotPublisher publisher;
  PredictionService service(&publisher, PredictionService::Options{});

  // expected[e] is written by the trainer BEFORE epoch e is published; the
  // publish's release store orders it before any reader that observes e.
  std::vector<std::vector<double>> expected(kEpochs + 1);
  std::atomic<bool> done{false};

  std::thread trainer([&] {
    for (uint64_t e = 1; e <= kEpochs; ++e) {
      // Mutate the live state between epochs: every epoch takes one SGD
      // step, every third also folds a chunk into the pipeline statistics
      // (so the run exercises both the deep-clone and the shared-pipeline
      // publish paths).
      if (e > 1) {
        if (e % 3 == 0) {
          const RawChunk& chunk =
              fixture.chunks[1 + (e / 3) % (fixture.chunks.size() - 1)];
          ASSERT_TRUE(fixture.pipeline->UpdateAndTransform(chunk).ok());
        }
        FeatureData features =
            fixture.pipeline->Transform(fixture.chunks[1]).ValueOrDie();
        ASSERT_TRUE(
            fixture.model->Update(features, fixture.optimizer.get()).ok());
      }
      expected[e] =
          SerialScores(*fixture.pipeline, *fixture.model, fixture.probe);
      ASSERT_EQ(publisher.PublishFrom(*fixture.pipeline, *fixture.model), e);
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<int> mismatches{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      SnapshotReader reader(&publisher);
      uint64_t last_epoch = 0;
      auto hammer = [&] {
        Result<PredictionService::Response> response =
            service.PredictWith(&reader, fixture.probe);
        if (!response.ok()) return;  // nothing published yet
        reads.fetch_add(1, std::memory_order_relaxed);
        if (response->epoch < last_epoch ||
            response->epoch > kEpochs ||
            response->scores != expected[response->epoch]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = response->epoch;
      };
      while (!done.load(std::memory_order_acquire)) hammer();
      hammer();  // one guaranteed read of the final epoch
      EXPECT_EQ(reader.stale_reads(), 0u);
      EXPECT_EQ(reader.torn_reads(), 0u);
    });
  }
  trainer.join();
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(reads.load(), static_cast<uint64_t>(kReaders));
  EXPECT_EQ(publisher.epoch(), kEpochs);
}

TEST(SnapshotStabilityTest, QueuedRequestLoopStableUnderPublishStorm) {
  ServingFixture fixture = MakeServingFixture(/*num_chunks=*/4);
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService::Options options;
  options.num_threads = 3;
  PredictionService service(&publisher, options);
  ASSERT_TRUE(service.Start().ok());

  std::atomic<bool> done{false};
  std::thread trainer([&] {
    for (int e = 0; e < 60; ++e) {
      FeatureData features =
          fixture.pipeline->Transform(fixture.chunks[1]).ValueOrDie();
      ASSERT_TRUE(
          fixture.model->Update(features, fixture.optimizer.get()).ok());
      publisher.PublishFrom(*fixture.pipeline, *fixture.model);
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        Result<PredictionService::Response> response =
            service.Predict(fixture.probe);
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Workers may rotate, but the publisher's epoch counter the
        // responses quote can never exceed the published epoch, and every
        // response must carry exactly one score per probe row.
        if (response->epoch < 1 ||
            response->scores.size() != fixture.probe.num_rows()) {
          failures.fetch_add(1);
        }
        if (response->epoch > last_epoch) last_epoch = response->epoch;
      }
    });
  }
  trainer.join();
  for (std::thread& t : clients) t.join();
  service.Stop();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace serving
}  // namespace cdpipe
