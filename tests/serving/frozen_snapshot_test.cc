// Mutation-after-publish regression suite (the deep-freeze audit): once an
// epoch is published, NOTHING the deployment loop does to the live
// pipeline or model — statistics updates, SGD steps, plan compilations,
// resets, checkpoint restores — may perturb the predictions of that epoch.

#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/serving/snapshot_publisher.h"
#include "tests/serving/serving_test_util.h"

namespace cdpipe {
namespace serving {
namespace {

using serving_test::MakeServingFixture;
using serving_test::SerialScores;
using serving_test::ServingFixture;

TEST(FrozenSnapshotTest, LiveStatisticsUpdatesDoNotPerturbPublishedEpoch) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  const std::vector<double> before =
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe);
  ASSERT_FALSE(before.empty());

  // Hammer the live pipeline: every remaining chunk updates scaler means,
  // one-hot dictionaries, anomaly statistics, and bumps the statistics
  // version (invalidating the live plan cache).
  for (size_t i = 1; i < fixture.chunks.size(); ++i) {
    ASSERT_TRUE(
        fixture.pipeline->UpdateAndTransform(fixture.chunks[i]).ok());
  }
  EXPECT_EQ(
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe),
      before);
}

TEST(FrozenSnapshotTest, LiveModelUpdatesDoNotPerturbPublishedEpoch) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  const std::vector<double> before =
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe);

  for (size_t i = 1; i < fixture.chunks.size(); ++i) {
    FeatureData features =
        fixture.pipeline->Transform(fixture.chunks[i]).ValueOrDie();
    ASSERT_TRUE(
        fixture.model->Update(features, fixture.optimizer.get()).ok());
  }
  EXPECT_EQ(
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe),
      before);
}

TEST(FrozenSnapshotTest, LiveResetDoesNotPerturbPublishedEpoch) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  const std::vector<double> before =
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe);

  fixture.pipeline->Reset();
  EXPECT_EQ(
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe),
      before);
}

TEST(FrozenSnapshotTest, SnapshotOwnsItsPlanCacheAndScratchPool) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  // A fused plan compiled for the snapshot must live in the snapshot's own
  // cache — a shared cache would let a live-side invalidation (statistics
  // bump) race a serving-side execution.
  EXPECT_NE(snapshot->pipeline->plan_cache(), fixture.pipeline->plan_cache());
  // Exercise the snapshot's fused path to actually populate its cache.
  ASSERT_FALSE(SerialScores(*snapshot->pipeline, *snapshot->model,
                            fixture.probe, ExecMode::kFused)
                   .empty());
}

TEST(FrozenSnapshotTest, SharedPipelineEpochsStayIndependentOfLiveModel) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> first = publisher.Acquire();

  // Model-only republish: second epoch shares the first's pipeline clone.
  FeatureData features =
      fixture.pipeline->Transform(fixture.chunks[1]).ValueOrDie();
  ASSERT_TRUE(fixture.model->Update(features, fixture.optimizer.get()).ok());
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> second = publisher.Acquire();
  ASSERT_EQ(first->pipeline.get(), second->pipeline.get());

  const std::vector<double> first_scores =
      SerialScores(*first->pipeline, *first->model, fixture.probe);
  const std::vector<double> second_scores =
      SerialScores(*second->pipeline, *second->model, fixture.probe);
  // Further live training must move neither epoch.
  for (size_t i = 2; i < fixture.chunks.size(); ++i) {
    ASSERT_TRUE(
        fixture.pipeline->UpdateAndTransform(fixture.chunks[i]).ok());
  }
  EXPECT_EQ(SerialScores(*first->pipeline, *first->model, fixture.probe),
            first_scores);
  EXPECT_EQ(SerialScores(*second->pipeline, *second->model, fixture.probe),
            second_scores);
}

}  // namespace
}  // namespace serving
}  // namespace cdpipe
