// Unit tests of the prediction front-end: lifecycle, the queued and inline
// request paths, bit-equality with the serial reference, backpressure, and
// error accounting.

#include "src/serving/prediction_service.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/testing/fault_injector.h"
#include "tests/serving/serving_test_util.h"

namespace cdpipe {
namespace serving {
namespace {

using serving_test::MakeServingFixture;
using serving_test::SerialScores;
using serving_test::ServingFixture;

TEST(PredictionServiceTest, UnavailableBeforeStart) {
  SnapshotPublisher publisher;
  PredictionService service(&publisher, PredictionService::Options{});
  RawChunk chunk;
  chunk.records.push_back("1 0:1.0");
  Result<PredictionService::Response> response = service.Predict(chunk);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
}

TEST(PredictionServiceTest, UnavailableBeforeFirstPublish) {
  SnapshotPublisher publisher;
  PredictionService service(&publisher, PredictionService::Options{});
  ASSERT_TRUE(service.Start().ok());
  RawChunk chunk;
  chunk.records.push_back("1 0:1.0");
  Result<PredictionService::Response> response = service.Predict(chunk);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.request_errors(), 1u);
  service.Stop();
}

TEST(PredictionServiceTest, DoubleStartFailsAndStopIsIdempotent) {
  SnapshotPublisher publisher;
  PredictionService service(&publisher, PredictionService::Options{});
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.Start().code(), StatusCode::kFailedPrecondition);
  service.Stop();
  service.Stop();
  EXPECT_FALSE(service.running());
}

TEST(PredictionServiceTest, QueuedPredictionMatchesSerialReference) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService service(&publisher, PredictionService::Options{});
  ASSERT_TRUE(service.Start().ok());
  Result<PredictionService::Response> response =
      service.Predict(fixture.probe);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->epoch, 1u);
  EXPECT_GT(response->request_id, 0);
  EXPECT_EQ(response->scores,
            SerialScores(*fixture.pipeline, *fixture.model, fixture.probe));
  EXPECT_EQ(response->labels.size(), response->scores.size());
  EXPECT_EQ(response->true_labels.size(), response->scores.size());
  for (size_t i = 0; i < response->scores.size(); ++i) {
    EXPECT_EQ(response->labels[i],
              response->scores[i] >= 0.0 ? 1.0 : -1.0);
  }
  EXPECT_GE(response->latency_seconds, 0.0);
  service.Stop();
}

TEST(PredictionServiceTest, InterpretedAndFusedModesAgree) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService::Options interpreted_options;
  interpreted_options.exec_mode = ExecMode::kInterpreted;
  PredictionService fused(&publisher, PredictionService::Options{});
  PredictionService interpreted(&publisher, interpreted_options);
  SnapshotReader fused_reader(&publisher);
  SnapshotReader interpreted_reader(&publisher);
  Result<PredictionService::Response> a =
      fused.PredictWith(&fused_reader, fixture.probe);
  Result<PredictionService::Response> b =
      interpreted.PredictWith(&interpreted_reader, fixture.probe);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->scores, b->scores);
}

TEST(PredictionServiceTest, SingleRecordPredictionMatchesBatchRow) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService service(&publisher, PredictionService::Options{});
  ASSERT_TRUE(service.Start().ok());
  Result<PredictionService::Response> batch = service.Predict(fixture.probe);
  ASSERT_TRUE(batch.ok());
  // Single-record requests reproduce the batch rows one by one (row order
  // is preserved and no probe row is dropped by the URL pipeline).
  ASSERT_EQ(batch->scores.size(), fixture.probe.num_rows());
  for (size_t r = 0; r < fixture.probe.num_rows(); ++r) {
    Result<PredictionService::Response> one =
        service.PredictRecord(fixture.probe.records[r]);
    ASSERT_TRUE(one.ok());
    ASSERT_EQ(one->scores.size(), 1u);
    EXPECT_EQ(one->scores[0], batch->scores[r]) << "row " << r;
  }
  service.Stop();
}

TEST(PredictionServiceTest, ConcurrentClientsUnderTinyQueueAllAnswered) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;  // force producer backpressure
  PredictionService service(&publisher, options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  std::vector<double> expected =
      SerialScores(*fixture.pipeline, *fixture.model, fixture.probe);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Result<PredictionService::Response> response =
            service.Predict(fixture.probe);
        if (!response.ok() || response->scores != expected) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(service.requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(service.request_errors(), 0u);
  service.Stop();
}

TEST(PredictionServiceTest, AdmissionTimeoutShedsInsteadOfBlocking) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService::Options options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.admission_timeout_seconds = 0.0;  // try-admit: full queue = shed
  PredictionService service(&publisher, options);
  ASSERT_TRUE(service.Start().ok());

  const int64_t shed_counter_before =
      obs::MetricsRegistry::Global().GetCounter("serving.shed")->Value();
  const std::vector<double> expected =
      SerialScores(*fixture.pipeline, *fixture.model, fixture.probe);

  // Hammer the single slot from four clients until someone is turned
  // away.  Every response is either a full correct answer or an explicit
  // Unavailable shed — never a hang, never a wrong score.
  constexpr int kClients = 4;
  constexpr int kMaxPerClient = 10000;
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> shed_count{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kMaxPerClient; ++i) {
        Result<PredictionService::Response> response =
            service.Predict(fixture.probe);
        if (response.ok()) {
          ok_count.fetch_add(1);
          if (response->scores != expected) wrong.fetch_add(1);
        } else if (response.status().code() == StatusCode::kUnavailable) {
          shed_count.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
        if (shed_count.load() > 0 && i > 8) break;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Stop();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GT(service.requests_shed(), 0u);
  // Unified backpressure accounting: the service-level counter, the
  // serving.shed metric, and the observed rejections all agree.
  EXPECT_EQ(service.requests_shed(), shed_count.load());
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("serving.shed")->Value() -
          shed_counter_before,
      static_cast<int64_t>(shed_count.load()));
  EXPECT_GE(service.requests_served(), ok_count.load());
  // Sheds are rejections, not errors.
  EXPECT_EQ(service.request_errors(), 0u);
}

TEST(PredictionServiceTest, NegativeTimeoutPreservesBlockingBehavior) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService::Options options;
  options.num_threads = 2;
  options.queue_capacity = 1;
  options.admission_timeout_seconds = -1.0;  // legacy: block until a slot
  PredictionService service(&publisher, options);
  ASSERT_TRUE(service.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (!service.Predict(fixture.probe).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.requests_shed(), 0u);
}

TEST(PredictionServiceTest, InjectedFaultIsCountedAsRequestError) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  PredictionService service(&publisher, PredictionService::Options{});
  ASSERT_TRUE(service.Start().ok());
  {
    testing::ScopedFaultScript script(
        {{"serving.request", testing::FaultRule::FirstN(1)}});
    Result<PredictionService::Response> failed =
        service.Predict(fixture.probe);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(service.request_errors(), 1u);
  // The loop recovers: the next request is healthy.
  Result<PredictionService::Response> ok_response =
      service.Predict(fixture.probe);
  EXPECT_TRUE(ok_response.ok());
  service.Stop();
}

TEST(PredictionServiceTest, ServingMetricsAreRegistered) {
  SnapshotPublisher publisher;
  PredictionService service(&publisher, PredictionService::Options{});
  obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snapshot.CounterValueOr("serving.requests", -1), 0);
  EXPECT_GE(snapshot.CounterValueOr("serving.errors", -1), 0);
  EXPECT_GE(snapshot.CounterValueOr("serving.stale_reads", -1), 0);
  EXPECT_GE(snapshot.CounterValueOr("serving.torn_reads", -1), 0);
  EXPECT_GE(snapshot.CounterValueOr("serving.publishes", -1), 0);
  // Backpressure counters mirror the ingest-side naming scheme
  // (ingest.shed / ingest.queue_depth / ingest.queue_high_watermark).
  EXPECT_GE(snapshot.CounterValueOr("serving.shed", -1), 0);
}

}  // namespace
}  // namespace serving
}  // namespace cdpipe
