// Golden serve-then-train equivalence: routing the deployment loop's
// prequential evaluate step through the PredictionService must be
// BIT-IDENTICAL to the in-loop evaluate path — same quality curve row by
// row, same final deployed state (hexfloat-exact checkpoint fingerprint) —
// at engine threads {1, 4} and under both serving execution modes.
//
// Why this holds: in serve-eval mode the deployment publishes the snapshot
// after the chunk's statistics update and before its online SGD step.  A
// pure Transform after UpdateAndTransform of the same chunk reproduces its
// features exactly (each stage sees the same input under the same
// post-chunk statistics), and the snapshot model is the same pre-update
// model the in-loop path evaluates with.

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/core/continuous_deployment.h"
#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"
#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {
namespace {

constexpr size_t kBootstrapChunks = 4;
constexpr size_t kStreamChunks = 18;

UrlStreamGenerator::Config StreamConfig() {
  UrlStreamGenerator::Config config;
  config.feature_dim = 800;
  config.initial_active_features = 120;
  config.new_features_per_chunk = 1;
  config.perturbed_weights_per_chunk = 10;
  config.drift_step = 0.05;
  config.nnz_per_record = 8;
  config.records_per_chunk = 20;
  config.seed = 321;
  return config;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 800;
  config.hash_bits = 7;
  return config;
}

struct RunResult {
  DeploymentReport report;
  std::string fingerprint;
};

/// One full InitialTrain + Run of the continuous strategy.  When `service`
/// configuration is supplied, the serving tier is attached with
/// serve-evaluation routing.
RunResult RunOnce(size_t engine_threads, bool serve_eval,
                  ExecMode serving_mode) {
  Deployment::Options options;
  options.eval_window = 300;
  options.seed = 7;
  options.engine_threads = engine_threads;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 3;
  continuous.sample_chunks = 4;

  const UrlPipelineConfig pipe_config = PipeConfig();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeUrlPipeline(pipe_config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());

  serving::SnapshotPublisher publisher;
  serving::PredictionService::Options service_options;
  service_options.exec_mode = serving_mode;
  service_options.deployment_id = deployment.deployment_id();
  serving::PredictionService service(&publisher, service_options);
  if (serve_eval) {
    deployment.AttachServing(&publisher, &service,
                             /*serve_evaluation=*/true);
  }

  UrlStreamGenerator generator(StreamConfig());
  const std::vector<RawChunk> all =
      generator.Generate(kBootstrapChunks + kStreamChunks);
  const std::vector<RawChunk> bootstrap(all.begin(),
                                        all.begin() + kBootstrapChunks);
  const std::vector<RawChunk> stream(all.begin() + kBootstrapChunks,
                                     all.end());

  BatchTrainer::Options train_options;
  train_options.max_epochs = 5;
  train_options.batch_size = 0;
  train_options.tolerance = 1e-4;
  CDPIPE_CHECK(deployment.InitialTrain(bootstrap, train_options).ok());

  RunResult result;
  result.report = deployment.Run(stream).ValueOrDie();
  std::ostringstream buffer;
  CDPIPE_CHECK(
      SaveCheckpoint(std::as_const(deployment).pipeline_manager(), &buffer)
          .ok());
  result.fingerprint = buffer.str();
  return result;
}

void ExpectBitIdenticalQuality(const RunResult& baseline,
                               const RunResult& served) {
  ASSERT_EQ(baseline.report.curve.size(), served.report.curve.size());
  for (size_t i = 0; i < baseline.report.curve.size(); ++i) {
    const auto& a = baseline.report.curve[i];
    const auto& b = served.report.curve[i];
    EXPECT_EQ(a.observations, b.observations) << "chunk " << i;
    EXPECT_EQ(a.cumulative_error, b.cumulative_error) << "chunk " << i;
    EXPECT_EQ(a.windowed_error, b.windowed_error) << "chunk " << i;
    EXPECT_EQ(a.cumulative_work, b.cumulative_work) << "chunk " << i;
  }
  EXPECT_EQ(baseline.report.final_error, served.report.final_error);
  EXPECT_EQ(baseline.fingerprint, served.fingerprint);
}

class ServeThenTrainTest
    : public ::testing::TestWithParam<std::tuple<size_t, ExecMode>> {};

TEST_P(ServeThenTrainTest, ServedEvaluationIsBitIdenticalToInLoop) {
  const size_t engine_threads = std::get<0>(GetParam());
  const ExecMode serving_mode = std::get<1>(GetParam());

  const RunResult baseline =
      RunOnce(engine_threads, /*serve_eval=*/false, serving_mode);
  const RunResult served =
      RunOnce(engine_threads, /*serve_eval=*/true, serving_mode);

  ExpectBitIdenticalQuality(baseline, served);
  // Every chunk was evaluated through the service, nothing fell back, and
  // the swap protocol held.
  EXPECT_EQ(served.report.serving_requests,
            static_cast<int64_t>(kStreamChunks));
  EXPECT_EQ(served.report.serving_eval_fallbacks, 0);
  EXPECT_EQ(served.report.serving_errors, 0);
  EXPECT_EQ(served.report.serving_stale_reads, 0);
  // Publish cadence: one at Run start, one mid-chunk per chunk, plus the
  // end-of-chunk / post-proactive publishes — at least two per chunk.
  EXPECT_GE(served.report.snapshot_publishes,
            static_cast<int64_t>(2 * kStreamChunks));
  EXPECT_EQ(baseline.report.serving_requests, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndModes, ServeThenTrainTest,
    ::testing::Combine(::testing::Values<size_t>(1, 4),
                       ::testing::Values(ExecMode::kFused,
                                         ExecMode::kInterpreted)));

}  // namespace
}  // namespace cdpipe
