// Unit tests of the RCU-style snapshot exchange: epoch assignment, the
// reader fast path, pipeline-clone reuse across model-only republishes,
// and the stale/torn counters that guard the swap protocol.

#include "src/serving/snapshot_publisher.h"

#include <memory>

#include <gtest/gtest.h>

#include "tests/serving/serving_test_util.h"

namespace cdpipe {
namespace serving {
namespace {

using serving_test::MakeServingFixture;
using serving_test::SerialScores;
using serving_test::ServingFixture;

TEST(SnapshotPublisherTest, EmptyBeforeFirstPublish) {
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.epoch(), 0u);
  EXPECT_EQ(publisher.Acquire(), nullptr);

  SnapshotReader reader(&publisher);
  EXPECT_EQ(reader.Current(), nullptr);
  EXPECT_EQ(reader.cached_epoch(), 0u);
  EXPECT_EQ(reader.stale_reads(), 0u);
  EXPECT_EQ(reader.torn_reads(), 0u);
}

TEST(SnapshotPublisherTest, EpochsAreDenseFromOne) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  EXPECT_EQ(publisher.PublishFrom(*fixture.pipeline, *fixture.model), 1u);
  EXPECT_EQ(publisher.PublishFrom(*fixture.pipeline, *fixture.model), 2u);
  EXPECT_EQ(publisher.PublishFrom(*fixture.pipeline, *fixture.model), 3u);
  EXPECT_EQ(publisher.epoch(), 3u);
  EXPECT_EQ(publisher.publishes(), 3u);

  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->epoch, 3u);
  EXPECT_TRUE(snapshot->Consistent());
  EXPECT_GT(snapshot->published_us, 0);
}

TEST(SnapshotPublisherTest, SnapshotMatchesPublishedState) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  const std::vector<double> expected =
      SerialScores(*fixture.pipeline, *fixture.model, fixture.probe);
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);

  std::shared_ptr<const ModelSnapshot> snapshot = publisher.Acquire();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(
      SerialScores(*snapshot->pipeline, *snapshot->model, fixture.probe),
      expected);
}

TEST(SnapshotPublisherTest, PipelineCloneSharedWhenStatisticsUnchanged) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> first = publisher.Acquire();

  // Model-only change: the second epoch shares the first's frozen pipeline.
  FeatureData features =
      fixture.pipeline->Transform(fixture.chunks[1]).ValueOrDie();
  ASSERT_TRUE(fixture.model->Update(features, fixture.optimizer.get()).ok());
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> second = publisher.Acquire();
  EXPECT_EQ(second->pipeline.get(), first->pipeline.get());
  EXPECT_NE(second->model.get(), first->model.get());

  // Statistics change: the third epoch must deep-clone again.
  ASSERT_TRUE(
      fixture.pipeline->UpdateAndTransform(fixture.chunks[2]).ok());
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> third = publisher.Acquire();
  EXPECT_NE(third->pipeline.get(), first->pipeline.get());
  EXPECT_EQ(third->pipeline_version, fixture.pipeline->state_version());
}

TEST(SnapshotPublisherTest, ReaderFastPathCachesUntilEpochAdvances) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  SnapshotReader reader(&publisher);

  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> first = reader.Current();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(reader.cached_epoch(), 1u);
  // No publish in between: the exact same object comes back.
  EXPECT_EQ(reader.Current().get(), first.get());

  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> second = reader.Current();
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(reader.cached_epoch(), 2u);
  EXPECT_EQ(reader.stale_reads(), 0u);
  EXPECT_EQ(reader.torn_reads(), 0u);
}

TEST(SnapshotPublisherTest, HoldingAReferenceKeepsTheOldEpochAlive) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  SnapshotReader reader(&publisher);
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  std::shared_ptr<const ModelSnapshot> held = reader.Current();

  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  publisher.PublishFrom(*fixture.pipeline, *fixture.model);
  // The in-flight request's epoch is untouched by later publishes.
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_TRUE(held->Consistent());
  EXPECT_NE(
      SerialScores(*held->pipeline, *held->model, fixture.probe).size(), 0u);
}

TEST(SnapshotPublisherTest, PublishPrebuiltSnapshot) {
  ServingFixture fixture = MakeServingFixture();
  SnapshotPublisher publisher;
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->pipeline =
      std::shared_ptr<const Pipeline>(fixture.pipeline->Clone());
  snapshot->model = std::make_shared<const LinearModel>(*fixture.model);
  snapshot->pipeline_version = fixture.pipeline->state_version();
  EXPECT_EQ(publisher.Publish(std::move(snapshot)), 1u);
  std::shared_ptr<const ModelSnapshot> acquired = publisher.Acquire();
  ASSERT_NE(acquired, nullptr);
  EXPECT_TRUE(acquired->Consistent());
  EXPECT_EQ(acquired->epoch_check, 1u);
}

}  // namespace
}  // namespace serving
}  // namespace cdpipe
