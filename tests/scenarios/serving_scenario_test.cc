// Serve-under-fault scenarios: the prediction front-end hammered while the
// deployment loop trains under injected faults — epoch swaps under load,
// checkpoint restore mid-serve, and a wedged request loop flipping /readyz.
// Every scenario asserts the serving invariants: no torn reads, no epoch
// regressions (bounded staleness), no request errors against a healthy
// snapshot, and degradation accounted in the DeploymentReport.

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cost_model.h"
#include "src/core/pipeline_manager.h"
#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"
#include "src/obs/health.h"
#include "src/obs/obs_server.h"
#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"
#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

TEST(ServingScenarioTest, ServeEvalFaultFreeBitIdenticalToInLoop) {
  Scenario in_loop;
  in_loop.name = "serving-control-in-loop";
  const ScenarioResult baseline = RunScenario(in_loop);
  ASSERT_TRUE(baseline.ok()) << baseline.status.ToString();

  Scenario served = in_loop;
  served.name = "serving-control-serve-eval";
  served.attach_serving = true;
  served.serve_evaluation = true;
  const ScenarioResult result = RunScenario(served);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  // Routing evaluation through the service must not move a single bit of
  // the deployed state or the quality curve.
  EXPECT_EQ(result.fingerprint, baseline.fingerprint);
  EXPECT_EQ(result.report.final_error, baseline.report.final_error);
  EXPECT_EQ(result.report.serving_requests,
            static_cast<int64_t>(served.num_chunks));
  EXPECT_EQ(result.report.serving_eval_fallbacks, 0);
  EXPECT_EQ(result.report.serving_stale_reads, 0);
  EXPECT_GT(result.report.snapshot_publishes, 0);
}

TEST(ServingScenarioTest, ServeEvalFaultOnRequestFallsBackAndDegrades) {
  Scenario scenario;
  scenario.name = "serving-request-fault";
  scenario.attach_serving = true;
  scenario.serve_evaluation = true;
  // Fail the first two serve-eval requests: the loop must fall back to the
  // in-loop evaluate — same observations, no hole in the curve — and the
  // report must account the degradation.
  scenario.faults = {{"serving.request", FaultRule::FirstN(2)}};
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.report.serving_eval_fallbacks, 2);
  EXPECT_EQ(result.report.serving_errors, 2);
  EXPECT_GE(result.report.degraded_events, 2);
  EXPECT_EQ(result.report.serving_stale_reads, 0);

  // The curve lost nothing: observations equal the fault-free control's.
  Scenario control;
  const ScenarioResult baseline = RunScenario(control);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(result.report.curve.empty());
  EXPECT_EQ(result.report.curve.back().observations,
            baseline.report.curve.back().observations);
  // The fallback path evaluates the identical (score, label) sequence, so
  // even the faulted run's quality is bit-identical.
  EXPECT_EQ(result.fingerprint, baseline.fingerprint);
  EXPECT_EQ(result.report.final_error, baseline.report.final_error);
}

TEST(ServingScenarioTest, SwapUnderLoadWithSlowEngineTasks) {
  // Slow down engine tasks (proactive training fan-out) so publishes land
  // while requests are in flight, then hammer the service from concurrent
  // clients for the whole run.
  Scenario scenario;
  scenario.name = "serving-swap-under-load";
  scenario.engine_threads = 2;
  scenario.serving_threads = 3;
  // Force re-materialization misses so proactive training fans real
  // recompute tasks through the engine, where the delay site lives.
  scenario.store.max_materialized_chunks = 4;
  FaultRule slow = FaultRule::EveryN(3);
  slow.delay_seconds = 0.01;
  scenario.faults = {{"engine.slow_task", slow}};

  std::unique_ptr<ContinuousDeployment> deployment =
      MakeScenarioDeployment(scenario);
  serving::SnapshotPublisher publisher;
  serving::PredictionService::Options service_options;
  service_options.num_threads = scenario.serving_threads;
  service_options.deployment_id = deployment->deployment_id();
  serving::PredictionService service(&publisher, service_options);
  deployment->AttachServing(&publisher, &service, /*serve_evaluation=*/false);
  ASSERT_TRUE(service.Start().ok());

  const std::vector<RawChunk> stream = MakeScenarioStream(scenario.num_chunks);
  RawChunk probe = stream.front();
  probe.id = 9100;

  // Clients launch first and confirm they are spinning before training
  // starts, so the request storm genuinely overlaps the publish storm.
  std::atomic<bool> run_done{false};
  std::atomic<int> clients_started{0};
  constexpr int kClients = 3;
  std::atomic<int> violations{0};
  std::atomic<uint64_t> ok_requests{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      bool saw_healthy = false;
      uint64_t last_epoch = 0;
      clients_started.fetch_add(1);
      while (!run_done.load(std::memory_order_acquire)) {
        const uint64_t epoch_at_submit = publisher.epoch();
        Result<serving::PredictionService::Response> response =
            service.Predict(probe);
        if (!response.ok()) {
          // Only legal before the first publish: once a healthy snapshot
          // exists the request loop must never error.
          if (saw_healthy) violations.fetch_add(1);
          continue;
        }
        saw_healthy = true;
        ok_requests.fetch_add(1, std::memory_order_relaxed);
        // Bounded staleness: a response can never be older than the epoch
        // already published when the request was submitted, and epochs can
        // never regress across a client's consecutive requests.
        if (response->epoch < epoch_at_submit) violations.fetch_add(1);
        if (response->epoch < last_epoch) violations.fetch_add(1);
        last_epoch = response->epoch;
        if (response->scores.size() != probe.num_rows()) {
          violations.fetch_add(1);
        }
      }
    });
  }
  while (clients_started.load() < kClients) std::this_thread::yield();

  Status run_status = Status::OK();
  DeploymentReport report;
  std::thread run_thread([&] {
    ScopedFaultScript script(scenario.faults);
    Result<DeploymentReport> run_report = deployment->Run(stream);
    if (run_report.ok()) {
      report = *std::move(run_report);
    } else {
      run_status = run_report.status();
    }
    run_done.store(true, std::memory_order_release);
  });
  run_thread.join();
  for (std::thread& t : clients) t.join();
  service.Stop();

  ASSERT_TRUE(run_status.ok()) << run_status.ToString();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(ok_requests.load(), 0u);
  EXPECT_GT(report.faults_injected, 0) << "slow-task site never fired";
  EXPECT_EQ(report.serving_stale_reads, 0);
  EXPECT_GT(report.snapshot_publishes, 0);
  // Requests can straddle the report's metrics window (some complete after
  // Run cuts it), so accounting is asserted on the service itself.
  EXPECT_GE(service.requests_served(), ok_requests.load());
}

TEST(ServingScenarioTest, CheckpointRestoreMidServe) {
  // A restore atomically replaces pipeline + model + optimizer and must
  // auto-publish: requests racing the restore always see either the old or
  // the new epoch, never a mix and never an error.
  UrlPipelineConfig pipe_config;
  pipe_config.raw_dim = 600;
  pipe_config.hash_bits = 7;
  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = 600;
  stream_config.initial_active_features = 90;
  stream_config.nnz_per_record = 6;
  stream_config.records_per_chunk = 16;
  stream_config.seed = 5;
  UrlStreamGenerator generator(stream_config);
  const std::vector<RawChunk> chunks = generator.Generate(4);

  CostModel cost;
  PipelineManager manager(
      MakeUrlPipeline(pipe_config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kSgd,
                                     .learning_rate = 0.05}),
      &cost);
  PrequentialEvaluator evaluator(std::make_unique<MisclassificationRate>(),
                                 1000);
  for (const RawChunk& chunk : chunks) {
    ASSERT_TRUE(manager.OnlineStep(chunk, &evaluator, true).ok());
  }
  std::ostringstream checkpoint;
  ASSERT_TRUE(SaveCheckpoint(manager, &checkpoint).ok());

  serving::SnapshotPublisher publisher;
  manager.AttachPublisher(&publisher);
  manager.PublishSnapshot();
  serving::PredictionService::Options service_options;
  service_options.num_threads = 2;
  serving::PredictionService service(&publisher, service_options);
  ASSERT_TRUE(service.Start().ok());

  RawChunk probe = chunks.front();
  probe.id = 9200;

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        Result<serving::PredictionService::Response> response =
            service.Predict(probe);
        if (!response.ok() || response->epoch < last_epoch ||
            response->scores.size() != probe.num_rows()) {
          violations.fetch_add(1);
          continue;
        }
        last_epoch = response->epoch;
      }
    });
  }

  // Restore the checkpoint repeatedly mid-serve (each Restore swaps the
  // full deployed state and auto-publishes a fresh epoch), interleaved
  // with live training steps.
  const uint64_t epoch_before = publisher.epoch();
  for (int round = 0; round < 5; ++round) {
    std::istringstream reader(checkpoint.str());
    ASSERT_TRUE(LoadCheckpoint(&reader, &manager).ok());
    ASSERT_TRUE(manager.OnlineStep(chunks[round % chunks.size()], &evaluator,
                                   true)
                    .ok());
    manager.PublishSnapshot();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  service.Stop();

  EXPECT_EQ(violations.load(), 0);
  // 5 restores + 5 explicit post-step publishes landed on top.
  EXPECT_GE(publisher.epoch(), epoch_before + 10);
  EXPECT_EQ(service.request_errors(), 0u);
}

TEST(ServingScenarioTest, WedgedRequestLoopFlipsReadyz) {
  Scenario scenario;
  std::unique_ptr<ContinuousDeployment> deployment =
      MakeScenarioDeployment(scenario);
  serving::SnapshotPublisher publisher;
  serving::PredictionService::Options service_options;
  service_options.num_threads = 1;
  serving::PredictionService service(&publisher, service_options);
  deployment->AttachServing(&publisher, &service, false);
  deployment->PublishSnapshot();
  ASSERT_TRUE(service.Start().ok());

  obs::Watchdog::Options watchdog_options;
  watchdog_options.stall_deadline_seconds = 0.05;
  obs::Watchdog watchdog(watchdog_options);
  obs::ObsServer::Options server_options;
  server_options.watchdog = &watchdog;
  obs::ObsServer server(server_options);

  RawChunk probe = MakeScenarioStream(1).front();
  probe.id = 9300;

  // Wedge the single request-loop worker for 0.4s — busy-but-silent well
  // past the watchdog deadline.
  FaultRule wedge = FaultRule::FirstN(1);
  wedge.delay_seconds = 0.4;
  ScopedFaultScript script({{"serving.slow_request", wedge}});

  std::thread client([&] {
    Result<serving::PredictionService::Response> response =
        service.Predict(probe);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  watchdog.PollOnce();
  EXPECT_FALSE(watchdog.ready()) << "wedged serving loop must flip readiness";
  const std::string stalled_readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(stalled_readyz.find("503"), std::string::npos) << stalled_readyz;
  // The 503 body is the plaintext reason, naming the wedged subsystem.
  EXPECT_NE(stalled_readyz.find("not ready:"), std::string::npos)
      << stalled_readyz;
  EXPECT_NE(stalled_readyz.find("stalled=serving"), std::string::npos)
      << stalled_readyz;

  client.join();
  // The delayed request completed (and beat): readiness restores.  The
  // join only guarantees the promise was set — the worker's busy scope may
  // release a beat later, so poll until the watchdog observes it.
  for (int i = 0; i < 100 && !watchdog.ready(); ++i) {
    watchdog.PollOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(watchdog.ready());
  const std::string healthy_readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(healthy_readyz.find("\"ready\":true"), std::string::npos)
      << healthy_readyz;
  service.Stop();
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
