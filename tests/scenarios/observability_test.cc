// End-to-end observability: a full deployment run must leave a coherent
// story in the event journal — every chunk's lifecycle causally ordered
// under one correlation id — and the watchdog must catch an injected
// engine stall in flight.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/obs_server.h"
#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

using obs::EventJournal;
using obs::EventKind;
using obs::JournalEvent;

std::vector<JournalEvent> EventsOfKind(const std::vector<JournalEvent>& all,
                                       EventKind kind) {
  std::vector<JournalEvent> out;
  for (const JournalEvent& e : all) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

TEST(ObservabilityScenarioTest, JournalTellsACausallyOrderedChunkStory) {
  EventJournal& journal = EventJournal::Global();
  journal.Clear();

  Scenario scenario;
  scenario.name = "journal-causality";
  scenario.store.max_materialized_chunks = 4;  // force materialize misses
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  const std::vector<JournalEvent> events = journal.Tail(journal.capacity());
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(journal.TotalDropped(), 0u)
      << "run must fit in the default ring";

  const std::vector<JournalEvent> ingests =
      EventsOfKind(events, EventKind::kIngest);
  const std::vector<JournalEvent> train_steps =
      EventsOfKind(events, EventKind::kTrainStep);
  ASSERT_FALSE(ingests.empty());
  ASSERT_FALSE(train_steps.empty());
  EXPECT_FALSE(EventsOfKind(events, EventKind::kSample).empty());

  // Every event of the run is attributed to the same (single) deployment.
  const uint32_t deployment = ingests.front().corr.deployment;
  ASSERT_NE(deployment, 0u);
  for (const JournalEvent& e : ingests) {
    EXPECT_EQ(e.corr.deployment, deployment);
    EXPECT_GE(e.corr.entity, 0) << "ingest must carry the chunk id";
  }
  for (const JournalEvent& e : train_steps) {
    EXPECT_EQ(e.corr.deployment, deployment);
  }

  // Causality per chunk: ingest happens-before any materialize hit/miss
  // and before any recompute of that chunk, and some train step follows.
  std::map<int64_t, int64_t> ingest_ts;
  for (const JournalEvent& e : ingests) {
    ingest_ts[e.corr.entity] = e.timestamp_us;
  }
  size_t chains_checked = 0;
  for (const JournalEvent& e : events) {
    if (e.kind != EventKind::kMaterializeHit &&
        e.kind != EventKind::kMaterializeMiss &&
        e.kind != EventKind::kRecompute) {
      continue;
    }
    auto it = ingest_ts.find(e.corr.entity);
    ASSERT_NE(it, ingest_ts.end())
        << "chunk " << e.corr.entity << " was sampled but never ingested";
    EXPECT_LE(it->second, e.timestamp_us)
        << "ingest must precede materialization of chunk " << e.corr.entity;
    const bool trained_after = std::any_of(
        train_steps.begin(), train_steps.end(), [&](const JournalEvent& t) {
          return t.timestamp_us >= e.timestamp_us;
        });
    EXPECT_TRUE(trained_after)
        << "a sampled chunk must feed a subsequent train step";
    ++chains_checked;
  }
  EXPECT_GT(chains_checked, 0u);

  // Per-producer sequence numbers are strictly increasing in ring order —
  // the journal lost nothing and never reordered a thread's own events.
  std::map<uint32_t, uint64_t> last_seq;
  for (const JournalEvent& e : events) {
    auto [it, inserted] = last_seq.try_emplace(e.producer, e.seq);
    if (!inserted) {
      EXPECT_GT(e.seq, it->second) << "producer " << e.producer;
      it->second = e.seq;
    }
  }
  journal.Clear();
}

TEST(ObservabilityScenarioTest, WatchdogCatchesInjectedEngineStall) {
  EventJournal& journal = EventJournal::Global();
  journal.Clear();

  obs::Watchdog::Options watchdog_options;
  watchdog_options.stall_deadline_seconds = 0.05;
  watchdog_options.poll_interval_seconds = 0.01;
  obs::Watchdog watchdog(watchdog_options);
  watchdog.Start();

  Scenario scenario;
  scenario.name = "engine-stall";
  scenario.store.max_materialized_chunks = 4;
  FaultRule stall = FaultRule::EveryN(10);
  stall.delay_seconds = 0.25;  // 5x the watchdog deadline
  scenario.faults = {{"engine.slow_task", stall}};

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.faults_injected, 0)
      << "the slow-task site never fired; the stall was not exercised";

  // The watchdog must have seen the engine go busy-but-silent mid-run.
  EXPECT_GE(watchdog.stall_events(), 1);
  // And once the delayed task finished, the engine recovered.
  for (int i = 0; i < 100 && !watchdog.ready(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(watchdog.ready());
  EXPECT_GE(watchdog.recover_events(), 1);
  watchdog.Stop();

  const std::vector<JournalEvent> events = journal.Tail(journal.capacity());
  const std::vector<JournalEvent> stalls =
      EventsOfKind(events, EventKind::kStall);
  ASSERT_FALSE(stalls.empty());
  // The engine is where the delay is injected; subsystems blocked on it
  // (deployment, trainer) may legitimately report stalled as well.
  const bool engine_stalled = std::any_of(
      stalls.begin(), stalls.end(), [](const JournalEvent& e) {
        return std::string(e.detail) == "engine";
      });
  EXPECT_TRUE(engine_stalled);

  // The obs server wired to the same watchdog reflects the recovery.
  obs::ObsServer::Options server_options;
  server_options.watchdog = &watchdog;
  obs::ObsServer server(server_options);
  const std::string readyz =
      server.HandleRequest("GET /readyz HTTP/1.0\r\n\r\n");
  EXPECT_NE(readyz.find("\"ready\":true"), std::string::npos)
      << "recovered engine must report ready again: " << readyz;
  journal.Clear();
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
