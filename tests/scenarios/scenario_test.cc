// Scenario-driven end-to-end tests: the full continuous deployment loop
// runs under seeded fault scripts and must (a) complete, (b) account for
// every injected fault, retry, and degradation in its DeploymentReport, and
// (c) — for the fault-free control — produce bit-identical results to the
// completely uninstrumented path.

#include <gtest/gtest.h>

#include <sstream>

#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"
#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

TEST(ScenarioTest, FaultFreeControlIsBitIdenticalToUninstrumented) {
  Scenario uninstrumented;
  uninstrumented.name = "uninstrumented";
  uninstrumented.arm_injector = false;

  Scenario control;
  control.name = "fault-free-control";
  control.arm_injector = true;  // enabled injector, no rule ever fires

  const ScenarioResult baseline = RunScenario(uninstrumented);
  const ScenarioResult inert = RunScenario(control);
  ASSERT_TRUE(baseline.ok()) << baseline.status.ToString();
  ASSERT_TRUE(inert.ok()) << inert.status.ToString();

  // Arming the injector must not perturb a single bit of the numerics.
  EXPECT_EQ(baseline.fingerprint, inert.fingerprint);
  EXPECT_EQ(baseline.report.final_error, inert.report.final_error);
  EXPECT_EQ(baseline.report.curve.back().observations,
            inert.report.curve.back().observations);
  EXPECT_EQ(inert.report.faults_injected, 0);
  EXPECT_EQ(inert.report.retry_attempts, 0);
  EXPECT_EQ(inert.report.degraded_events, 0);
}

TEST(ScenarioTest, FlakyEngineCompletesWithFaultAccounting) {
  Scenario scenario;
  scenario.name = "flaky-engine";
  scenario.engine_threads = 4;
  scenario.store.max_materialized_chunks = 4;  // force re-materialization
  scenario.faults = {
      {"engine.task", FaultRule::Probability(0.3, 71)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.report.chunks_processed,
            static_cast<int64_t>(Scenario{}.num_chunks));
  EXPECT_GT(result.report.faults_injected, 0);
  // Transient task faults are absorbed by the engine's retry policy (and,
  // past exhaustion, by the trainer's serial fallback) — never an abort.
  EXPECT_GT(result.report.retry_attempts, 0);
  EXPECT_GT(result.report.proactive_iterations, 0);
}

TEST(ScenarioTest, ThrowingTasksAreContained) {
  Scenario scenario;
  scenario.name = "throwing-tasks";
  scenario.engine_threads = 4;
  scenario.store.max_materialized_chunks = 4;
  FaultRule thrower = FaultRule::FirstN(3);
  thrower.throws = true;
  thrower.message = "task exploded";
  scenario.faults = {{"engine.task", thrower}};

  const ScenarioResult result = RunScenario(scenario);
  // Exceptions become Internal (non-retryable); the serial fallback
  // recomputes the affected chunks and the run completes.
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GE(result.report.faults_injected, 3);
}

TEST(ScenarioTest, EvictHeavyCompletesWithHonestMuAccounting) {
  Scenario scenario;
  scenario.name = "evict-heavy";
  scenario.store.max_materialized_chunks = 4;
  scenario.faults = {
      {"chunk_store.forced_eviction", FaultRule::Probability(0.5, 17)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.faults_injected, 0);
  // Forced evictions surface as sample misses and re-materializations.
  EXPECT_GT(result.report.storage.sample_misses, 0);
  EXPECT_LT(result.report.empirical_mu, 1.0);
  EXPECT_GT(
      result.report.metrics.CounterValueOr("proactive.chunks_rematerialized",
                                           0),
      0);
  EXPECT_EQ(result.report.proactive_chunks_skipped, 0);  // all recovered
}

TEST(ScenarioTest, IngestHiccupRecoversViaRetry) {
  Scenario scenario;
  scenario.name = "ingest-hiccup";
  scenario.faults = {
      {"chunk_store.put_raw", FaultRule::FirstN(2)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  // Two injected failures, both absorbed by retries: every chunk lands in
  // the store and nothing degrades.
  EXPECT_EQ(result.report.faults_injected, 2);
  EXPECT_GE(result.report.retry_attempts, 2);
  EXPECT_EQ(result.report.retries_exhausted, 0);
  EXPECT_EQ(result.report.degraded_events, 0);
  EXPECT_EQ(result.report.storage.raw_inserted,
            static_cast<int64_t>(Scenario{}.num_chunks));
}

TEST(ScenarioTest, PersistentIngestFailureDegradesInsteadOfAborting) {
  Scenario scenario;
  scenario.name = "ingest-outage";
  // First 6 PutRaw calls fail: the first chunk's retries (3 attempts)
  // exhaust, the deployment processes it without storage and moves on.
  scenario.faults = {
      {"chunk_store.put_raw", FaultRule::FirstN(6)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.retries_exhausted, 0);
  EXPECT_GT(result.report.degraded_events, 0);
  // Quality curve stayed continuous: every chunk contributed observations.
  EXPECT_EQ(result.report.chunks_processed,
            static_cast<int64_t>(Scenario{}.num_chunks));
  EXPECT_GT(result.report.curve.back().observations, 0);
  // The degraded chunks are missing from storage.
  EXPECT_LT(result.report.storage.raw_inserted,
            static_cast<int64_t>(Scenario{}.num_chunks));
}

TEST(ScenarioTest, StoreFeaturesFailureLeavesChunkRecoverable) {
  Scenario scenario;
  scenario.name = "materialization-outage";
  scenario.store.max_materialized_chunks = 8;
  scenario.faults = {
      {"chunk_store.put_features", FaultRule::Probability(0.4, 23)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.degraded_events, 0);
  EXPECT_GT(
      result.report.metrics.CounterValueOr("deployment.store_features_failed",
                                           0),
      0);
  // Unmaterialized chunks are recovered on demand by dynamic
  // materialization when proactive training samples them.
  EXPECT_GT(result.report.proactive_iterations, 0);
}

TEST(ScenarioTest, SlowTasksPerturbSchedulingNotResults) {
  Scenario baseline;
  baseline.name = "uninstrumented-4t";
  baseline.arm_injector = false;
  baseline.engine_threads = 4;
  baseline.store.max_materialized_chunks = 4;

  Scenario slow;
  slow.name = "slow-tasks";
  slow.engine_threads = 4;
  slow.store.max_materialized_chunks = 4;
  FaultRule delay = FaultRule::EveryN(3);
  delay.delay_seconds = 0.002;
  slow.faults = {{"engine.slow_task", delay}};

  const ScenarioResult fast = RunScenario(baseline);
  const ScenarioResult delayed = RunScenario(slow);
  ASSERT_TRUE(fast.ok()) << fast.status.ToString();
  ASSERT_TRUE(delayed.ok()) << delayed.status.ToString();
  // Injected latency reorders worker scheduling but must not change a
  // single bit of the result (slot-indexed writes, fixed-order merges).
  EXPECT_EQ(fast.fingerprint, delayed.fingerprint);
  EXPECT_GT(delayed.report.faults_injected, 0);
}

TEST(ScenarioTest, ShortReadsShrinkTheStreamNotTheRun) {
  Scenario control;
  control.name = "uninstrumented";
  control.arm_injector = false;

  Scenario short_reads;
  short_reads.name = "short-reads";
  short_reads.faults = {
      {"url_stream.short_read", FaultRule::EveryN(4)},
  };

  const ScenarioResult full = RunScenario(control);
  const ScenarioResult truncated = RunScenario(short_reads);
  ASSERT_TRUE(full.ok()) << full.status.ToString();
  ASSERT_TRUE(truncated.ok()) << truncated.status.ToString();
  EXPECT_EQ(truncated.report.chunks_processed, full.report.chunks_processed);
  EXPECT_LT(truncated.report.curve.back().observations,
            full.report.curve.back().observations);
}

TEST(ScenarioTest, DegradationDisabledPropagatesTheFailure) {
  Scenario scenario;
  scenario.name = "strict-mode";
  scenario.degrade_on_failure = false;
  scenario.retry = RetryPolicy::None();
  scenario.faults = {
      {"chunk_store.put_raw", FaultRule::FirstN(1)},
  };

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
}

TEST(ScenarioTest, CorruptCheckpointLoadFailsCleanlyThenRecovers) {
  // Run a healthy deployment, checkpoint it, then script the load fault:
  // the first load attempt fails with the injected error, state stays
  // untouched, and a retry succeeds once the outage clears.
  Scenario scenario;
  scenario.name = "uninstrumented";
  scenario.arm_injector = false;
  const ScenarioResult healthy = RunScenario(scenario);
  ASSERT_TRUE(healthy.ok()) << healthy.status.ToString();

  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  CostModel cost;
  PipelineManager manager(
      MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      &cost);
  const std::vector<double> weights_before = manager.model().weights().values();

  ScopedFaultScript script({{"checkpoint.load", FaultRule::FirstN(1)}});
  std::istringstream first_attempt(healthy.fingerprint);
  const Status failed = LoadCheckpoint(&first_attempt, &manager);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager.model().weights().values(), weights_before);

  // The site recovered (FirstN(1) fired); retry with the same bytes.
  const Status retried = RetryWithBackoff(
      RetryPolicy{}, "checkpoint.load", [&]() -> Status {
        std::istringstream attempt(healthy.fingerprint);
        return LoadCheckpoint(&attempt, &manager);
      });
  ASSERT_TRUE(retried.ok()) << retried.ToString();
  EXPECT_NE(manager.model().weights().values(), weights_before);
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
