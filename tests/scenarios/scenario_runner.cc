#include "tests/scenarios/scenario_runner.h"

#include <memory>
#include <sstream>
#include <utility>

#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"

namespace cdpipe {
namespace testing {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  return config;
}

std::vector<RawChunk> MakeStream(size_t num_chunks) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1000;
  config.initial_active_features = 120;
  config.nnz_per_record = 6;
  config.records_per_chunk = 24;
  config.seed = 11;
  UrlStreamGenerator generator(config);
  return generator.Generate(num_chunks);
}

}  // namespace

ScenarioResult RunScenario(const Scenario& scenario) {
  ScenarioResult result;

  Deployment::Options options;
  options.seed = scenario.seed;
  options.store = scenario.store;
  options.engine_threads = scenario.engine_threads;
  options.retry = scenario.retry;
  options.degrade_on_failure = scenario.degrade_on_failure;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = scenario.proactive_every_chunks;
  continuous.sample_chunks = scenario.sample_chunks;
  const UrlPipelineConfig config = PipeConfig();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());

  {
    // The script covers stream generation too: short-read sites live in
    // the generators.  ScopedFaultScript guarantees disarming even when a
    // scenario assertion throws.
    std::unique_ptr<ScopedFaultScript> script;
    if (scenario.arm_injector) {
      script = std::make_unique<ScopedFaultScript>(scenario.faults);
    }
    const std::vector<RawChunk> stream = MakeStream(scenario.num_chunks);
    Result<DeploymentReport> report = deployment.Run(stream);
    if (!report.ok()) {
      result.status = report.status();
      return result;
    }
    result.report = *std::move(report);
  }

  // Fingerprint the final deployed state with the injector disarmed — a
  // checkpoint.save fault must not masquerade as a divergence.
  std::ostringstream buffer;
  result.status =
      SaveCheckpoint(std::as_const(deployment).pipeline_manager(), &buffer);
  if (result.status.ok()) result.fingerprint = buffer.str();
  return result;
}

}  // namespace testing
}  // namespace cdpipe
