#include "tests/scenarios/scenario_runner.h"

#include <memory>
#include <sstream>
#include <utility>

#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"
#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {
namespace testing {
namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1000;
  config.hash_bits = 7;
  return config;
}

}  // namespace

std::vector<RawChunk> MakeScenarioStream(size_t num_chunks) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1000;
  config.initial_active_features = 120;
  config.nnz_per_record = 6;
  config.records_per_chunk = 24;
  config.seed = 11;
  UrlStreamGenerator generator(config);
  return generator.Generate(num_chunks);
}

std::unique_ptr<ContinuousDeployment> MakeScenarioDeployment(
    const Scenario& scenario) {
  Deployment::Options options;
  options.seed = scenario.seed;
  options.store = scenario.store;
  options.engine_threads = scenario.engine_threads;
  options.retry = scenario.retry;
  options.degrade_on_failure = scenario.degrade_on_failure;
  options.publish_staleness_bound_chunks =
      scenario.publish_staleness_bound_chunks;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = scenario.proactive_every_chunks;
  continuous.sample_chunks = scenario.sample_chunks;
  const UrlPipelineConfig config = PipeConfig();
  return std::make_unique<ContinuousDeployment>(
      std::move(options), std::move(continuous), MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      std::make_unique<MisclassificationRate>());
}

ScenarioResult RunScenario(const Scenario& scenario) {
  ScenarioResult result;

  std::unique_ptr<ContinuousDeployment> deployment_ptr =
      MakeScenarioDeployment(scenario);
  ContinuousDeployment& deployment = *deployment_ptr;

  serving::SnapshotPublisher publisher;
  serving::PredictionService::Options service_options;
  service_options.num_threads = scenario.serving_threads;
  service_options.deployment_id = deployment.deployment_id();
  serving::PredictionService service(&publisher, service_options);
  if (scenario.attach_serving) {
    deployment.AttachServing(&publisher, &service, scenario.serve_evaluation);
    if (!service.Start().ok()) {
      result.status = Status::Internal("failed to start prediction service");
      return result;
    }
  }

  {
    // The script covers stream generation too: short-read sites live in
    // the generators.  ScopedFaultScript guarantees disarming even when a
    // scenario assertion throws.
    std::unique_ptr<ScopedFaultScript> script;
    if (scenario.arm_injector) {
      script = std::make_unique<ScopedFaultScript>(scenario.faults);
    }
    std::vector<RawChunk> stream = MakeScenarioStream(scenario.num_chunks);
    if (scenario.shaped) ApplyTrafficShape(scenario.traffic, &stream);
    Result<DeploymentReport> report = [&]() -> Result<DeploymentReport> {
      if (!scenario.shaped) return deployment.Run(stream);
      AdmissionController admission(scenario.admission);
      return deployment.RunShaped(stream, &admission);
    }();
    if (scenario.attach_serving) service.Stop();
    if (!report.ok()) {
      result.status = report.status();
      return result;
    }
    result.report = *std::move(report);
  }

  // Fingerprint the final deployed state with the injector disarmed — a
  // checkpoint.save fault must not masquerade as a divergence.
  std::ostringstream buffer;
  result.status =
      SaveCheckpoint(std::as_const(deployment).pipeline_manager(), &buffer);
  if (result.status.ok()) result.fingerprint = buffer.str();
  return result;
}

}  // namespace testing
}  // namespace cdpipe
