#ifndef CDPIPE_TESTS_SCENARIOS_SCENARIO_RUNNER_H_
#define CDPIPE_TESTS_SCENARIOS_SCENARIO_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/retry.h"
#include "src/core/admission.h"
#include "src/core/continuous_deployment.h"
#include "src/core/report.h"
#include "src/data/traffic_shape.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace testing {

/// One end-to-end deployment run under a seeded fault script.  Every knob
/// is deterministic: the stream generator, the deployment seed, and every
/// fault rule draw from fixed seeds, so a scenario is a reproducible
/// experiment, not a flake generator.
struct Scenario {
  std::string name;
  /// Fault script armed for the whole run (stream generation included).
  /// Empty + `arm_injector` = the "armed but inert" control.
  std::vector<ScopedFaultScript::SiteRule> faults;
  /// When false the injector stays fully disabled — the uninstrumented
  /// baseline the control is compared against.
  bool arm_injector = true;

  size_t num_chunks = 24;
  size_t engine_threads = 1;
  ChunkStore::Options store;
  RetryPolicy retry;
  bool degrade_on_failure = true;
  uint64_t seed = 3;
  size_t proactive_every_chunks = 3;
  size_t sample_chunks = 5;

  /// Serving tier: when true a SnapshotPublisher + started PredictionService
  /// are attached for the whole run; with `serve_evaluation` the prequential
  /// evaluate step routes through the service (serve-then-train).
  bool attach_serving = false;
  bool serve_evaluation = false;
  int serving_threads = 2;

  /// Traffic shaping: when `shaped` is set, the stream's arrival times are
  /// rewritten by `traffic` and the replay goes through
  /// Deployment::RunShaped behind an AdmissionController built from
  /// `admission`.  Everything stays deterministic: shapes and admission
  /// decisions are pure functions of (configs, chunk index).
  bool shaped = false;
  TrafficShapeConfig traffic;
  AdmissionController::Options admission;
  /// Deployment::Options::publish_staleness_bound_chunks for the run.
  size_t publish_staleness_bound_chunks = 4;
};

struct ScenarioResult {
  Status status = Status::OK();
  DeploymentReport report;
  /// Serialized checkpoint of the final deployed state (pipeline
  /// statistics + model weights + optimizer state, hexfloat-exact).  Two
  /// runs are bit-identical iff their fingerprints are equal.
  std::string fingerprint;

  bool ok() const { return status.ok(); }
};

/// Builds the canonical URL-stream continuous deployment, arms the
/// scenario's fault script, replays `num_chunks` chunks, and captures the
/// report plus the final-state fingerprint.  The script is disarmed before
/// returning, whatever happens.
ScenarioResult RunScenario(const Scenario& scenario);

/// The canonical scenario stream (URL generator, fixed seeds) — exposed so
/// serving scenarios can replay the exact same chunks on a background
/// deployment thread while hammering the prediction front-end.
std::vector<RawChunk> MakeScenarioStream(size_t num_chunks);

/// The canonical scenario deployment, unarmed and not yet run.
std::unique_ptr<ContinuousDeployment> MakeScenarioDeployment(
    const Scenario& scenario);

}  // namespace testing
}  // namespace cdpipe

#endif  // CDPIPE_TESTS_SCENARIOS_SCENARIO_RUNNER_H_
