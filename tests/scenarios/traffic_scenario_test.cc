// Traffic-shape stress scenarios: the full continuous deployment loop runs
// behind a bounded AdmissionController while the stream's arrival times are
// rewritten into adversarial shapes (flash crowds, sustained overload,
// diurnal swings).  Because admission runs on virtual time derived from the
// arrival timestamps, every shed/degrade decision is a pure function of
// (traffic config, admission options) — the assertions below are exact, not
// statistical, and must replay identically at any engine thread count and
// under any absorbed fault script.

#include <gtest/gtest.h>

#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

/// Sustained 3x overload behind a small degrade-policy queue: the canonical
/// "pressure that never lets up" scenario, reused by several tests below.
Scenario SustainedDegradeScenario() {
  Scenario scenario;
  scenario.name = "sustained-degrade";
  scenario.shaped = true;
  scenario.attach_serving = true;  // staleness gating needs a publisher
  scenario.traffic.shape = TrafficShape::kSustainedOverload;
  scenario.traffic.base_period_seconds = 60.0;
  scenario.traffic.overload_factor = 3.0;  // arrivals every 20s
  scenario.admission.queue_capacity = 4;
  scenario.admission.high_watermark = 3;
  scenario.admission.low_watermark = 1;
  scenario.admission.policy = AdmissionPolicy::kDegrade;
  scenario.admission.service_seconds_per_chunk = 30.0;
  scenario.publish_staleness_bound_chunks = 2;
  return scenario;
}

void ExpectAdmissionIdentities(const DeploymentReport& report) {
  // Every offered chunk is accounted for exactly once.
  EXPECT_EQ(report.ingest_offered,
            report.ingest_admitted + report.ingest_shed_newest +
                report.ingest_shed_timeout);
  EXPECT_EQ(report.ingest_shed, report.ingest_shed_oldest +
                                    report.ingest_shed_newest +
                                    report.ingest_shed_timeout);
  // Admitted chunks either reach the training loop or are displaced by a
  // later arrival (shed-oldest) — nothing is silently lost.
  EXPECT_EQ(report.chunks_processed,
            report.ingest_admitted - report.ingest_shed_oldest);
}

TEST(TrafficScenarioTest, UniformShapeWithHeadroomIsBitIdenticalToRun) {
  // The fault-free, overload-free control: uniform arrivals with ample
  // queue headroom must traverse the admission layer without a single
  // shed, degrade, or publish deferral — and produce bit-identical state
  // to the plain Deployment::Run path.
  Scenario plain;
  plain.name = "unshaped-baseline";

  Scenario shaped = plain;
  shaped.name = "uniform-control";
  shaped.shaped = true;
  shaped.traffic.shape = TrafficShape::kUniform;
  shaped.traffic.base_period_seconds = 60.0;
  shaped.admission.queue_capacity = 8;
  shaped.admission.service_seconds_per_chunk = 1.0;  // drains long before
                                                     // the next arrival

  const ScenarioResult baseline = RunScenario(plain);
  const ScenarioResult control = RunScenario(shaped);
  ASSERT_TRUE(baseline.ok()) << baseline.status.ToString();
  ASSERT_TRUE(control.ok()) << control.status.ToString();

  EXPECT_EQ(baseline.fingerprint, control.fingerprint);
  EXPECT_EQ(baseline.report.final_error, control.report.final_error);
  EXPECT_EQ(baseline.report.chunks_processed,
            control.report.chunks_processed);

  EXPECT_EQ(control.report.ingest_offered,
            static_cast<int64_t>(Scenario{}.num_chunks));
  EXPECT_EQ(control.report.ingest_admitted, control.report.ingest_offered);
  EXPECT_EQ(control.report.ingest_shed, 0);
  EXPECT_EQ(control.report.ingest_degraded_admits, 0);
  EXPECT_EQ(control.report.publish_skipped_overload, 0);
  EXPECT_EQ(control.report.max_snapshot_staleness_chunks, 0);
  EXPECT_EQ(control.report.proactive_deferred, 0);
  EXPECT_EQ(control.report.ingest_peak_queue_depth, 1);
  ExpectAdmissionIdentities(control.report);
}

TEST(TrafficScenarioTest, FlashCrowdShedsExactlyAndReplaysAcrossThreads) {
  Scenario scenario;
  scenario.name = "flash-crowd";
  scenario.shaped = true;
  scenario.traffic.shape = TrafficShape::kFlashCrowd;
  scenario.traffic.base_period_seconds = 60.0;
  scenario.traffic.burst_every = 8;
  scenario.traffic.burst_length = 4;
  scenario.traffic.burst_factor = 6.0;  // in-burst arrivals every 10s
  scenario.admission.queue_capacity = 3;
  scenario.admission.policy = AdmissionPolicy::kShedNewest;
  scenario.admission.service_seconds_per_chunk = 50.0;

  const ScenarioResult serial = RunScenario(scenario);
  ASSERT_TRUE(serial.ok()) << serial.status.ToString();

  // Each burst overwhelms the 3-deep queue; the sheds land on exact chunk
  // positions decided purely by virtual time.  (Hand-simulated: 6 of the
  // 24 arrivals are shed.)
  EXPECT_EQ(serial.report.ingest_shed, 6);
  EXPECT_EQ(serial.report.ingest_shed_newest, 6);
  EXPECT_EQ(serial.report.ingest_admitted, 18);
  EXPECT_EQ(serial.report.chunks_processed, 18);
  EXPECT_LE(serial.report.ingest_peak_queue_depth,
            static_cast<int64_t>(scenario.admission.queue_capacity));
  ExpectAdmissionIdentities(serial.report);

  // Same scenario on a 4-thread engine: admission decisions live on
  // virtual time, so the counts — and the final deployed state — replay
  // bit-identically.
  Scenario pooled = scenario;
  pooled.engine_threads = 4;
  const ScenarioResult threaded = RunScenario(pooled);
  ASSERT_TRUE(threaded.ok()) << threaded.status.ToString();
  EXPECT_EQ(threaded.report.ingest_shed, serial.report.ingest_shed);
  EXPECT_EQ(threaded.report.ingest_admitted, serial.report.ingest_admitted);
  EXPECT_EQ(threaded.report.ingest_degraded_admits,
            serial.report.ingest_degraded_admits);
  EXPECT_EQ(threaded.report.ingest_pressure_changes,
            serial.report.ingest_pressure_changes);
  EXPECT_EQ(threaded.fingerprint, serial.fingerprint);
}

TEST(TrafficScenarioTest, SustainedOverloadDegradesWithinStalenessBound) {
  const Scenario scenario = SustainedDegradeScenario();
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  // Under 1.5x sustained service overload the degrade policy keeps
  // admitting (flagged) instead of stalling, and capacity stays a hard
  // memory bound.
  EXPECT_GT(result.report.ingest_degraded_admits, 0);
  EXPECT_GT(result.report.ingest_shed_newest, 0);
  EXPECT_EQ(result.report.ingest_shed_oldest, 0);
  EXPECT_EQ(result.report.ingest_peak_queue_depth,
            static_cast<int64_t>(scenario.admission.queue_capacity));
  ExpectAdmissionIdentities(result.report);

  // Overload slows the publish cadence but never past the configured
  // bound: the served snapshot is at most K-1 chunks behind.
  EXPECT_GT(result.report.publish_skipped_overload, 0);
  EXPECT_GT(result.report.max_snapshot_staleness_chunks, 0);
  EXPECT_LT(result.report.max_snapshot_staleness_chunks,
            static_cast<int64_t>(scenario.publish_staleness_bound_chunks));

  // Proactive training yields while the ingest queue is hot.
  EXPECT_GT(result.report.proactive_deferred, 0);
  EXPECT_EQ(result.report.metrics.CounterValueOr(
                "proactive.iterations_deferred", 0),
            result.report.proactive_deferred);
}

TEST(TrafficScenarioTest, DiurnalSwingEntersAndLeavesOverload) {
  Scenario scenario;
  scenario.name = "diurnal";
  scenario.shaped = true;
  scenario.traffic.shape = TrafficShape::kDiurnal;
  scenario.traffic.base_period_seconds = 60.0;
  scenario.traffic.diurnal_amplitude = 3.0;    // peak arrivals every 15s
  scenario.traffic.diurnal_period_chunks = 12; // two "days" in 24 chunks
  scenario.admission.queue_capacity = 4;
  scenario.admission.high_watermark = 3;
  scenario.admission.low_watermark = 1;
  scenario.admission.policy = AdmissionPolicy::kShedNewest;
  scenario.admission.service_seconds_per_chunk = 25.0;

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  // The daily peak drives the queue over the high watermark; the trough
  // drains it back under the low one — at least one full
  // normal -> overloaded -> normal round trip, i.e. >= 2 transitions.
  EXPECT_GE(result.report.ingest_pressure_changes, 2);
  EXPECT_LE(result.report.ingest_peak_queue_depth,
            static_cast<int64_t>(scenario.admission.queue_capacity));
  ExpectAdmissionIdentities(result.report);

  // A second replay is exact, transition counts included.
  const ScenarioResult replay = RunScenario(scenario);
  ASSERT_TRUE(replay.ok()) << replay.status.ToString();
  EXPECT_EQ(replay.report.ingest_pressure_changes,
            result.report.ingest_pressure_changes);
  EXPECT_EQ(replay.report.ingest_shed, result.report.ingest_shed);
  EXPECT_EQ(replay.fingerprint, result.fingerprint);
}

TEST(TrafficScenarioTest, BlockPolicyTradesLatencyForCompleteness) {
  Scenario scenario;
  scenario.name = "block-generous-timeout";
  scenario.shaped = true;
  scenario.traffic.shape = TrafficShape::kSustainedOverload;
  scenario.traffic.base_period_seconds = 60.0;
  scenario.traffic.overload_factor = 3.0;
  scenario.admission.queue_capacity = 2;
  scenario.admission.policy = AdmissionPolicy::kBlock;
  scenario.admission.service_seconds_per_chunk = 30.0;
  scenario.admission.block_timeout_seconds = 1e6;

  // A producer willing to wait forever loses nothing: backpressure stalls
  // the (virtual) reader instead of dropping data.
  const ScenarioResult patient = RunScenario(scenario);
  ASSERT_TRUE(patient.ok()) << patient.status.ToString();
  EXPECT_EQ(patient.report.ingest_shed, 0);
  EXPECT_EQ(patient.report.chunks_processed,
            static_cast<int64_t>(Scenario{}.num_chunks));
  ExpectAdmissionIdentities(patient.report);

  // The same shape with a tight deadline sheds at the block site instead,
  // and the timeout sheds are exact and replayable.
  Scenario impatient = scenario;
  impatient.name = "block-tight-timeout";
  impatient.admission.block_timeout_seconds = 1.0;
  const ScenarioResult first = RunScenario(impatient);
  const ScenarioResult second = RunScenario(impatient);
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_GT(first.report.ingest_shed_timeout, 0);
  EXPECT_EQ(first.report.ingest_shed, first.report.ingest_shed_timeout);
  EXPECT_EQ(first.report.chunks_processed,
            static_cast<int64_t>(Scenario{}.num_chunks) -
                first.report.ingest_shed_timeout);
  ExpectAdmissionIdentities(first.report);
  EXPECT_EQ(second.report.ingest_shed_timeout,
            first.report.ingest_shed_timeout);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
}

TEST(TrafficScenarioTest, AbsorbedFaultsDoNotPerturbAdmissionDecisions) {
  // Admission runs on virtual time, so wall-clock noise from fault
  // retries must not move a single shed or degrade decision.
  const Scenario clean = SustainedDegradeScenario();

  Scenario faulted = clean;
  faulted.name = "sustained-degrade-faulted";
  faulted.faults = {
      {"chunk_store.put_raw", FaultRule::FirstN(2)},
  };

  const ScenarioResult a = RunScenario(clean);
  const ScenarioResult b = RunScenario(faulted);
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();

  EXPECT_EQ(b.report.faults_injected, 2);
  EXPECT_GE(b.report.retry_attempts, 2);
  EXPECT_EQ(b.report.retries_exhausted, 0);

  EXPECT_EQ(b.report.ingest_offered, a.report.ingest_offered);
  EXPECT_EQ(b.report.ingest_admitted, a.report.ingest_admitted);
  EXPECT_EQ(b.report.ingest_shed, a.report.ingest_shed);
  EXPECT_EQ(b.report.ingest_shed_newest, a.report.ingest_shed_newest);
  EXPECT_EQ(b.report.ingest_degraded_admits, a.report.ingest_degraded_admits);
  EXPECT_EQ(b.report.ingest_pressure_changes,
            a.report.ingest_pressure_changes);
  EXPECT_EQ(b.report.max_snapshot_staleness_chunks,
            a.report.max_snapshot_staleness_chunks);
  // Absorbed faults leave the numerics bit-identical too.
  EXPECT_EQ(b.fingerprint, a.fingerprint);
}

TEST(TrafficScenarioTest, ExhaustedRetriesDegradeWithoutMovingShedCounts) {
  // Retry exhaustion and admission shedding are independent safety
  // valves: a persistently failing store degrades chunks (the retry
  // path), while the admission counters — driven by virtual time alone —
  // stay exactly where the clean run put them.
  const Scenario clean = SustainedDegradeScenario();

  Scenario broken = clean;
  broken.name = "sustained-degrade-store-down";
  broken.retry.initial_backoff_seconds = 0.0;  // don't sleep through 24 chunks
  // Six straight PutRaw failures: two chunks' 3-attempt budgets exhaust and
  // those chunks degrade; later chunks land so proactive sampling survives.
  broken.faults = {
      {"chunk_store.put_raw", FaultRule::FirstN(6)},
  };

  const ScenarioResult a = RunScenario(clean);
  const ScenarioResult b = RunScenario(broken);
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();

  EXPECT_GT(b.report.retries_exhausted, 0);
  EXPECT_GT(b.report.degraded_events, 0);

  EXPECT_EQ(b.report.ingest_offered, a.report.ingest_offered);
  EXPECT_EQ(b.report.ingest_admitted, a.report.ingest_admitted);
  EXPECT_EQ(b.report.ingest_shed, a.report.ingest_shed);
  EXPECT_EQ(b.report.ingest_degraded_admits, a.report.ingest_degraded_admits);
  EXPECT_EQ(b.report.chunks_processed, a.report.chunks_processed);
  ExpectAdmissionIdentities(b.report);
}

TEST(TrafficScenarioTest, ShedOldestPrefersFreshDataUnderBacklog) {
  Scenario scenario;
  scenario.name = "shed-oldest";
  scenario.shaped = true;
  scenario.traffic.shape = TrafficShape::kSustainedOverload;
  scenario.traffic.base_period_seconds = 60.0;
  scenario.traffic.overload_factor = 4.0;  // arrivals every 15s
  scenario.admission.queue_capacity = 3;
  scenario.admission.policy = AdmissionPolicy::kShedOldest;
  scenario.admission.service_seconds_per_chunk = 45.0;

  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  // Every arrival is admitted — the queue head (stalest backlog) pays.
  EXPECT_EQ(result.report.ingest_admitted,
            static_cast<int64_t>(Scenario{}.num_chunks));
  EXPECT_GT(result.report.ingest_shed_oldest, 0);
  EXPECT_EQ(result.report.ingest_shed_newest, 0);
  EXPECT_EQ(result.report.chunks_processed,
            result.report.ingest_admitted - result.report.ingest_shed_oldest);
  ExpectAdmissionIdentities(result.report);
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
