// End-to-end scenarios for the two-tier chunk store: a spilling deployment
// must be bit-identical to the RAM-only control (spilling changes where
// bytes live, never what is computed), degrade cleanly under injected
// spill-write failures, survive corrupt spill files with exact drop
// accounting, and contain prefetch exceptions.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

namespace fs = std::filesystem;

size_t StreamRawBytes(size_t num_chunks) {
  const std::vector<RawChunk> stream = MakeScenarioStream(num_chunks);
  size_t total = 0;
  for (const RawChunk& chunk : stream) total += chunk.ByteSize();
  return total;
}

class SpillScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cdpipe_spill_scenario_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// The acceptance-bar budget: at most 25% of the stream's raw bytes fit
  /// in memory, so at least three quarters of the log lives on disk.
  Scenario SpillScenario(uint64_t seed, size_t engine_threads) const {
    Scenario scenario;
    scenario.name = "spill";
    scenario.seed = seed;
    scenario.engine_threads = engine_threads;
    scenario.store.memory_budget_bytes =
        StreamRawBytes(scenario.num_chunks) / 4;
    scenario.store.spill_dir = dir_.string();
    return scenario;
  }

  fs::path dir_;
};

void ExpectBitIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_TRUE(a.ok()) << a.status.ToString();
  ASSERT_TRUE(b.ok()) << b.status.ToString();
  ASSERT_FALSE(a.fingerprint.empty());
  // The checkpoint serializes pipeline statistics, model weights, and
  // optimizer state in hexfloat — equality is bit-identity of the final
  // deployed state.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.report.final_error, b.report.final_error);
  EXPECT_EQ(a.report.chunks_processed, b.report.chunks_processed);
  EXPECT_EQ(a.report.proactive_iterations, b.report.proactive_iterations);
  // Either-tier sampling totals match: the tier split moves hits between
  // memory and disk but never changes what was sampled.
  EXPECT_EQ(a.report.storage.SampleHits(), b.report.storage.SampleHits());
  EXPECT_EQ(a.report.storage.sample_misses, b.report.storage.sample_misses);
  ASSERT_EQ(a.report.curve.size(), b.report.curve.size());
  for (size_t i = 0; i < a.report.curve.size(); ++i) {
    EXPECT_EQ(a.report.curve[i].observations, b.report.curve[i].observations);
    EXPECT_EQ(a.report.curve[i].cumulative_error,
              b.report.curve[i].cumulative_error);
    EXPECT_EQ(a.report.curve[i].windowed_error,
              b.report.curve[i].windowed_error);
  }
}

TEST_F(SpillScenarioTest, SpillingIsBitIdenticalToRamOnlySingleThread) {
  Scenario ram_only;
  ram_only.seed = 7;
  ram_only.engine_threads = 1;
  const ScenarioResult control = RunScenario(ram_only);
  const ScenarioResult spilled = RunScenario(SpillScenario(7, 1));
  ExpectBitIdentical(control, spilled);
  EXPECT_GT(spilled.report.chunks_spilled, 0);
  EXPECT_EQ(control.report.chunks_spilled, 0);
}

TEST_F(SpillScenarioTest, SpillingIsBitIdenticalToRamOnlyFourThreads) {
  Scenario ram_only;
  ram_only.seed = 7;
  ram_only.engine_threads = 4;
  const ScenarioResult control = RunScenario(ram_only);
  const ScenarioResult spilled = RunScenario(SpillScenario(7, 4));
  ExpectBitIdentical(control, spilled);
  EXPECT_GT(spilled.report.chunks_spilled, 0);
}

TEST_F(SpillScenarioTest, ThreadCountInvarianceWithSpilling) {
  // {1, 4} engine threads produce the same bits with the disk tier active —
  // the prefetch worker overlaps IO but never reorders observable work.
  const ScenarioResult one = RunScenario(SpillScenario(11, 1));
  const ScenarioResult four = RunScenario(SpillScenario(11, 4));
  ExpectBitIdentical(one, four);
}

TEST_F(SpillScenarioTest, QuarterBudgetRunReportsDiskTierActivity) {
  // Acceptance bar: budget ≤ 25% of raw bytes, run completes, disk-tier μ
  // strictly positive, no recompute storm (unbounded materialization keeps
  // misses at zero), prefetch hit rate reported.
  const ScenarioResult result = RunScenario(SpillScenario(3, 1));
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.chunks_spilled, 0);
  EXPECT_GT(result.report.disk_mu, 0.0);
  EXPECT_GT(result.report.memory_mu, 0.0);
  EXPECT_DOUBLE_EQ(
      result.report.memory_mu + result.report.disk_mu,
      result.report.storage.EmpiricalMu());
  EXPECT_EQ(result.report.storage.sample_misses, 0);
  EXPECT_EQ(result.report.storage.spilled_chunks_dropped, 0);
  EXPECT_EQ(result.report.spill_corrupt_detected, 0);
  EXPECT_GE(result.report.prefetch_hit_rate, 0.0);
  EXPECT_LE(result.report.prefetch_hit_rate, 1.0);
  EXPECT_GT(result.report.spill_compression_ratio, 0.0);
  // The budget actually bit: most of the log lives on disk.
  EXPECT_GE(result.report.chunks_spilled,
            static_cast<int64_t>(result.report.chunks_processed) / 2);
}

TEST_F(SpillScenarioTest, SpillWriteFailureDegradesToKeepInMemory) {
  // Satellite scenario: spill-write failures degrade to keep-in-memory —
  // the run completes, the budget is temporarily exceeded, and the failure
  // count lands in the deployment report.
  Scenario scenario = SpillScenario(3, 1);
  scenario.faults = {{"spill.write", FaultRule::EveryN(2)}};
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.spill_failures, 0);
  EXPECT_GT(result.report.chunks_spilled, 0);  // the other half succeeded
  EXPECT_EQ(result.report.storage.spilled_chunks_dropped, 0);
  // Degrading never loses data, so the numerics stay bit-identical to the
  // unfaulted spill run.
  const ScenarioResult clean = RunScenario(SpillScenario(3, 1));
  ExpectBitIdentical(clean, result);
}

TEST_F(SpillScenarioTest, CorruptSpillFilesAreDroppedWithExactAccounting) {
  // Satellite scenario: every injected corruption is detected by the
  // checksum and answered by dropping the chunk (recompute-from-nothing).
  // CI gates on detections == injections; with only spill.corrupt armed,
  // `faults_injected` is exactly the injection count.
  Scenario scenario = SpillScenario(3, 1);
  scenario.store.max_materialized_chunks = 3;  // force disk reads
  scenario.faults = {{"spill.corrupt", FaultRule::EveryN(4)}};
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.spill_corrupt_detected, 0);
  EXPECT_EQ(result.report.spill_corrupt_detected,
            result.report.faults_injected);
  // A detection only becomes a drop when the corrupt load is consumed; a
  // corrupted *prefetch* whose slot goes stale is detected but the file —
  // which the fault never touched — reads fine next time.
  EXPECT_GT(result.report.storage.spilled_chunks_dropped, 0);
  EXPECT_LE(result.report.storage.spilled_chunks_dropped,
            result.report.spill_corrupt_detected);
  EXPECT_EQ(result.report.chunks_processed, 24);
}

TEST_F(SpillScenarioTest, ThrowingPrefetchReadIsContained) {
  // Satellite scenario: an exception escaping a prefetch task is contained
  // (the worker survives, the slot is deposited as failed) and the sample
  // path falls back to a synchronous load.
  Scenario scenario = SpillScenario(3, 1);
  scenario.store.max_materialized_chunks = 3;  // force disk reads
  FaultRule rule = FaultRule::Probability(0.3, 99);
  rule.throws = true;
  scenario.faults = {{"spill.read", rule}};
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.report.chunks_processed, 24);
  // Chunks were never dropped: read failures keep them live for retry.
  EXPECT_EQ(result.report.storage.spilled_chunks_dropped, 0);
  EXPECT_EQ(result.report.spill_corrupt_detected, 0);
}

TEST_F(SpillScenarioTest, BoundedMaterializationSpillRunCompletes) {
  // The hardest configuration: tight materialization bound + tight memory
  // budget, so proactive samples routinely re-materialize from disk.
  Scenario scenario = SpillScenario(5, 4);
  scenario.store.max_materialized_chunks = 4;
  const ScenarioResult result = RunScenario(scenario);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_GT(result.report.storage.sample_misses, 0);
  EXPECT_GT(result.report.storage.disk_loads +
                result.report.storage.prefetch_hits,
            0);
  // Re-materialization from the disk tier loses nothing.
  EXPECT_EQ(result.report.storage.spilled_chunks_dropped, 0);
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
