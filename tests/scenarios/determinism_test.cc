// Golden determinism: two end-to-end runs with the same seed must produce
// byte-identical serialized models and identical report metrics — across
// repeated runs and across engine thread counts (1 vs 4).  This is the
// property that makes the fault-free control in scenario_test meaningful.

#include <gtest/gtest.h>

#include "tests/scenarios/scenario_runner.h"

namespace cdpipe {
namespace testing {
namespace {

Scenario BaseScenario(size_t threads) {
  Scenario scenario;
  scenario.name = "determinism";
  scenario.arm_injector = false;
  scenario.engine_threads = threads;
  // A bounded cache forces the parallel re-materialization fan-out, the
  // most scheduling-sensitive code path.
  scenario.store.max_materialized_chunks = 4;
  return scenario;
}

void ExpectIdenticalReports(const DeploymentReport& a,
                            const DeploymentReport& b) {
  EXPECT_EQ(a.final_error, b.final_error);
  EXPECT_EQ(a.average_error, b.average_error);
  EXPECT_EQ(a.chunks_processed, b.chunks_processed);
  EXPECT_EQ(a.proactive_iterations, b.proactive_iterations);
  EXPECT_EQ(a.storage.raw_inserted, b.storage.raw_inserted);
  EXPECT_EQ(a.storage.memory_hits, b.storage.memory_hits);
  EXPECT_EQ(a.storage.disk_hits, b.storage.disk_hits);
  EXPECT_EQ(a.storage.sample_misses, b.storage.sample_misses);
  EXPECT_EQ(a.empirical_mu, b.empirical_mu);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].observations, b.curve[i].observations);
    EXPECT_EQ(a.curve[i].cumulative_error, b.curve[i].cumulative_error);
    EXPECT_EQ(a.curve[i].windowed_error, b.curve[i].windowed_error);
  }
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  const ScenarioResult first = RunScenario(BaseScenario(1));
  const ScenarioResult second = RunScenario(BaseScenario(1));
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  ASSERT_FALSE(first.fingerprint.empty());
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  ExpectIdenticalReports(first.report, second.report);
}

TEST(DeterminismTest, ThreadCountDoesNotChangeResults) {
  const ScenarioResult serial = RunScenario(BaseScenario(1));
  const ScenarioResult pooled = RunScenario(BaseScenario(4));
  ASSERT_TRUE(serial.ok()) << serial.status.ToString();
  ASSERT_TRUE(pooled.ok()) << pooled.status.ToString();
  EXPECT_EQ(serial.fingerprint, pooled.fingerprint);
  ExpectIdenticalReports(serial.report, pooled.report);
}

TEST(DeterminismTest, RepeatedPooledRunsAreByteIdentical) {
  const ScenarioResult first = RunScenario(BaseScenario(4));
  const ScenarioResult second = RunScenario(BaseScenario(4));
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_EQ(first.fingerprint, second.fingerprint);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the fingerprint actually discriminates: a different
  // deployment seed reorders sampling and must change the trained model.
  Scenario other = BaseScenario(1);
  other.seed = 4;
  const ScenarioResult a = RunScenario(BaseScenario(1));
  const ScenarioResult b = RunScenario(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(DeterminismTest, FaultFreeScriptedRunMatchesAcrossThreadCounts) {
  // The armed-but-inert control stays deterministic under threading too.
  Scenario inert1 = BaseScenario(1);
  inert1.arm_injector = true;
  Scenario inert4 = BaseScenario(4);
  inert4.arm_injector = true;
  const ScenarioResult a = RunScenario(inert1);
  const ScenarioResult b = RunScenario(inert4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.report.faults_injected, 0);
  EXPECT_EQ(b.report.faults_injected, 0);
}

}  // namespace
}  // namespace testing
}  // namespace cdpipe
