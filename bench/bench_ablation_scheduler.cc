// Ablation (DESIGN.md): static vs dynamic scheduling of proactive training
// (paper §4.1, formula 6).  We simulate prediction-load profiles and show
// how the dynamic scheduler's chosen interval T' = S·T·pr·pl adapts while
// the static scheduler stays fixed, then run both over a real deployment
// stream (event-time driven).
//
// Flags: --scale=0.5  --seed=42

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/scheduler/scheduler.h"

namespace cdpipe {
namespace bench {
namespace {

/// Wraps a DynamicScheduler but pins the prediction-load estimate to a
/// fixed synthetic profile, ignoring the platform's measured load (our
/// substrate answers queries in microseconds, so measured pr*pl would
/// collapse every slack setting to "train every chunk").
class FixedLoadDynamicScheduler final : public Scheduler {
 public:
  FixedLoadDynamicScheduler(DynamicScheduler::Options options, double qps,
                            double latency)
      : inner_(options) {
    inner_.OnPredictionLoad(qps, latency);
  }

  std::string name() const override { return inner_.name() + "+fixed-load"; }
  bool ShouldTrain(double now_seconds) override {
    return inner_.ShouldTrain(now_seconds);
  }
  void OnTrainingCompleted(double start_seconds,
                           double duration_seconds) override {
    inner_.OnTrainingCompleted(start_seconds, duration_seconds);
  }
  void OnPredictionLoad(double, double) override {}  // pinned

 private:
  DynamicScheduler inner_;
};

void SimulateFormula() {
  std::printf("\n-- Formula 6: chosen delay under varying load --\n");
  std::printf("  %-28s %12s %12s %12s\n", "load (pr qps, pl s/item)",
              "S=1.0", "S=1.5", "S=2.5");
  const double training_seconds = 0.5;
  struct Load {
    const char* label;
    double pr;
    double pl;
  };
  const Load loads[] = {
      {"idle       (10 qps, 1ms)", 10.0, 0.001},
      {"moderate  (200 qps, 2ms)", 200.0, 0.002},
      {"busy     (1000 qps, 3ms)", 1000.0, 0.003},
      {"surge    (5000 qps, 5ms)", 5000.0, 0.005},
  };
  for (const Load& load : loads) {
    std::printf("  %-28s", load.label);
    for (double slack : {1.0, 1.5, 2.5}) {
      DynamicScheduler scheduler(DynamicScheduler::Options{.slack = slack});
      scheduler.OnPredictionLoad(load.pr, load.pl);
      std::printf(" %11.3fs", scheduler.ComputeDelaySeconds(training_seconds));
    }
    std::printf("\n");
  }
}

void RunEventTimeComparison(const Scenario& scenario) {
  std::printf("\n-- Event-time scheduling over the %s stream --\n",
              scenario.name().c_str());
  // Static: every 5 chunk-periods; Dynamic: driven by measured training
  // durations and a synthetic load model fed by the chunk cadence.
  struct Config {
    const char* label;
    std::unique_ptr<Scheduler> scheduler;
  };
  const double period =
      scenario.name() == "URL" ? 60.0 : 3600.0;  // chunk cadence in seconds

  auto run_with = [&](const char* label,
                      std::unique_ptr<Scheduler> scheduler) {
    Deployment::Options options;
    options.seed = scenario.seed();
    options.eval_window = 2000;
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.sample_chunks = scenario.proactive_sample_chunks();
    continuous.scheduler = std::move(scheduler);
    ContinuousDeployment deployment(
        std::move(options), std::move(continuous), scenario.MakePipeline(),
        scenario.MakeModel(), MakeOptimizer(scenario.DefaultOptimizer()),
        scenario.MakeMetric());
    Status init = deployment.InitialTrain(scenario.GenerateBootstrap(),
                                          scenario.InitialTrainOptions());
    if (!init.ok()) {
      std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
      std::exit(1);
    }
    auto result = deployment.Run(scenario.GenerateStream());
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    DeploymentReport report = std::move(result).ValueOrDie();
    PrintSummaryRow(label, report);
    std::printf("      proactive iterations: %lld\n",
                static_cast<long long>(report.proactive_iterations));
  };

  for (double interval_chunks : {2.0, 5.0, 10.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "static every %.0f chunks",
                  interval_chunks);
    run_with(label,
             std::make_unique<StaticScheduler>(period * interval_chunks));
  }
  // Dynamic scheduling (formula 6) driven by the event-time stream.  A
  // proactive step here takes ~2-4 ms of wall time (the paper's took 200 ms
  // on Spark), so we feed a synthetic heavy load profile (pr*pl = 45000)
  // to bring S*T*pr*pl into the 60s-per-chunk event-time regime: larger
  // slack visibly spaces the trainings out.
  for (double slack : {1.0, 2.0, 4.0}) {
    DynamicScheduler::Options dynamic;
    dynamic.slack = slack;
    dynamic.initial_interval_seconds = period;
    dynamic.min_interval_seconds = 1.0;
    auto scheduler = std::make_unique<FixedLoadDynamicScheduler>(
        dynamic, /*qps=*/4500.0, /*latency=*/10.0);
    char label[64];
    std::snprintf(label, sizeof(label), "dynamic S=%.1f (surge load)",
                  slack);
    run_with(label, std::move(scheduler));
  }
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("bench_ablation_scheduler: static vs dynamic scheduling\n");
  SimulateFormula();
  RunEventTimeComparison(UrlScenario(scale, seed));
  return 0;
}
