// Serving-tier latency under concurrent snapshot publication.  Closed-loop
// reader threads drive micro-batched predictions through the lock-free
// snapshot path (one atomic epoch load per request on the fast path) while
// the continuous deployment trains and republishes in the background, and
// the client-side latency distribution is reported as exact percentiles
// (p50/p99/p999 over every recorded request, not histogram buckets).
//
// The headline number: p99 with training ON should stay within ~20% of p99
// with training OFF — publication must not contend with the read path.
//
// Flags:
//   --readers=4        reader thread count (ignored with --sweep=1)
//   --seconds=2        measurement window per configuration
//   --train=1          train-and-publish in the background while reading
//   --sweep=0          run the full 1/4/8-reader x train-on/off grid
//   --batch=16         rows per prediction request
//   --scale=0.2        stream scale for the background trainer
//   --seed=42
//   --json_out=path    machine-readable results (one JSON object)
//   --port_file=path   start the obs server, write its port, and keep
//                      serving for --serve_seconds after the run (smoke
//                      tests curl /metrics and /readyz meanwhile)
//   --serve_seconds=5

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_server.h"
#include "src/serving/prediction_service.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {
namespace bench {
namespace {

struct LatencyStats {
  size_t requests = 0;
  double throughput_rps = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencyStats Summarize(std::vector<double> latencies_us, double seconds) {
  LatencyStats stats;
  stats.requests = latencies_us.size();
  if (latencies_us.empty()) return stats;
  std::sort(latencies_us.begin(), latencies_us.end());
  double sum = 0.0;
  for (double v : latencies_us) sum += v;
  stats.mean_us = sum / static_cast<double>(latencies_us.size());
  stats.throughput_rps =
      seconds > 0.0 ? static_cast<double>(latencies_us.size()) / seconds : 0.0;
  stats.p50_us = Percentile(latencies_us, 0.50);
  stats.p99_us = Percentile(latencies_us, 0.99);
  stats.p999_us = Percentile(latencies_us, 0.999);
  return stats;
}

struct RunConfig {
  int readers = 4;
  bool train = true;
  double seconds = 2.0;
  size_t batch_rows = 16;
};

/// One measurement: `readers` closed-loop threads hammering PredictWith
/// against a shared publisher, optionally while the deployment trains.
LatencyStats MeasureOnce(ContinuousDeployment* deployment,
                         const std::vector<RawChunk>& stream,
                         const RawChunk& probe, const RunConfig& config) {
  serving::SnapshotPublisher* publisher =
      std::as_const(*deployment).pipeline_manager().publisher();
  serving::PredictionService::Options service_options;
  service_options.num_threads = 1;  // readers use the inline path
  service_options.deployment_id = deployment->deployment_id();
  serving::PredictionService service(publisher, service_options);

  std::atomic<bool> stop{false};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> per_reader(
      static_cast<size_t>(config.readers));
  std::vector<std::thread> readers;
  for (int r = 0; r < config.readers; ++r) {
    readers.emplace_back([&, r] {
      serving::SnapshotReader reader(publisher);
      std::vector<double>& out = per_reader[static_cast<size_t>(r)];
      out.reserve(1u << 18);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const auto start = std::chrono::steady_clock::now();
        Result<serving::PredictionService::Response> response =
            service.PredictWith(&reader, probe);
        const auto end = std::chrono::steady_clock::now();
        if (!response.ok()) {
          std::fprintf(stderr, "request failed: %s\n",
                       response.status().ToString().c_str());
          continue;
        }
        out.push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
      }
    });
  }

  std::thread trainer;
  std::atomic<bool> train_stop{false};
  if (config.train) {
    trainer = std::thread([&] {
      // Re-run the stream until the measurement window closes: a steady
      // storm of statistics updates, online SGD, proactive iterations, and
      // snapshot publishes.  Chunk ids and event times must keep advancing
      // across passes, so each replay is shifted past everything seen.
      ChunkId id_stride = 0;
      int64_t time_stride = 0;
      for (const RawChunk& chunk : stream) {
        id_stride = std::max(id_stride, chunk.id + 1000);
        time_stride = std::max(time_stride, chunk.event_time_seconds + 1000);
      }
      // Persistent across sweep configurations: the deployment is shared,
      // so ids must advance monotonically over the whole process.
      static std::atomic<uint64_t> next_pass{1};
      while (!train_stop.load(std::memory_order_acquire)) {
        const uint64_t pass = next_pass.fetch_add(1);
        std::vector<RawChunk> replay = stream;
        for (RawChunk& chunk : replay) {
          chunk.id += static_cast<ChunkId>(pass) * id_stride;
          chunk.event_time_seconds +=
              static_cast<int64_t>(pass) * time_stride;
        }
        Result<DeploymentReport> report = deployment->Run(replay);
        if (!report.ok()) {
          std::fprintf(stderr, "background training failed: %s\n",
                       report.status().ToString().c_str());
          return;
        }
      }
    });
  }

  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(config.seconds));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  train_stop.store(true, std::memory_order_release);
  if (trainer.joinable()) trainer.join();

  std::vector<double> all;
  for (std::vector<double>& v : per_reader) {
    all.insert(all.end(), v.begin(), v.end());
  }
  return Summarize(std::move(all), config.seconds);
}

void PrintRow(const RunConfig& config, const LatencyStats& stats) {
  std::printf("  %7d  %8s  %9zu  %10.0f  %8.1f  %8.1f  %8.1f  %8.1f\n",
              config.readers, config.train ? "on" : "off", stats.requests,
              stats.throughput_rps, stats.mean_us, stats.p50_us, stats.p99_us,
              stats.p999_us);
  std::fflush(stdout);
}

void AppendJson(std::string* json, const RunConfig& config,
                const LatencyStats& stats, bool first) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "%s{\"readers\":%d,\"train\":%s,\"requests\":%zu,"
                "\"throughput_rps\":%.1f,\"mean_us\":%.2f,\"p50_us\":%.2f,"
                "\"p99_us\":%.2f,\"p999_us\":%.2f}",
                first ? "" : ",", config.readers,
                config.train ? "true" : "false", stats.requests,
                stats.throughput_rps, stats.mean_us, stats.p50_us,
                stats.p99_us, stats.p999_us);
  *json += buffer;
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe;
  using namespace cdpipe::bench;

  Flags flags(argc, argv);
  RunConfig base;
  base.readers = static_cast<int>(flags.GetInt("readers", 4));
  base.train = flags.GetInt("train", 1) != 0;
  base.seconds = flags.GetDouble("seconds", 2.0);
  base.batch_rows = static_cast<size_t>(flags.GetInt("batch", 16));
  const bool sweep = flags.GetInt("sweep", 0) != 0;
  const double scale = flags.GetDouble("scale", 0.2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string json_out = flags.GetString("json_out", "");
  const std::string port_file = flags.GetString("port_file", "");
  const double serve_seconds = flags.GetDouble("serve_seconds", 5.0);

  // Optional obs plane for smoke tests: watchdog + HTTP server over the
  // process-global metrics/journal/health state.
  std::unique_ptr<obs::Watchdog> watchdog;
  std::unique_ptr<obs::ObsServer> server;
  if (!port_file.empty()) {
    obs::Watchdog::Options watchdog_options;
    watchdog_options.stall_deadline_seconds = 5.0;
    watchdog = std::make_unique<obs::Watchdog>(watchdog_options);
    watchdog->Start();
    obs::ObsServer::Options server_options;
    server_options.watchdog = watchdog.get();
    server = std::make_unique<obs::ObsServer>(server_options);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "obs server failed to start: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("obs server listening on http://127.0.0.1:%u\n",
                server->port());
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server->port());
      std::fclose(f);
    }
  }

  UrlScenario scenario(scale, seed);
  Deployment::Options options;
  options.seed = seed;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = scenario.proactive_every_chunks();
  continuous.sample_chunks = scenario.proactive_sample_chunks();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), scenario.MakePipeline(),
      scenario.MakeModel(), MakeOptimizer(scenario.DefaultOptimizer()),
      scenario.MakeMetric());

  serving::SnapshotPublisher publisher;
  deployment.AttachServing(&publisher, nullptr, /*serve_evaluation=*/false);

  const std::vector<RawChunk> bootstrap = scenario.GenerateBootstrap();
  std::vector<RawChunk> stream = scenario.GenerateStream();
  Status init = deployment.InitialTrain(bootstrap, scenario.InitialTrainOptions());
  if (!init.ok()) {
    std::fprintf(stderr, "initial training failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  deployment.PublishSnapshot();

  // The probe request: one micro-batch carved from the stream head.
  RawChunk probe = stream.front();
  if (probe.records.size() > base.batch_rows) {
    probe.records.resize(base.batch_rows);
  }
  probe.id = 900000;

  std::printf(
      "bench_serving_latency: %s scenario, %zu-row requests, %.1fs windows\n",
      scenario.name().c_str(), probe.num_rows(), base.seconds);
  std::printf(
      "  readers  training   requests  throughput   mean_us    p50_us"
      "    p99_us   p999_us\n");

  std::string json = "{\"runs\":[";
  std::vector<RunConfig> grid;
  if (sweep) {
    for (int readers : {1, 4, 8}) {
      for (bool train : {false, true}) {
        RunConfig config = base;
        config.readers = readers;
        config.train = train;
        grid.push_back(config);
      }
    }
  } else {
    grid.push_back(base);
  }

  bool first = true;
  for (const RunConfig& config : grid) {
    const LatencyStats stats = MeasureOnce(&deployment, stream, probe, config);
    PrintRow(config, stats);
    AppendJson(&json, config, stats, first);
    first = false;
  }

  const obs::MetricsSnapshot metrics = obs::MetricsRegistry::Global().Snapshot();
  const long long stale = metrics.CounterValueOr("serving.stale_reads", 0);
  const long long torn = metrics.CounterValueOr("serving.torn_reads", 0);
  const long long publishes = metrics.CounterValueOr("serving.publishes", 0);
  std::printf("  snapshot publishes: %lld, stale_reads: %lld, torn_reads: %lld\n",
              publishes, stale, torn);
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "],\"snapshot_publishes\":%lld,\"stale_reads\":%lld,"
                "\"torn_reads\":%lld}",
                publishes, stale, torn);
  json += tail;

  if (!json_out.empty()) {
    std::FILE* f = std::fopen(json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
  }

  if (server != nullptr) {
    std::printf("serving obs endpoints for %.1fs...\n", serve_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(serve_seconds));
    server->Stop();
    watchdog->Stop();
  }
  return stale == 0 && torn == 0 ? 0 : 2;
}
