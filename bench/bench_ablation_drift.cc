// Ablation (paper §7 future work, implemented here): native concept-drift
// detection and alleviation.  A continuous deployment with a Page-Hinkley /
// DDM detector reacts to an abrupt concept change with burst proactive
// training over the freshest chunks; we measure recovery against a plain
// continuous deployment and pure online learning.
//
// Flags: --half=120  --seed=5

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/drift/drift_detector.h"

namespace cdpipe {
namespace bench {
namespace {

UrlStreamGenerator::Config StreamConfig(uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 14;
  config.initial_active_features = 300;
  config.new_features_per_chunk = 0;
  config.perturbed_weights_per_chunk = 0;
  config.nnz_per_record = 12;
  config.records_per_chunk = 80;
  config.margin_threshold = 1.5;
  config.seed = seed;
  return config;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 14;
  config.hash_bits = 10;
  return config;
}

std::vector<RawChunk> AbruptStream(uint64_t seed, size_t bootstrap,
                                   size_t half) {
  UrlStreamGenerator before(StreamConfig(seed));
  before.Generate(bootstrap);
  std::vector<RawChunk> stream = before.Generate(half);
  UrlStreamGenerator after(StreamConfig(seed + 999));
  std::vector<RawChunk> tail = after.Generate(half);
  for (size_t i = 0; i < tail.size(); ++i) {
    tail[i].id = static_cast<ChunkId>(bootstrap + half + i);
    stream.push_back(std::move(tail[i]));
  }
  return stream;
}

DeploymentReport Run(const std::vector<RawChunk>& bootstrap,
                     const std::vector<RawChunk>& stream,
                     std::unique_ptr<DriftDetector> detector, uint64_t seed) {
  Deployment::Options options;
  options.seed = seed;
  options.eval_window = 800;
  options.sampler = SamplerKind::kUniform;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 4;
  continuous.sample_chunks = 12;
  continuous.drift_detector = std::move(detector);
  continuous.drift_burst_iterations = 10;
  continuous.drift_window_chunks = 15;
  const UrlPipelineConfig pipe_config = PipeConfig();
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeUrlPipeline(pipe_config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.005}),
      std::make_unique<MisclassificationRate>());
  Status init = deployment.InitialTrain(
      bootstrap, BatchTrainer::Options{.max_epochs = 40, .batch_size = 200,
                                       .tolerance = 1e-4});
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  auto report = deployment.Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report).ValueOrDie();
}

std::unique_ptr<DriftDetector> MakePageHinkley() {
  PageHinkleyDetector::Options options;
  options.delta = 0.01;
  options.lambda = 0.5;  // chunk-mean signal: small threshold
  options.burn_in = 10;
  return std::make_unique<PageHinkleyDetector>(options);
}

std::unique_ptr<DriftDetector> MakeDdm() {
  DdmDetector::Options options;
  options.min_observations = 10;
  return std::make_unique<DdmDetector>(options);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe;
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const size_t half = static_cast<size_t>(flags.GetInt("half", 120));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  constexpr size_t kBootstrap = 20;

  UrlStreamGenerator bootstrap_generator(StreamConfig(seed));
  const std::vector<RawChunk> bootstrap =
      bootstrap_generator.Generate(kBootstrap);
  const std::vector<RawChunk> stream = AbruptStream(seed, kBootstrap, half);

  std::printf(
      "bench_ablation_drift: abrupt concept change at chunk %zu (uniform "
      "sampling; drift bursts sample the freshest 15 chunks)\n\n",
      half);
  std::printf("%-28s %10s %13s %13s %11s %8s\n", "configuration", "final",
              "win@drift+10", "win@drift+30", "proactive", "drifts");

  struct Config {
    const char* label;
    std::unique_ptr<DriftDetector> detector;
  };
  Config configs[3];
  configs[0] = {"no detector", nullptr};
  configs[1] = {"page-hinkley + burst", MakePageHinkley()};
  configs[2] = {"ddm + burst", MakeDdm()};
  for (auto& config : configs) {
    DeploymentReport report =
        Run(bootstrap, stream, std::move(config.detector), seed);
    const auto& curve = report.curve;
    const double at10 = curve[std::min(curve.size() - 1, half + 10)]
                            .windowed_error;
    const double at30 = curve[std::min(curve.size() - 1, half + 30)]
                            .windowed_error;
    std::printf("%-28s %10.4f %13.4f %13.4f %11lld %8lld\n", config.label,
                report.final_error, at10, at30,
                static_cast<long long>(report.proactive_iterations),
                static_cast<long long>(report.drift_events));
  }
  return 0;
}
