// Figure 4 of the paper: model quality (cumulative prequential error, 4a/4c)
// and cumulative training cost (4b/4d) over the deployment stream for the
// online, periodical, and continuous deployment approaches, on the URL and
// Taxi scenarios.
//
// Expected shape (paper §5.2): continuous ≈ periodical quality, both better
// than online; periodical cost ≫ continuous cost ≳ online cost (the paper
// measures 15× for URL, 6× for Taxi between periodical and continuous).
//
// Flags: --scenario=url|taxi|both  --scale=1.0  --seed=42  --describe
//        --json_out=PATH   (writes summary + per-run metrics snapshot JSON;
//                           with --scenario=both the scenario name is
//                           appended before the extension)

#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void Describe(const Scenario& scenario) {
  std::printf(
      "Table 2 analog — scenario %s: bootstrap=%zu chunks, deployment=%zu "
      "chunks, proactive every %zu chunks (sample %zu chunks), retraining "
      "every %zu chunks\n",
      scenario.name().c_str(), scenario.bootstrap_chunks(),
      scenario.stream_chunks(), scenario.proactive_every_chunks(),
      scenario.proactive_sample_chunks(), scenario.retrain_every_chunks());
}

void RunScenario(const Scenario& scenario, const std::string& json_out) {
  std::printf("\n=== Figure 4 — %s (%s) ===\n", scenario.name().c_str(),
              scenario.metric_label().c_str());
  Describe(scenario);

  DeploymentReport online = RunDeployment(scenario, StrategyKind::kOnline);
  DeploymentReport periodical =
      RunDeployment(scenario, StrategyKind::kPeriodical);
  DeploymentReport continuous =
      RunDeployment(scenario, StrategyKind::kContinuous);

  std::printf("\nQuality over time (Fig 4%s):\n",
              scenario.name() == "URL" ? "a" : "c");
  for (const auto* report : {&online, &periodical, &continuous}) {
    std::printf(" %s\n", report->strategy.c_str());
    PrintCurve(*report, 10);
  }

  std::printf("\nCumulative cost over time (Fig 4%s)  [seconds | work units]:\n",
              scenario.name() == "URL" ? "b" : "d");
  std::printf("  %10s %16s %16s %16s\n", "chunk", "online", "periodical",
              "continuous");
  const auto o = online.SampledCurve(10);
  const auto p = periodical.SampledCurve(10);
  const auto c = continuous.SampledCurve(10);
  for (size_t i = 0; i < o.size(); ++i) {
    std::printf("  %10lld %7.2fs|%7lld %7.2fs|%7lld %7.2fs|%7lld\n",
                static_cast<long long>(o[i].chunk_index),
                o[i].cumulative_seconds,
                static_cast<long long>(o[i].cumulative_work),
                p[i].cumulative_seconds,
                static_cast<long long>(p[i].cumulative_work),
                c[i].cumulative_seconds,
                static_cast<long long>(c[i].cumulative_work));
  }

  std::printf("\nSummary:\n");
  PrintSummaryRow("online", online);
  PrintSummaryRow("periodical", periodical);
  PrintSummaryRow("continuous", continuous);
  std::printf(
      "  cost ratio periodical/continuous: %.2fx (work), %.2fx (seconds)\n",
      static_cast<double>(periodical.total_work) /
          static_cast<double>(continuous.total_work),
      periodical.total_seconds / continuous.total_seconds);
  std::printf(
      "  quality delta continuous vs online:     %+.5f\n"
      "  quality delta continuous vs periodical: %+.5f\n",
      online.final_error - continuous.final_error,
      periodical.final_error - continuous.final_error);

  if (!json_out.empty()) {
    WriteReportsJson(json_out, {{"online", &online},
                                {"periodical", &periodical},
                                {"continuous", &continuous}});
  }
}

std::string ScenarioJsonPath(const std::string& base,
                             const std::string& scenario, bool both) {
  if (base.empty() || !both) return base;
  const size_t dot = base.rfind('.');
  const std::string suffix = "_" + scenario;
  if (dot == std::string::npos) return base + suffix;
  return base.substr(0, dot) + suffix + base.substr(dot);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");
  const std::string json_out = flags.GetString("json_out", "");
  const bool both = which == "both";

  std::printf("bench_fig4_deployment: deployment approaches comparison\n");
  if (which == "url" || both) {
    RunScenario(UrlScenario(scale, seed),
                ScenarioJsonPath(json_out, "url", both));
  }
  if (which == "taxi" || both) {
    RunScenario(TaxiScenario(scale, seed),
                ScenarioJsonPath(json_out, "taxi", both));
  }
  return 0;
}
