// Table 4 of the paper: empirical vs theoretical materialization
// utilization rate μ for {uniform, window-based, time-based} sampling at
// materialization rates m/n ∈ {0.2, 0.6}.
//
// The simulation follows the paper's protocol exactly: chunks arrive one at
// a time up to N = 12000; after every arrival one sampling operation draws
// s chunks; the m most recent chunks are materialized (oldest-first
// eviction).  Expected values (paper): uniform 0.52/0.91, window(6000)
// 0.58/1.0, time-based 0.68/0.97.
//
// Flags: --chunks=12000  --sample=100  --window=6000  --seed=42

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/sampling/mu_theory.h"

namespace cdpipe {
namespace bench {
namespace {

double SimulateMu(SamplerKind kind, size_t total_chunks, size_t materialized,
                  size_t window, size_t sample_size, uint64_t seed) {
  auto sampler = MakeSampler(kind, window);
  Rng rng(seed);
  int64_t hits = 0;
  int64_t draws = 0;
  std::vector<ChunkId> live;
  live.reserve(total_chunks);
  for (size_t n = 1; n <= total_chunks; ++n) {
    live.push_back(static_cast<ChunkId>(n - 1));
    const ChunkId oldest_materialized =
        n > materialized ? static_cast<ChunkId>(n - materialized) : 0;
    for (ChunkId id : sampler->Sample(live, sample_size, &rng)) {
      ++draws;
      if (id >= oldest_materialized) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(draws);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe;
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const size_t total = static_cast<size_t>(flags.GetInt("chunks", 12000));
  const size_t sample = static_cast<size_t>(flags.GetInt("sample", 100));
  const size_t window =
      static_cast<size_t>(flags.GetInt("window", total / 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf(
      "bench_table4_mu: empirical (theoretical) materialization utilization "
      "rate, N=%zu, s=%zu, w=%zu\n",
      total, sample, window);
  std::printf("  %-14s %18s %18s\n", "Sampling", "m/n = 0.2", "m/n = 0.6");

  const double rates[] = {0.2, 0.6};
  for (SamplerKind kind :
       {SamplerKind::kUniform, SamplerKind::kWindow, SamplerKind::kTime}) {
    std::printf("  %-14s", SamplerKindName(kind));
    for (double rate : rates) {
      const size_t m = static_cast<size_t>(total * rate);
      const double empirical = SimulateMu(kind, total, m, window, sample, seed);
      double theory = 0.0;
      switch (kind) {
        case SamplerKind::kUniform:
          theory = MuUniform(total, m);
          break;
        case SamplerKind::kWindow:
          theory = MuWindow(total, m, window);
          break;
        case SamplerKind::kTime:
          // The paper reports no closed form; we print our linear-rank
          // expectation (DESIGN.md, E13) for comparison.
          theory = MuTimeLinear(total, m);
          break;
      }
      std::printf("      %.2f (%.2f)  ", empirical, theory);
    }
    std::printf("\n");
  }
  std::printf(
      "  (paper, N=12000: uniform 0.52/0.91, window 0.58/1.0, time-based "
      "0.68/0.97)\n");
  return 0;
}
