// Ablation (DESIGN.md): the paper equips its periodical baseline with
// TFX-style warm starting (§5.2) to make the comparison fair.  This bench
// quantifies what warm starting buys: periodical deployment with and
// without it, comparing quality and retraining cost.
//
// Expected shape: warm starting converges in fewer epochs per retraining
// (lower retraining work) and never hurts final quality.
//
// Flags: --scenario=url|taxi|both  --scale=0.5  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(const Scenario& scenario) {
  std::printf("\n=== Ablation: warm starting — %s ===\n",
              scenario.name().c_str());

  // Allow early convergence so the epoch savings of warm starting are
  // visible (with a strict tolerance every retraining runs to max_epochs
  // and only the quality benefit shows).
  auto relax = [](BatchTrainer::Options options) {
    options.tolerance = 2e-3;
    return options;
  };
  RunOverrides warm;
  warm.warm_start = true;
  warm.tweak_retrain = relax;
  DeploymentReport with_warm =
      RunDeployment(scenario, StrategyKind::kPeriodical, warm);

  RunOverrides cold;
  cold.warm_start = false;
  cold.tweak_retrain = relax;
  DeploymentReport without_warm =
      RunDeployment(scenario, StrategyKind::kPeriodical, cold);

  PrintSummaryRow("periodical + warm start", with_warm);
  PrintSummaryRow("periodical (cold start)", without_warm);
  std::printf(
      "  retraining work: warm=%lld cold=%lld (%.1f%% saved)\n",
      static_cast<long long>(with_warm.cost.WorkIn(CostPhase::kRetraining)),
      static_cast<long long>(
          without_warm.cost.WorkIn(CostPhase::kRetraining)),
      100.0 *
          (1.0 - static_cast<double>(
                     with_warm.cost.WorkIn(CostPhase::kRetraining)) /
                     static_cast<double>(without_warm.cost.WorkIn(
                         CostPhase::kRetraining))));
  std::printf("  quality delta (cold - warm): %+.5f\n",
              without_warm.final_error - with_warm.final_error);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf("bench_ablation_warmstart: warm vs cold periodical retraining\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed));
  }
  return 0;
}
