// Ablation (paper §6 related work): Velox retrains when the monitored error
// exceeds a threshold instead of on a fixed schedule.  We compare
// interval-triggered vs error-threshold-triggered periodical retraining —
// and continuous deployment — on a stream with an abrupt concept change.
//
// Observed shape: the threshold trigger reacts immediately after the
// change, but a full retraining at that moment runs over mostly *stale*
// history, so recovery is actually slower than blind interval retraining
// whose later rounds see a post-drift-majority history.  Continuous
// deployment (recency-biased proactive training) recovers at a fraction of
// either cost — exactly the paper's criticism of retraining-based
// maintenance (§6: Velox "discards the updates that have been applied to
// the model so far").
//
// Flags: --half=120  --seed=5

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

UrlStreamGenerator::Config StreamConfig(uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 14;
  config.initial_active_features = 300;
  config.new_features_per_chunk = 0;
  config.perturbed_weights_per_chunk = 0;
  config.nnz_per_record = 12;
  config.records_per_chunk = 80;
  config.margin_threshold = 1.5;
  config.seed = seed;
  return config;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 14;
  config.hash_bits = 10;
  return config;
}

std::vector<RawChunk> AbruptStream(uint64_t seed, size_t bootstrap,
                                   size_t half) {
  UrlStreamGenerator before(StreamConfig(seed));
  before.Generate(bootstrap);
  std::vector<RawChunk> stream = before.Generate(half);
  UrlStreamGenerator after(StreamConfig(seed + 999));
  std::vector<RawChunk> tail = after.Generate(half);
  for (size_t i = 0; i < tail.size(); ++i) {
    tail[i].id = static_cast<ChunkId>(bootstrap + half + i);
    stream.push_back(std::move(tail[i]));
  }
  return stream;
}

template <typename MakeDeployment>
DeploymentReport Run(const std::vector<RawChunk>& bootstrap,
                     const std::vector<RawChunk>& stream,
                     MakeDeployment&& make) {
  std::unique_ptr<Deployment> deployment = make();
  Status init = deployment->InitialTrain(
      bootstrap, BatchTrainer::Options{.max_epochs = 40, .batch_size = 200,
                                       .tolerance = 1e-4});
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  auto report = deployment->Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report).ValueOrDie();
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe;
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const size_t half = static_cast<size_t>(flags.GetInt("half", 120));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  constexpr size_t kBootstrap = 20;

  UrlStreamGenerator bootstrap_generator(StreamConfig(seed));
  const std::vector<RawChunk> bootstrap =
      bootstrap_generator.Generate(kBootstrap);
  const std::vector<RawChunk> stream = AbruptStream(seed, kBootstrap, half);
  const UrlPipelineConfig pipe_config = PipeConfig();

  auto make_model = [&] {
    return std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config));
  };
  auto make_optimizer = [] {
    return MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                          .learning_rate = 0.005});
  };
  auto make_metric = [] {
    return std::make_unique<MisclassificationRate>();
  };
  auto retrain_options = [] {
    return BatchTrainer::Options{.max_epochs = 12, .batch_size = 500,
                                 .tolerance = 1e-3};
  };

  std::printf(
      "bench_ablation_velox_trigger: abrupt concept change at chunk %zu\n\n",
      half);
  std::printf("%-30s %10s %13s %11s %10s\n", "configuration", "final",
              "win@drift+30", "retrainings", "work");

  struct Row {
    const char* label;
    DeploymentReport report;
  };
  std::vector<Row> rows;

  rows.push_back({"periodical, interval=60", Run(bootstrap, stream, [&] {
                    Deployment::Options options;
                    options.seed = seed;
                    options.eval_window = 800;
                    options.store.max_materialized_chunks = 0;
                    PeriodicalDeployment::PeriodicalOptions periodical;
                    periodical.retrain_every_chunks = 60;
                    periodical.retrain = retrain_options();
                    return std::make_unique<PeriodicalDeployment>(
                        std::move(options), std::move(periodical),
                        MakeUrlPipeline(pipe_config), make_model(),
                        make_optimizer(), make_metric());
                  })});
  rows.push_back({"periodical, velox threshold", Run(bootstrap, stream, [&] {
                    Deployment::Options options;
                    options.seed = seed;
                    options.eval_window = 800;
                    options.store.max_materialized_chunks = 0;
                    PeriodicalDeployment::PeriodicalOptions periodical;
                    periodical.retrain_every_chunks = 100000;  // never
                    periodical.retrain = retrain_options();
                    periodical.retrain_error_threshold = 0.25;
                    periodical.min_chunks_between_retrains = 20;
                    return std::make_unique<PeriodicalDeployment>(
                        std::move(options), std::move(periodical),
                        MakeUrlPipeline(pipe_config), make_model(),
                        make_optimizer(), make_metric());
                  })});
  rows.push_back({"continuous (window sampling)", Run(bootstrap, stream, [&] {
                    Deployment::Options options;
                    options.seed = seed;
                    options.eval_window = 800;
                    options.sampler = SamplerKind::kWindow;
                    options.sampler_window = 40;
                    ContinuousDeployment::ContinuousOptions continuous;
                    continuous.proactive_every_chunks = 4;
                    continuous.sample_chunks = 12;
                    return std::make_unique<ContinuousDeployment>(
                        std::move(options), std::move(continuous),
                        MakeUrlPipeline(pipe_config), make_model(),
                        make_optimizer(), make_metric());
                  })});

  for (const Row& row : rows) {
    const auto& curve = row.report.curve;
    const double at30 =
        curve[std::min(curve.size() - 1, half + 30)].windowed_error;
    std::printf("%-30s %10.4f %13.4f %11lld %10lld\n", row.label,
                row.report.final_error, at30,
                static_cast<long long>(row.report.retrainings),
                static_cast<long long>(row.report.total_work));
  }
  return 0;
}
