// Figure 7 of the paper: effect of online statistics computation and
// dynamic materialization on the total deployment cost.  Continuous
// deployment runs at materialization rates m/n ∈ {0.0, 0.2, 0.6, 1.0} for
// the three sampling strategies, plus the NoOptimization baseline (online
// statistics computation disabled, nothing materialized).
//
// Expected shape (§5.4): cost falls monotonically with the materialization
// rate; at 0.2 time-based sampling is cheapest (highest μ), at 0.6
// window-based reaches μ=1 and wins; NoOptimization is the most expensive
// configuration of all.
//
// Flags: --scenario=url|taxi|both  --scale=0.5  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(const Scenario& scenario) {
  std::printf("\n=== Figure 7 — %s (total cost by materialization rate) ===\n",
              scenario.name().c_str());
  const size_t total_chunks =
      scenario.bootstrap_chunks() + scenario.stream_chunks();

  const SamplerKind kinds[] = {SamplerKind::kUniform, SamplerKind::kWindow,
                               SamplerKind::kTime};
  const double rates[] = {0.0, 0.2, 0.6, 1.0};

  std::printf("  %-14s", "m/n");
  for (double rate : rates) std::printf(" %11.1f", rate);
  std::printf("   [seconds | million work units]\n");

  double cost_at_full = 0.0;
  for (SamplerKind kind : kinds) {
    std::printf("  %-14s", SamplerKindName(kind));
    for (double rate : rates) {
      RunOverrides overrides;
      overrides.sampler = kind;
      overrides.max_materialized_chunks =
          rate >= 1.0 ? SIZE_MAX : static_cast<size_t>(total_chunks * rate);
      DeploymentReport report =
          RunDeployment(scenario, StrategyKind::kContinuous, overrides);
      std::printf(" %5.2fs|%4.2fM", report.total_seconds,
                  static_cast<double>(report.total_work) / 1e6);
      if (rate >= 1.0) cost_at_full = static_cast<double>(report.total_work);
    }
    std::printf("\n");
  }

  // NoOptimization: statistics recomputed on every use, nothing cached.
  RunOverrides no_opt;
  no_opt.sampler = SamplerKind::kTime;
  no_opt.max_materialized_chunks = 0;
  no_opt.online_statistics = false;
  DeploymentReport report =
      RunDeployment(scenario, StrategyKind::kContinuous, no_opt);
  std::printf("  %-14s %5.2fs|%4.2fM  (time-based sampling)\n",
              "NoOptimization", report.total_seconds,
              static_cast<double>(report.total_work) / 1e6);
  if (cost_at_full > 0.0) {
    std::printf(
        "  NoOptimization vs fully-optimized (m/n=1.0): %.0f%% more work\n",
        (static_cast<double>(report.total_work) / cost_at_full - 1.0) *
            100.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf(
      "bench_fig7_materialization_cost: optimization effects on deployment "
      "cost\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed));
  }
  return 0;
}
