// Figure 6 of the paper: effect of the sampling strategy (uniform /
// window-based / time-based) on the quality of the continuously deployed
// model.
//
// Expected shape (§5.3): on URL — whose distribution drifts — time-based
// sampling wins, window-based second, uniform last.  On Taxi — stationary —
// all three strategies land on the same error.
//
// Flags: --scenario=url|taxi|both  --scale=1.0  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(const Scenario& scenario) {
  std::printf("\n=== Figure 6 — %s (%s by sampling strategy) ===\n",
              scenario.name().c_str(), scenario.metric_label().c_str());

  const SamplerKind kinds[] = {SamplerKind::kTime, SamplerKind::kWindow,
                               SamplerKind::kUniform};
  DeploymentReport reports[3];
  for (int i = 0; i < 3; ++i) {
    RunOverrides overrides;
    overrides.sampler = kinds[i];
    reports[i] = RunDeployment(scenario, StrategyKind::kContinuous, overrides);
  }

  std::printf("\nQuality over time:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf(" %s sampling\n", SamplerKindName(kinds[i]));
    PrintCurve(reports[i], 8);
  }

  std::printf("\nSummary:\n");
  for (int i = 0; i < 3; ++i) {
    PrintSummaryRow(SamplerKindName(kinds[i]), reports[i]);
  }
  std::printf(
      "  time-based improvement over window-based: %+.5f\n"
      "  time-based improvement over uniform:      %+.5f\n",
      reports[1].average_error - reports[0].average_error,
      reports[2].average_error - reports[0].average_error);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf("bench_fig6_sampling_quality: sampling strategy vs quality\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed));
  }
  return 0;
}
