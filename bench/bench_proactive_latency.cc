// §5.5 of the paper: the average proactive-training step is fast enough
// (200 ms URL / 700 ms Taxi on the paper's hardware) that the platform
// never pauses online updates or query answering.  This bench measures the
// per-iteration latency distribution of proactive training on both
// scenarios and compares it against a full retraining.
//
// Flags: --scenario=url|taxi|both  --scale=0.5  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(const Scenario& scenario) {
  std::printf("\n=== Proactive step latency — %s ===\n",
              scenario.name().c_str());

  DeploymentReport continuous =
      RunDeployment(scenario, StrategyKind::kContinuous);
  DeploymentReport periodical =
      RunDeployment(scenario, StrategyKind::kPeriodical);

  const double avg_proactive = continuous.average_proactive_seconds;
  const double avg_retrain =
      periodical.retrainings > 0
          ? (periodical.cost.SecondsIn(CostPhase::kRetraining) +
             periodical.cost.SecondsIn(CostPhase::kMaterialization)) /
                static_cast<double>(periodical.retrainings)
          : 0.0;
  std::printf("  proactive iterations: %lld, avg latency: %.4fs\n",
              static_cast<long long>(continuous.proactive_iterations),
              avg_proactive);
  std::printf("  full retrainings:     %lld, avg latency: %.4fs\n",
              static_cast<long long>(periodical.retrainings), avg_retrain);
  if (avg_proactive > 0.0) {
    std::printf("  -> one retraining costs %.0fx one proactive step\n",
                avg_retrain / avg_proactive);
  }
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 0.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf("bench_proactive_latency: proactive step vs full retraining\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed));
  }
  return 0;
}
