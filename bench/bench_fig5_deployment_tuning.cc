// Figure 5 of the paper: do the hyperparameters chosen during initial
// training remain the best during deployment?  For each learning-rate
// adaptation technique we deploy the best-regularization configuration with
// the continuous strategy over a 10% slice of the deployment stream and
// compare prequential error.
//
// Expected shape: the per-technique ordering mirrors Table 3 — tuning done
// offline carries over to the deployed, proactively trained model (§5.3).
//
// Flags: --scenario=url|taxi|both  --scale=1.0  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(std::unique_ptr<Scenario> full) {
  std::printf("\n=== Figure 5 — %s (%s during deployment) ===\n",
              full->name().c_str(), full->metric_label().c_str());

  const OptimizerKind kinds[] = {OptimizerKind::kAdam, OptimizerKind::kRmsprop,
                                 OptimizerKind::kAdadelta};
  const double regs[] = {1e-2, 1e-3, 1e-4};

  for (OptimizerKind kind : kinds) {
    double best_error = 1e99;
    double best_reg = 0.0;
    DeploymentReport best_report;
    for (double reg : regs) {
      RunOverrides overrides;
      overrides.tweak_optimizer = [kind](OptimizerOptions options) {
        options.kind = kind;
        return options;
      };
      overrides.tweak_model = [reg](LinearModel::Options options) {
        options.l2_reg = reg;
        return options;
      };
      DeploymentReport report =
          RunDeployment(*full, StrategyKind::kContinuous, overrides);
      if (report.final_error < best_error) {
        best_error = report.final_error;
        best_reg = reg;
        best_report = std::move(report);
      }
    }
    std::printf(" best configuration for %s: reg=%g\n",
                OptimizerKindName(kind), best_reg);
    PrintSummaryRow(std::string(OptimizerKindName(kind)) + " (deployed)",
                    best_report);
    PrintCurve(best_report, 8);
  }
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  // 10% of the remaining data (paper §5.3): a tenth of the fig-4 stream.
  const double scale = flags.GetDouble("scale", 0.35);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf(
      "bench_fig5_deployment_tuning: hyperparameter carry-over to "
      "deployment\n");
  if (which == "url" || which == "both") {
    RunScenario(std::make_unique<UrlScenario>(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(std::make_unique<TaxiScenario>(scale, seed));
  }
  return 0;
}
