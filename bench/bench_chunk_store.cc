// Microbenchmark: the two-tier chunk store's disk path — spill (encode +
// checksum + atomic write) throughput, disk-load latency for synchronous
// misses vs prefetch-staged hits, and the spill codec's compression ratio
// on both scenario record shapes (URL libsvm lines, Taxi CSV rows).
//
//   bench_chunk_store [--chunks=64] [--records_per_chunk=256]
//       [--min_seconds=0.3] [--label=two_tier] [--json_out=path]
//       [--spill_dir=path]    (default: a fresh temp dir, removed on exit)
//
// Compare against the committed BENCH_chunk_store.json baseline.  The
// interesting figures: MB/s through the spill encoder, the sync-load
// latency the trainer pays on a prefetch miss, the staged-load latency when
// the prefetcher got there first, and bytes-on-disk / bytes-in-memory.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"
#include "src/engine/execution_engine.h"
#include "src/storage/chunk_store.h"
#include "src/storage/prefetcher.h"
#include "src/storage/spill_file.h"

namespace cdpipe {
namespace bench {
namespace {

namespace fs = std::filesystem;

struct StoreBenchResult {
  std::string name;
  std::string dataset;
  double value = 0.0;
  std::string unit;
};

std::vector<RawChunk> MakeStream(const std::string& dataset, size_t chunks,
                                 size_t records_per_chunk) {
  if (dataset == "taxi") {
    TaxiStreamGenerator::Config config;
    config.records_per_chunk = records_per_chunk;
    TaxiStreamGenerator generator(config);
    return generator.Generate(chunks);
  }
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 14;
  config.initial_active_features = 1500;
  config.records_per_chunk = records_per_chunk;
  UrlStreamGenerator generator(config);
  return generator.Generate(chunks);
}

size_t StreamBytes(const std::vector<RawChunk>& stream) {
  size_t total = 0;
  for (const RawChunk& chunk : stream) total += chunk.ByteSize();
  return total;
}

/// Renumbers `chunk` so repeated passes over one stream keep ids strictly
/// increasing.
RawChunk WithId(const RawChunk& chunk, ChunkId id) {
  RawChunk copy = chunk;
  copy.id = id;
  return copy;
}

void RunDataset(const std::string& dataset, const std::string& dir,
                size_t num_chunks, size_t records_per_chunk,
                double min_seconds, std::vector<StoreBenchResult>* results) {
  const std::vector<RawChunk> stream =
      MakeStream(dataset, num_chunks, records_per_chunk);
  const size_t raw_bytes = StreamBytes(stream);
  const size_t chunk_bytes = raw_bytes / num_chunks;

  // --- Spill throughput: budget of one chunk, every insert spills one. ---
  double spill_seconds = 0.0;
  size_t spilled_bytes = 0;
  double compression_ratio = 0.0;
  {
    size_t passes = 0;
    Stopwatch total;
    ChunkId next_id = 0;
    while (total.ElapsedSeconds() < min_seconds) {
      ChunkStore::Options options;
      options.memory_budget_bytes = chunk_bytes;
      options.spill_dir = dir;
      ChunkStore store(options);
      Stopwatch pass;
      for (const RawChunk& chunk : stream) {
        if (!store.PutRaw(WithId(chunk, next_id++)).ok()) std::abort();
      }
      spill_seconds += pass.ElapsedSeconds();
      const ChunkStore::Counters counters = store.counters();
      spilled_bytes += static_cast<size_t>(counters.spill_raw_bytes);
      compression_ratio = counters.SpillCompressionRatio();
      ++passes;
    }
    (void)passes;
  }
  const double spill_mb_s =
      static_cast<double>(spilled_bytes) / (1024.0 * 1024.0) / spill_seconds;
  std::printf("%-6s spill throughput       %10.1f MB/s  (ratio %.3f)\n",
              dataset.c_str(), spill_mb_s, compression_ratio);
  results->push_back({"spill_throughput", dataset, spill_mb_s, "MB/s"});
  results->push_back(
      {"spill_compression_ratio", dataset, compression_ratio, "x"});

  // --- Load latency: sync (prefetch miss) vs staged (prefetch hit). ---
  {
    ChunkStore::Options options;
    options.memory_budget_bytes = chunk_bytes;
    options.spill_dir = dir;
    ExecutionEngine engine(1);
    ChunkStore store(options);
    Prefetcher prefetcher(&store, &engine);
    ChunkId next_id = 0;
    for (const RawChunk& chunk : stream) {
      if (!store.PutRaw(WithId(chunk, next_id++)).ok()) std::abort();
    }
    const std::vector<ChunkId> live = store.LiveIds();
    std::vector<ChunkId> spilled_ids;
    for (ChunkId id : live) {
      if (store.IsSpilled(id)) spilled_ids.push_back(id);
    }

    // Synchronous loads: every fetch pays encode-inverse + checksum + IO.
    int64_t sync_loads = 0;
    Stopwatch sync_watch;
    while (sync_watch.ElapsedSeconds() < min_seconds) {
      const ChunkId id =
          spilled_ids[static_cast<size_t>(sync_loads) % spilled_ids.size()];
      if (store.FetchRaw(id) == nullptr) std::abort();
      ++sync_loads;
      // Recycle the pinned staging area without growing the log.
      if (sync_loads % 64 == 0) {
        if (!store.PutRaw(WithId(stream.back(), next_id++)).ok()) {
          std::abort();
        }
      }
    }
    const double sync_us =
        sync_watch.ElapsedSeconds() * 1e6 / static_cast<double>(sync_loads);

    // Staged loads: the prefetcher reads ahead, the consumer only moves a
    // pointer out of the slot.  Loop control is wall-clock (the prefetch IO
    // dominates each round); only the consume side is timed.
    int64_t staged_loads = 0;
    double staged_seconds = 0.0;
    Stopwatch staged_watch;
    while (staged_watch.ElapsedSeconds() < min_seconds) {
      std::vector<ChunkId> window;
      for (int i = 0; i < 8; ++i) {
        window.push_back(
            spilled_ids[static_cast<size_t>(staged_loads + i) %
                        spilled_ids.size()]);
      }
      prefetcher.Schedule(window);
      prefetcher.Drain();
      Stopwatch consume;
      for (const ChunkId id : window) {
        if (store.FetchRaw(id) == nullptr) std::abort();
      }
      staged_seconds += consume.ElapsedSeconds();
      staged_loads += static_cast<int64_t>(window.size());
      if (!store.PutRaw(WithId(stream.back(), next_id++)).ok()) std::abort();
    }
    const double staged_us =
        staged_seconds * 1e6 / static_cast<double>(staged_loads);

    const ChunkStore::Counters counters = store.counters();
    std::printf(
        "%-6s disk-load latency      %10.1f us sync  %8.1f us staged  "
        "(prefetch hit rate %.2f)\n",
        dataset.c_str(), sync_us, staged_us, counters.PrefetchHitRate());
    results->push_back({"sync_load_latency", dataset, sync_us, "us"});
    results->push_back({"staged_load_latency", dataset, staged_us, "us"});
    results->push_back(
        {"prefetch_hit_rate", dataset, counters.PrefetchHitRate(), "frac"});
    results->push_back(
        {"disk_bytes_per_chunk", dataset,
         static_cast<double>(store.DiskBytes()) /
             static_cast<double>(store.num_spilled()),
         "bytes"});
  }

  // --- Pure codec round trip, no filesystem: encode+decode MB/s. ---
  {
    const RawChunk& chunk = stream.front();
    const std::string path = dir + "/codec_probe.spill";
    size_t processed = 0;
    Stopwatch watch;
    while (watch.ElapsedSeconds() < min_seconds) {
      if (!WriteRawChunkSpill(path, chunk).ok()) std::abort();
      if (!ReadRawChunkSpill(path, chunk.id).ok()) std::abort();
      processed += chunk.ByteSize();
    }
    const double mb_s = static_cast<double>(processed) / (1024.0 * 1024.0) /
                        watch.ElapsedSeconds();
    std::printf("%-6s write+read round trip  %10.1f MB/s\n", dataset.c_str(),
                mb_s);
    results->push_back({"round_trip_throughput", dataset, mb_s, "MB/s"});
  }
}

struct DeploymentRow {
  std::string budget;       ///< "ram" or a fraction of stream raw bytes
  double total_mu = 0.0;
  double memory_mu = 0.0;
  double disk_mu = 0.0;
  int64_t chunks_spilled = 0;
  double prefetch_hit_rate = 0.0;
  double compression_ratio = 0.0;
  double seconds = 0.0;
  double final_error = 0.0;
};

/// Runs the URL continuous deployment with the raw log forced (mostly)
/// onto disk at decreasing memory budgets.  The interesting claims: the
/// numbers (final error, μ totals) do not move — only where bytes live
/// does — and the wall-clock overhead of the disk tier stays small
/// because the prefetcher stages the sampler's picks.
void RunDeploymentSweep(const std::string& dir, double scale,
                        std::vector<DeploymentRow>* rows) {
  const UrlScenario scenario(scale);
  size_t raw_bytes = 0;
  for (const RawChunk& chunk : scenario.GenerateBootstrap()) {
    raw_bytes += chunk.ByteSize();
  }
  for (const RawChunk& chunk : scenario.GenerateStream()) {
    raw_bytes += chunk.ByteSize();
  }

  struct Point {
    const char* label;
    size_t divisor;  ///< 0 = RAM-only
  };
  const Point points[] = {{"ram", 0}, {"1/2", 2}, {"1/4", 4}, {"1/8", 8}};
  for (const Point& point : points) {
    RunOverrides overrides;
    // Bounded materialization keeps the feature cache from absorbing every
    // sample, so proactive training actually walks the raw tiers (and the
    // prefetcher earns its keep).  Same bound in every row — only the
    // budget moves.
    overrides.max_materialized_chunks = 16;
    if (point.divisor > 0) {
      overrides.memory_budget_bytes = raw_bytes / point.divisor;
      overrides.spill_dir = dir;
    }
    Stopwatch watch;
    const DeploymentReport report =
        RunDeployment(scenario, StrategyKind::kContinuous, overrides);
    DeploymentRow row;
    row.budget = point.label;
    row.total_mu = report.storage.EmpiricalMu();
    row.memory_mu = report.memory_mu;
    row.disk_mu = report.disk_mu;
    row.chunks_spilled = report.chunks_spilled;
    row.prefetch_hit_rate = report.prefetch_hit_rate;
    row.compression_ratio = report.spill_compression_ratio;
    row.seconds = watch.ElapsedSeconds();
    row.final_error = report.final_error;
    std::printf(
        "url    budget=%-4s  mu=%.3f (mem %.3f + disk %.3f)  spilled=%-4lld "
        "prefetch=%.2f  %.2fs  err=%.4f\n",
        row.budget.c_str(), row.total_mu, row.memory_mu, row.disk_mu,
        static_cast<long long>(row.chunks_spilled), row.prefetch_hit_rate,
        row.seconds, row.final_error);
    rows->push_back(row);
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const size_t num_chunks =
      static_cast<size_t>(flags.GetInt("chunks", 64));
  const size_t records_per_chunk =
      static_cast<size_t>(flags.GetInt("records_per_chunk", 256));
  const double min_seconds = flags.GetDouble("min_seconds", 0.3);
  const std::string label = flags.GetString("label", "two_tier");
  const std::string json_out = flags.GetString("json_out", "");
  std::string dir = flags.GetString("spill_dir", "");

  const bool own_dir = dir.empty();
  if (own_dir) {
    dir = (fs::temp_directory_path() / "cdpipe_bench_chunk_store").string();
  }
  fs::create_directories(dir);

  std::printf(
      "chunk store bench (label=%s, chunks=%zu, records_per_chunk=%zu)\n",
      label.c_str(), num_chunks, records_per_chunk);
  std::vector<StoreBenchResult> results;
  RunDataset("url", dir, num_chunks, records_per_chunk, min_seconds,
             &results);
  RunDataset("taxi", dir, num_chunks, records_per_chunk, min_seconds,
             &results);

  // Whole-deployment budget sweep (opt-in: it runs full training loops).
  std::vector<DeploymentRow> deployment_rows;
  if (flags.GetInt("deployment", 0) != 0) {
    RunDeploymentSweep(dir, flags.GetDouble("scale", 0.15),
                       &deployment_rows);
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", json_out.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"chunk_store\",\n";
    out << StrFormat("  \"label\": \"%s\",\n", label.c_str());
    out << StrFormat("  \"chunks\": %zu,\n", num_chunks);
    out << StrFormat("  \"records_per_chunk\": %zu,\n", records_per_chunk);
    out << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      out << StrFormat(
          "    {\"name\": \"%s\", \"dataset\": \"%s\", \"value\": %.3f, "
          "\"unit\": \"%s\"}%s\n",
          results[i].name.c_str(), results[i].dataset.c_str(),
          results[i].value, results[i].unit.c_str(),
          i + 1 < results.size() ? "," : "");
    }
    out << "  ],\n  \"deployment\": [\n";
    for (size_t i = 0; i < deployment_rows.size(); ++i) {
      const DeploymentRow& row = deployment_rows[i];
      out << StrFormat(
          "    {\"budget\": \"%s\", \"total_mu\": %.4f, \"memory_mu\": %.4f, "
          "\"disk_mu\": %.4f, \"chunks_spilled\": %lld, "
          "\"prefetch_hit_rate\": %.4f, \"compression_ratio\": %.4f, "
          "\"seconds\": %.3f, \"final_error\": %.6f}%s\n",
          row.budget.c_str(), row.total_mu, row.memory_mu, row.disk_mu,
          static_cast<long long>(row.chunks_spilled), row.prefetch_hit_rate,
          row.compression_ratio, row.seconds, row.final_error,
          i + 1 < deployment_rows.size() ? "," : "");
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed writing '%s'\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote JSON report: %s\n", json_out.c_str());
  }

  if (own_dir) {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) { return cdpipe::bench::Main(argc, argv); }
