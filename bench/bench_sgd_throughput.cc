// SGD training-path throughput: before/after the zero-copy rework.
//
// Measures rows/sec and ns/row of mini-batch SGD over a synthetic sparse
// sample (nominal dims grow across chunks, like real proactive samples
// whose one-hot dictionaries grew between materializations) along four
// paths:
//
//   seed_copy     — replica of the pre-rework implementation: every
//                   mini-batch materialized as a FeatureData (per-row
//                   SparseVector copies, FromSorted re-validation for dim
//                   widening) and gradients accumulated in a hash map then
//                   sorted.  The "before" baseline.
//   copy_serial   — mini-batch materialization kept, but feeding the new
//                   deterministic dense-scratch kernel (isolates the
//                   data-movement cost from the kernel win)
//   view_serial   — zero-copy BatchView mini-batches, serial gradient
//   view_sharded  — BatchView mini-batches, gradient sharded across an
//                   ExecutionEngine thread pool
//
// The last three paths produce bit-identical model parameters at any
// configuration (asserted below).  The seed replica is bit-identical to
// them whenever mini-batches stay single-shard (< 512 rows), which a
// separate small equivalence run asserts.
//
//   bench_sgd_throughput [--rows=120000] [--chunk_rows=500] [--dim=4096]
//       [--nnz=16] [--batch_size=512] [--threads=4] [--epochs=2]
//       [--seed=42] [--json_out=path]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/engine/execution_engine.h"
#include "src/ml/trainer.h"

namespace cdpipe {
namespace bench {
namespace {

struct Config {
  size_t rows = 120000;
  size_t chunk_rows = 500;
  uint32_t dim = 4096;
  size_t nnz = 16;
  size_t batch_size = 512;
  size_t threads = 4;
  int epochs = 2;
  uint64_t seed = 42;
};

// Synthetic sparse chunks whose nominal dim grows monotonically from dim/2
// to dim across the stream, like a one-hot dictionary discovering new
// categories over a deployment: in a sampled training batch every chunk
// but the newest is narrower than the batch dim, so the copy path pays
// the row-widening reallocation real proactive samples incur.
std::vector<FeatureData> MakeChunks(const Config& config) {
  Rng rng(config.seed);
  std::vector<FeatureData> chunks;
  const size_t num_chunks =
      (config.rows + config.chunk_rows - 1) / config.chunk_rows;
  size_t remaining = config.rows;
  for (size_t c = 0; c < num_chunks; ++c) {
    FeatureData chunk;
    const uint32_t base = config.dim / 2;
    chunk.dim = num_chunks > 1
                    ? base + static_cast<uint32_t>((config.dim - base) * c /
                                                   (num_chunks - 1))
                    : config.dim;
    const size_t rows = std::min(config.chunk_rows, remaining);
    remaining -= rows;
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::pair<uint32_t, double>> entries;
      for (size_t k = 0; k < config.nnz; ++k) {
        entries.push_back({static_cast<uint32_t>(rng.NextUint64() % chunk.dim),
                           rng.NextGaussian()});
      }
      chunk.features.push_back(
          SparseVector::FromUnsorted(chunk.dim, std::move(entries)));
      chunk.labels.push_back(rng.NextUint64() % 2 == 0 ? 1.0 : -1.0);
    }
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

struct PathResult {
  std::string label;
  double seconds = 0.0;
  int64_t rows_visited = 0;
  double rows_per_sec = 0.0;
  double ns_per_row = 0.0;
  std::vector<double> weights_fingerprint;  // first weights for equivalence
  double bias = 0.0;
};

// ---------------------------------------------------------------------------
// Faithful replica of the pre-rework implementation (the "before" of this
// benchmark), built on the public model API: per-mini-batch FeatureData
// materialization with FromSorted re-validation for widening, hash-map
// gradient accumulation, and a final comparator sort.
// ---------------------------------------------------------------------------

Status SeedKernelUpdate(LinearModel* model, const FeatureData& batch,
                        Optimizer* optimizer) {
  if (batch.num_rows() == 0) return Status::OK();
  CDPIPE_RETURN_NOT_OK(batch.Validate());
  model->EnsureDim(batch.dim);
  const double inv_n = 1.0 / static_cast<double>(batch.num_rows());
  std::unordered_map<uint32_t, double> accum;
  accum.reserve(batch.num_rows() * 4);
  double bias_accum = 0.0;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    const SparseVector& x = batch.features[r];
    const LossGrad lg =
        EvalLoss(model->options().loss, model->Predict(x), batch.labels[r]);
    const auto& idx = x.indices();
    const auto& val = x.values();
    for (size_t k = 0; k < idx.size(); ++k) {
      accum[idx[k]] += lg.dloss_dpred * val[k];
    }
    bias_accum += lg.dloss_dpred;
  }
  std::vector<GradEntry> grad;
  grad.reserve(accum.size());
  const double l2 = model->options().l2_reg;
  for (const auto& [index, g] : accum) {
    double value = g * inv_n;
    if (l2 > 0.0) value += l2 * model->weights()[index];
    if (value != 0.0) grad.push_back(GradEntry{index, value});
  }
  std::sort(grad.begin(), grad.end(),
            [](const GradEntry& a, const GradEntry& b) {
              return a.index < b.index;
            });
  const double bias_grad =
      model->options().fit_bias ? bias_accum * inv_n : 0.0;
  model->ApplyGradient(grad, bias_grad, optimizer);
  return Status::OK();
}

Status SeedTrain(const std::vector<const FeatureData*>& chunks,
                 size_t batch_size, int epochs, LinearModel* model,
                 Optimizer* optimizer, Rng* rng, int64_t* rows_visited) {
  uint32_t max_dim = 0;
  std::vector<std::pair<uint32_t, uint32_t>> index;
  for (uint32_t c = 0; c < chunks.size(); ++c) {
    CDPIPE_RETURN_NOT_OK(chunks[c]->Validate());
    max_dim = std::max(max_dim, chunks[c]->dim);
    for (uint32_t r = 0; r < chunks[c]->num_rows(); ++r) {
      index.emplace_back(c, r);
    }
  }
  model->EnsureDim(max_dim);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&index);  // same permutation as the RowRef index
    for (size_t start = 0; start < index.size(); start += batch_size) {
      const size_t end = std::min(start + batch_size, index.size());
      FeatureData batch;
      batch.dim = max_dim;
      batch.features.reserve(end - start);
      batch.labels.reserve(end - start);
      for (size_t i = start; i < end; ++i) {
        const auto [c, r] = index[i];
        SparseVector x = chunks[c]->features[r];
        if (x.dim() != max_dim) {
          auto widened = SparseVector::FromSorted(
              max_dim, std::vector<uint32_t>(x.indices()),
              std::vector<double>(x.values()));
          if (!widened.ok()) return widened.status();
          x = std::move(widened).value();
        }
        batch.features.push_back(std::move(x));
        batch.labels.push_back(chunks[c]->labels[r]);
      }
      CDPIPE_RETURN_NOT_OK(SeedKernelUpdate(model, batch, optimizer));
      *rows_visited += static_cast<int64_t>(end - start);
    }
  }
  return Status::OK();
}

PathResult FinishResult(const std::string& label, double seconds,
                        int64_t rows_visited, const LinearModel& model) {
  PathResult result;
  result.label = label;
  result.seconds = seconds;
  result.rows_visited = rows_visited;
  result.rows_per_sec = seconds > 0.0 ? rows_visited / seconds : 0.0;
  result.ns_per_row =
      rows_visited > 0 ? seconds * 1e9 / rows_visited : 0.0;
  for (uint32_t i = 0; i < std::min<uint32_t>(model.dim(), 64); ++i) {
    result.weights_fingerprint.push_back(model.weights()[i]);
  }
  result.bias = model.bias();
  std::printf("  %-14s %9.3fs  %12.0f rows/s  %8.1f ns/row\n", label.c_str(),
              result.seconds, result.rows_per_sec, result.ns_per_row);
  return result;
}

LinearModel MakeModel(const Config& config) {
  return LinearModel(LinearModel::Options{.loss = LossKind::kHinge,
                                          .l2_reg = 1e-4,
                                          .fit_bias = true,
                                          .initial_dim = config.dim});
}

std::unique_ptr<Optimizer> MakeBenchOptimizer() {
  return MakeOptimizer(
      OptimizerOptions{.kind = OptimizerKind::kAdam, .learning_rate = 0.01});
}

PathResult RunSeedPath(const Config& config,
                       const std::vector<FeatureData>& chunks) {
  std::vector<const FeatureData*> parts;
  parts.reserve(chunks.size());
  for (const FeatureData& chunk : chunks) parts.push_back(&chunk);
  LinearModel model = MakeModel(config);
  auto optimizer = MakeBenchOptimizer();
  Rng rng(config.seed + 1);  // same shuffle sequence as every other path
  int64_t rows_visited = 0;
  Stopwatch watch;
  Status status = SeedTrain(parts, config.batch_size, config.epochs, &model,
                            optimizer.get(), &rng, &rows_visited);
  const double seconds = watch.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "seed_copy failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return FinishResult("seed_copy", seconds, rows_visited, model);
}

PathResult RunPath(const std::string& label, const Config& config,
                   const std::vector<FeatureData>& chunks, bool legacy_copy,
                   ExecutionEngine* engine) {
  std::vector<const FeatureData*> parts;
  parts.reserve(chunks.size());
  for (const FeatureData& chunk : chunks) parts.push_back(&chunk);

  LinearModel model = MakeModel(config);
  auto optimizer = MakeBenchOptimizer();
  BatchTrainer trainer(BatchTrainer::Options{
      .max_epochs = config.epochs,
      .batch_size = config.batch_size,
      .tolerance = 0.0,  // run every epoch: fixed work per path
      .shuffle = true,
      .compute_final_loss = false,
      .use_legacy_copy_path = legacy_copy});

  Rng rng(config.seed + 1);  // same shuffle sequence for every path
  Stopwatch watch;
  auto stats = trainer.Train(parts, &model, optimizer.get(), &rng, engine);
  const double seconds = watch.ElapsedSeconds();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label.c_str(),
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  return FinishResult(label, seconds, stats->examples_visited, model);
}

void CheckEquivalence(const PathResult& a, const PathResult& b) {
  if (a.bias != b.bias || a.weights_fingerprint != b.weights_fingerprint) {
    std::fprintf(stderr,
                 "FATAL: %s and %s diverged — paths must be bit-identical\n",
                 a.label.c_str(), b.label.c_str());
    std::exit(1);
  }
}

std::string ResultJson(const PathResult& r) {
  return StrFormat(
      "{\"label\":\"%s\",\"seconds\":%.9g,\"rows_visited\":%lld,"
      "\"rows_per_sec\":%.9g,\"ns_per_row\":%.9g}",
      r.label.c_str(), r.seconds, static_cast<long long>(r.rows_visited),
      r.rows_per_sec, r.ns_per_row);
}

}  // namespace

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  Config config;
  config.rows = static_cast<size_t>(flags.GetInt("rows", 120000));
  config.chunk_rows = static_cast<size_t>(flags.GetInt("chunk_rows", 500));
  config.dim = static_cast<uint32_t>(flags.GetInt("dim", 4096));
  config.nnz = static_cast<size_t>(flags.GetInt("nnz", 16));
  config.batch_size = static_cast<size_t>(flags.GetInt("batch_size", 512));
  config.threads = static_cast<size_t>(flags.GetInt("threads", 4));
  config.epochs = static_cast<int>(flags.GetInt("epochs", 2));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf(
      "SGD throughput: %zu rows, dim %u, nnz %zu, batch %zu, %d epoch(s), "
      "%zu thread(s)\n",
      config.rows, config.dim, config.nnz, config.batch_size, config.epochs,
      config.threads);
  const std::vector<FeatureData> chunks = MakeChunks(config);

  ExecutionEngine sharded_engine(config.threads);
  PathResult seed_copy = RunSeedPath(config, chunks);
  PathResult copy_serial =
      RunPath("copy_serial", config, chunks, /*legacy_copy=*/true, nullptr);
  PathResult view_serial =
      RunPath("view_serial", config, chunks, /*legacy_copy=*/false, nullptr);
  PathResult view_sharded = RunPath("view_sharded", config, chunks,
                                    /*legacy_copy=*/false, &sharded_engine);

  // The three reworked paths shuffle with the same seed and feed the same
  // deterministic gradient kernel: diverging parameters mean a bug.
  CheckEquivalence(copy_serial, view_serial);
  CheckEquivalence(view_serial, view_sharded);

  // The seed replica sums each coordinate in one pass, so it is
  // bit-identical to the reworked kernel only while batches stay
  // single-shard (< 512 rows); prove that on a small config.
  {
    Config small = config;
    small.rows = std::min<size_t>(config.rows, 10000);
    small.batch_size = 256;
    small.epochs = 1;
    const std::vector<FeatureData> small_chunks = MakeChunks(small);
    std::printf("  single-shard equivalence run (%zu rows, batch %zu):\n",
                small.rows, small.batch_size);
    PathResult small_seed = RunSeedPath(small, small_chunks);
    PathResult small_view =
        RunPath("view_serial", small, small_chunks, false, nullptr);
    CheckEquivalence(small_seed, small_view);
  }

  auto speedup = [&](const PathResult& r) {
    return seed_copy.seconds > 0.0 && r.seconds > 0.0
               ? r.rows_per_sec / seed_copy.rows_per_sec
               : 0.0;
  };
  const double speedup_copy_kernel = speedup(copy_serial);
  const double speedup_view = speedup(view_serial);
  const double speedup_sharded = speedup(view_sharded);
  std::printf("  copy_serial  vs seed_copy: %.2fx rows/sec (kernel only)\n",
              speedup_copy_kernel);
  std::printf("  view_serial  vs seed_copy: %.2fx rows/sec\n", speedup_view);
  std::printf("  view_sharded vs seed_copy: %.2fx rows/sec\n",
              speedup_sharded);
  std::printf("  equivalence: identical parameters across all paths\n");

  const std::string json_out = flags.GetString("json_out", "");
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", json_out.c_str());
      return 1;
    }
    out << "{\"benchmark\":\"sgd_throughput\",";
    out << StrFormat(
        "\"config\":{\"rows\":%zu,\"chunk_rows\":%zu,\"dim\":%u,\"nnz\":%zu,"
        "\"batch_size\":%zu,\"threads\":%zu,\"epochs\":%d,\"seed\":%llu},",
        config.rows, config.chunk_rows, config.dim, config.nnz,
        config.batch_size, config.threads, config.epochs,
        static_cast<unsigned long long>(config.seed));
    out << "\"results\":[" << ResultJson(seed_copy) << ","
        << ResultJson(copy_serial) << "," << ResultJson(view_serial) << ","
        << ResultJson(view_sharded) << "],";
    out << StrFormat(
        "\"speedup_copy_kernel_vs_seed\":%.9g,"
        "\"speedup_view_serial_vs_seed\":%.9g,"
        "\"speedup_view_sharded_vs_seed\":%.9g,"
        "\"parameters_identical\":true}",
        speedup_copy_kernel, speedup_view, speedup_sharded);
    out << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed writing '%s'\n", json_out.c_str());
      return 1;
    }
    std::printf("  wrote JSON report: %s\n", json_out.c_str());
  }
  return 0;
}

}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) { return cdpipe::bench::Main(argc, argv); }
