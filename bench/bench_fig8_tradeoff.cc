// Figure 8 of the paper: the quality/cost trade-off — average prequential
// error vs total deployment cost for the three strategies on both
// scenarios, i.e. the scatter plot the paper closes its evaluation with.
//
// Expected shape (§5.5): continuous sits at (periodical-level quality,
// online-level cost) — the paper reports 6–15× lower cost than periodical
// at equal or slightly better quality.
//
// Flags: --scenario=url|taxi|both  --scale=1.0  --seed=42

#include <cstdio>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

void RunScenario(const Scenario& scenario) {
  std::printf("\n=== Figure 8 — %s (avg %s vs cost) ===\n",
              scenario.name().c_str(), scenario.metric_label().c_str());
  std::printf("  %-12s %14s %12s %16s\n", "strategy", "avg_error",
              "cost(s)", "work(units)");
  DeploymentReport reports[3];
  const StrategyKind kinds[] = {StrategyKind::kOnline,
                                StrategyKind::kPeriodical,
                                StrategyKind::kContinuous};
  for (int i = 0; i < 3; ++i) {
    reports[i] = RunDeployment(scenario, kinds[i]);
    std::printf("  %-12s %14.5f %12.2f %16lld\n", StrategyName(kinds[i]),
                reports[i].average_error, reports[i].total_seconds,
                static_cast<long long>(reports[i].total_work));
  }
  std::printf(
      "  -> continuous achieves %.5f avg error at %.1f%% of periodical's "
      "work (quality delta vs periodical: %+.5f)\n",
      reports[2].average_error,
      100.0 * static_cast<double>(reports[2].total_work) /
          static_cast<double>(reports[1].total_work),
      reports[1].average_error - reports[2].average_error);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");

  std::printf("bench_fig8_tradeoff: quality vs deployment cost\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed));
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed));
  }
  return 0;
}
