// Microbenchmark: per-step cost of each learning-rate adaptation technique
// (§2.1) on sparse gradients of varying density, plus the cost of one full
// model update (gradient + step) — the unit of work of online learning and
// proactive training alike.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/ml/linear_model.h"
#include "src/ml/optimizer.h"

namespace cdpipe {
namespace {

std::vector<GradEntry> MakeSparseGradient(size_t dim, size_t nnz,
                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<GradEntry> grad;
  grad.reserve(nnz);
  for (size_t i : rng.SampleWithoutReplacement(dim, nnz)) {
    grad.push_back(GradEntry{static_cast<uint32_t>(i), rng.NextGaussian()});
  }
  return grad;
}

void BM_OptimizerStep(benchmark::State& state, OptimizerKind kind) {
  constexpr size_t kDim = 1u << 14;
  const size_t nnz = static_cast<size_t>(state.range(0));
  OptimizerOptions options;
  options.kind = kind;
  options.learning_rate = 0.01;
  auto optimizer = MakeOptimizer(options);
  DenseVector weights(kDim);
  double bias = 0.0;
  const auto grad = MakeSparseGradient(kDim, nnz, 7);
  for (auto _ : state) {
    optimizer->Step(grad, 0.1, &weights, &bias);
    benchmark::DoNotOptimize(weights.data());
  }
  state.SetItemsProcessed(state.iterations() * nnz);
}

BENCHMARK_CAPTURE(BM_OptimizerStep, sgd, OptimizerKind::kSgd)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_OptimizerStep, momentum, OptimizerKind::kMomentum)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_OptimizerStep, adam, OptimizerKind::kAdam)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_OptimizerStep, rmsprop, OptimizerKind::kRmsprop)
    ->Arg(64)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_OptimizerStep, adadelta, OptimizerKind::kAdadelta)
    ->Arg(64)
    ->Arg(1024);

/// One full mini-batch SGD iteration (gradient + step) over a URL-style
/// sparse batch — the latency building block of proactive training.
void BM_MiniBatchUpdate(benchmark::State& state) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 16;
  config.initial_active_features = 3000;
  config.records_per_chunk = static_cast<size_t>(state.range(0));
  UrlStreamGenerator generator(config);
  UrlPipelineConfig pipe_config;
  pipe_config.raw_dim = config.feature_dim;
  pipe_config.hash_bits = 12;
  auto pipeline = MakeUrlPipeline(pipe_config);
  const FeatureData batch =
      std::move(pipeline->UpdateAndTransform(generator.NextChunk()))
          .ValueOrDie();

  LinearModel model(MakeUrlModelOptions(pipe_config));
  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.01});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Update(batch, optimizer.get()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MiniBatchUpdate)->Arg(50)->Arg(500);

}  // namespace
}  // namespace cdpipe
