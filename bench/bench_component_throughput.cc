// Microbenchmark: per-component transform throughput (rows/second) for
// every pipeline component, on representative batches.  Complements Table 1
// of the paper — all components are O(p), so throughput should be flat in
// batch size.
//
// Hand-rolled timing loop (Stopwatch + calibrated repetition counts)
// instead of google-benchmark so the binary can emit the same JSON schema
// as the committed BENCH_components.json baseline, which was captured from
// the seed row-at-a-time pipeline before the columnar batch path landed:
//
//   bench_component_throughput [--min_seconds=0.5] [--label=columnar]
//       [--json_out=path] [--obs=0] [--mode=interpreted|fused|both]
//
// Compare against BENCH_components.json to read the speedup per component.
// `--mode` selects the execution mode of the Full*PipelineTransform rows:
// the interpreted component-at-a-time loop, the fused per-schema block
// plan, or both (the default; the run then ends with an x-factor summary
// of fused over interpreted per workload).  Component micro rows always
// run interpreted — they time a single component, so there is no chain to
// fuse.  `--obs=1` runs the identical suite with the whole observability
// plane live (event journal, watchdog, HTTP obs server on an ephemeral
// port) — diff the two labels to measure the plane's overhead on hot
// transform loops.

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/obs_server.h"
#include "src/pipeline/feature_hasher.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/missing_value_imputer.h"
#include "src/pipeline/standard_scaler.h"
#include "src/pipeline/taxi_feature_extractor.h"

namespace cdpipe {
namespace bench {
namespace {

struct BenchResult {
  std::string name;
  std::string mode = "interpreted";
  size_t batch_rows = 0;
  double rows_per_second = 0.0;
};

/// Times `body` (one call = one pass over `batch_rows` rows): repeats until
/// `min_seconds` of accumulated runtime, after a warm-up pass, and returns
/// rows/second.
BenchResult TimeRowsPerSecond(const std::string& name, size_t batch_rows,
                              double min_seconds,
                              const std::function<void()>& body,
                              const std::string& mode = "interpreted") {
  body();  // warm-up (touches lazy caches, faults pages)
  size_t iterations = 0;
  Stopwatch watch;
  do {
    body();
    ++iterations;
  } while (watch.ElapsedSeconds() < min_seconds);
  const double seconds = watch.ElapsedSeconds();
  BenchResult result;
  result.name = name;
  result.mode = mode;
  result.batch_rows = batch_rows;
  result.rows_per_second =
      static_cast<double>(iterations * batch_rows) / seconds;
  std::printf("%-28s %-11s rows=%-5zu  %12.0f rows/s  (%zu iters)\n",
              name.c_str(), mode.c_str(), batch_rows, result.rows_per_second,
              iterations);
  return result;
}

RawChunk MakeUrlChunk(size_t rows) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 16;
  config.initial_active_features = 3000;
  config.records_per_chunk = rows;
  UrlStreamGenerator generator(config);
  return generator.NextChunk();
}

RawChunk MakeTaxiChunk(size_t rows) {
  TaxiStreamGenerator::Config config;
  config.records_per_chunk = rows;
  TaxiStreamGenerator generator(config);
  return generator.NextChunk();
}

InputParser MakeLibSvmParser() {
  InputParser::Options options;
  options.feature_dim = 1u << 16;
  return InputParser(options);
}

InputParser MakeCsvParser() {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TaxiRawSchema();
  return InputParser(options);
}

DataBatch ParsedUrl(const RawChunk& chunk) {
  return std::move(MakeLibSvmParser().Transform(Pipeline::WrapRaw(chunk)))
      .ValueOrDie();
}

DataBatch ParsedTaxi(const RawChunk& chunk) {
  return std::move(MakeCsvParser().Transform(Pipeline::WrapRaw(chunk)))
      .ValueOrDie();
}

void RunSuite(double min_seconds, bool run_interpreted, bool run_fused,
              std::vector<BenchResult>* results) {
  const std::vector<size_t> batch_sizes = {64, 512};

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeUrlChunk(rows);
    const InputParser parser = MakeLibSvmParser();
    const DataBatch batch = Pipeline::WrapRaw(chunk);
    results->push_back(TimeRowsPerSecond(
        "InputParserLibSvm", rows, min_seconds,
        [&] { (void)parser.Transform(batch); }));
  }

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeTaxiChunk(rows);
    const InputParser parser = MakeCsvParser();
    const DataBatch batch = Pipeline::WrapRaw(chunk);
    results->push_back(TimeRowsPerSecond(
        "InputParserCsv", rows, min_seconds,
        [&] { (void)parser.Transform(batch); }));
  }

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeUrlChunk(rows);
    const DataBatch batch = ParsedUrl(chunk);
    MissingValueImputer imputer;
    (void)imputer.Update(batch);
    results->push_back(TimeRowsPerSecond(
        "MissingValueImputer", rows, min_seconds,
        [&] { (void)imputer.Transform(batch); }));
  }

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeUrlChunk(rows);
    const DataBatch batch = ParsedUrl(chunk);
    StandardScaler scaler;
    (void)scaler.Update(batch);
    results->push_back(TimeRowsPerSecond(
        "StandardScalerSparse", rows, min_seconds,
        [&] { (void)scaler.Transform(batch); }));
  }

  {
    const size_t rows = 512;
    const RawChunk chunk = MakeUrlChunk(rows);
    const DataBatch batch = ParsedUrl(chunk);
    results->push_back(
        TimeRowsPerSecond("StandardScalerUpdate", rows, min_seconds, [&] {
          StandardScaler scaler;
          (void)scaler.Update(batch);
        }));
  }

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeUrlChunk(rows);
    const DataBatch batch = ParsedUrl(chunk);
    FeatureHasher::Options options;
    options.bits = 12;
    const FeatureHasher hasher(options);
    results->push_back(TimeRowsPerSecond(
        "FeatureHasher", rows, min_seconds,
        [&] { (void)hasher.Transform(batch); }));
  }

  for (size_t rows : batch_sizes) {
    const RawChunk chunk = MakeTaxiChunk(rows);
    const DataBatch batch = ParsedTaxi(chunk);
    const TaxiFeatureExtractor extractor;
    results->push_back(TimeRowsPerSecond(
        "TaxiFeatureExtractor", rows, min_seconds,
        [&] { (void)extractor.Transform(batch); }));
  }

  for (size_t rows : batch_sizes) {
    UrlPipelineConfig config;
    config.raw_dim = 1u << 16;
    config.hash_bits = 12;
    auto pipeline = MakeUrlPipeline(config);
    UrlStreamGenerator::Config stream_config;
    stream_config.feature_dim = config.raw_dim;
    stream_config.initial_active_features = 3000;
    stream_config.records_per_chunk = rows;
    UrlStreamGenerator generator(stream_config);
    const RawChunk chunk = generator.NextChunk();
    (void)pipeline->UpdateAndTransform(chunk);
    if (run_interpreted) {
      results->push_back(TimeRowsPerSecond(
          "FullUrlPipelineTransform", rows, min_seconds,
          [&] {
            (void)pipeline->Transform(chunk, nullptr, nullptr,
                                      ExecMode::kInterpreted);
          },
          "interpreted"));
    }
    if (run_fused) {
      results->push_back(TimeRowsPerSecond(
          "FullUrlPipelineTransform", rows, min_seconds,
          [&] {
            (void)pipeline->Transform(chunk, nullptr, nullptr,
                                      ExecMode::kFused);
          },
          "fused"));
    }
  }

  for (size_t rows : batch_sizes) {
    auto pipeline = MakeTaxiPipeline();
    TaxiStreamGenerator::Config stream_config;
    stream_config.records_per_chunk = rows;
    TaxiStreamGenerator generator(stream_config);
    const RawChunk chunk = generator.NextChunk();
    (void)pipeline->UpdateAndTransform(chunk);
    if (run_interpreted) {
      results->push_back(TimeRowsPerSecond(
          "FullTaxiPipelineTransform", rows, min_seconds,
          [&] {
            (void)pipeline->Transform(chunk, nullptr, nullptr,
                                      ExecMode::kInterpreted);
          },
          "interpreted"));
    }
    if (run_fused) {
      results->push_back(TimeRowsPerSecond(
          "FullTaxiPipelineTransform", rows, min_seconds,
          [&] {
            (void)pipeline->Transform(chunk, nullptr, nullptr,
                                      ExecMode::kFused);
          },
          "fused"));
    }
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double min_seconds = flags.GetDouble("min_seconds", 0.5);
  const std::string label = flags.GetString("label", "columnar");
  const std::string json_out = flags.GetString("json_out", "");
  const bool obs_on = flags.GetDouble("obs", 0) != 0;
  const std::string mode = flags.GetString("mode", "both");
  if (mode != "interpreted" && mode != "fused" && mode != "both") {
    std::fprintf(stderr, "unknown --mode=%s (interpreted|fused|both)\n",
                 mode.c_str());
    return 1;
  }
  const bool run_interpreted = mode != "fused";
  const bool run_fused = mode != "interpreted";

  // Normalize glibc to its multi-threaded code paths in BOTH modes before
  // timing anything: the first thread a process ever creates permanently
  // clears `__libc_single_threaded`, turning every shared_ptr refcount in
  // the transform loops into a real atomic RMW (measured 5–25% on the
  // shortest loops).  Any real deployment runs an engine pool and pays
  // this anyway; without the normalization the --obs=1 run (which starts
  // watchdog + server threads) would be charged for it while the baseline
  // is not, and the A/B would measure glibc, not the obs plane.
  std::thread(([] {})).join();

  // With --obs=1 the full observability plane runs alongside the timed
  // loops: journal enabled, watchdog polling, HTTP server accepting.
  std::unique_ptr<obs::Watchdog> watchdog;
  std::unique_ptr<obs::ObsServer> server;
  if (obs_on) {
    obs::EventJournal::Global().Enable();
    watchdog = std::make_unique<obs::Watchdog>();
    watchdog->Start();
    server = std::make_unique<obs::ObsServer>();
    const Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "obs server failed to start: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("obs plane live on http://127.0.0.1:%u\n", server->port());
  }

  std::printf(
      "component throughput (label=%s, min_seconds=%.2f, obs=%d, mode=%s)\n",
      label.c_str(), min_seconds, obs_on ? 1 : 0, mode.c_str());
  std::vector<BenchResult> results;
  RunSuite(min_seconds, run_interpreted, run_fused, &results);

  // X-factor summary: fused over interpreted for every row that ran in
  // both modes.
  if (run_interpreted && run_fused) {
    std::printf("\nfused speedup over interpreted:\n");
    for (const BenchResult& fused : results) {
      if (fused.mode != "fused") continue;
      for (const BenchResult& interp : results) {
        if (interp.mode == "interpreted" && interp.name == fused.name &&
            interp.batch_rows == fused.batch_rows) {
          std::printf("  %s@%zu: %.2fx\n", fused.name.c_str(),
                      fused.batch_rows,
                      fused.rows_per_second / interp.rows_per_second);
        }
      }
    }
  }

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", json_out.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"component_throughput\",\n";
    out << StrFormat("  \"label\": \"%s\",\n", label.c_str());
    out << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      out << StrFormat(
          "    {\"name\": \"%s\", \"mode\": \"%s\", \"batch_rows\": %zu, "
          "\"rows_per_second\": %.1f}%s\n",
          results[i].name.c_str(), results[i].mode.c_str(),
          results[i].batch_rows, results[i].rows_per_second,
          i + 1 < results.size() ? "," : "");
    }
    out << "  ]\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed writing '%s'\n", json_out.c_str());
      return 1;
    }
    std::printf("wrote JSON report: %s\n", json_out.c_str());
  }
  if (server != nullptr) server->Stop();
  if (watchdog != nullptr) watchdog->Stop();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) { return cdpipe::bench::Main(argc, argv); }
