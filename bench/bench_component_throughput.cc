// Microbenchmark: per-component transform throughput (rows/second) for
// every pipeline component, on representative batches.  Complements Table 1
// of the paper — all components are O(p), so throughput should be flat in
// batch size.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/pipeline/anomaly_filter.h"
#include "src/pipeline/column_projector.h"
#include "src/pipeline/feature_hasher.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/missing_value_imputer.h"
#include "src/pipeline/one_hot_encoder.h"
#include "src/pipeline/standard_scaler.h"
#include "src/pipeline/taxi_feature_extractor.h"
#include "src/pipeline/vector_assembler.h"

namespace cdpipe {
namespace {

DataBatch MakeUrlRawBatch(size_t rows) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 16;
  config.initial_active_features = 3000;
  config.records_per_chunk = rows;
  UrlStreamGenerator generator(config);
  return Pipeline::WrapRaw(generator.NextChunk());
}

DataBatch MakeTaxiRawBatch(size_t rows) {
  TaxiStreamGenerator::Config config;
  config.records_per_chunk = rows;
  TaxiStreamGenerator generator(config);
  return Pipeline::WrapRaw(generator.NextChunk());
}

DataBatch ParsedUrl(size_t rows) {
  InputParser::Options options;
  options.feature_dim = 1u << 16;
  InputParser parser(options);
  return std::move(parser.Transform(MakeUrlRawBatch(rows))).ValueOrDie();
}

DataBatch ParsedTaxi(size_t rows) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TaxiRawSchema();
  InputParser parser(options);
  return std::move(parser.Transform(MakeTaxiRawBatch(rows))).ValueOrDie();
}

void BM_InputParserLibSvm(benchmark::State& state) {
  InputParser::Options options;
  options.feature_dim = 1u << 16;
  InputParser parser(options);
  const DataBatch batch = MakeUrlRawBatch(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InputParserLibSvm)->Arg(64)->Arg(512);

void BM_InputParserCsv(benchmark::State& state) {
  InputParser::Options options;
  options.format = InputParser::Format::kCsv;
  options.csv_schema = TaxiRawSchema();
  InputParser parser(options);
  const DataBatch batch = MakeTaxiRawBatch(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InputParserCsv)->Arg(64)->Arg(512);

void BM_MissingValueImputer(benchmark::State& state) {
  MissingValueImputer imputer;
  const DataBatch batch = ParsedUrl(state.range(0));
  (void)imputer.Update(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(imputer.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MissingValueImputer)->Arg(64)->Arg(512);

void BM_StandardScalerSparse(benchmark::State& state) {
  StandardScaler scaler;
  const DataBatch batch = ParsedUrl(state.range(0));
  (void)scaler.Update(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StandardScalerSparse)->Arg(64)->Arg(512);

void BM_StandardScalerUpdate(benchmark::State& state) {
  const DataBatch batch = ParsedUrl(state.range(0));
  for (auto _ : state) {
    StandardScaler scaler;
    benchmark::DoNotOptimize(scaler.Update(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StandardScalerUpdate)->Arg(512);

void BM_FeatureHasher(benchmark::State& state) {
  FeatureHasher::Options options;
  options.bits = 12;
  FeatureHasher hasher(options);
  const DataBatch batch = ParsedUrl(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureHasher)->Arg(64)->Arg(512);

void BM_TaxiFeatureExtractor(benchmark::State& state) {
  TaxiFeatureExtractor extractor;
  const DataBatch batch = ParsedTaxi(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Transform(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaxiFeatureExtractor)->Arg(64)->Arg(512);

void BM_FullUrlPipelineTransform(benchmark::State& state) {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 16;
  config.hash_bits = 12;
  auto pipeline = MakeUrlPipeline(config);
  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = config.raw_dim;
  stream_config.initial_active_features = 3000;
  stream_config.records_per_chunk = state.range(0);
  UrlStreamGenerator generator(stream_config);
  const RawChunk chunk = generator.NextChunk();
  (void)pipeline->UpdateAndTransform(chunk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline->Transform(chunk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullUrlPipelineTransform)->Arg(64)->Arg(512);

void BM_FullTaxiPipelineTransform(benchmark::State& state) {
  auto pipeline = MakeTaxiPipeline();
  TaxiStreamGenerator::Config stream_config;
  stream_config.records_per_chunk = state.range(0);
  TaxiStreamGenerator generator(stream_config);
  const RawChunk chunk = generator.NextChunk();
  (void)pipeline->UpdateAndTransform(chunk);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline->Transform(chunk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullTaxiPipelineTransform)->Arg(64)->Arg(512);

}  // namespace
}  // namespace cdpipe
