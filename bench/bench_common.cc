#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/common/string_util.h"
#include "src/obs/exporters.h"

namespace cdpipe {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "1";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& key) const { return values_.count(key); }

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::move(ParseInt64(it->second)).ValueOrDie();
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::move(ParseDouble(it->second)).ValueOrDie();
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

BatchTrainer::Options Scenario::InitialTrainOptions() const {
  BatchTrainer::Options options;
  options.max_epochs = 40;
  options.batch_size = 200;  // mini-batch SGD over the bootstrap data
  options.tolerance = 1e-4;
  return options;
}

BatchTrainer::Options Scenario::RetrainOptions() const {
  // The paper's periodical baseline retrains to convergence over the full
  // history — the dominant cost the approach is criticized for.
  BatchTrainer::Options options;
  options.max_epochs = 12;
  options.batch_size = 500;  // mini-batch SGD to convergence
  options.tolerance = 1e-3;
  return options;
}

UrlScenario::UrlScenario(double scale, uint64_t seed) {
  seed_ = seed;
  bootstrap_chunks_ = 40;
  stream_chunks_ = static_cast<size_t>(480 * scale);
  proactive_sample_chunks_ = 20;
  retrain_every_chunks_ = 80;  // "every 10 days" at 8 chunks/day bench scale

  pipeline_config_.raw_dim = 1u << 16;
  pipeline_config_.hash_bits = 12;
  pipeline_config_.l2_reg = 1e-3;

  stream_config_.feature_dim = pipeline_config_.raw_dim;
  stream_config_.initial_active_features = 400;
  stream_config_.new_features_per_chunk = 2;
  stream_config_.perturbed_weights_per_chunk = 40;
  stream_config_.drift_step = 0.05;
  stream_config_.directional_drift_step = 0.002;
  stream_config_.nnz_per_record = 15;
  stream_config_.records_per_chunk = 100;
  stream_config_.label_noise = 0.02;
  stream_config_.margin_threshold = 1.5;
  stream_config_.missing_prob = 0.01;
  stream_config_.seed = seed;
}

std::unique_ptr<Pipeline> UrlScenario::MakePipeline() const {
  return MakeUrlPipeline(pipeline_config_);
}

std::unique_ptr<LinearModel> UrlScenario::MakeModel() const {
  return std::make_unique<LinearModel>(MakeUrlModelOptions(pipeline_config_));
}

std::unique_ptr<Metric> UrlScenario::MakeMetric() const {
  return std::make_unique<MisclassificationRate>();
}

OptimizerOptions UrlScenario::DefaultOptimizer() const {
  // Table 3: Adam with regularization 1e-3 wins on URL.
  OptimizerOptions options;
  options.kind = OptimizerKind::kAdam;
  options.learning_rate = 0.002;
  return options;
}

std::vector<RawChunk> UrlScenario::GenerateBootstrap() const {
  UrlStreamGenerator generator(stream_config_);
  return generator.Generate(bootstrap_chunks_);
}

std::vector<RawChunk> UrlScenario::GenerateStream() const {
  UrlStreamGenerator generator(stream_config_);
  generator.Generate(bootstrap_chunks_);  // skip the bootstrap prefix
  return generator.Generate(stream_chunks_);
}

TaxiScenario::TaxiScenario(double scale, uint64_t seed) {
  seed_ = seed;
  bootstrap_chunks_ = 48;
  stream_chunks_ = static_cast<size_t>(480 * scale);
  proactive_sample_chunks_ = 24;
  retrain_every_chunks_ = 96;  // "monthly" at bench scale

  stream_config_.records_per_chunk = 60;
  stream_config_.anomaly_prob = 0.01;
  stream_config_.noise_sigma = 0.25;
  stream_config_.seed = seed;
}

std::unique_ptr<Pipeline> TaxiScenario::MakePipeline() const {
  return MakeTaxiPipeline();
}

std::unique_ptr<LinearModel> TaxiScenario::MakeModel() const {
  return std::make_unique<LinearModel>(MakeTaxiModelOptions(1e-4));
}

std::unique_ptr<Metric> TaxiScenario::MakeMetric() const {
  // Labels are log1p(duration): RMSE in log space == RMSLE (§5.1).
  return std::make_unique<Rmse>();
}

OptimizerOptions TaxiScenario::DefaultOptimizer() const {
  // Table 3: RMSProp with regularization 1e-4 wins on Taxi (narrowly).
  OptimizerOptions options;
  options.kind = OptimizerKind::kRmsprop;
  options.learning_rate = 0.02;
  return options;
}

std::vector<RawChunk> TaxiScenario::GenerateBootstrap() const {
  TaxiStreamGenerator generator(stream_config_);
  return generator.Generate(bootstrap_chunks_);
}

std::vector<RawChunk> TaxiScenario::GenerateStream() const {
  TaxiStreamGenerator generator(stream_config_);
  generator.Generate(bootstrap_chunks_);
  return generator.Generate(stream_chunks_);
}

std::unique_ptr<Scenario> MakeScenario(const std::string& name, double scale,
                                       uint64_t seed) {
  if (name == "url" || name == "URL") {
    return std::make_unique<UrlScenario>(scale, seed);
  }
  if (name == "taxi" || name == "Taxi") {
    return std::make_unique<TaxiScenario>(scale, seed);
  }
  std::fprintf(stderr, "unknown scenario '%s' (use url|taxi)\n",
               name.c_str());
  std::exit(2);
}

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kOnline:
      return "online";
    case StrategyKind::kPeriodical:
      return "periodical";
    case StrategyKind::kContinuous:
      return "continuous";
  }
  return "?";
}

DeploymentReport RunDeployment(const Scenario& scenario, StrategyKind kind,
                               const RunOverrides& overrides) {
  Deployment::Options options;
  options.store.max_materialized_chunks = overrides.max_materialized_chunks;
  options.store.memory_budget_bytes = overrides.memory_budget_bytes;
  options.store.spill_dir = overrides.spill_dir;
  options.sampler = overrides.sampler;
  options.sampler_window =
      overrides.sampler_window > 0
          ? overrides.sampler_window
          : (scenario.stream_chunks() + scenario.bootstrap_chunks()) / 2;
  options.online_statistics = overrides.online_statistics;
  options.eval_window = 2000;
  options.seed = scenario.seed();

  OptimizerOptions optimizer_options = scenario.DefaultOptimizer();
  if (overrides.tweak_optimizer) {
    optimizer_options = overrides.tweak_optimizer(optimizer_options);
  }
  std::unique_ptr<LinearModel> model = scenario.MakeModel();
  if (overrides.tweak_model) {
    model = std::make_unique<LinearModel>(
        overrides.tweak_model(model->options()));
  }

  std::unique_ptr<Deployment> deployment;
  switch (kind) {
    case StrategyKind::kOnline:
      deployment = std::make_unique<OnlineDeployment>(
          std::move(options), scenario.MakePipeline(), std::move(model),
          MakeOptimizer(optimizer_options), scenario.MakeMetric());
      break;
    case StrategyKind::kPeriodical: {
      // The classic periodical platform keeps no feature cache.
      options.store.max_materialized_chunks = 0;
      PeriodicalDeployment::PeriodicalOptions periodical;
      periodical.retrain_every_chunks = scenario.retrain_every_chunks();
      periodical.warm_start = overrides.warm_start;
      periodical.retrain = scenario.RetrainOptions();
      if (overrides.tweak_retrain) {
        periodical.retrain = overrides.tweak_retrain(periodical.retrain);
      }
      deployment = std::make_unique<PeriodicalDeployment>(
          std::move(options), std::move(periodical), scenario.MakePipeline(),
          std::move(model), MakeOptimizer(optimizer_options),
          scenario.MakeMetric());
      break;
    }
    case StrategyKind::kContinuous: {
      ContinuousDeployment::ContinuousOptions continuous;
      continuous.proactive_every_chunks = scenario.proactive_every_chunks();
      continuous.sample_chunks = scenario.proactive_sample_chunks();
      deployment = std::make_unique<ContinuousDeployment>(
          std::move(options), std::move(continuous), scenario.MakePipeline(),
          std::move(model), MakeOptimizer(optimizer_options),
          scenario.MakeMetric());
      break;
    }
  }

  Status init = deployment->InitialTrain(scenario.GenerateBootstrap(),
                                         scenario.InitialTrainOptions());
  if (!init.ok()) {
    std::fprintf(stderr, "initial training failed: %s\n",
                 init.ToString().c_str());
    std::exit(1);
  }
  auto report = deployment->Run(scenario.GenerateStream());
  if (!report.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  DeploymentReport result = std::move(report).ValueOrDie();
  PrintStageBreakdown(result);
  return result;
}

void PrintCurve(const DeploymentReport& report, size_t points) {
  std::printf("  %10s %12s %12s %12s %14s\n", "chunk", "observations",
              "cum_error", "win_error", "cum_work");
  for (const auto& row : report.SampledCurve(points)) {
    std::printf("  %10lld %12lld %12.5f %12.5f %14lld\n",
                static_cast<long long>(row.chunk_index),
                static_cast<long long>(row.observations),
                row.cumulative_error, row.windowed_error,
                static_cast<long long>(row.cumulative_work));
  }
}

void PrintSummaryRow(const std::string& label,
                     const DeploymentReport& report) {
  std::printf(
      "  %-28s final=%.5f avg=%.5f cost=%8.2fs work=%12lld mu=%.3f\n",
      label.c_str(), report.final_error, report.average_error,
      report.total_seconds, static_cast<long long>(report.total_work),
      report.empirical_mu);
}

void PrintStageBreakdown(const DeploymentReport& report) {
  std::string line = StrFormat("  [%s] stages:", report.strategy.c_str());
  for (size_t i = 0; i < static_cast<size_t>(CostPhase::kNumPhases); ++i) {
    const CostPhase phase = static_cast<CostPhase>(i);
    line += StrFormat(" %s=%.3fs", CostPhaseName(phase),
                      report.cost.SecondsIn(phase));
  }
  line += StrFormat(" total=%.3fs", report.total_seconds);
  std::printf("%s\n", line.c_str());
}

std::string ReportToJson(const std::string& label,
                         const DeploymentReport& report) {
  std::string out = "{";
  out += StrFormat("\"label\":\"%s\",", label.c_str());
  out += StrFormat("\"strategy\":\"%s\",", report.strategy.c_str());
  out += StrFormat("\"metric\":\"%s\",", report.metric_name.c_str());
  out += StrFormat("\"final_error\":%.9g,", report.final_error);
  out += StrFormat("\"average_error\":%.9g,", report.average_error);
  out += StrFormat("\"total_seconds\":%.9g,", report.total_seconds);
  out += StrFormat("\"total_work\":%lld,",
                   static_cast<long long>(report.total_work));
  out += StrFormat("\"empirical_mu\":%.9g,", report.empirical_mu);
  out += StrFormat("\"chunks_processed\":%lld,",
                   static_cast<long long>(report.chunks_processed));
  out += StrFormat("\"proactive_iterations\":%lld,",
                   static_cast<long long>(report.proactive_iterations));
  out += StrFormat("\"retrainings\":%lld,",
                   static_cast<long long>(report.retrainings));
  out += StrFormat("\"drift_events\":%lld,",
                   static_cast<long long>(report.drift_events));
  out += "\"stage_seconds\":{";
  for (size_t i = 0; i < static_cast<size_t>(CostPhase::kNumPhases); ++i) {
    const CostPhase phase = static_cast<CostPhase>(i);
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":%.9g", CostPhaseName(phase),
                     report.cost.SecondsIn(phase));
  }
  out += "},";
  // Examples processed per wall-clock second in each training-path stage
  // (work units are rows, so this is rows/sec; 0 when a stage never ran).
  out += "\"stage_examples_per_second\":{";
  for (size_t i = 0; i < static_cast<size_t>(CostPhase::kNumPhases); ++i) {
    const CostPhase phase = static_cast<CostPhase>(i);
    const double seconds = report.cost.SecondsIn(phase);
    const double rate =
        seconds > 0.0
            ? static_cast<double>(report.cost.WorkIn(phase)) / seconds
            : 0.0;
    if (i > 0) out += ",";
    out += StrFormat("\"%s\":%.9g", CostPhaseName(phase), rate);
  }
  out += "},";
  // Per-run delta of the global metrics registry (counters/histograms; see
  // src/obs/exporters.h for the schema).
  out += "\"metrics\":" + obs::ToJson(report.metrics);
  out += "}";
  return out;
}

void WriteReportsJson(
    const std::string& path,
    const std::vector<std::pair<std::string, const DeploymentReport*>>&
        reports) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    std::exit(1);
  }
  out << "{\"reports\":[";
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) out << ",";
    out << ReportToJson(reports[i].first, *reports[i].second);
  }
  out << "]}\n";
  if (!out.good()) {
    std::fprintf(stderr, "failed writing '%s'\n", path.c_str());
    std::exit(1);
  }
  std::printf("  wrote JSON report: %s\n", path.c_str());
}

}  // namespace bench
}  // namespace cdpipe
