// Table 3 of the paper: hyperparameter grid search during initial training —
// {Adam, RMSProp, AdaDelta} x regularization {1e-2, 1e-3, 1e-4}, evaluated
// on a held-out slice of the initial data.
//
// Expected shape: on URL the configuration differences are visible (Adam
// with 1e-3 wins in the paper); on Taxi the problem is low-dimensional and
// all configurations land within a hair of each other.
//
// Flags: --scenario=url|taxi|both  --scale=1.0  --seed=42

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace cdpipe {
namespace bench {
namespace {

struct GridResult {
  OptimizerKind kind;
  double reg;
  double eval_error;
};

/// Preprocesses the bootstrap chunks once and returns the transformed
/// features (statistics are folded in exactly as the deployment would).
std::vector<FeatureData> Preprocess(const Scenario& scenario,
                                    Pipeline* pipeline) {
  std::vector<FeatureData> out;
  for (const RawChunk& chunk : scenario.GenerateBootstrap()) {
    auto features = pipeline->UpdateAndTransform(chunk);
    if (!features.ok()) {
      std::fprintf(stderr, "preprocess failed: %s\n",
                   features.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(std::move(features).ValueOrDie());
  }
  return out;
}

double TrainAndEvaluate(const Scenario& scenario,
                        const std::vector<FeatureData>& chunks,
                        OptimizerKind kind, double reg) {
  // 80/20 chunk-level split.
  const size_t train_count = chunks.size() * 4 / 5;
  std::vector<const FeatureData*> train;
  for (size_t i = 0; i < train_count; ++i) train.push_back(&chunks[i]);

  LinearModel::Options model_options = scenario.MakeModel()->options();
  model_options.l2_reg = reg;
  LinearModel model(model_options);

  OptimizerOptions optimizer_options = scenario.DefaultOptimizer();
  optimizer_options.kind = kind;
  auto optimizer = MakeOptimizer(optimizer_options);

  BatchTrainer trainer(scenario.InitialTrainOptions());
  Rng rng(scenario.seed());
  auto stats = trainer.Train(train, &model, optimizer.get(), &rng);
  if (!stats.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }

  auto metric = scenario.MakeMetric();
  for (size_t i = train_count; i < chunks.size(); ++i) {
    for (size_t r = 0; r < chunks[i].num_rows(); ++r) {
      metric->Add(model.Predict(chunks[i].features[r]), chunks[i].labels[r]);
    }
  }
  return metric->Value();
}

void RunScenario(const Scenario& scenario, bool extended) {
  std::printf("\n=== Table 3 — %s (%s, lower is better) ===\n",
              scenario.name().c_str(), scenario.metric_label().c_str());
  auto pipeline = scenario.MakePipeline();
  const std::vector<FeatureData> chunks = Preprocess(scenario, pipeline.get());

  // The paper's grid is Adam/RMSProp/AdaDelta; --extended adds the plain
  // SGD and Momentum baselines.
  std::vector<OptimizerKind> kinds = {OptimizerKind::kAdam,
                                      OptimizerKind::kRmsprop,
                                      OptimizerKind::kAdadelta};
  if (extended) {
    kinds.push_back(OptimizerKind::kSgd);
    kinds.push_back(OptimizerKind::kMomentum);
  }
  const double regs[] = {1e-2, 1e-3, 1e-4};

  std::printf("  %-10s %12s %12s %12s\n", "Adaptation", "1e-2", "1e-3",
              "1e-4");
  GridResult best{kinds[0], regs[0], 1e99};
  for (OptimizerKind kind : kinds) {
    std::printf("  %-10s", OptimizerKindName(kind));
    for (double reg : regs) {
      const double error = TrainAndEvaluate(scenario, chunks, kind, reg);
      std::printf(" %12.5f", error);
      if (error < best.eval_error) best = {kind, reg, error};
    }
    std::printf("\n");
  }
  std::printf("  best: %s with reg=%g -> %.5f\n",
              OptimizerKindName(best.kind), best.reg, best.eval_error);
}

}  // namespace
}  // namespace bench
}  // namespace cdpipe

int main(int argc, char** argv) {
  using namespace cdpipe::bench;
  Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string which = flags.GetString("scenario", "both");
  const bool extended = flags.Has("extended");

  std::printf("bench_table3_hyperparams: initial-training grid search\n");
  if (which == "url" || which == "both") {
    RunScenario(UrlScenario(scale, seed), extended);
  }
  if (which == "taxi" || which == "both") {
    RunScenario(TaxiScenario(scale, seed), extended);
  }
  return 0;
}
