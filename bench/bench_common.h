#ifndef CDPIPE_BENCH_BENCH_COMMON_H_
#define CDPIPE_BENCH_BENCH_COMMON_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/continuous_deployment.h"
#include "src/core/deployment.h"
#include "src/core/online_deployment.h"
#include "src/core/periodical_deployment.h"
#include "src/data/taxi_stream.h"
#include "src/data/url_stream.h"

namespace cdpipe {
namespace bench {

/// Tiny --key=value flag parser shared by the experiment binaries.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

/// A reproduction scenario: one of the paper's two dataset/pipeline pairs,
/// scaled down so every figure regenerates in minutes.  `scale` multiplies
/// the stream length (1.0 = default bench scale; the paper's full runs use
/// 12,000+ chunks).
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string name() const = 0;
  virtual std::string metric_label() const = 0;

  virtual std::unique_ptr<Pipeline> MakePipeline() const = 0;
  virtual std::unique_ptr<LinearModel> MakeModel() const = 0;
  virtual std::unique_ptr<Metric> MakeMetric() const = 0;

  /// Default optimizer config (the best from the Table-3 grid).
  virtual OptimizerOptions DefaultOptimizer() const = 0;

  /// Bootstrap (initial training) and deployment streams.
  virtual std::vector<RawChunk> GenerateBootstrap() const = 0;
  virtual std::vector<RawChunk> GenerateStream() const = 0;

  size_t bootstrap_chunks() const { return bootstrap_chunks_; }
  size_t stream_chunks() const { return stream_chunks_; }
  size_t proactive_every_chunks() const { return proactive_every_chunks_; }
  size_t proactive_sample_chunks() const { return proactive_sample_chunks_; }
  size_t retrain_every_chunks() const { return retrain_every_chunks_; }
  uint64_t seed() const { return seed_; }

  BatchTrainer::Options InitialTrainOptions() const;
  BatchTrainer::Options RetrainOptions() const;

 protected:
  size_t bootstrap_chunks_ = 40;
  size_t stream_chunks_ = 480;
  size_t proactive_every_chunks_ = 5;   ///< paper: every 5 min / 5 h
  size_t proactive_sample_chunks_ = 20;
  size_t retrain_every_chunks_ = 80;    ///< paper: every 10 days / monthly
  uint64_t seed_ = 42;
};

/// The URL scenario: drifting sparse binary classification + SVM.
class UrlScenario final : public Scenario {
 public:
  explicit UrlScenario(double scale = 1.0, uint64_t seed = 42);

  std::string name() const override { return "URL"; }
  std::string metric_label() const override { return "misclassification"; }
  std::unique_ptr<Pipeline> MakePipeline() const override;
  std::unique_ptr<LinearModel> MakeModel() const override;
  std::unique_ptr<Metric> MakeMetric() const override;
  OptimizerOptions DefaultOptimizer() const override;
  std::vector<RawChunk> GenerateBootstrap() const override;
  std::vector<RawChunk> GenerateStream() const override;

  UrlPipelineConfig pipeline_config() const { return pipeline_config_; }
  UrlStreamGenerator::Config stream_config() const { return stream_config_; }

 private:
  UrlPipelineConfig pipeline_config_;
  UrlStreamGenerator::Config stream_config_;
};

/// The Taxi scenario: stationary dense regression + linear regression.
class TaxiScenario final : public Scenario {
 public:
  explicit TaxiScenario(double scale = 1.0, uint64_t seed = 42);

  std::string name() const override { return "Taxi"; }
  std::string metric_label() const override { return "RMSLE"; }
  std::unique_ptr<Pipeline> MakePipeline() const override;
  std::unique_ptr<LinearModel> MakeModel() const override;
  std::unique_ptr<Metric> MakeMetric() const override;
  OptimizerOptions DefaultOptimizer() const override;
  std::vector<RawChunk> GenerateBootstrap() const override;
  std::vector<RawChunk> GenerateStream() const override;

  TaxiStreamGenerator::Config stream_config() const { return stream_config_; }

 private:
  TaxiStreamGenerator::Config stream_config_;
};

std::unique_ptr<Scenario> MakeScenario(const std::string& name, double scale,
                                       uint64_t seed);

enum class StrategyKind { kOnline, kPeriodical, kContinuous };
const char* StrategyName(StrategyKind kind);

/// Extra knobs a specific experiment overrides on top of the scenario
/// defaults.
struct RunOverrides {
  SamplerKind sampler = SamplerKind::kTime;
  size_t sampler_window = 0;  ///< 0 = half the stream, set at run time
  size_t max_materialized_chunks = SIZE_MAX;
  /// Two-tier raw storage (both must be set to spill; see ChunkStore).
  size_t memory_budget_bytes = 0;
  std::string spill_dir;
  bool online_statistics = true;
  bool warm_start = true;
  std::function<OptimizerOptions(OptimizerOptions)> tweak_optimizer;
  std::function<LinearModel::Options(LinearModel::Options)> tweak_model;
  std::function<BatchTrainer::Options(BatchTrainer::Options)> tweak_retrain;
};

/// Builds the strategy, runs initial training + the deployment stream, and
/// returns the report.  Aborts on error (benchmark binaries).
DeploymentReport RunDeployment(const Scenario& scenario, StrategyKind kind,
                               const RunOverrides& overrides = {});

/// Pretty-prints a downsampled quality/cost curve.
void PrintCurve(const DeploymentReport& report, size_t points = 12);

/// Prints a one-line summary row: strategy, final error, avg error, cost.
void PrintSummaryRow(const std::string& label,
                     const DeploymentReport& report);

/// Prints the one-line per-phase wall-clock breakdown of a run, e.g.
///   [continuous] preprocessing=1.23s online_training=0.45s ...
void PrintStageBreakdown(const DeploymentReport& report);

/// Serializes a report (summary counters, per-phase cost in seconds and in
/// examples/sec per training stage, and the per-run metrics-registry
/// snapshot from src/obs) as a JSON object.
std::string ReportToJson(const std::string& label,
                         const DeploymentReport& report);

/// Writes `{"reports":[...]}` for a set of labeled reports to `path`.
/// Aborts on I/O failure (benchmark binaries).
void WriteReportsJson(
    const std::string& path,
    const std::vector<std::pair<std::string, const DeploymentReport*>>&
        reports);

}  // namespace bench
}  // namespace cdpipe

#endif  // CDPIPE_BENCH_BENCH_COMMON_H_
