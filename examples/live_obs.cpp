// Live observability: run a continuous deployment with the embedded
// observability server attached and keep serving while it works.
//
//   ./live_obs --port 0 --serve_seconds 5 --port_file /tmp/obs_port
//
// While the deployment replays its stream, poke the plane from another
// terminal:
//
//   curl http://127.0.0.1:$(cat /tmp/obs_port)/metrics    # Prometheus text
//   curl http://127.0.0.1:$(cat /tmp/obs_port)/healthz    # liveness
//   curl http://127.0.0.1:$(cat /tmp/obs_port)/readyz     # watchdog-driven
//   curl "http://127.0.0.1:$(cat /tmp/obs_port)/events?n=20"
//   curl http://127.0.0.1:$(cat /tmp/obs_port)/trace      # Chrome trace
//
// --port 0 binds an ephemeral port; the resolved port is printed on stdout
// and written to --port_file (for scripted smoke tests).  The process exits
// 0 after the deployment finished AND --serve_seconds elapsed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "src/core/continuous_deployment.h"
#include "src/data/url_stream.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/obs_server.h"
#include "src/obs/trace.h"

using namespace cdpipe;

int main(int argc, char** argv) {
  int port = 0;
  double serve_seconds = 5.0;
  const char* port_file = nullptr;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--serve_seconds") == 0) {
      serve_seconds = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--port_file") == 0) {
      port_file = argv[i + 1];
    }
  }

  // Tracing on so /trace has spans to show.
  obs::Tracer::Global().Enable();

  // The observability plane: watchdog polls the global health registry,
  // the server exposes the global metrics/journal/health state.
  obs::Watchdog::Options watchdog_options;
  watchdog_options.stall_deadline_seconds = 5.0;
  obs::Watchdog watchdog(watchdog_options);
  watchdog.Start();

  obs::ObsServer::Options server_options;
  server_options.port = static_cast<uint16_t>(port);
  server_options.watchdog = &watchdog;
  obs::ObsServer server(server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "obs server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("obs server listening on http://127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  if (port_file != nullptr) {
    std::FILE* f = std::fopen(port_file, "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", server.port());
      std::fclose(f);
    }
  }

  // The workload: the quickstart deployment, instrumented end to end.
  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = 1u << 14;
  stream_config.initial_active_features = 1000;
  stream_config.records_per_chunk = 50;
  stream_config.seed = 1;
  UrlStreamGenerator generator(stream_config);
  const std::vector<RawChunk> bootstrap = generator.Generate(20);
  const std::vector<RawChunk> stream = generator.Generate(200);

  UrlPipelineConfig pipeline_config;
  pipeline_config.raw_dim = stream_config.feature_dim;
  pipeline_config.hash_bits = 10;
  std::unique_ptr<Pipeline> pipeline = MakeUrlPipeline(pipeline_config);
  auto model = std::make_unique<LinearModel>(
      MakeUrlModelOptions(pipeline_config));
  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.02});

  Deployment::Options options;
  options.sampler = SamplerKind::kTime;
  options.store.max_materialized_chunks = 100;
  options.seed = 7;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 5;
  continuous.sample_chunks = 10;
  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), std::move(pipeline),
      std::move(model), std::move(optimizer),
      std::make_unique<MisclassificationRate>());

  Status init = deployment.InitialTrain(bootstrap, BatchTrainer::Options{
                                                       .max_epochs = 15,
                                                       .batch_size = 0,
                                                       .tolerance = 1e-4,
                                                   });
  if (!init.ok()) {
    std::fprintf(stderr, "initial training failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }

  const auto serve_until =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int64_t>(serve_seconds * 1000));

  Result<DeploymentReport> report = deployment.Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  std::printf("journal: %llu events appended, %llu dropped\n",
              static_cast<unsigned long long>(
                  obs::EventJournal::Global().TotalAppended()),
              static_cast<unsigned long long>(
                  obs::EventJournal::Global().TotalDropped()));
  std::fflush(stdout);

  // Keep the endpoints up so scripted clients can scrape the finished run.
  while (std::chrono::steady_clock::now() < serve_until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("served %zu requests, ready=%s\n", server.requests_served(),
              watchdog.ready() ? "true" : "false");
  server.Stop();
  watchdog.Stop();
  return 0;
}
