// Drift adaptation example: why proactive training beats pure online
// learning when the distribution shifts.
//
// We build a stream with *abrupt* drift (the ground-truth hyperplane is
// re-randomized mid-stream) and compare online vs continuous deployment
// with the three sampling strategies.  Time-based/window sampling lets the
// continuous platform rebuild the model from post-drift history quickly,
// while uniform sampling keeps replaying stale pre-drift data.
//
//   ./drift_adaptation [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/continuous_deployment.h"
#include "src/core/online_deployment.h"
#include "src/data/url_stream.h"

using namespace cdpipe;

namespace {

UrlStreamGenerator::Config ConfigWithSeed(uint64_t seed, double drift_step) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 14;
  config.initial_active_features = 300;
  config.new_features_per_chunk = 0;
  config.perturbed_weights_per_chunk = 50;
  config.drift_step = drift_step;
  config.nnz_per_record = 12;
  config.records_per_chunk = 80;
  config.margin_threshold = 1.5;
  config.seed = seed;
  return config;
}

/// Stream with an abrupt shift: first half from one generator, second half
/// from a differently seeded generator (disjoint ground truth), with
/// continuous chunk ids.
std::vector<RawChunk> AbruptDriftStream(uint64_t seed, size_t half) {
  UrlStreamGenerator before(ConfigWithSeed(seed, 0.0));
  UrlStreamGenerator after(ConfigWithSeed(seed + 1000, 0.0));
  std::vector<RawChunk> stream = before.Generate(half);
  std::vector<RawChunk> tail = after.Generate(half);
  for (size_t i = 0; i < tail.size(); ++i) {
    tail[i].id = static_cast<ChunkId>(half + i);
    tail[i].event_time_seconds = static_cast<int64_t>((half + i) * 60);
    stream.push_back(std::move(tail[i]));
  }
  return stream;
}

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 14;
  config.hash_bits = 10;
  return config;
}

DeploymentReport Run(std::unique_ptr<Deployment> deployment,
                     const std::vector<RawChunk>& bootstrap,
                     const std::vector<RawChunk>& stream) {
  Status init = deployment->InitialTrain(
      bootstrap, BatchTrainer::Options{.max_epochs = 40, .batch_size = 200,
                                       .tolerance = 1e-4});
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.ToString().c_str());
    std::exit(1);
  }
  auto report = deployment->Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report).ValueOrDie();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::atoll(argv[1]) : 5;
  constexpr size_t kHalf = 120;

  UrlStreamGenerator bootstrap_generator(ConfigWithSeed(seed, 0.0));
  const std::vector<RawChunk> bootstrap_src = bootstrap_generator.Generate(20);
  // Re-id the deployment stream after the bootstrap prefix.
  std::vector<RawChunk> stream = AbruptDriftStream(seed, kHalf);
  for (RawChunk& chunk : stream) {
    chunk.id += static_cast<ChunkId>(bootstrap_src.size());
  }

  const UrlPipelineConfig pipe_config = PipeConfig();
  auto make_model = [&] {
    return std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config));
  };
  auto make_optimizer = [] {
    return MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                          .learning_rate = 0.005});
  };

  std::printf(
      "abrupt drift at chunk %zu: comparing recovery (windowed error after "
      "the shift)\n\n",
      kHalf);

  struct Row {
    std::string label;
    DeploymentReport report;
  };
  std::vector<Row> rows;

  {
    Deployment::Options options;
    options.seed = seed;
    options.eval_window = 1000;
    rows.push_back({"online", Run(std::make_unique<OnlineDeployment>(
                                      std::move(options),
                                      MakeUrlPipeline(pipe_config),
                                      make_model(), make_optimizer(),
                                      std::make_unique<MisclassificationRate>()),
                                  bootstrap_src, stream)});
  }
  for (SamplerKind kind :
       {SamplerKind::kUniform, SamplerKind::kWindow, SamplerKind::kTime}) {
    Deployment::Options options;
    options.seed = seed;
    options.eval_window = 1000;
    options.sampler = kind;
    options.sampler_window = 40;  // short window: adapts fast
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.proactive_every_chunks = 4;
    continuous.sample_chunks = 12;
    rows.push_back(
        {std::string("continuous/") + SamplerKindName(kind),
         Run(std::make_unique<ContinuousDeployment>(
                 std::move(options), std::move(continuous),
                 MakeUrlPipeline(pipe_config), make_model(), make_optimizer(),
                 std::make_unique<MisclassificationRate>()),
             bootstrap_src, stream)});
  }

  std::printf("%-24s %12s %14s %16s\n", "deployment", "final_err",
              "err@pre-drift", "err@post-drift(win)");
  for (const Row& row : rows) {
    const auto& curve = row.report.curve;
    const double pre = curve[kHalf - 1].cumulative_error;
    const double post_windowed = curve.back().windowed_error;
    std::printf("%-24s %12.4f %14.4f %16.4f\n", row.label.c_str(),
                row.report.final_error, pre, post_windowed);
  }
  std::printf(
      "\nreading: all deployments are equal before the shift; after it, the "
      "window/time-biased continuous deployments recover fastest because "
      "proactive training replays mostly post-drift chunks.\n");
  return 0;
}
