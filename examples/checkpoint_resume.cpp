// Checkpoint/resume example: save the full deployed state (pipeline
// statistics + model weights + optimizer adaptation state) mid-deployment,
// restore it into a fresh process-worth of objects, and verify the resumed
// deployment continues bit-identically.
//
// This works because proactive training is plain mini-batch SGD: all
// cross-iteration state is the model and the optimizer (paper §3.3), and
// the checkpoint stores both exactly (hexfloat encoding).
//
//   ./checkpoint_resume [checkpoint-path]

#include <cstdio>
#include <memory>

#include "src/core/pipeline_manager.h"
#include "src/data/url_stream.h"
#include "src/io/checkpoint.h"

using namespace cdpipe;

namespace {

UrlPipelineConfig PipeConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 14;
  config.hash_bits = 10;
  return config;
}

std::unique_ptr<PipelineManager> MakeManager(CostModel* cost) {
  const UrlPipelineConfig config = PipeConfig();
  return std::make_unique<PipelineManager>(
      MakeUrlPipeline(config),
      std::make_unique<LinearModel>(MakeUrlModelOptions(config)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                     .learning_rate = 0.01}),
      cost);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/cdpipe_deployment.ckpt";

  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = 1u << 14;
  stream_config.initial_active_features = 400;
  stream_config.records_per_chunk = 60;
  stream_config.seed = 17;
  UrlStreamGenerator generator(stream_config);

  // Phase 1: run the online path for a while, accumulating pipeline
  // statistics and optimizer state, then checkpoint.
  CostModel cost_a;
  auto manager = MakeManager(&cost_a);
  for (const RawChunk& chunk : generator.Generate(50)) {
    auto features = manager->OnlineStep(chunk, nullptr, /*online_learn=*/true);
    if (!features.ok()) {
      std::fprintf(stderr, "online step failed: %s\n",
                   features.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("deployed state after 50 chunks: %s\n",
              manager->model().ToString().c_str());

  Status save = SaveCheckpointToFile(*manager, path);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", path.c_str());

  // Phase 2: "restart" — build fresh objects with the same structure and
  // restore.
  CostModel cost_b;
  auto resumed = MakeManager(&cost_b);
  Status load = LoadCheckpointFromFile(path, resumed.get());
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("restored state:                 %s\n",
              resumed->model().ToString().c_str());

  // Phase 3: both managers process the same future chunks; they must agree
  // exactly — predictions, features, and post-update weights.
  bool identical = true;
  for (const RawChunk& chunk : generator.Generate(20)) {
    auto a = manager->OnlineStep(chunk, nullptr, true);
    auto b = resumed->OnlineStep(chunk, nullptr, true);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "resume diverged with an error\n");
      return 1;
    }
    if (!(manager->model().weights().values() ==
          resumed->model().weights().values()) ||
        manager->model().bias() != resumed->model().bias()) {
      identical = false;
    }
  }
  std::printf(
      "after 20 more chunks the original and the resumed deployment %s\n",
      identical ? "are bit-identical" : "DIVERGED (bug!)");
  return identical ? 0 : 1;
}
