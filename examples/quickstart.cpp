// Quickstart: deploy a pipeline + model with continuous (proactive)
// training in ~80 lines.
//
// We build a tiny libsvm-style classification stream, assemble the
// preprocessing pipeline (parser -> scaler -> hasher), attach a linear SVM,
// and run the continuous deployment strategy: online learning on every
// arriving chunk plus a proactive mini-batch SGD iteration over a sample of
// history every 5 chunks.
//
//   ./quickstart
//
// Set CDPIPE_TRACE=/tmp/trace.json to record a span trace of the whole run
// (open it in chrome://tracing or https://ui.perfetto.dev).

#include <cstdio>
#include <memory>

#include "src/core/continuous_deployment.h"
#include "src/data/url_stream.h"
#include "src/obs/trace.h"

using namespace cdpipe;

int main() {
  // 1. A synthetic training stream: sparse binary classification with
  //    gradual drift (stand-in for your real feed).
  UrlStreamGenerator::Config stream_config;
  stream_config.feature_dim = 1u << 14;
  stream_config.initial_active_features = 1000;
  stream_config.records_per_chunk = 50;
  stream_config.seed = 1;
  UrlStreamGenerator generator(stream_config);
  const std::vector<RawChunk> bootstrap = generator.Generate(20);
  const std::vector<RawChunk> stream = generator.Generate(200);

  // 2. The preprocessing pipeline.  Every component implements Update
  //    (incremental statistics) and Transform, so the platform can compute
  //    statistics online and re-materialize evicted feature chunks.
  UrlPipelineConfig pipeline_config;
  pipeline_config.raw_dim = stream_config.feature_dim;
  pipeline_config.hash_bits = 10;
  std::unique_ptr<Pipeline> pipeline = MakeUrlPipeline(pipeline_config);
  std::printf("pipeline: %s\n", pipeline->ToString().c_str());

  // 3. Model + optimizer.  The optimizer carries all cross-iteration state,
  //    which is what makes proactive training a plain SGD iteration.
  auto model = std::make_unique<LinearModel>(
      MakeUrlModelOptions(pipeline_config));
  auto optimizer = MakeOptimizer(OptimizerOptions{
      .kind = OptimizerKind::kAdam, .learning_rate = 0.02});

  // 4. Continuous deployment: sample 10 chunks of history (time-biased)
  //    every 5 incoming chunks and run one proactive SGD iteration.
  Deployment::Options options;
  options.sampler = SamplerKind::kTime;
  options.store.max_materialized_chunks = 100;  // bounded feature cache
  options.seed = 7;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 5;
  continuous.sample_chunks = 10;

  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), std::move(pipeline),
      std::move(model), std::move(optimizer),
      std::make_unique<MisclassificationRate>());

  // 5. Initial training (batch gradient descent over the bootstrap data),
  //    then replay the stream: every chunk is evaluated prequentially
  //    (test-then-train) before it updates the model.
  Status init = deployment.InitialTrain(bootstrap, BatchTrainer::Options{
                                                       .max_epochs = 15,
                                                       .batch_size = 0,
                                                       .tolerance = 1e-4,
                                                   });
  if (!init.ok()) {
    std::fprintf(stderr, "initial training failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  Result<DeploymentReport> report = deployment.Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report->Summary().c_str());
  std::printf("cost breakdown: %s\n", report->cost.ToString().c_str());
  std::printf("materialization: %lld hits, %lld misses (mu=%.2f)\n",
              static_cast<long long>(report->storage.SampleHits()),
              static_cast<long long>(report->storage.sample_misses),
              report->empirical_mu);
  if (obs::Tracer::Global().enabled()) {
    std::printf("trace: %zu spans buffered, dumping to %s at exit "
                "(open in chrome://tracing)\n",
                obs::Tracer::Global().NumBufferedEvents(),
                obs::Tracer::Global().dump_path().c_str());
  }
  return 0;
}
