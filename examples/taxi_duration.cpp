// Taxi trip-duration example (the paper's second workload): predict NYC
// taxi trip durations with a linear regression over extracted features
// (haversine distance, bearing, hour, weekday), deployed continuously.
//
// Demonstrates the table-oriented pipeline path (CSV parser -> feature
// extractor -> anomaly filter -> scaler -> assembler), RMSLE evaluation,
// and inspecting a deployed model's predictions.
//
//   ./taxi_duration [chunks] [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/continuous_deployment.h"
#include "src/data/taxi_stream.h"

using namespace cdpipe;

int main(int argc, char** argv) {
  const size_t stream_chunks = argc > 1 ? std::atoi(argv[1]) : 300;
  const uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 11;

  TaxiStreamGenerator::Config stream_config;
  stream_config.records_per_chunk = 60;
  stream_config.seed = seed;
  TaxiStreamGenerator generator(stream_config);
  const std::vector<RawChunk> bootstrap = generator.Generate(48);
  const std::vector<RawChunk> stream = generator.Generate(stream_chunks);
  std::printf("Taxi duration prediction: %zu bootstrap + %zu stream chunks "
              "(1 hour of trips per chunk)\n",
              bootstrap.size(), stream.size());

  Deployment::Options options;
  options.seed = seed;
  options.sampler = SamplerKind::kUniform;  // stationary data: any works
  options.store.max_materialized_chunks = 200;
  ContinuousDeployment::ContinuousOptions continuous;
  continuous.proactive_every_chunks = 5;  // "every 5 hours"
  continuous.sample_chunks = 20;

  ContinuousDeployment deployment(
      std::move(options), std::move(continuous), MakeTaxiPipeline(),
      std::make_unique<LinearModel>(MakeTaxiModelOptions(1e-4)),
      MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kRmsprop,
                                     .learning_rate = 0.01}),
      std::make_unique<Rmse>());  // RMSE on log1p(duration) == RMSLE

  Status init = deployment.InitialTrain(
      bootstrap, BatchTrainer::Options{.max_epochs = 30, .batch_size = 0,
                                       .tolerance = 1e-5});
  if (!init.ok()) {
    std::fprintf(stderr, "initial training failed: %s\n",
                 init.ToString().c_str());
    return 1;
  }
  auto report = deployment.Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("deployment finished: RMSLE=%.4f over %lld predictions\n",
              report->final_error,
              static_cast<long long>(report->curve.back().observations));
  std::printf("cost: %s\n", report->cost.ToString().c_str());

  // Use the deployed pipeline + model to answer a few prediction queries —
  // the same Transform path guarantees train/serve consistency.
  TaxiStreamGenerator query_generator(stream_config);
  RawChunk queries = query_generator.NextChunk();
  queries.records.resize(5);
  const Deployment& deployed = deployment;
  auto features =
      deployed.pipeline_manager().TransformForInference(queries);
  if (!features.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 features.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsample predictions (deployed model):\n");
  for (size_t i = 0; i < features->num_rows(); ++i) {
    const double predicted_log =
        deployed.pipeline_manager().model().Predict(features->features[i]);
    std::printf("  trip %zu: predicted %.0fs, actual %.0fs\n", i,
                std::expm1(predicted_log), std::expm1(features->labels[i]));
  }
  return 0;
}
