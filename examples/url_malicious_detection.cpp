// URL reputation example (the paper's first workload): classify URLs as
// malicious or legitimate from high-dimensional sparse features, keeping
// the deployed SVM fresh as the feature distribution drifts.
//
// The example compares all three deployment strategies side by side and
// prints the quality/cost numbers the paper's Figure 4 is built from.
//
//   ./url_malicious_detection [chunks] [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/core/continuous_deployment.h"
#include "src/core/online_deployment.h"
#include "src/core/periodical_deployment.h"
#include "src/data/url_stream.h"

using namespace cdpipe;

namespace {

UrlStreamGenerator::Config StreamConfig(uint64_t seed) {
  UrlStreamGenerator::Config config;
  config.feature_dim = 1u << 15;
  config.initial_active_features = 400;
  config.new_features_per_chunk = 2;   // new URL features appear daily
  config.perturbed_weights_per_chunk = 40;  // gradual concept drift
  config.directional_drift_step = 0.002;    // systematic concept drift
  config.nnz_per_record = 15;
  config.records_per_chunk = 100;
  config.margin_threshold = 1.5;
  config.seed = seed;
  return config;
}

UrlPipelineConfig PipelineConfig() {
  UrlPipelineConfig config;
  config.raw_dim = 1u << 15;
  config.hash_bits = 11;
  config.l2_reg = 1e-3;  // Table 3's winner
  return config;
}

struct StrategyResult {
  std::string label;
  DeploymentReport report;
};

template <typename MakeDeployment>
StrategyResult RunOne(const std::string& label,
                      const std::vector<RawChunk>& bootstrap,
                      const std::vector<RawChunk>& stream,
                      MakeDeployment&& make) {
  std::unique_ptr<Deployment> deployment = make();
  Status init = deployment->InitialTrain(
      bootstrap,
      BatchTrainer::Options{.max_epochs = 40, .batch_size = 200,
                            .tolerance = 1e-4});
  if (!init.ok()) {
    std::fprintf(stderr, "[%s] initial training failed: %s\n", label.c_str(),
                 init.ToString().c_str());
    std::exit(1);
  }
  auto report = deployment->Run(stream);
  if (!report.ok()) {
    std::fprintf(stderr, "[%s] deployment failed: %s\n", label.c_str(),
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return {label, std::move(report).ValueOrDie()};
}

}  // namespace

int main(int argc, char** argv) {
  const size_t stream_chunks = argc > 1 ? std::atoi(argv[1]) : 300;
  const uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 42;

  UrlStreamGenerator generator(StreamConfig(seed));
  const std::vector<RawChunk> bootstrap = generator.Generate(30);
  const std::vector<RawChunk> stream = generator.Generate(stream_chunks);
  std::printf(
      "URL malicious-URL detection: %zu bootstrap chunks, %zu deployment "
      "chunks, %zu records each\n",
      bootstrap.size(), stream.size(), stream[0].records.size());

  const UrlPipelineConfig pipe_config = PipelineConfig();
  auto make_model = [&] {
    return std::make_unique<LinearModel>(MakeUrlModelOptions(pipe_config));
  };
  auto make_optimizer = [] {
    return MakeOptimizer(OptimizerOptions{.kind = OptimizerKind::kAdam,
                                          .learning_rate = 0.002});
  };

  std::vector<StrategyResult> results;
  results.push_back(RunOne("online", bootstrap, stream, [&] {
    Deployment::Options options;
    options.seed = seed;
    return std::make_unique<OnlineDeployment>(
        std::move(options), MakeUrlPipeline(pipe_config), make_model(),
        make_optimizer(), std::make_unique<MisclassificationRate>());
  }));
  results.push_back(RunOne("periodical", bootstrap, stream, [&] {
    Deployment::Options options;
    options.seed = seed;
    options.store.max_materialized_chunks = 0;  // classic platform: no cache
    PeriodicalDeployment::PeriodicalOptions periodical;
    periodical.retrain_every_chunks = 60;  // "every 10 days"
    periodical.retrain = BatchTrainer::Options{.max_epochs = 12,
                                               .batch_size = 500,
                                               .tolerance = 1e-3};
    return std::make_unique<PeriodicalDeployment>(
        std::move(options), std::move(periodical),
        MakeUrlPipeline(pipe_config), make_model(), make_optimizer(),
        std::make_unique<MisclassificationRate>());
  }));
  results.push_back(RunOne("continuous", bootstrap, stream, [&] {
    Deployment::Options options;
    options.seed = seed;
    options.sampler = SamplerKind::kTime;  // drift => favor recent data
    ContinuousDeployment::ContinuousOptions continuous;
    continuous.proactive_every_chunks = 5;  // "every 5 minutes"
    continuous.sample_chunks = 15;
    return std::make_unique<ContinuousDeployment>(
        std::move(options), std::move(continuous),
        MakeUrlPipeline(pipe_config), make_model(), make_optimizer(),
        std::make_unique<MisclassificationRate>());
  }));

  std::printf("\n%-12s %16s %14s %14s %12s\n", "strategy", "misclassification",
              "cost(s)", "work(rows)", "updates");
  for (const StrategyResult& result : results) {
    std::printf("%-12s %16.5f %14.2f %14lld %12lld\n", result.label.c_str(),
                result.report.final_error, result.report.total_seconds,
                static_cast<long long>(result.report.total_work),
                static_cast<long long>(result.report.proactive_iterations +
                                       result.report.retrainings));
  }
  std::printf(
      "\ncontinuous vs periodical: %.2fx less work, quality delta %+.5f\n",
      static_cast<double>(results[1].report.total_work) /
          static_cast<double>(results[2].report.total_work),
      results[1].report.final_error - results[2].report.final_error);
  return 0;
}
