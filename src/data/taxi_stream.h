#ifndef CDPIPE_DATA_TAXI_STREAM_H_
#define CDPIPE_DATA_TAXI_STREAM_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/dataframe/chunk.h"
#include "src/ml/linear_model.h"
#include "src/pipeline/pipeline.h"

namespace cdpipe {

/// Synthetic stand-in for the NYC taxi trip dataset: CSV records
///
///   pickup_datetime,dropoff_datetime,pickup_lon,pickup_lat,
///   dropoff_lon,dropoff_lat,passenger_count
///
/// Trips start at Gaussian-scattered Manhattan-like coordinates; the true
/// duration is distance / speed, where speed follows the daily rush-hour
/// cycle and a weekday/weekend split, times log-normal noise.  The process
/// is **stationary** over the whole stream (matching the paper's
/// observation that the Taxi distribution does not drift, §5.3).  A small
/// fraction of trips are anomalies of exactly the three kinds the paper's
/// anomaly detector removes: zero distance, duration > 22h, duration < 10s.
class TaxiStreamGenerator {
 public:
  struct Config {
    size_t records_per_chunk = 200;
    int64_t start_time_seconds = 1420070400;  ///< 2015-01-01 00:00:00 UTC
    int64_t chunk_period_seconds = 3600;      ///< paper: 1-hour chunks
    double anomaly_prob = 0.01;
    double noise_sigma = 0.25;  ///< log-normal duration noise
    uint64_t seed = 11;
  };

  explicit TaxiStreamGenerator(Config config);

  RawChunk NextChunk();
  std::vector<RawChunk> Generate(size_t n);

  const Config& config() const { return config_; }

  /// Noise-free expected duration (seconds) for a trip — exposed so tests
  /// can check the generator against the pipeline's feature extraction.
  static double ExpectedDurationSeconds(double distance_km, int hour_of_day,
                                        bool weekend);

 private:
  Config config_;
  Rng rng_;
  ChunkId next_id_ = 0;
  int64_t next_time_ = 0;
};

/// Builds the Taxi preprocessing pipeline (paper §5.1): csv input parser,
/// taxi feature extractor (duration, haversine, bearing, hour, weekday),
/// anomaly filter, standard scaler, vector assembler.  The model regresses
/// log1p(duration) (the RMSLE target).
std::unique_ptr<Pipeline> MakeTaxiPipeline();

/// The schema of the raw taxi CSV records.
std::shared_ptr<const Schema> TaxiRawSchema();

/// Model options matching the Taxi pipeline (least-squares regression).
LinearModel::Options MakeTaxiModelOptions(double l2_reg = 1e-4);

}  // namespace cdpipe

#endif  // CDPIPE_DATA_TAXI_STREAM_H_
