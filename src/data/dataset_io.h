#ifndef CDPIPE_DATA_DATASET_IO_H_
#define CDPIPE_DATA_DATASET_IO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"

namespace cdpipe {

/// Splits a flat record stream into timestamped chunks of
/// `records_per_chunk` rows (the data manager's discretization step, done
/// eagerly for offline replay).  The final chunk may be smaller.  Ids start
/// at `first_id`; event times advance by `period_seconds` per chunk.
std::vector<RawChunk> DiscretizeRecords(std::vector<std::string> records,
                                        size_t records_per_chunk,
                                        int64_t start_time_seconds,
                                        int64_t period_seconds,
                                        ChunkId first_id = 0);

/// Writes records one per line.
Status SaveRecords(const std::string& path,
                   const std::vector<std::string>& records);

/// Reads records one per line (empty lines skipped).
Result<std::vector<std::string>> LoadRecords(const std::string& path);

/// Flattens chunks back into a record stream (inverse of discretization).
std::vector<std::string> FlattenChunks(const std::vector<RawChunk>& chunks);

}  // namespace cdpipe

#endif  // CDPIPE_DATA_DATASET_IO_H_
