#include "src/data/traffic_shape.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace cdpipe {

const char* TrafficShapeName(TrafficShape shape) {
  switch (shape) {
    case TrafficShape::kUniform:
      return "uniform";
    case TrafficShape::kFlashCrowd:
      return "flash_crowd";
    case TrafficShape::kSustainedOverload:
      return "sustained_overload";
    case TrafficShape::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

std::vector<int64_t> ShapedArrivalTimes(const TrafficShapeConfig& config,
                                        size_t n) {
  CDPIPE_CHECK_GT(config.base_period_seconds, 0.0);
  CDPIPE_CHECK(config.jitter_fraction >= 0.0 && config.jitter_fraction < 1.0);
  Rng rng(config.seed);
  std::vector<int64_t> out;
  out.reserve(n);
  double t = config.start_seconds;
  int64_t previous = 0;
  for (size_t i = 0; i < n; ++i) {
    // Round, then clamp non-decreasing: an aggressive burst can compress
    // gaps below one second and rounding must never reorder arrivals.
    int64_t arrival = static_cast<int64_t>(std::llround(t));
    if (i > 0) arrival = std::max(arrival, previous);
    out.push_back(arrival);
    previous = arrival;

    double gap = config.base_period_seconds;
    switch (config.shape) {
      case TrafficShape::kUniform:
        break;
      case TrafficShape::kFlashCrowd: {
        CDPIPE_CHECK_GT(config.burst_every, 0u);
        CDPIPE_CHECK_GT(config.burst_factor, 0.0);
        const size_t position = i % config.burst_every;
        if (position < config.burst_length) gap /= config.burst_factor;
        break;
      }
      case TrafficShape::kSustainedOverload:
        CDPIPE_CHECK_GT(config.overload_factor, 0.0);
        gap /= config.overload_factor;
        break;
      case TrafficShape::kDiurnal: {
        CDPIPE_CHECK_GT(config.diurnal_period_chunks, 0u);
        // Rate multiplier swings over [1, 1 + amplitude]; the gap is its
        // reciprocal.  Phase starts at the trough so every run begins calm.
        const double phase = 2.0 * M_PI * static_cast<double>(i) /
                             static_cast<double>(config.diurnal_period_chunks);
        const double rate = 1.0 + config.diurnal_amplitude * 0.5 *
                                      (1.0 - std::cos(phase));
        gap /= rate;
        break;
      }
    }
    if (config.jitter_fraction > 0.0) {
      gap *= rng.NextUniform(1.0 - config.jitter_fraction,
                             1.0 + config.jitter_fraction);
    }
    t += std::max(gap, 0.0);
  }
  return out;
}

void ApplyTrafficShape(const TrafficShapeConfig& config,
                       std::vector<RawChunk>* stream) {
  CDPIPE_CHECK(stream != nullptr);
  const std::vector<int64_t> arrivals =
      ShapedArrivalTimes(config, stream->size());
  for (size_t i = 0; i < stream->size(); ++i) {
    (*stream)[i].event_time_seconds = arrivals[i];
  }
}

}  // namespace cdpipe
