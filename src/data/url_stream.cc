#include "src/data/url_stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/testing/fault_injector.h"
#include "src/pipeline/feature_hasher.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/missing_value_imputer.h"
#include "src/pipeline/standard_scaler.h"

namespace cdpipe {

UrlStreamGenerator::UrlStreamGenerator(Config config)
    : config_(config), rng_(config.seed),
      next_time_(config.start_time_seconds) {
  CDPIPE_CHECK_GT(config_.initial_active_features, 0u);
  CDPIPE_CHECK_LE(config_.initial_active_features, config_.feature_dim);
  CDPIPE_CHECK_GT(config_.nnz_per_record, 0u);
  active_.reserve(config_.initial_active_features);
  active_weights_.reserve(config_.initial_active_features);
  for (uint32_t i = 0; i < config_.initial_active_features; ++i) {
    ActivateFeature();
  }
}

void UrlStreamGenerator::ActivateFeature() {
  if (next_feature_ >= config_.feature_dim) return;  // space exhausted
  active_.push_back(next_feature_++);
  // Most features are weak; a few are strongly predictive (heavy-tailed
  // weights make the classification problem realistic).
  double w = rng_.NextGaussian(0.0, 0.5);
  if (rng_.NextBernoulli(0.05)) w *= 6.0;
  active_weights_.push_back(w);
  drift_direction_.push_back(rng_.NextGaussian());
}

RawChunk UrlStreamGenerator::NextChunk() {
  // --- advance the drift process ---
  for (uint32_t i = 0; i < config_.new_features_per_chunk; ++i) {
    ActivateFeature();
  }
  for (uint32_t i = 0; i < config_.perturbed_weights_per_chunk; ++i) {
    const size_t j = static_cast<size_t>(rng_.NextBounded(active_.size()));
    active_weights_[j] += rng_.NextGaussian(0.0, config_.drift_step);
  }
  if (config_.directional_drift_step != 0.0) {
    for (size_t j = 0; j < active_weights_.size(); ++j) {
      active_weights_[j] += config_.directional_drift_step * drift_direction_[j];
    }
  }

  RawChunk chunk;
  chunk.id = next_id_++;
  chunk.event_time_seconds = next_time_;
  next_time_ += config_.chunk_period_seconds;
  chunk.records.reserve(config_.records_per_chunk);

  // Short-read fault: deliver only half the chunk's records, as if the
  // upstream reader lost its connection mid-chunk.
  size_t records_to_emit = config_.records_per_chunk;
  if (CDPIPE_FAULT_TRIGGERED("url_stream.short_read")) {
    records_to_emit /= 2;
  }

  for (size_t r = 0; r < records_to_emit; ++r) {
    double score = 0.0;
    std::vector<std::pair<uint32_t, double>> entries;
    // Rejection-sample rows with a clear margin (see Config).
    for (int attempt = 0; attempt < 16; ++attempt) {
      // Draw nnz distinct active feature positions.
      const std::vector<size_t> picks = rng_.SampleWithoutReplacement(
          active_.size(), config_.nnz_per_record);
      score = bias_;
      entries.clear();
      entries.reserve(picks.size());
      for (size_t j : picks) {
        // Binary-ish sparse values with mild magnitude variation, as in
        // bag-of-tokens URL features.
        const double value =
            rng_.NextBernoulli(0.7)
                ? 1.0
                : std::abs(rng_.NextGaussian(0.0, 1.0)) + 0.1;
        score += active_weights_[j] * value;
        entries.emplace_back(active_[j], value);
      }
      if (std::abs(score) >= config_.margin_threshold) break;
    }
    double label = score >= 0.0 ? 1.0 : -1.0;
    if (rng_.NextBernoulli(config_.label_noise)) label = -label;

    std::string line = label > 0 ? "+1" : "-1";
    std::sort(entries.begin(), entries.end());
    for (const auto& [index, value] : entries) {
      if (rng_.NextBernoulli(config_.missing_prob)) {
        line += StrFormat(" %u:nan", index);
      } else {
        line += StrFormat(" %u:%.4f", index, value);
      }
    }
    chunk.records.push_back(std::move(line));
  }
  return chunk;
}

std::vector<RawChunk> UrlStreamGenerator::Generate(size_t n) {
  std::vector<RawChunk> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextChunk());
  return out;
}

std::unique_ptr<Pipeline> MakeUrlPipeline(const UrlPipelineConfig& config) {
  auto pipeline = std::make_unique<Pipeline>();
  InputParser::Options parser;
  parser.format = InputParser::Format::kLibSvm;
  parser.feature_dim = config.raw_dim;
  parser.binarize_labels = true;
  CDPIPE_CHECK(pipeline->AddComponent(
                           std::make_unique<InputParser>(parser))
                   .ok());
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<MissingValueImputer>()).ok());
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<StandardScaler>()).ok());
  FeatureHasher::Options hasher;
  hasher.bits = config.hash_bits;
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<FeatureHasher>(hasher)).ok());
  return pipeline;
}

LinearModel::Options MakeUrlModelOptions(const UrlPipelineConfig& config) {
  LinearModel::Options options;
  options.loss = LossKind::kHinge;
  options.l2_reg = config.l2_reg;
  options.fit_bias = true;
  options.initial_dim = 1u << config.hash_bits;
  return options;
}

}  // namespace cdpipe
