#ifndef CDPIPE_DATA_URL_STREAM_H_
#define CDPIPE_DATA_URL_STREAM_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/dataframe/chunk.h"
#include "src/ml/linear_model.h"
#include "src/pipeline/pipeline.h"

namespace cdpipe {

/// Synthetic stand-in for the URL reputation dataset (Ma et al. 2009) used
/// by the paper: a high-dimensional, sparse, binary-classification stream
/// whose distribution drifts gradually.
///
/// Ground truth is a sparse hyperplane over `feature_dim` raw features.
/// Drift has the two ingredients the real URL data is known for (§5.3):
///   - the weights of existing features random-walk slowly, and
///   - *new* features activate over time (the real dataset grows from ~1.8M
///     to ~3.2M features over 121 days).
/// Records are libsvm-formatted lines `"<±1> <idx>:<val> ..."`; a small
/// fraction of values is replaced by `nan` to exercise the imputer.
class UrlStreamGenerator {
 public:
  struct Config {
    uint32_t feature_dim = 1u << 20;       ///< raw sparse dimensionality
    uint32_t initial_active_features = 20000;
    /// New features activated per chunk (gradual drift ingredient 2).
    uint32_t new_features_per_chunk = 2;
    /// Active weights perturbed per chunk (gradual drift ingredient 1).
    uint32_t perturbed_weights_per_chunk = 50;
    double drift_step = 0.02;              ///< random-walk step size
    /// Systematic drift: every chunk, every active weight moves by this
    /// step along a persistent per-feature direction, so the ground-truth
    /// hyperplane rotates steadily and *old chunks become systematically
    /// mislabeled* with respect to the current concept — the regime in
    /// which recency-biased sampling pays off (§5.3).  0 disables it.
    double directional_drift_step = 0.0;
    size_t nnz_per_record = 40;
    size_t records_per_chunk = 100;
    double label_noise = 0.03;             ///< flip probability
    double missing_prob = 0.01;            ///< value -> nan probability
    /// Rows whose |ground-truth score| falls below this margin are
    /// resampled (up to a bounded number of retries).  The real URL data is
    /// highly separable (the paper's SVM reaches ~2-3% error); without a
    /// margin, a random hyperplane puts most rows near the boundary and the
    /// achievable error saturates far above the label noise.
    double margin_threshold = 1.0;
    int64_t start_time_seconds = 0;
    int64_t chunk_period_seconds = 60;     ///< paper: 1-minute chunks
    uint64_t seed = 7;
  };

  explicit UrlStreamGenerator(Config config);

  /// Produces the next chunk and advances the drift process.
  RawChunk NextChunk();

  /// Convenience: the next `n` chunks.
  std::vector<RawChunk> Generate(size_t n);

  const Config& config() const { return config_; }
  size_t num_active_features() const { return active_.size(); }

 private:
  void ActivateFeature();

  Config config_;
  Rng rng_;
  std::vector<uint32_t> active_;        ///< currently active feature ids
  std::vector<double> active_weights_;  ///< parallel ground-truth weights
  std::vector<double> drift_direction_; ///< persistent per-feature drift
  double bias_ = 0.0;
  ChunkId next_id_ = 0;
  int64_t next_time_ = 0;
  uint32_t next_feature_ = 0;  ///< next raw feature id to activate
};

/// Configuration of the URL pipeline (paper §5.1: input parser, missing
/// value imputer, standard scaler, feature hasher, SVM).
struct UrlPipelineConfig {
  uint32_t raw_dim = 1u << 20;
  uint32_t hash_bits = 18;
  double l2_reg = 1e-3;
};

/// Builds the URL preprocessing pipeline.
std::unique_ptr<Pipeline> MakeUrlPipeline(const UrlPipelineConfig& config);

/// Model options matching the URL pipeline (linear SVM).
LinearModel::Options MakeUrlModelOptions(const UrlPipelineConfig& config);

}  // namespace cdpipe

#endif  // CDPIPE_DATA_URL_STREAM_H_
