#ifndef CDPIPE_DATA_TRAFFIC_SHAPE_H_
#define CDPIPE_DATA_TRAFFIC_SHAPE_H_

#include <cstdint>
#include <vector>

#include "src/dataframe/chunk.h"

namespace cdpipe {

/// Deterministic arrival-time shapes for overload stress scenarios.  A
/// shaper rewrites the `event_time_seconds` of an already-generated stream —
/// the chunk *contents* (and therefore the learning problem) are untouched;
/// only the arrival process the admission controller sees changes.  All
/// shapes are pure functions of (config, chunk index) plus an explicitly
/// seeded jitter RNG, so a shaped stream is bit-identical across runs and
/// thread counts.
enum class TrafficShape : uint8_t {
  /// Constant inter-arrival gap (`base_period_seconds`) — the fault-free
  /// control: with a service rate at or above the arrival rate the ingest
  /// queue never fills and RunShaped reproduces Run exactly.
  kUniform = 0,
  /// Periodic flash crowds: every `burst_every` chunks, the first
  /// `burst_length` arrive `burst_factor`× faster than base, then the gap
  /// relaxes back — the queue spikes and drains repeatedly.
  kFlashCrowd,
  /// Sustained overload: every gap is `base / overload_factor`, so with
  /// `overload_factor` above the service headroom the backlog only grows.
  kSustainedOverload,
  /// Diurnal curve: the arrival rate swings sinusoidally between 1× and
  /// `(1 + diurnal_amplitude)`× base with period `diurnal_period_chunks`,
  /// like a day/night load cycle — peaks overload, troughs recover.
  kDiurnal,
};

const char* TrafficShapeName(TrafficShape shape);

struct TrafficShapeConfig {
  TrafficShape shape = TrafficShape::kUniform;
  /// Nominal inter-arrival gap in event seconds (the 1× rate).
  double base_period_seconds = 60.0;
  double start_seconds = 0.0;

  // kFlashCrowd
  size_t burst_every = 8;    ///< burst period in chunks
  size_t burst_length = 4;   ///< chunks per burst
  double burst_factor = 8.0; ///< in-burst arrival speed-up

  // kSustainedOverload
  double overload_factor = 2.0;

  // kDiurnal
  double diurnal_amplitude = 3.0;     ///< peak rate = (1 + amplitude)× base
  size_t diurnal_period_chunks = 12;  ///< full day length in chunks

  /// Seeded multiplicative jitter on every gap, uniform in
  /// [1 - jitter_fraction, 1 + jitter_fraction).  0 = strictly periodic.
  double jitter_fraction = 0.0;
  uint64_t seed = 17;
};

/// The shaped arrival times (event seconds, non-decreasing) for a stream of
/// `n` chunks.  Exposed separately so tests can assert on the arrival
/// process without generating chunk payloads.
std::vector<int64_t> ShapedArrivalTimes(const TrafficShapeConfig& config,
                                        size_t n);

/// Rewrites `(*stream)[i].event_time_seconds` to the shaped arrival times.
void ApplyTrafficShape(const TrafficShapeConfig& config,
                       std::vector<RawChunk>* stream);

}  // namespace cdpipe

#endif  // CDPIPE_DATA_TRAFFIC_SHAPE_H_
