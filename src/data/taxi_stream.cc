#include "src/data/taxi_stream.h"

#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/testing/fault_injector.h"
#include "src/pipeline/anomaly_filter.h"
#include "src/pipeline/input_parser.h"
#include "src/pipeline/standard_scaler.h"
#include "src/pipeline/taxi_feature_extractor.h"
#include "src/pipeline/vector_assembler.h"

namespace cdpipe {
namespace {

// Manhattan-ish center and spread for trip endpoints.
constexpr double kCenterLat = 40.75;
constexpr double kCenterLon = -73.97;
constexpr double kCoordSigma = 0.035;

// Average speed (km/h) by hour of day on weekdays; weekends are uniformly
// faster.  The true model the linear pipeline has to approximate.
constexpr double kWeekdaySpeedKmh[24] = {
    30, 32, 33, 34, 33, 30, 24, 17, 13, 14, 16, 17,
    16, 16, 15, 14, 12, 11, 13, 16, 20, 23, 26, 28};
constexpr double kWeekendSpeedup = 1.25;
constexpr double kBaseOverheadSeconds = 90.0;

}  // namespace

TaxiStreamGenerator::TaxiStreamGenerator(Config config)
    : config_(config), rng_(config.seed),
      next_time_(config.start_time_seconds) {
  CDPIPE_CHECK_GT(config_.records_per_chunk, 0u);
}

double TaxiStreamGenerator::ExpectedDurationSeconds(double distance_km,
                                                    int hour_of_day,
                                                    bool weekend) {
  double speed = kWeekdaySpeedKmh[hour_of_day % 24];
  if (weekend) speed *= kWeekendSpeedup;
  return kBaseOverheadSeconds + distance_km / speed * 3600.0;
}

RawChunk TaxiStreamGenerator::NextChunk() {
  RawChunk chunk;
  chunk.id = next_id_++;
  chunk.event_time_seconds = next_time_;

  // Short-read fault: the upstream feed delivers only half a chunk (a
  // reader cut off mid-window).  The generator's Rng still advances per
  // produced record, exactly like a truncated file.
  size_t records_to_emit = config_.records_per_chunk;
  if (CDPIPE_FAULT_TRIGGERED("taxi_stream.short_read")) {
    records_to_emit /= 2;
  }

  for (size_t r = 0; r < records_to_emit; ++r) {
    const int64_t pickup =
        next_time_ + rng_.NextInt(0, config_.chunk_period_seconds - 1);
    double plat = rng_.NextGaussian(kCenterLat, kCoordSigma);
    double plon = rng_.NextGaussian(kCenterLon, kCoordSigma);
    double dlat = rng_.NextGaussian(kCenterLat, kCoordSigma);
    double dlon = rng_.NextGaussian(kCenterLon, kCoordSigma);
    const int64_t passengers = rng_.NextInt(1, 6);

    int64_t duration = 0;
    if (rng_.NextBernoulli(config_.anomaly_prob)) {
      // One of the three anomaly kinds the pipeline filters (§5.1).
      switch (rng_.NextBounded(3)) {
        case 0:  // the car never moved
          dlat = plat;
          dlon = plon;
          duration = rng_.NextInt(60, 600);
          break;
        case 1:  // implausibly long trip (> 22 hours)
          duration = rng_.NextInt(23 * 3600, 48 * 3600);
          break;
        default:  // implausibly short trip (< 10 seconds)
          duration = rng_.NextInt(0, 9);
          break;
      }
    } else {
      const double distance = HaversineKm(plat, plon, dlat, dlon);
      const int hour = static_cast<int>((pickup % 86400) / 3600);
      const int64_t days = pickup / 86400;
      const int weekday = static_cast<int>(((days % 7) + 7 + 3) % 7);
      const double expected =
          ExpectedDurationSeconds(distance, hour, weekday >= 5);
      const double noisy =
          expected * std::exp(rng_.NextGaussian(0.0, config_.noise_sigma));
      duration = std::max<int64_t>(11, static_cast<int64_t>(noisy));
    }

    chunk.records.push_back(StrFormat(
        "%s,%s,%.6f,%.6f,%.6f,%.6f,%lld", FormatDateTime(pickup).c_str(),
        FormatDateTime(pickup + duration).c_str(), plon, plat, dlon, dlat,
        static_cast<long long>(passengers)));
  }
  next_time_ += config_.chunk_period_seconds;
  return chunk;
}

std::vector<RawChunk> TaxiStreamGenerator::Generate(size_t n) {
  std::vector<RawChunk> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(NextChunk());
  return out;
}

std::shared_ptr<const Schema> TaxiRawSchema() {
  return std::move(Schema::Make({
                       Field{"pickup_datetime", ValueType::kTimestamp},
                       Field{"dropoff_datetime", ValueType::kTimestamp},
                       Field{"pickup_lon", ValueType::kDouble},
                       Field{"pickup_lat", ValueType::kDouble},
                       Field{"dropoff_lon", ValueType::kDouble},
                       Field{"dropoff_lat", ValueType::kDouble},
                       Field{"passenger_count", ValueType::kInt64},
                   }))
      .ValueOrDie();
}

std::unique_ptr<Pipeline> MakeTaxiPipeline() {
  auto pipeline = std::make_unique<Pipeline>();

  InputParser::Options parser;
  parser.format = InputParser::Format::kCsv;
  parser.csv_schema = TaxiRawSchema();
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<InputParser>(parser)).ok());

  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<TaxiFeatureExtractor>()).ok());

  // Trips longer than 22 hours, shorter than 10 seconds, or with zero
  // distance are anomalies (§5.1).  Declarative rules (rather than a custom
  // predicate) keep the filter eligible for pipeline fusion.
  std::vector<AnomalyFilter::Rule> sanity_rules;
  sanity_rules.push_back(AnomalyFilter::Rule{"duration_s", 10.0, 22.0 * 3600.0,
                                             /*min_exclusive=*/false,
                                             /*max_exclusive=*/false});
  AnomalyFilter::Rule positive_distance;
  positive_distance.column = "haversine_km";
  positive_distance.min = 0.0;
  positive_distance.min_exclusive = true;
  sanity_rules.push_back(positive_distance);
  CDPIPE_CHECK(pipeline
                   ->AddComponent(std::make_unique<AnomalyFilter>(
                       "taxi-trip-sanity", std::move(sanity_rules)))
                   .ok());

  StandardScaler::Options scaler;
  scaler.columns = {"pickup_lon",     "pickup_lat",  "dropoff_lon",
                    "dropoff_lat",    "passenger_count", "haversine_km",
                    "bearing",        "hour_of_day", "hour_sin",
                    "hour_cos",       "day_of_week"};
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<StandardScaler>(scaler)).ok());

  VectorAssembler::Options assembler;
  assembler.feature_columns = scaler.columns;
  assembler.label_column = "log_duration";
  assembler.add_intercept = true;
  CDPIPE_CHECK(
      pipeline->AddComponent(std::make_unique<VectorAssembler>(assembler))
          .ok());
  return pipeline;
}

LinearModel::Options MakeTaxiModelOptions(double l2_reg) {
  LinearModel::Options options;
  options.loss = LossKind::kSquared;
  options.l2_reg = l2_reg;
  options.fit_bias = true;
  options.init_bias_to_label_mean = true;
  options.initial_dim = 12;  // 11 features + intercept column
  return options;
}

}  // namespace cdpipe
