#include "src/data/dataset_io.h"

#include <fstream>
#include <utility>

#include "src/common/logging.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {

std::vector<RawChunk> DiscretizeRecords(std::vector<std::string> records,
                                        size_t records_per_chunk,
                                        int64_t start_time_seconds,
                                        int64_t period_seconds,
                                        ChunkId first_id) {
  CDPIPE_CHECK_GT(records_per_chunk, 0u);
  std::vector<RawChunk> out;
  out.reserve((records.size() + records_per_chunk - 1) / records_per_chunk);
  RawChunk current;
  current.id = first_id;
  current.event_time_seconds = start_time_seconds;
  for (std::string& record : records) {
    current.records.push_back(std::move(record));
    if (current.records.size() == records_per_chunk) {
      const ChunkId id = current.id;
      const int64_t t = current.event_time_seconds;
      out.push_back(std::move(current));
      current = RawChunk{};
      current.id = id + 1;
      current.event_time_seconds = t + period_seconds;
    }
  }
  if (!current.records.empty()) out.push_back(std::move(current));
  return out;
}

Status SaveRecords(const std::string& path,
                   const std::vector<std::string>& records) {
  CDPIPE_FAULT_POINT("dataset_io.save_records");
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  for (const std::string& record : records) {
    file << record << '\n';
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<std::string>> LoadRecords(const std::string& path) {
  CDPIPE_FAULT_POINT("dataset_io.load_records");
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::string> out;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

std::vector<std::string> FlattenChunks(const std::vector<RawChunk>& chunks) {
  std::vector<std::string> out;
  size_t total = 0;
  for (const RawChunk& chunk : chunks) total += chunk.records.size();
  out.reserve(total);
  for (const RawChunk& chunk : chunks) {
    out.insert(out.end(), chunk.records.begin(), chunk.records.end());
  }
  return out;
}

}  // namespace cdpipe
