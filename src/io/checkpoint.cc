#include "src/io/checkpoint.h"

#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "src/io/serialization.h"
#include "src/obs/event_journal.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace {
constexpr char kMagic[] = "cdpipe-checkpoint";
constexpr int64_t kVersion = 2;

// FNV-1a over the serialized payload.  The hash is appended as the final
// `checksum` line, so any truncation or bit flip in the body is detected
// before a single byte of deployed state is mutated.
int64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<int64_t>(hash);
}

}  // namespace

Status SaveCheckpoint(const PipelineManager& manager, std::ostream* os) {
  if (os == nullptr) return Status::InvalidArgument("null output stream");
  CDPIPE_FAULT_POINT("checkpoint.save");
  // Serialize into a buffer first so the checksum covers the whole payload.
  std::ostringstream buffer;
  Serializer out(&buffer);
  out.WriteString("magic", kMagic);
  out.WriteInt("version", kVersion);
  out.WriteString("optimizer.kind", manager.optimizer().name());
  CDPIPE_RETURN_NOT_OK(manager.pipeline().SaveState(&out));
  CDPIPE_RETURN_NOT_OK(manager.model().SaveState(&out));
  CDPIPE_RETURN_NOT_OK(manager.optimizer().SaveState(&out));
  if (!out.ok()) return Status::IoError("checkpoint write failed");

  const std::string payload = buffer.str();
  *os << payload;
  Serializer trailer(os);
  trailer.WriteInt("checksum", Fnv1a(payload));
  if (!trailer.ok()) return Status::IoError("checkpoint write failed");
  obs::EventJournal::Global().Append(obs::EventKind::kCheckpoint, "save");
  return Status::OK();
}

Status SaveCheckpointToFile(const PipelineManager& manager,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  CDPIPE_RETURN_NOT_OK(SaveCheckpoint(manager, &file));
  file.flush();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(std::istream* is, PipelineManager* manager) {
  if (is == nullptr) return Status::InvalidArgument("null input stream");
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  CDPIPE_FAULT_POINT("checkpoint.load");

  // Slurp the stream: the checksum trailer must be verified against the
  // raw payload bytes before anything is parsed.
  std::ostringstream slurp;
  slurp << is->rdbuf();
  std::string contents = slurp.str();
  if (contents.empty()) return Status::InvalidArgument("empty checkpoint");

  // Split off the final non-empty line — the `checksum i <hash>` trailer.
  size_t end = contents.size();
  while (end > 0 && contents[end - 1] == '\n') --end;
  const size_t line_start = contents.rfind('\n', end - 1);
  const size_t payload_size = line_start == std::string::npos ? 0
                                                              : line_start + 1;
  const std::string payload = contents.substr(0, payload_size);
  std::istringstream trailer_stream(
      contents.substr(payload_size, end - payload_size));
  Deserializer trailer(&trailer_stream);
  CDPIPE_ASSIGN_OR_RETURN(int64_t expected, trailer.ReadInt("checksum"));
  if (expected != Fnv1a(payload)) {
    return Status::InvalidArgument(
        "checkpoint checksum mismatch (truncated or corrupt)");
  }

  std::istringstream body(payload);
  Deserializer in(&body);
  CDPIPE_ASSIGN_OR_RETURN(std::string magic, in.ReadString("magic"));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a cdpipe checkpoint");
  }
  CDPIPE_ASSIGN_OR_RETURN(int64_t version, in.ReadInt("version"));
  if (version != kVersion) {
    return Status::Unimplemented("unsupported checkpoint version " +
                                 std::to_string(version));
  }
  CDPIPE_ASSIGN_OR_RETURN(std::string optimizer_kind,
                          in.ReadString("optimizer.kind"));
  if (optimizer_kind != manager->optimizer().name()) {
    return Status::InvalidArgument(
        "checkpoint optimizer '" + optimizer_kind +
        "' does not match deployed optimizer '" +
        manager->optimizer().name() + "'");
  }

  // Deserialize into scratch copies and commit only after every read
  // succeeded — a checkpoint that fails mid-parse leaves the deployed
  // pipeline, model, and optimizer untouched.
  std::unique_ptr<Pipeline> pipeline = manager->pipeline().Clone();
  auto model = std::make_unique<LinearModel>(manager->model());
  std::unique_ptr<Optimizer> optimizer = manager->optimizer().Clone();
  CDPIPE_RETURN_NOT_OK(pipeline->LoadState(&in));
  CDPIPE_RETURN_NOT_OK(model->LoadState(&in));
  CDPIPE_RETURN_NOT_OK(optimizer->LoadState(&in));
  manager->Restore(std::move(pipeline), std::move(model),
                   std::move(optimizer));
  obs::EventJournal::Global().Append(obs::EventKind::kCheckpoint, "load");
  return Status::OK();
}

Status LoadCheckpointFromFile(const std::string& path,
                              PipelineManager* manager) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  return LoadCheckpoint(&file, manager);
}

}  // namespace cdpipe
