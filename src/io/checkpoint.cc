#include "src/io/checkpoint.h"

#include <fstream>

#include "src/io/serialization.h"

namespace cdpipe {
namespace {
constexpr char kMagic[] = "cdpipe-checkpoint";
constexpr int64_t kVersion = 1;
}  // namespace

Status SaveCheckpoint(const PipelineManager& manager, std::ostream* os) {
  if (os == nullptr) return Status::InvalidArgument("null output stream");
  Serializer out(os);
  out.WriteString("magic", kMagic);
  out.WriteInt("version", kVersion);
  out.WriteString("optimizer.kind", manager.optimizer().name());
  CDPIPE_RETURN_NOT_OK(manager.pipeline().SaveState(&out));
  CDPIPE_RETURN_NOT_OK(manager.model().SaveState(&out));
  CDPIPE_RETURN_NOT_OK(manager.optimizer().SaveState(&out));
  if (!out.ok()) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

Status SaveCheckpointToFile(const PipelineManager& manager,
                            const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  CDPIPE_RETURN_NOT_OK(SaveCheckpoint(manager, &file));
  file.flush();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(std::istream* is, PipelineManager* manager) {
  if (is == nullptr) return Status::InvalidArgument("null input stream");
  if (manager == nullptr) return Status::InvalidArgument("null manager");
  Deserializer in(is);
  CDPIPE_ASSIGN_OR_RETURN(std::string magic, in.ReadString("magic"));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a cdpipe checkpoint");
  }
  CDPIPE_ASSIGN_OR_RETURN(int64_t version, in.ReadInt("version"));
  if (version != kVersion) {
    return Status::Unimplemented("unsupported checkpoint version " +
                                 std::to_string(version));
  }
  CDPIPE_ASSIGN_OR_RETURN(std::string optimizer_kind,
                          in.ReadString("optimizer.kind"));
  if (optimizer_kind != manager->optimizer().name()) {
    return Status::InvalidArgument(
        "checkpoint optimizer '" + optimizer_kind +
        "' does not match deployed optimizer '" +
        manager->optimizer().name() + "'");
  }
  CDPIPE_RETURN_NOT_OK(manager->mutable_pipeline()->LoadState(&in));
  CDPIPE_RETURN_NOT_OK(manager->mutable_model()->LoadState(&in));
  CDPIPE_RETURN_NOT_OK(manager->mutable_optimizer()->LoadState(&in));
  return Status::OK();
}

Status LoadCheckpointFromFile(const std::string& path,
                              PipelineManager* manager) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open for reading: " + path);
  return LoadCheckpoint(&file, manager);
}

}  // namespace cdpipe
