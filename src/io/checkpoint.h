#ifndef CDPIPE_IO_CHECKPOINT_H_
#define CDPIPE_IO_CHECKPOINT_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/core/pipeline_manager.h"

namespace cdpipe {

/// Full deployed-state checkpointing: pipeline statistics + model weights +
/// optimizer adaptation state.  Because proactive training only depends on
/// this state (§3.3 — iterations of SGD are conditionally independent given
/// the model and the learning rate state), a deployment restored from a
/// checkpoint continues *bit-exactly* where the saved one stopped.
///
/// Checkpoints carry state only, not structure: the loader must construct a
/// PipelineManager with the identical pipeline component sequence, model
/// loss, and optimizer kind.  All mismatches are detected and reported.

/// Writes a checkpoint of the manager's deployed state.
Status SaveCheckpoint(const PipelineManager& manager, std::ostream* os);
Status SaveCheckpointToFile(const PipelineManager& manager,
                            const std::string& path);

/// Restores a checkpoint into an identically structured manager.
Status LoadCheckpoint(std::istream* is, PipelineManager* manager);
Status LoadCheckpointFromFile(const std::string& path,
                              PipelineManager* manager);

}  // namespace cdpipe

#endif  // CDPIPE_IO_CHECKPOINT_H_
