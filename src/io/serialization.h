#ifndef CDPIPE_IO_SERIALIZATION_H_
#define CDPIPE_IO_SERIALIZATION_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace cdpipe {

/// Minimal line-oriented checkpoint format:
///
///   <key> i <int64>
///   <key> d <hexfloat>
///   <key> s <length> <bytes>
///   <key> dv <count> <hexfloat>...
///   <key> uv <count> <uint32>...
///   <key> pv <count> <uint32>:<hexfloat>...
///
/// Doubles are written as C99 hexfloats, so values round-trip bit-exactly —
/// a resumed deployment continues from the *identical* model state.
/// Readers are strict: keys are verified in order, so structural drift
/// between the writer and the reader surfaces as an error, not silent
/// corruption.
class Serializer {
 public:
  explicit Serializer(std::ostream* os);

  void WriteInt(const std::string& key, int64_t value);
  void WriteDouble(const std::string& key, double value);
  void WriteString(const std::string& key, const std::string& value);
  void WriteDoubleVector(const std::string& key,
                         const std::vector<double>& values);
  void WriteUint32Vector(const std::string& key,
                         const std::vector<uint32_t>& values);
  void WritePairs(const std::string& key,
                  const std::vector<std::pair<uint32_t, double>>& pairs);

  /// True if every write so far succeeded at the stream level.
  bool ok() const;

 private:
  std::ostream* os_;
};

class Deserializer {
 public:
  explicit Deserializer(std::istream* is);

  Result<int64_t> ReadInt(const std::string& key);
  Result<double> ReadDouble(const std::string& key);
  Result<std::string> ReadString(const std::string& key);
  Result<std::vector<double>> ReadDoubleVector(const std::string& key);
  Result<std::vector<uint32_t>> ReadUint32Vector(const std::string& key);
  Result<std::vector<std::pair<uint32_t, double>>> ReadPairs(
      const std::string& key);

 private:
  /// Reads the next line, verifies `key` and `type`, returns the payload.
  Result<std::string> NextPayload(const std::string& key,
                                  const std::string& type);

  std::istream* is_;
};

/// Formats a double as a round-trip-exact token (hexfloat).
std::string EncodeDouble(double value);
/// Parses a token produced by EncodeDouble (also accepts plain decimals).
Result<double> DecodeDouble(const std::string& token);

}  // namespace cdpipe

#endif  // CDPIPE_IO_SERIALIZATION_H_
