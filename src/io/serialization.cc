#include "src/io/serialization.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

std::string EncodeDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

Result<double> DecodeDouble(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty double token");
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return Status::InvalidArgument("bad double token: '" + token + "'");
  }
  return value;
}

Serializer::Serializer(std::ostream* os) : os_(os) {
  CDPIPE_CHECK(os_ != nullptr);
}

bool Serializer::ok() const { return static_cast<bool>(*os_); }

void Serializer::WriteInt(const std::string& key, int64_t value) {
  *os_ << key << " i " << value << '\n';
}

void Serializer::WriteDouble(const std::string& key, double value) {
  *os_ << key << " d " << EncodeDouble(value) << '\n';
}

void Serializer::WriteString(const std::string& key,
                             const std::string& value) {
  *os_ << key << " s " << value.size() << ' ' << value << '\n';
}

void Serializer::WriteDoubleVector(const std::string& key,
                                   const std::vector<double>& values) {
  *os_ << key << " dv " << values.size();
  for (double v : values) *os_ << ' ' << EncodeDouble(v);
  *os_ << '\n';
}

void Serializer::WriteUint32Vector(const std::string& key,
                                   const std::vector<uint32_t>& values) {
  *os_ << key << " uv " << values.size();
  for (uint32_t v : values) *os_ << ' ' << v;
  *os_ << '\n';
}

void Serializer::WritePairs(
    const std::string& key,
    const std::vector<std::pair<uint32_t, double>>& pairs) {
  *os_ << key << " pv " << pairs.size();
  for (const auto& [index, value] : pairs) {
    *os_ << ' ' << index << ':' << EncodeDouble(value);
  }
  *os_ << '\n';
}

Deserializer::Deserializer(std::istream* is) : is_(is) {
  CDPIPE_CHECK(is_ != nullptr);
}

Result<std::string> Deserializer::NextPayload(const std::string& key,
                                              const std::string& type) {
  std::string line;
  if (!std::getline(*is_, line)) {
    return Status::IoError("checkpoint truncated; expected key '" + key +
                           "'");
  }
  const size_t first_space = line.find(' ');
  if (first_space == std::string::npos) {
    return Status::InvalidArgument("malformed checkpoint line: '" + line +
                                   "'");
  }
  const size_t second_space = line.find(' ', first_space + 1);
  const std::string got_key = line.substr(0, first_space);
  const std::string got_type =
      second_space == std::string::npos
          ? line.substr(first_space + 1)
          : line.substr(first_space + 1, second_space - first_space - 1);
  if (got_key != key) {
    return Status::InvalidArgument("checkpoint key mismatch: expected '" +
                                   key + "', found '" + got_key + "'");
  }
  if (got_type != type) {
    return Status::InvalidArgument("checkpoint type mismatch for '" + key +
                                   "': expected '" + type + "', found '" +
                                   got_type + "'");
  }
  return second_space == std::string::npos ? std::string()
                                           : line.substr(second_space + 1);
}

Result<int64_t> Deserializer::ReadInt(const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "i"));
  return ParseInt64(payload);
}

Result<double> Deserializer::ReadDouble(const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "d"));
  return DecodeDouble(std::string(StripWhitespace(payload)));
}

Result<std::string> Deserializer::ReadString(const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "s"));
  const size_t space = payload.find(' ');
  const std::string size_token =
      space == std::string::npos ? payload : payload.substr(0, space);
  CDPIPE_ASSIGN_OR_RETURN(int64_t size, ParseInt64(size_token));
  const std::string body =
      space == std::string::npos ? std::string() : payload.substr(space + 1);
  if (static_cast<int64_t>(body.size()) != size) {
    return Status::InvalidArgument("string length mismatch for '" + key +
                                   "'");
  }
  return body;
}

namespace {

Result<std::vector<std::string>> SplitPayload(const std::string& payload,
                                              const std::string& key) {
  std::vector<std::string> tokens;
  std::istringstream stream(payload);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty vector payload for '" + key + "'");
  }
  return tokens;
}

}  // namespace

Result<std::vector<double>> Deserializer::ReadDoubleVector(
    const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "dv"));
  CDPIPE_ASSIGN_OR_RETURN(auto tokens, SplitPayload(payload, key));
  CDPIPE_ASSIGN_OR_RETURN(int64_t count, ParseInt64(tokens[0]));
  if (static_cast<int64_t>(tokens.size()) != count + 1) {
    return Status::InvalidArgument("vector count mismatch for '" + key + "'");
  }
  std::vector<double> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    CDPIPE_ASSIGN_OR_RETURN(double v, DecodeDouble(tokens[i + 1]));
    out.push_back(v);
  }
  return out;
}

Result<std::vector<uint32_t>> Deserializer::ReadUint32Vector(
    const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "uv"));
  CDPIPE_ASSIGN_OR_RETURN(auto tokens, SplitPayload(payload, key));
  CDPIPE_ASSIGN_OR_RETURN(int64_t count, ParseInt64(tokens[0]));
  if (static_cast<int64_t>(tokens.size()) != count + 1) {
    return Status::InvalidArgument("vector count mismatch for '" + key + "'");
  }
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    CDPIPE_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tokens[i + 1]));
    if (v < 0 || v > UINT32_MAX) {
      return Status::OutOfRange("uint32 out of range in '" + key + "'");
    }
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

Result<std::vector<std::pair<uint32_t, double>>> Deserializer::ReadPairs(
    const std::string& key) {
  CDPIPE_ASSIGN_OR_RETURN(std::string payload, NextPayload(key, "pv"));
  CDPIPE_ASSIGN_OR_RETURN(auto tokens, SplitPayload(payload, key));
  CDPIPE_ASSIGN_OR_RETURN(int64_t count, ParseInt64(tokens[0]));
  if (static_cast<int64_t>(tokens.size()) != count + 1) {
    return Status::InvalidArgument("pair count mismatch for '" + key + "'");
  }
  std::vector<std::pair<uint32_t, double>> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const std::string& token = tokens[i + 1];
    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("malformed pair in '" + key + "'");
    }
    CDPIPE_ASSIGN_OR_RETURN(int64_t index,
                            ParseInt64(token.substr(0, colon)));
    CDPIPE_ASSIGN_OR_RETURN(double value,
                            DecodeDouble(token.substr(colon + 1)));
    if (index < 0 || index > UINT32_MAX) {
      return Status::OutOfRange("pair index out of range in '" + key + "'");
    }
    out.emplace_back(static_cast<uint32_t>(index), value);
  }
  return out;
}

}  // namespace cdpipe
