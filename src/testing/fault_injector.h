#ifndef CDPIPE_TESTING_FAULT_INJECTOR_H_
#define CDPIPE_TESTING_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace cdpipe {
namespace testing {

/// How one armed fault site decides whether a given invocation fires.
///
/// All triggers are deterministic given the rule: probability rules draw
/// from a private per-site Rng (never from the Rngs that drive experiments,
/// so arming a site does not perturb the fault-free numerics), and counter
/// rules fire on exact invocation indices.  Under a multi-threaded engine
/// the per-site invocation *order* is scheduling-dependent, so faulty runs
/// assert on completion and accounting, not on bit-identical results; the
/// fault-free control (no rule fires) stays bit-identical by construction.
struct FaultRule {
  enum class Trigger {
    kNever,        ///< armed but inert (the fault-free control)
    kProbability,  ///< each invocation fires with probability `probability`
    kEveryN,       ///< fires on invocations n, 2n, 3n, ... (1-based)
    kFirstN,       ///< fires on the first `n` invocations only
  };

  Trigger trigger = Trigger::kNever;
  double probability = 0.0;
  uint64_t n = 0;
  /// Seed for the per-site Rng (probability rules only).
  uint64_t seed = 0x5EEDFA17u;
  /// Status returned by Check() when the fault fires.
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";
  /// When set, Check() throws std::runtime_error(message) instead of
  /// returning a Status — exercises exception-safety of task runners.
  bool throws = false;
  /// Injected delay applied by MaybeDelay() when the fault fires (slow-task
  /// injection; Check()/ShouldTrigger() ignore it).
  double delay_seconds = 0.0;
  /// Total firings cap (-1 = unlimited).
  int64_t max_triggers = -1;

  static FaultRule Never();
  static FaultRule Probability(double p, uint64_t seed);
  static FaultRule EveryN(uint64_t n);
  static FaultRule FirstN(uint64_t n);
};

/// Per-site invocation/firing counts, exposed to scenario assertions.
struct FaultSiteStats {
  int64_t invocations = 0;
  int64_t triggers = 0;
};

/// A seeded, deterministic fault-injection registry.  Production code marks
/// fault *sites* (named choke points: storage writes, engine tasks,
/// re-materialization, stream reads, checkpoint IO); tests *arm* sites with
/// rules.  Disarmed or disabled, a site costs one relaxed atomic load — the
/// instrumentation is always compiled in and must never change behavior or
/// numerics until a rule actually fires.
///
/// Thread-safe: sites are guarded by one mutex (fault paths are test-only
/// and never hot when disabled).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The process-wide injector used by all CDPIPE_FAULT_* sites.
  static FaultInjector& Global();

  /// Arms `site` with `rule`, resetting the site's counters and Rng.
  /// Arming any site enables the injector.
  void Arm(const std::string& site, FaultRule rule);
  void Disarm(const std::string& site);
  /// Disarms every site, clears all stats, and disables the injector.
  void DisarmAll();

  /// Master switch checked (relaxed) by every site before taking the lock.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fault point for Status-returning paths: returns the injected error
  /// (or throws, for `throws` rules) when the armed rule fires, OK
  /// otherwise.  Increments the `fault.injected` metric on firing.
  Status Check(const char* site);

  /// Fault point for degradation paths that cannot return a Status (forced
  /// evictions, short reads): true when the armed rule fires.
  bool ShouldTrigger(const char* site);

  /// Fault point for latency injection: sleeps the rule's `delay_seconds`
  /// when it fires.
  void MaybeDelay(const char* site);

  FaultSiteStats StatsFor(const std::string& site) const;
  int64_t TotalTriggers() const;

 private:
  struct SiteState {
    FaultRule rule;
    Rng rng{0};
    FaultSiteStats stats;
  };

  /// Returns whether the armed rule for `site` fires this invocation and
  /// copies the rule out; false when disarmed.
  bool Fire(const char* site, FaultRule* rule);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
};

/// Scoped arming for tests: arms the given (site, rule) pairs on
/// construction and restores a fully disarmed injector on destruction, so
/// a failing test cannot leak faults into the rest of the suite.
class ScopedFaultScript {
 public:
  struct SiteRule {
    std::string site;
    FaultRule rule;
  };

  explicit ScopedFaultScript(std::vector<SiteRule> rules);
  ~ScopedFaultScript();

  ScopedFaultScript(const ScopedFaultScript&) = delete;
  ScopedFaultScript& operator=(const ScopedFaultScript&) = delete;
};

}  // namespace testing
}  // namespace cdpipe

/// Status-returning fault point.  Usable in functions returning Status or
/// Result<T> (Result converts implicitly from an error Status).
#define CDPIPE_FAULT_POINT(site)                                          \
  do {                                                                    \
    if (::cdpipe::testing::FaultInjector::Global().enabled()) {           \
      ::cdpipe::Status _cdpipe_fault =                                    \
          ::cdpipe::testing::FaultInjector::Global().Check(site);         \
      if (!_cdpipe_fault.ok()) return _cdpipe_fault;                      \
    }                                                                     \
  } while (false)

/// Boolean fault point for degradation-style sites.
#define CDPIPE_FAULT_TRIGGERED(site)                     \
  (::cdpipe::testing::FaultInjector::Global().enabled() && \
   ::cdpipe::testing::FaultInjector::Global().ShouldTrigger(site))

/// Latency fault point.
#define CDPIPE_FAULT_DELAY(site)                                  \
  do {                                                            \
    if (::cdpipe::testing::FaultInjector::Global().enabled()) {   \
      ::cdpipe::testing::FaultInjector::Global().MaybeDelay(site); \
    }                                                             \
  } while (false)

#endif  // CDPIPE_TESTING_FAULT_INJECTOR_H_
