#include "src/testing/fault_injector.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace testing {
namespace {

obs::Counter* InjectedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("fault.injected");
  return counter;
}

/// FNV-1a over the site name; mixed into the rule seed so two sites armed
/// with the same seed still draw independent streams.
uint64_t HashSite(const std::string& site) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

FaultRule FaultRule::Never() { return FaultRule{}; }

FaultRule FaultRule::Probability(double p, uint64_t seed) {
  FaultRule rule;
  rule.trigger = Trigger::kProbability;
  rule.probability = p;
  rule.seed = seed;
  return rule;
}

FaultRule FaultRule::EveryN(uint64_t n) {
  FaultRule rule;
  rule.trigger = Trigger::kEveryN;
  rule.n = n;
  return rule;
}

FaultRule FaultRule::FirstN(uint64_t n) {
  FaultRule rule;
  rule.trigger = Trigger::kFirstN;
  rule.n = n;
  return rule;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState state;
  state.rng = Rng(rule.seed ^ HashSite(site));
  state.rule = std::move(rule);
  sites_[site] = std::move(state);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::Fire(const char* site, FaultRule* rule) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  SiteState& state = it->second;
  ++state.stats.invocations;
  if (state.rule.max_triggers >= 0 &&
      state.stats.triggers >= state.rule.max_triggers) {
    return false;
  }
  bool fired = false;
  switch (state.rule.trigger) {
    case FaultRule::Trigger::kNever:
      break;
    case FaultRule::Trigger::kProbability:
      fired = state.rng.NextBernoulli(state.rule.probability);
      break;
    case FaultRule::Trigger::kEveryN:
      fired = state.rule.n > 0 &&
              static_cast<uint64_t>(state.stats.invocations) %
                      state.rule.n ==
                  0;
      break;
    case FaultRule::Trigger::kFirstN:
      fired = static_cast<uint64_t>(state.stats.invocations) <= state.rule.n;
      break;
  }
  if (!fired) return false;
  ++state.stats.triggers;
  *rule = state.rule;
  return true;
}

Status FaultInjector::Check(const char* site) {
  FaultRule rule;
  if (!Fire(site, &rule)) return Status::OK();
  InjectedCounter()->Increment();
  CDPIPE_LOG(Debug) << "fault injected at " << site << ": " << rule.message;
  if (rule.throws) throw std::runtime_error(rule.message);
  return Status(rule.code, rule.message + " (injected at " + site + ")");
}

bool FaultInjector::ShouldTrigger(const char* site) {
  FaultRule rule;
  if (!Fire(site, &rule)) return false;
  InjectedCounter()->Increment();
  CDPIPE_LOG(Debug) << "fault triggered at " << site << ": " << rule.message;
  return true;
}

void FaultInjector::MaybeDelay(const char* site) {
  FaultRule rule;
  if (!Fire(site, &rule)) return;
  InjectedCounter()->Increment();
  if (rule.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(rule.delay_seconds));
  }
}

FaultSiteStats FaultInjector::StatsFor(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it != sites_.end() ? it->second.stats : FaultSiteStats{};
}

int64_t FaultInjector::TotalTriggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.stats.triggers;
  return total;
}

ScopedFaultScript::ScopedFaultScript(std::vector<SiteRule> rules) {
  FaultInjector& injector = FaultInjector::Global();
  injector.DisarmAll();
  for (SiteRule& entry : rules) {
    injector.Arm(entry.site, std::move(entry.rule));
  }
  // An empty script still enables the injector: the "armed but inert"
  // control configuration.
  injector.set_enabled(true);
}

ScopedFaultScript::~ScopedFaultScript() {
  FaultInjector::Global().DisarmAll();
}

}  // namespace testing
}  // namespace cdpipe
