#ifndef CDPIPE_OBS_EXPORTERS_H_
#define CDPIPE_OBS_EXPORTERS_H_

#include <string>

#include "src/obs/metrics.h"

namespace cdpipe {
namespace obs {

/// Converts an internal metric name ("chunk_store.sample_hits") to a legal
/// Prometheus metric name ("cdpipe_chunk_store_sample_hits").
std::string PrometheusName(const std::string& name);

/// Escapes `# HELP` text per the text exposition format: backslash becomes
/// `\\` and newline becomes `\n`.
std::string PrometheusEscapeHelp(const std::string& help);

/// Escapes a label value: backslash, double quote, and newline.
std::string PrometheusEscapeLabelValue(const std::string& value);

/// Prometheus text exposition format (version 0.0.4): one `# TYPE` line per
/// metric (preceded by `# HELP` when the registry has help text), cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count` for histograms.  Suitable
/// for a /metrics endpoint or a textfile collector.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Machine-readable JSON snapshot:
///   {"counters":{...},"gauges":{...},
///    "histograms":{name:{count,sum,mean,p50,p95,p99,buckets:[[le,n],...]}}}
std::string ToJson(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_EXPORTERS_H_
