#include "src/obs/health.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace obs {
namespace {

struct WatchdogMetrics {
  Counter* stalls;
  Counter* recoveries;
  Gauge* ready;

  static const WatchdogMetrics& Get() {
    static const WatchdogMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      WatchdogMetrics m;
      m.stalls = registry.GetCounter("obs.stalls");
      m.recoveries = registry.GetCounter("obs.recoveries");
      m.ready = registry.GetGauge("obs.ready");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

void Heartbeat::Beat() {
  last_beat_us_.store(Tracer::NowMicros(), std::memory_order_relaxed);
  beats_.fetch_add(1, std::memory_order_relaxed);
}

void Heartbeat::BeginWork() {
  busy_.fetch_add(1, std::memory_order_relaxed);
  Beat();
}

void Heartbeat::EndWork() {
  Beat();
  busy_.fetch_sub(1, std::memory_order_relaxed);
}

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* registry = new HealthRegistry();
  return *registry;
}

Heartbeat* HealthRegistry::GetHeartbeat(const std::string& subsystem) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = heartbeats_[subsystem];
  if (slot == nullptr) slot = std::make_unique<Heartbeat>();
  return slot.get();
}

std::vector<SubsystemHealth> HealthRegistry::Snapshot(
    double stall_deadline_seconds, int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SubsystemHealth> out;
  out.reserve(heartbeats_.size());
  for (const auto& [name, heartbeat] : heartbeats_) {
    SubsystemHealth health;
    health.name = name;
    health.last_beat_us = heartbeat->last_beat_us();
    health.beats = heartbeat->beats();
    health.busy = heartbeat->busy();
    if (health.last_beat_us >= 0) {
      health.age_seconds =
          static_cast<double>(now_us - health.last_beat_us) * 1e-6;
    }
    health.stalled = health.busy > 0 && health.last_beat_us >= 0 &&
                     health.age_seconds > stall_deadline_seconds;
    out.push_back(std::move(health));
  }
  return out;
}

size_t HealthRegistry::NumSubsystems() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heartbeats_.size();
}

std::string HealthToJson(const std::vector<SubsystemHealth>& subsystems,
                         bool ready) {
  std::string out =
      std::string("{\"ready\":") + (ready ? "true" : "false") +
      ",\"subsystems\":[";
  for (size_t i = 0; i < subsystems.size(); ++i) {
    const SubsystemHealth& s = subsystems[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"name\":\"%s\",\"busy\":%lld,\"beats\":%llu,"
        "\"age_seconds\":%.6f,\"stalled\":%s}",
        s.name.c_str(), static_cast<long long>(s.busy),
        static_cast<unsigned long long>(s.beats), s.age_seconds,
        s.stalled ? "true" : "false");
  }
  out += "]}";
  return out;
}

std::string NotReadyReason(const std::vector<SubsystemHealth>& subsystems,
                           bool ingest_overloaded) {
  std::string out = "not ready:";
  bool first = true;
  for (const SubsystemHealth& s : subsystems) {
    if (!s.stalled) continue;
    out += StrFormat("%s stalled=%s (busy=%lld, silent %.1fs)",
                     first ? "" : ";", s.name.c_str(),
                     static_cast<long long>(s.busy), s.age_seconds);
    first = false;
  }
  if (ingest_overloaded) {
    out += StrFormat("%s ingest overloaded", first ? "" : ";");
    first = false;
  }
  if (first) out += " unknown";
  out += '\n';
  return out;
}

Watchdog::Watchdog() : Watchdog(Options()) {}

Watchdog::Watchdog(Options options) : options_(options) {
  if (options_.health == nullptr) options_.health = &HealthRegistry::Global();
  if (options_.journal == nullptr) options_.journal = &EventJournal::Global();
  WatchdogMetrics::Get().ready->Set(1.0);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread(&Watchdog::Loop, this);
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  wake_.notify_all();
  thread_.join();
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (running_) {
    lock.unlock();
    PollOnce();
    lock.lock();
    wake_.wait_for(lock,
                   std::chrono::duration<double>(
                       options_.poll_interval_seconds),
                   [this] { return !running_; });
  }
}

void Watchdog::PollOnce() {
  const std::vector<SubsystemHealth> snapshot = options_.health->Snapshot(
      options_.stall_deadline_seconds, Tracer::NowMicros());
  std::lock_guard<std::mutex> lock(mu_);
  for (const SubsystemHealth& subsystem : snapshot) {
    const bool was_stalled = stalled_.count(subsystem.name) > 0;
    if (subsystem.stalled && !was_stalled) {
      stalled_.insert(subsystem.name);
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      WatchdogMetrics::Get().stalls->Increment();
      options_.journal->Append(EventKind::kStall, CorrelationId{},
                               subsystem.name.c_str());
      CDPIPE_LOG(Warning) << "watchdog: subsystem '" << subsystem.name
                          << "' stalled (busy=" << subsystem.busy
                          << ", silent for " << subsystem.age_seconds
                          << "s, deadline "
                          << options_.stall_deadline_seconds << "s)";
    } else if (!subsystem.stalled && was_stalled) {
      stalled_.erase(subsystem.name);
      recover_events_.fetch_add(1, std::memory_order_relaxed);
      WatchdogMetrics::Get().recoveries->Increment();
      options_.journal->Append(EventKind::kRecover, CorrelationId{},
                               subsystem.name.c_str());
      CDPIPE_LOG(Info) << "watchdog: subsystem '" << subsystem.name
                       << "' recovered";
    }
  }
  const bool ready = stalled_.empty();
  ready_.store(ready, std::memory_order_relaxed);
  WatchdogMetrics::Get().ready->Set(ready ? 1.0 : 0.0);
}

}  // namespace obs
}  // namespace cdpipe
