#ifndef CDPIPE_OBS_CORRELATION_H_
#define CDPIPE_OBS_CORRELATION_H_

#include <cstdint>
#include <string>

namespace cdpipe {
namespace obs {

/// Identifies which deployment and which entity (chunk or training step) a
/// piece of telemetry belongs to.  Every journal event carries one, and
/// spans recorded while a CorrelationScope is active inherit it — which is
/// what lets an operator reconstruct a chunk's full lifecycle
/// (ingest → materialize → sample → train) across threads and subsystems.
struct CorrelationId {
  /// Process-unique deployment instance id (0 = not attributed to any
  /// deployment; ids are assigned from 1 by the Deployment constructor).
  uint32_t deployment = 0;
  /// Chunk id or training-step sequence number; -1 = none.
  int64_t entity = -1;

  bool operator==(const CorrelationId& other) const {
    return deployment == other.deployment && entity == other.entity;
  }
  bool operator!=(const CorrelationId& other) const {
    return !(*this == other);
  }

  bool empty() const { return deployment == 0 && entity < 0; }

  /// "d<deployment>/<entity>", with "-" for missing halves (e.g. "d1/42",
  /// "d1/-", "-/42").
  std::string ToString() const;
};

/// RAII thread-local correlation scope.  Code that knows which deployment /
/// chunk it is working on pushes a scope; everything downstream on the same
/// thread (journal events, trace spans) picks it up without having the id
/// threaded through every signature.  Scopes nest and restore the previous
/// value on destruction.
///
/// The scope is per-thread: engine workers executing a task on behalf of a
/// scoped caller do not inherit it automatically — call sites that fan out
/// re-establish the scope inside the task when the correlation matters
/// (re-materialization does).
class CorrelationScope {
 public:
  explicit CorrelationScope(CorrelationId id);
  CorrelationScope(uint32_t deployment, int64_t entity)
      : CorrelationScope(CorrelationId{deployment, entity}) {}
  ~CorrelationScope();

  CorrelationScope(const CorrelationScope&) = delete;
  CorrelationScope& operator=(const CorrelationScope&) = delete;

  /// The innermost active scope on this thread ({0, -1} when none).
  static CorrelationId Current();

  /// Current deployment with a different entity — the common pattern for
  /// sites that know a chunk id but not which deployment they serve.
  static CorrelationId WithEntity(int64_t entity);

 private:
  CorrelationId previous_;
};

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_CORRELATION_H_
