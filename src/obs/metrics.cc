#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/logging.h"

namespace cdpipe {
namespace obs {

double HistogramSnapshot::Quantile(double q) const {
  if (total_count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double cum_after = static_cast<double>(cumulative + in_bucket);
    if (cum_after >= target) {
      if (i >= upper_bounds.size()) {
        // Overflow bucket has no finite upper edge; clamp to the last bound.
        return upper_bounds.back();
      }
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into_bucket, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return upper_bounds.back();
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  CDPIPE_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    CDPIPE_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(upper_bounds_.size() + 1);
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.upper_bounds = upper_bounds_;
  out.counts.resize(upper_bounds_.size() + 1);
  uint64_t total = 0;
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += out.counts[i];
  }
  // Derive the total from the buckets so the snapshot is internally
  // consistent even if a concurrent Observe lands between the loads.
  out.total_count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultLatencyBoundsSeconds() {
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3,
          64e-3, 0.25,  1.0,   4.0,   16.0,   64.0};
}

int64_t MetricsSnapshot::CounterValueOr(const std::string& name,
                                        int64_t fallback) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  std::map<std::string, int64_t> counter_base;
  for (const auto& c : before.counters) counter_base[c.name] = c.value;
  out.counters.reserve(after.counters.size());
  for (const auto& c : after.counters) {
    auto it = counter_base.find(c.name);
    const int64_t base = it == counter_base.end() ? 0 : it->second;
    out.counters.push_back({c.name, std::max<int64_t>(0, c.value - base),
                            c.help});
  }

  out.gauges = after.gauges;

  std::map<std::string, const HistogramSnapshot*> hist_base;
  for (const auto& h : before.histograms) hist_base[h.name] = &h.hist;
  out.histograms.reserve(after.histograms.size());
  for (const auto& h : after.histograms) {
    HistogramValue d;
    d.name = h.name;
    d.hist = h.hist;
    d.help = h.help;
    auto it = hist_base.find(h.name);
    if (it != hist_base.end() &&
        it->second->upper_bounds == h.hist.upper_bounds) {
      const HistogramSnapshot& base = *it->second;
      uint64_t total = 0;
      for (size_t i = 0; i < d.hist.counts.size(); ++i) {
        d.hist.counts[i] = d.hist.counts[i] >= base.counts[i]
                               ? d.hist.counts[i] - base.counts[i]
                               : 0;
        total += d.hist.counts[i];
      }
      d.hist.total_count = total;
      d.hist.sum = std::max(0.0, d.hist.sum - base.sum);
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  if (help != nullptr && help[0] != '\0' && help_[name].empty()) {
    help_[name] = help;
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  if (help != nullptr && help[0] != '\0' && help_[name].empty()) {
    help_[name] = help;
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds,
                                         const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) {
      upper_bounds = Histogram::DefaultLatencyBoundsSeconds();
    }
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  if (help != nullptr && help[0] != '\0' && help_[name].empty()) {
    help_[name] = help;
  }
  return slot.get();
}

void MetricsRegistry::SetHelp(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  help_[name] = std::move(help);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto help_for = [this](const std::string& name) {
    auto it = help_.find(name);
    return it == help_.end() ? std::string() : it->second;
  };
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->Value(), help_for(name)});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.push_back({name, gauge->Value(), help_for(name)});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back({name, histogram->Snapshot(), help_for(name)});
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace obs
}  // namespace cdpipe
