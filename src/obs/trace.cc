#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/string_util.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace obs {
namespace {

Counter* TraceDroppedCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.trace_dropped");
  return counter;
}

void CopyName(char* dst, size_t dst_size, const char* src) {
  if (src == nullptr) src = "";
  std::strncpy(dst, src, dst_size - 1);
  dst[dst_size - 1] = '\0';
}

/// JSON string escape for span names (quotes/backslashes/control chars).
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer() {
  if (const char* env = std::getenv("CDPIPE_TRACE");
      env != nullptr && env[0] != '\0') {
    dump_path_ = env;
    Enable();
  }
  if (const char* env = std::getenv("CDPIPE_TRACE_RING");
      env != nullptr && env[0] != '\0') {
    const long parsed = std::atol(env);
    if (parsed > 0) {
      ring_capacity_.store(static_cast<size_t>(parsed),
                           std::memory_order_relaxed);
    }
  }
}

Tracer::~Tracer() {
  std::string path = dump_path();
  if (!path.empty()) {
    // Best effort: the process is exiting, a failed dump only warrants a
    // message on stderr.
    Status status = WriteChromeTrace(path);
    if (!status.ok()) {
      std::fprintf(stderr, "cdpipe: trace dump to %s failed: %s\n",
                   path.c_str(), status.ToString().c_str());
    }
  }
}

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

int64_t Tracer::NowMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto fresh = std::make_shared<ThreadBuffer>();
    fresh->capacity = ring_capacity_.load(std::memory_order_relaxed);
    fresh->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(fresh);
    buffer = fresh.get();  // kept alive by buffers_ for process lifetime
  }
  return buffer;
}

void Tracer::RecordComplete(const char* name, const char* category,
                            int64_t start_us, int64_t duration_us,
                            CorrelationId corr) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  TraceEvent* slot;
  if (buffer->ring.size() < buffer->capacity) {
    // Grow phase: events live at ring[0..size) in recording order.
    buffer->ring.emplace_back();
    slot = &buffer->ring.back();
  } else if (buffer->capacity == 0) {
    ++buffer->dropped;
    TraceDroppedCounter()->Increment();
    return;
  } else {
    // At capacity: `next` is the oldest event; overwrite it.
    slot = &buffer->ring[buffer->next];
    buffer->next = (buffer->next + 1) % buffer->capacity;
    buffer->wrapped = true;
    ++buffer->dropped;
    TraceDroppedCounter()->Increment();
  }
  CopyName(slot->name, sizeof(slot->name), name);
  CopyName(slot->category, sizeof(slot->category), category);
  slot->start_us = start_us;
  slot->duration_us = duration_us;
  slot->deployment = corr.deployment;
  slot->entity = corr.entity;
}

void Tracer::AppendEventsLocked(
    const ThreadBuffer& buffer,
    std::vector<std::pair<uint32_t, TraceEvent>>* out) const {
  if (!buffer.wrapped) {
    for (size_t i = 0; i < buffer.ring.size(); ++i) {
      out->emplace_back(buffer.tid, buffer.ring[i]);
    }
  } else {
    for (size_t i = buffer.next; i < buffer.ring.size(); ++i) {
      out->emplace_back(buffer.tid, buffer.ring[i]);
    }
    for (size_t i = 0; i < buffer.next; ++i) {
      out->emplace_back(buffer.tid, buffer.ring[i]);
    }
  }
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<std::pair<uint32_t, TraceEvent>> events;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      AppendEventsLocked(*buffer, &events);
    }
  }
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i].second;
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\",\"cat\":\"%s\","
        "\"ts\":%lld,\"dur\":%lld",
        events[i].first, JsonEscape(e.name).c_str(),
        JsonEscape(e.category).c_str(), static_cast<long long>(e.start_us),
        static_cast<long long>(e.duration_us));
    if (e.deployment != 0 || e.entity >= 0) {
      out += StrFormat(",\"args\":{\"deployment\":%u,\"entity\":%lld}",
                       e.deployment, static_cast<long long>(e.entity));
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open trace output file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return Status::IoError("short write to trace output file " + path);
  }
  return Status::OK();
}

void Tracer::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  dump_path_ = std::move(path);
}

std::string Tracer::dump_path() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return dump_path_;
}

size_t Tracer::NumBufferedEvents() const {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->ring.size();
  }
  return total;
}

uint64_t Tracer::NumDroppedEvents() const {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->wrapped = false;
    buffer->dropped = 0;
  }
}

void Tracer::SetRingCapacityForNewThreads(size_t capacity) {
  ring_capacity_.store(capacity, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace cdpipe
