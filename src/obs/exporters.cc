#include "src/obs/exporters.h"

#include <cctype>

#include "src/common/string_util.h"

namespace cdpipe {
namespace obs {
namespace {

/// %g loses no precision we care about and keeps the output compact; +Inf
/// needs special-casing for Prometheus.
std::string FormatDouble(double v) { return StrFormat("%.9g", v); }

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "cdpipe_";
  for (char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

void AppendHelp(const std::string& prom_name, const std::string& help,
                std::string* out) {
  if (help.empty()) return;
  *out += "# HELP " + prom_name + " " + PrometheusEscapeHelp(help) + "\n";
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name);
    AppendHelp(name, c.help, &out);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + StrFormat("%lld", static_cast<long long>(c.value)) +
           "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    AppendHelp(name, g.help, &out);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatDouble(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    AppendHelp(name, h.help, &out);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.hist.upper_bounds.size(); ++i) {
      cumulative += h.hist.counts[i];
      out += name + "_bucket{le=\"" + FormatDouble(h.hist.upper_bounds[i]) +
             "\"} " + StrFormat("%llu", static_cast<unsigned long long>(
                                            cumulative)) +
             "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(h.hist.total_count)) +
           "\n";
    out += name + "_sum " + FormatDouble(h.hist.sum) + "\n";
    out += name + "_count " +
           StrFormat("%llu",
                     static_cast<unsigned long long>(h.hist.total_count)) +
           "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  // Metric names are code-controlled identifiers (letters, digits, dots,
  // underscores), so plain quoting is safe.
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& c = snapshot.counters[i];
    if (i > 0) out += ',';
    out += "\"" + c.name + "\":" +
           StrFormat("%lld", static_cast<long long>(c.value));
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& g = snapshot.gauges[i];
    if (i > 0) out += ',';
    out += "\"" + g.name + "\":" + FormatDouble(g.value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i > 0) out += ',';
    out += "\"" + h.name + "\":{";
    out += "\"count\":" +
           StrFormat("%llu",
                     static_cast<unsigned long long>(h.hist.total_count));
    out += ",\"sum\":" + FormatDouble(h.hist.sum);
    out += ",\"mean\":" + FormatDouble(h.hist.Mean());
    out += ",\"p50\":" + FormatDouble(h.hist.P50());
    out += ",\"p95\":" + FormatDouble(h.hist.P95());
    out += ",\"p99\":" + FormatDouble(h.hist.P99());
    out += ",\"buckets\":[";
    for (size_t b = 0; b < h.hist.counts.size(); ++b) {
      if (b > 0) out += ',';
      const std::string le = b < h.hist.upper_bounds.size()
                                 ? FormatDouble(h.hist.upper_bounds[b])
                                 : "\"+Inf\"";
      out += "[" + le + "," +
             StrFormat("%llu",
                       static_cast<unsigned long long>(h.hist.counts[b])) +
             "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace cdpipe
