#ifndef CDPIPE_OBS_METRICS_H_
#define CDPIPE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cdpipe {
namespace obs {

/// Monotonically increasing event count.  The hot path is a single relaxed
/// atomic add — safe to call from any thread, never takes a lock.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-writer-wins instantaneous value (queue depth, bytes resident, μ).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram's state; all derived statistics
/// (percentiles, mean) are computed on the snapshot so concurrent writers
/// never skew a half-read distribution.
struct HistogramSnapshot {
  /// Inclusive upper bounds, strictly increasing.  counts has one extra
  /// trailing entry: the overflow bucket (> upper_bounds.back()).
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;
  uint64_t total_count = 0;
  double sum = 0.0;

  double Mean() const {
    return total_count > 0 ? sum / static_cast<double>(total_count) : 0.0;
  }

  /// Quantile in [0, 1] by linear interpolation inside the target bucket
  /// (the first bucket interpolates from 0, the overflow bucket is clamped
  /// to the last finite bound).  Returns 0 for an empty histogram.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// Fixed-bucket histogram with lock-free recording: bucket lookup is a
/// binary search over an immutable bound vector, the update one relaxed
/// atomic increment per bucket plus sum/count.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty, sorted, strictly increasing.  A value
  /// lands in the first bucket whose bound is >= value (Prometheus "le"
  /// semantics); larger values land in the implicit overflow bucket.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);
  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& upper_bounds() const { return upper_bounds_; }

  /// 1µs → ~100s, roughly ×4 per step — covers everything from a component
  /// transform on one row to a full retraining.
  static std::vector<double> DefaultLatencyBoundsSeconds();

 private:
  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // upper_bounds_+overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Everything the registry knows at one instant, sorted by name.  This is
/// the exchange format for the exporters and the per-run report delta.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
    std::string help;  ///< exporter `# HELP` text, empty when unset
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
    std::string help;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot hist;
    std::string help;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Value of the named counter, or `fallback` when it was never recorded
  /// (report consumers read fault/retry counters this way).
  int64_t CounterValueOr(const std::string& name, int64_t fallback) const;

  /// Per-interval view between two snapshots of the same registry: counters
  /// and histogram counts/sums subtract (clamped at zero), gauges keep the
  /// `after` value.  Metrics only present in `after` count from zero.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);
};

/// Thread-safe name → metric registry.  Registration (Get*) takes a mutex
/// and returns a stable pointer; callers cache the pointer and afterwards
/// only touch lock-free atomics.  Use Global() for production metrics and
/// private instances for isolated tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// `help` (when non-null) becomes the metric's exporter `# HELP` text;
  /// the first non-empty help registered for a name wins.
  Counter* GetCounter(const std::string& name, const char* help = nullptr);
  Gauge* GetGauge(const std::string& name, const char* help = nullptr);
  /// Empty `upper_bounds` picks the default latency buckets.  If the name is
  /// already registered, the existing histogram is returned and the bounds
  /// argument is ignored.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {},
                          const char* help = nullptr);

  /// Sets or replaces a metric's help text independently of registration.
  void SetHelp(const std::string& name, std::string help);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (pointers stay valid).  For tests and
  /// long-lived processes that export deltas themselves.
  void ResetValues();

  size_t NumMetrics() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_METRICS_H_
