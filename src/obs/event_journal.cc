#include "src/obs/event_journal.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace obs {
namespace {

std::atomic<uint64_t> next_journal_epoch{1};

/// Per-thread producer registration, keyed by journal epoch so a test's
/// private journal never inherits ids/sequences from an earlier instance
/// that happened to reuse the same address.
struct ProducerState {
  uint64_t journal_epoch = 0;
  uint32_t id = 0;
  uint64_t seq = 0;
};

void SpinAcquire(std::atomic<uint32_t>* guard) {
  uint32_t expected = 0;
  while (!guard->compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    expected = 0;
    std::this_thread::yield();
  }
}

void Release(std::atomic<uint32_t>* guard) {
  guard->store(0, std::memory_order_release);
}

/// JSON string escape for detail strings (same rules as the tracer's).
std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

Counter* JournalDroppedCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.journal_dropped");
  return counter;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kIngest:
      return "ingest";
    case EventKind::kMaterializeHit:
      return "materialize_hit";
    case EventKind::kMaterializeMiss:
      return "materialize_miss";
    case EventKind::kRecompute:
      return "recompute";
    case EventKind::kSample:
      return "sample";
    case EventKind::kTrainStep:
      return "train_step";
    case EventKind::kDriftTrigger:
      return "drift_trigger";
    case EventKind::kRetry:
      return "retry";
    case EventKind::kDegrade:
      return "degrade";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kEvict:
      return "evict";
    case EventKind::kStall:
      return "stall";
    case EventKind::kRecover:
      return "recover";
    case EventKind::kPlanCompile:
      return "plan_compile";
    case EventKind::kSnapshotPublish:
      return "snapshot_publish";
    case EventKind::kSnapshotSwap:
      return "snapshot_swap";
    case EventKind::kSpill:
      return "spill";
    case EventKind::kDiskLoad:
      return "disk_load";
    case EventKind::kPrefetchHit:
      return "prefetch_hit";
    case EventKind::kAdmit:
      return "admit";
    case EventKind::kShed:
      return "shed";
    case EventKind::kPressureChange:
      return "pressure_change";
  }
  return "unknown";
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(next_journal_epoch.fetch_add(1, std::memory_order_relaxed)),
      slots_(std::make_unique<Slot[]>(std::max<size_t>(1, capacity))) {}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = [] {
    size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("CDPIPE_JOURNAL_CAPACITY");
        env != nullptr && env[0] != '\0') {
      const long parsed = std::atol(env);
      if (parsed > 0) capacity = static_cast<size_t>(parsed);
    }
    auto* instance = new EventJournal(capacity);
    if (const char* env = std::getenv("CDPIPE_JOURNAL");
        env != nullptr && std::strcmp(env, "off") == 0) {
      instance->Disable();
    }
    return instance;
  }();
  return *journal;
}

void EventJournal::Append(EventKind kind, CorrelationId corr,
                          const char* detail) {
  if (!enabled()) return;
  AppendImpl(kind, corr, detail);
}

void EventJournal::Append(EventKind kind, const char* detail) {
  if (!enabled()) return;
  AppendImpl(kind, CorrelationScope::Current(), detail);
}

void EventJournal::AppendImpl(EventKind kind, CorrelationId corr,
                              const char* detail) {
  thread_local std::vector<ProducerState> producers;
  ProducerState* state = nullptr;
  for (ProducerState& candidate : producers) {
    if (candidate.journal_epoch == epoch_) {
      state = &candidate;
      break;
    }
  }
  if (state == nullptr) {
    ProducerState fresh;
    fresh.journal_epoch = epoch_;
    fresh.id = next_producer_.fetch_add(1, std::memory_order_relaxed);
    producers.push_back(fresh);
    state = &producers.back();
  }

  const uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[ticket % capacity_];
  SpinAcquire(&slot.guard);
  if (slot.published.load(std::memory_order_relaxed) != 0) {
    // Drop-oldest: the event previously published here is gone.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    JournalDroppedCounter()->Increment();
  }
  slot.event.kind = kind;
  slot.event.producer = state->id;
  slot.event.seq = ++state->seq;
  slot.event.timestamp_us = Tracer::NowMicros();
  slot.event.corr = corr;
  if (detail == nullptr) detail = "";
  std::strncpy(slot.event.detail, detail, sizeof(slot.event.detail) - 1);
  slot.event.detail[sizeof(slot.event.detail) - 1] = '\0';
  slot.published.store(ticket + 1, std::memory_order_relaxed);
  Release(&slot.guard);
}

std::vector<JournalEvent> EventJournal::Tail(size_t max_events) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t window = std::min<uint64_t>(
      {static_cast<uint64_t>(max_events), static_cast<uint64_t>(capacity_),
       head});
  std::vector<JournalEvent> out;
  out.reserve(window);
  for (uint64_t ticket = head - window; ticket < head; ++ticket) {
    Slot& slot = const_cast<Slot&>(slots_[ticket % capacity_]);
    SpinAcquire(&slot.guard);
    // Only surface the event if the slot still holds this exact ticket —
    // a concurrent wrap may have replaced (or not yet written) it.
    if (slot.published.load(std::memory_order_relaxed) == ticket + 1) {
      out.push_back(slot.event);
    }
    Release(&slot.guard);
  }
  return out;
}

std::string EventJournal::TailToJson(size_t max_events) const {
  const std::vector<JournalEvent> events = Tail(max_events);
  std::string out = StrFormat(
      "{\"appended\":%llu,\"dropped\":%llu,\"capacity\":%zu,\"events\":[",
      static_cast<unsigned long long>(TotalAppended()),
      static_cast<unsigned long long>(TotalDropped()), capacity_);
  for (size_t i = 0; i < events.size(); ++i) {
    const JournalEvent& e = events[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"kind\":\"%s\",\"t_us\":%lld,\"deployment\":%u,\"entity\":%lld,"
        "\"producer\":%u,\"seq\":%llu,\"detail\":\"%s\"}",
        EventKindName(e.kind), static_cast<long long>(e.timestamp_us),
        e.corr.deployment, static_cast<long long>(e.corr.entity), e.producer,
        static_cast<unsigned long long>(e.seq), JsonEscape(e.detail).c_str());
  }
  out += "]}";
  return out;
}

void EventJournal::Clear() {
  const uint64_t head = head_.load(std::memory_order_acquire);
  for (uint64_t i = 0; i < std::min<uint64_t>(head, capacity_); ++i) {
    Slot& slot = slots_[i];
    SpinAcquire(&slot.guard);
    slot.published.store(0, std::memory_order_relaxed);
    Release(&slot.guard);
  }
  head_.store(0, std::memory_order_release);
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace cdpipe
