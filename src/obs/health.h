#ifndef CDPIPE_OBS_HEALTH_H_
#define CDPIPE_OBS_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/event_journal.h"

namespace cdpipe {
namespace obs {

/// Liveness signal published by one subsystem (engine pool, trainer,
/// ingest, deployment loop).  Beating is a pair of relaxed atomic stores —
/// cheap enough for per-task use.
///
/// Stall semantics are progress-based, not idle-based: a subsystem is only
/// considered stalled when it has work in flight (`busy() > 0`) and its
/// last beat is older than the watchdog deadline.  An idle subsystem
/// (workers parked on a condition variable, deployment between runs) is
/// healthy no matter how old its last beat is.
class Heartbeat {
 public:
  /// Records progress: refreshes the beat timestamp (Tracer timebase) and
  /// bumps the beat count.
  void Beat();

  /// Marks work in flight.  Pair every BeginWork with an EndWork; both
  /// also count as a beat.
  void BeginWork();
  void EndWork();

  int64_t last_beat_us() const {
    return last_beat_us_.load(std::memory_order_relaxed);
  }
  uint64_t beats() const { return beats_.load(std::memory_order_relaxed); }
  int64_t busy() const { return busy_.load(std::memory_order_relaxed); }

  /// RAII BeginWork/EndWork.
  class WorkScope {
   public:
    explicit WorkScope(Heartbeat* heartbeat) : heartbeat_(heartbeat) {
      if (heartbeat_ != nullptr) heartbeat_->BeginWork();
    }
    ~WorkScope() {
      if (heartbeat_ != nullptr) heartbeat_->EndWork();
    }
    WorkScope(const WorkScope&) = delete;
    WorkScope& operator=(const WorkScope&) = delete;

   private:
    Heartbeat* heartbeat_;
  };

 private:
  std::atomic<int64_t> last_beat_us_{-1};  ///< -1 = never beat
  std::atomic<uint64_t> beats_{0};
  std::atomic<int64_t> busy_{0};
};

/// Point-in-time view of one subsystem for /readyz and test assertions.
struct SubsystemHealth {
  std::string name;
  int64_t last_beat_us = -1;
  uint64_t beats = 0;
  int64_t busy = 0;
  double age_seconds = 0.0;  ///< now - last beat (0 when never beat)
  bool stalled = false;      ///< busy and silent past the deadline
};

/// Thread-safe name → heartbeat registry, mirroring MetricsRegistry:
/// registration takes a mutex and returns a stable pointer; beating is
/// lock-free.  Use Global() in production code and private instances in
/// tests.
class HealthRegistry {
 public:
  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  static HealthRegistry& Global();

  Heartbeat* GetHeartbeat(const std::string& subsystem);

  /// All subsystems, sorted by name, with stall state evaluated against
  /// `stall_deadline_seconds` at `now_us` (Tracer timebase).
  std::vector<SubsystemHealth> Snapshot(double stall_deadline_seconds,
                                        int64_t now_us) const;

  size_t NumSubsystems() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Heartbeat>> heartbeats_;
};

/// JSON for the /readyz endpoint:
///   {"ready":true,"subsystems":[{"name":...,"busy":1,"age_seconds":...,
///    "beats":123,"stalled":false},...]}
std::string HealthToJson(const std::vector<SubsystemHealth>& subsystems,
                         bool ready);

/// Plaintext body for a 503 /readyz: one `not ready:` line naming each
/// stalled subsystem (with busy count and silence age) and, when
/// `ingest_overloaded` is set, the ingest admission queue.  Readable from a
/// probe log without a JSON parser:
///   not ready: stalled=trainer (busy=1, silent 6.2s); ingest overloaded
std::string NotReadyReason(const std::vector<SubsystemHealth>& subsystems,
                           bool ingest_overloaded);

/// Background stall detector.  Polls the health registry; when a busy
/// subsystem goes silent past the deadline it flips readiness, emits an
/// `obs.stall` journal event (detail: the subsystem name), increments the
/// `obs.stalls` counter, and logs a warning.  When the subsystem beats
/// again readiness is restored and an `obs.recover` event is emitted.
class Watchdog {
 public:
  struct Options {
    /// A busy subsystem silent for longer than this is stalled.
    double stall_deadline_seconds = 5.0;
    double poll_interval_seconds = 0.25;
    /// Registry/journal to watch; null = the globals.
    HealthRegistry* health = nullptr;
    EventJournal* journal = nullptr;
  };

  Watchdog();
  explicit Watchdog(Options options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the background poll thread (no-op when already running).
  void Start();
  /// Stops and joins it.
  void Stop();

  /// One poll pass, runnable inline for deterministic tests (also what the
  /// background thread executes).
  void PollOnce();

  /// False while any subsystem is stalled.  Mirrored into the `obs.ready`
  /// gauge (1/0).
  bool ready() const { return ready_.load(std::memory_order_relaxed); }
  /// Stall transitions observed since construction (never reset; a
  /// recovered subsystem that stalls again counts twice).
  int64_t stall_events() const {
    return stall_events_.load(std::memory_order_relaxed);
  }
  int64_t recover_events() const {
    return recover_events_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  void Loop();

  Options options_;
  std::atomic<bool> ready_{true};
  std::atomic<int64_t> stall_events_{0};
  std::atomic<int64_t> recover_events_{0};

  std::mutex mu_;  ///< guards stalled_ and the thread lifecycle
  std::set<std::string> stalled_;
  std::thread thread_;
  bool running_ = false;
  std::condition_variable wake_;
};

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_HEALTH_H_
