#ifndef CDPIPE_OBS_TRACE_H_
#define CDPIPE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/correlation.h"

namespace cdpipe {
namespace obs {

/// One completed span, ready for Chrome trace format ("ph":"X").  Names are
/// copied into fixed storage so events never dangle and recording never
/// allocates.
struct TraceEvent {
  char name[64];
  char category[16];
  int64_t start_us = 0;     ///< microseconds since tracer epoch
  int64_t duration_us = 0;
  /// Correlation captured from the recording thread's CorrelationScope;
  /// emitted as Chrome-trace "args" so spans join up with journal events.
  uint32_t deployment = 0;  ///< 0 = none
  int64_t entity = -1;      ///< chunk id / step seq, -1 = none
};

/// Process-wide span recorder.  Disabled by default: the enabled check is a
/// single relaxed atomic load, so leaving instrumentation in hot paths is
/// free.  When enabled (programmatically or via the CDPIPE_TRACE environment
/// variable, whose value is the output path), every span goes into a
/// per-thread ring buffer — threads never contend with each other; the only
/// lock is the buffer's own mutex, uncontended except while a dump snapshots
/// it.  `WriteChromeTrace` emits a JSON file loadable in chrome://tracing
/// (or https://ui.perfetto.dev).  When CDPIPE_TRACE is set, the trace is
/// also dumped automatically at process exit.
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Microseconds since the tracer epoch (first use), steady clock.
  static int64_t NowMicros();

  /// Appends a completed span to the calling thread's ring buffer.  When the
  /// ring is full the oldest events are overwritten (counted as dropped and
  /// reflected in the `obs.trace_dropped` counter).
  void RecordComplete(const char* name, const char* category,
                      int64_t start_us, int64_t duration_us,
                      CorrelationId corr = CorrelationId{});

  /// Chrome trace format: {"traceEvents":[{"ph":"X",...},...]}.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Where the automatic exit dump goes ("" = no dump).
  void SetDumpPath(std::string path);
  std::string dump_path() const;

  /// Events currently held across all thread buffers (post-overwrite).
  size_t NumBufferedEvents() const;
  uint64_t NumDroppedEvents() const;

  /// Drops all buffered events (buffers stay registered).  Tests only.
  void Clear();

  /// Ring capacity for buffers created after the call (existing buffers are
  /// unchanged).  Also configurable at startup via the CDPIPE_TRACE_RING
  /// environment variable.
  void SetRingCapacityForNewThreads(size_t capacity);
  size_t ring_capacity_for_new_threads() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  ~Tracer();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  ///< sized to capacity on first event
    size_t capacity = 0;
    size_t next = 0;       ///< write cursor
    bool wrapped = false;  ///< ring has overwritten at least once
    uint64_t dropped = 0;
    uint32_t tid = 0;      ///< stable small id for the trace output
  };

  Tracer();
  ThreadBuffer* BufferForThisThread();
  void AppendEventsLocked(const ThreadBuffer& buffer,
                          std::vector<std::pair<uint32_t, TraceEvent>>* out)
      const;

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{1u << 16};
  std::atomic<uint32_t> next_tid_{1};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string dump_path_;
};

/// RAII span: records [construction, destruction) into the global tracer.
/// When tracing is disabled the constructor is one atomic load and the
/// destructor a branch — cheap enough for per-chunk and per-component use.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "cdpipe")
      : active_(Tracer::Global().enabled()), name_(name), category_(category) {
    if (active_) {
      corr_ = CorrelationScope::Current();
      start_us_ = Tracer::NowMicros();
    }
  }

  /// Dynamic-name variant (e.g. a pipeline component's name).  The string is
  /// only copied when tracing is enabled.
  explicit ScopedSpan(const std::string& name,
                      const char* category = "cdpipe")
      : active_(Tracer::Global().enabled()), category_(category) {
    if (active_) {
      owned_name_ = name;
      name_ = owned_name_.c_str();
      corr_ = CorrelationScope::Current();
      start_us_ = Tracer::NowMicros();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) {
      Tracer::Global().RecordComplete(name_, category_, start_us_,
                                      Tracer::NowMicros() - start_us_, corr_);
    }
  }

 private:
  bool active_;
  const char* name_ = "";
  const char* category_;
  int64_t start_us_ = 0;
  CorrelationId corr_;
  std::string owned_name_;
};

#define CDPIPE_SPAN_CONCAT_IMPL_(a, b) a##b
#define CDPIPE_SPAN_CONCAT_(a, b) CDPIPE_SPAN_CONCAT_IMPL_(a, b)
/// Declares a scoped span covering the rest of the enclosing block.
#define CDPIPE_TRACE_SPAN(...) \
  ::cdpipe::obs::ScopedSpan CDPIPE_SPAN_CONCAT_(cdpipe_span_, \
                                                __COUNTER__)(__VA_ARGS__)

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_TRACE_H_
