#ifndef CDPIPE_OBS_EVENT_JOURNAL_H_
#define CDPIPE_OBS_EVENT_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/correlation.h"

namespace cdpipe {
namespace obs {

/// The structured-event vocabulary of the deployment loop.  One entry per
/// operationally meaningful transition; the journal is what an operator
/// tails (via the obs server's /events endpoint) to see what a live
/// deployment is doing.
enum class EventKind : uint8_t {
  kIngest = 0,          ///< raw chunk accepted into the store
  kMaterializeHit,      ///< sampled chunk found materialized
  kMaterializeMiss,     ///< sampled chunk must be re-materialized
  kRecompute,           ///< chunk re-materialized through the pipeline
  kSample,              ///< one proactive sample drawn (detail: hits/misses)
  kTrainStep,           ///< one proactive/retraining SGD step applied
  kDriftTrigger,        ///< drift detector confirmed a drift
  kRetry,               ///< transient failure retried (detail: op name)
  kDegrade,             ///< graceful degradation taken (detail: which)
  kCheckpoint,          ///< checkpoint saved or restored
  kEvict,               ///< feature chunk evicted / raw chunk dropped
  kStall,               ///< watchdog: subsystem heartbeat went silent
  kRecover,             ///< watchdog: stalled subsystem beat again
  kPlanCompile,         ///< fused transform plan (re)compiled for a pipeline
  kSnapshotPublish,     ///< serving snapshot epoch published
  kSnapshotSwap,        ///< serving snapshot replaced a previous epoch
  kSpill,               ///< raw chunk written to the disk tier
  kDiskLoad,            ///< spilled chunk loaded synchronously
  kPrefetchHit,         ///< spilled chunk served from the prefetch stage
  kAdmit,               ///< chunk admitted into a bounded ingest queue
  kShed,                ///< chunk dropped by admission control (detail: why)
  kPressureChange,      ///< ingest load state transitioned (detail: from->to)
};

/// Stable lowercase identifier ("ingest", "materialize_hit", ...).
const char* EventKindName(EventKind kind);

/// One journal entry.  Fixed-size (no heap ownership) so ring slots can be
/// overwritten in place and copied out without allocation.
struct JournalEvent {
  EventKind kind = EventKind::kIngest;
  /// Small stable id of the producing thread (assigned on first append).
  uint32_t producer = 0;
  /// Per-producer monotonic sequence number (starts at 1).  Lets consumers
  /// detect reordering/loss per thread even after the ring wrapped.
  uint64_t seq = 0;
  /// Microseconds on the Tracer::NowMicros timebase — the same clock the
  /// span tree uses, so events and spans interleave correctly.
  int64_t timestamp_us = 0;
  CorrelationId corr;
  /// Short free-text detail ("hits=7 misses=3", "op=deployment.ingest").
  char detail[48] = {0};
};

/// Fixed-capacity multi-producer ring journal of structured events.
///
/// Appending is the hot path and never blocks: a producer claims a slot
/// with one wait-free fetch_add on the head ticket, then publishes the
/// event under that slot's one-word guard.  The guard is only ever
/// contended when the ring wraps onto a slot another thread is still
/// writing (capacity >> producers makes that vanishingly rare) or while a
/// reader copies that exact slot; the writer spins for those few stores.
/// When the ring is full the oldest event is overwritten and counted in
/// `TotalDropped()` (drop-oldest), so with no appends in flight
/// `TotalAppended() == live events + TotalDropped()` exactly.
///
/// Reading (`Tail`) is the cold path (an HTTP endpoint, a test assertion):
/// it walks the most recent tickets and copies each published event out
/// under its slot guard.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  explicit EventJournal(size_t capacity = kDefaultCapacity);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// The process-wide journal every instrumented subsystem appends to.
  /// Enabled by default (events are per chunk / per step, not per row —
  /// the cost is a handful of relaxed atomics).  CDPIPE_JOURNAL=off
  /// disables it at startup; CDPIPE_JOURNAL_CAPACITY overrides the ring
  /// size.
  static EventJournal& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Appends one event with an explicit correlation id.  `detail` is
  /// truncated to the fixed event storage.
  void Append(EventKind kind, CorrelationId corr, const char* detail = "");

  /// Appends with the calling thread's current CorrelationScope.
  void Append(EventKind kind, const char* detail = "");

  /// The newest `max_events` published events, oldest first.  Events being
  /// overwritten concurrently are skipped, so the result is a consistent
  /// best-effort snapshot.
  std::vector<JournalEvent> Tail(size_t max_events) const;

  /// JSON for the /events endpoint:
  ///   {"appended":N,"dropped":D,"capacity":C,
  ///    "events":[{"kind":"ingest","t_us":...,"deployment":1,"entity":42,
  ///               "producer":2,"seq":17,"detail":"..."},...]}
  std::string TailToJson(size_t max_events) const;

  /// Total events ever appended (including ones since overwritten).
  uint64_t TotalAppended() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events no longer retrievable: overwritten by the drop-oldest policy.
  uint64_t TotalDropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// Drops all buffered events and zeroes the counters.  Tests only: must
  /// not race concurrent appends.
  void Clear();

 private:
  struct Slot {
    /// One-word guard: 0 = free, 1 = held by a writer or reader.
    std::atomic<uint32_t> guard{0};
    /// ticket + 1 of the event currently published here; 0 = empty.
    std::atomic<uint64_t> published{0};
    JournalEvent event;  ///< written/read only while `guard` is held
  };

  void AppendImpl(EventKind kind, CorrelationId corr, const char* detail);

  std::atomic<bool> enabled_{true};
  const size_t capacity_;
  /// Distinguishes journal instances across create/destroy cycles so
  /// thread-local producer registrations never leak between journals.
  const uint64_t epoch_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};     ///< next ticket == total appended
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_producer_{1};
};

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_EVENT_JOURNAL_H_
