#include "src/obs/correlation.h"

namespace cdpipe {
namespace obs {
namespace {

thread_local CorrelationId current_correlation;  // {0, -1} by default

}  // namespace

std::string CorrelationId::ToString() const {
  std::string out;
  if (deployment > 0) {
    out = "d" + std::to_string(deployment);
  } else {
    out = "-";
  }
  out += '/';
  if (entity >= 0) {
    out += std::to_string(entity);
  } else {
    out += '-';
  }
  return out;
}

CorrelationScope::CorrelationScope(CorrelationId id)
    : previous_(current_correlation) {
  current_correlation = id;
}

CorrelationScope::~CorrelationScope() { current_correlation = previous_; }

CorrelationId CorrelationScope::Current() { return current_correlation; }

CorrelationId CorrelationScope::WithEntity(int64_t entity) {
  return CorrelationId{current_correlation.deployment, entity};
}

}  // namespace obs
}  // namespace cdpipe
