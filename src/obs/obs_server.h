#ifndef CDPIPE_OBS_OBS_SERVER_H_
#define CDPIPE_OBS_OBS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"

namespace cdpipe {
namespace obs {

/// Embedded HTTP observability endpoint: a tiny blocking-accept loop on one
/// background thread, plain POSIX sockets, no third-party dependencies.
/// Serves GET requests, one connection at a time (HTTP/1.0, Connection:
/// close) — this is an operator/scraper surface, not a serving tier.
///
/// Endpoints:
///   /metrics        Prometheus text exposition of the metrics registry
///   /healthz        liveness JSON (200 while the process runs)
///   /readyz         readiness JSON from the health registry; 503 when a
///                   busy subsystem is silent past the stall deadline
///   /events?n=K     newest K journal events as JSON (default 100)
///   /trace          Chrome-trace JSON of the live span recorder
class ObsServer {
 public:
  struct Options {
    /// Bind address.  Loopback by default: the obs plane is unauthenticated
    /// and must not be exposed beyond the host unless deliberately.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Stall deadline used by /readyz (kept in sync with the watchdog's
    /// when one is attached).
    double stall_deadline_seconds = 5.0;
    /// Default event count for /events without ?n=.
    size_t default_events = 100;
    /// Sources; null = the process-wide instances.
    MetricsRegistry* metrics = nullptr;
    EventJournal* journal = nullptr;
    HealthRegistry* health = nullptr;
    /// When set, /readyz reports the watchdog's readiness verdict instead
    /// of re-deriving it from heartbeat ages.
    const Watchdog* watchdog = nullptr;
  };

  ObsServer();
  explicit ObsServer(Options options);
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Binds, listens, and starts the accept thread.  Fails with
  /// kUnavailable when the address cannot be bound.
  Status Start();
  /// Closes the listen socket and joins the accept thread (idempotent).
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// The bound port (resolved after Start() when options.port == 0).
  uint16_t port() const { return port_.load(std::memory_order_relaxed); }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Routing without sockets, for unit tests: takes a raw request string
  /// ("GET /metrics HTTP/1.0\r\n\r\n") and returns the full HTTP response.
  std::string HandleRequest(const std::string& request);

 private:
  void AcceptLoop();
  std::string RouteGet(const std::string& path_and_query);

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<uint16_t> port_{0};
  std::atomic<uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace obs
}  // namespace cdpipe

#endif  // CDPIPE_OBS_OBS_SERVER_H_
