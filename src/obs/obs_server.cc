#include "src/obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/obs/exporters.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace obs {
namespace {

Counter* RequestsCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.server_requests");
  return counter;
}

std::string HttpResponse(int status, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = StrFormat(
      "HTTP/1.0 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      status, reason, content_type, body.size());
  out += body;
  return out;
}

/// Parses "n=K" out of a raw query string; returns fallback when absent or
/// malformed.
size_t ParseEventCount(const std::string& query, size_t fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string param = query.substr(pos, end - pos);
    if (param.rfind("n=", 0) == 0) {
      const long parsed = std::atol(param.c_str() + 2);
      if (parsed > 0) return static_cast<size_t>(parsed);
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

}  // namespace

ObsServer::ObsServer() : ObsServer(Options()) {}

ObsServer::ObsServer(Options options) : options_(std::move(options)) {
  if (options_.metrics == nullptr) options_.metrics = &MetricsRegistry::Global();
  if (options_.journal == nullptr) options_.journal = &EventJournal::Global();
  if (options_.health == nullptr) options_.health = &HealthRegistry::Global();
  if (options_.watchdog != nullptr) {
    options_.stall_deadline_seconds =
        options_.watchdog->options().stall_deadline_seconds;
  }
}

ObsServer::~ObsServer() { Stop(); }

Status ObsServer::Start() {
  if (running_.load(std::memory_order_relaxed)) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status(StatusCode::kUnavailable,
                  StrFormat("obs server: socket() failed: %s",
                            std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("obs server: bad host '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = StrFormat(
        "obs server: bind(%s:%u) failed: %s", options_.host.c_str(),
        static_cast<unsigned>(options_.port), std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(StatusCode::kUnavailable, message);
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string message = StrFormat("obs server: listen() failed: %s",
                                          std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(StatusCode::kUnavailable, message);
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);
  } else {
    port_.store(options_.port, std::memory_order_relaxed);
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&ObsServer::AcceptLoop, this);
  CDPIPE_LOG(Info) << "obs server listening on " << options_.host << ":"
                   << port();
  return Status::OK();
}

void ObsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() in the loop thread; close() releases
  // the fd once the thread has observed running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ObsServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      CDPIPE_LOG(Warning) << "obs server: accept() failed: "
                          << std::strerror(errno);
      break;
    }
    // Bound how long a slow or silent client can hold the single-threaded
    // accept loop hostage.
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    // Read until the end of the request head (body-less GETs only).
    std::string request;
    char buffer[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < (64u << 10)) {
      const ssize_t n = ::recv(conn, buffer, sizeof(buffer), 0);
      if (n <= 0) break;
      request.append(buffer, static_cast<size_t>(n));
    }

    const std::string response = HandleRequest(request);
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(conn, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(conn);
  }
}

std::string ObsServer::HandleRequest(const std::string& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  RequestsCounter()->Increment();

  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (method_end == std::string::npos) {
    return HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                        "malformed request line\n");
  }
  const std::string method = line.substr(0, method_end);
  const size_t target_end = line.find(' ', method_end + 1);
  const std::string target =
      target_end == std::string::npos
          ? line.substr(method_end + 1)
          : line.substr(method_end + 1, target_end - method_end - 1);

  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed",
                        "text/plain; charset=utf-8", "GET only\n");
  }
  return RouteGet(target);
}

std::string ObsServer::RouteGet(const std::string& path_and_query) {
  const size_t query_pos = path_and_query.find('?');
  const std::string path = path_and_query.substr(0, query_pos);
  const std::string query = query_pos == std::string::npos
                                ? std::string()
                                : path_and_query.substr(query_pos + 1);

  if (path == "/metrics") {
    return HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                        ToPrometheusText(options_.metrics->Snapshot()));
  }
  if (path == "/healthz") {
    // Liveness: the fact that this handler runs is the signal.
    return HttpResponse(200, "OK", "application/json",
                        "{\"status\":\"ok\"}\n");
  }
  if (path == "/readyz") {
    const std::vector<SubsystemHealth> subsystems = options_.health->Snapshot(
        options_.stall_deadline_seconds, Tracer::NowMicros());
    bool ready;
    if (options_.watchdog != nullptr) {
      ready = options_.watchdog->ready();
    } else {
      ready = true;
      for (const SubsystemHealth& s : subsystems) ready = ready && !s.stalled;
    }
    // An overloaded ingest admission queue also flips readiness: load
    // balancers should steer traffic away while the backlog drains.  The
    // gauge is reset when the run's AdmissionController is destroyed.
    const bool ingest_overloaded =
        options_.metrics->GetGauge("ingest.load_state")->Value() >= 2.0;
    if (ready && !ingest_overloaded) {
      return HttpResponse(200, "OK", "application/json",
                          HealthToJson(subsystems, true));
    }
    // 503 carries a short plaintext reason (which subsystem stalled, or
    // overload) instead of the JSON body — probe logs capture one line.
    return HttpResponse(503, "Service Unavailable",
                        "text/plain; charset=utf-8",
                        NotReadyReason(subsystems, ingest_overloaded));
  }
  if (path == "/events") {
    const size_t n = ParseEventCount(query, options_.default_events);
    return HttpResponse(200, "OK", "application/json",
                        options_.journal->TailToJson(n));
  }
  if (path == "/trace") {
    return HttpResponse(200, "OK", "application/json",
                        Tracer::Global().ToChromeTraceJson());
  }
  return HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                      "unknown path; try /metrics /healthz /readyz /events"
                      " /trace\n");
}

}  // namespace obs
}  // namespace cdpipe
