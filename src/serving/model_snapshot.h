#ifndef CDPIPE_SERVING_MODEL_SNAPSHOT_H_
#define CDPIPE_SERVING_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "src/ml/linear_model.h"
#include "src/pipeline/pipeline.h"

namespace cdpipe {
namespace serving {

/// One immutable epoch of the deployed state: everything a prediction
/// request needs, frozen at publish time.
///
/// The triple is *deep-frozen*: the pipeline is a Clone() of the live one
/// (own component statistics, own plan cache, own scratch pool — nothing
/// mutable is reachable from the trainer's copy), and the model is a value
/// copy of the live weights.  After construction nothing ever writes to a
/// snapshot; readers only call the const transform/predict paths, which are
/// safe to run from any number of threads concurrently (the plan cache and
/// scratch pool carry their own internal locks, component drop counters are
/// atomics, and statistics are never touched outside Update — which is
/// never called on a snapshot).
///
/// Train/serve consistency (paper §4.3) is preserved per epoch: the
/// pipeline statistics and the model weights in one snapshot were published
/// together from one quiescent point of the deployment loop, so a request
/// is never answered with a model trained against newer statistics than the
/// ones transforming its features.
struct ModelSnapshot {
  /// Publisher-assigned epoch, starting at 1 and strictly increasing.
  uint64_t epoch = 0;
  /// Deep-frozen preprocessing pipeline (statistics as of publish).
  std::shared_ptr<const Pipeline> pipeline;
  /// Deployed model weights as of publish.
  std::shared_ptr<const LinearModel> model;
  /// The live pipeline's statistics version at publish time.  Lets the
  /// publisher share one pipeline clone across consecutive epochs whose
  /// statistics did not change (model-only republish after a proactive
  /// step).
  uint64_t pipeline_version = 0;
  /// Publish instant on the Tracer::NowMicros timebase.
  int64_t published_us = 0;
  /// Torn-publish canary: written equal to `epoch` as the last field of the
  /// snapshot before the pointer swap.  A reader that ever observes a
  /// snapshot failing Consistent() has found a torn publish (counted in
  /// `serving.torn_reads`; always zero by construction).
  uint64_t epoch_check = 0;

  bool Consistent() const {
    return epoch != 0 && epoch == epoch_check && pipeline != nullptr &&
           model != nullptr;
  }
};

}  // namespace serving
}  // namespace cdpipe

#endif  // CDPIPE_SERVING_MODEL_SNAPSHOT_H_
