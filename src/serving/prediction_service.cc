#include "src/serving/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/obs/correlation.h"
#include "src/obs/event_journal.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/testing/fault_injector.h"

namespace cdpipe {
namespace serving {

namespace {

struct ServingMetrics {
  obs::Counter* requests;
  obs::Counter* records;
  obs::Counter* errors;
  obs::Counter* shed;
  obs::Histogram* latency;
  obs::Gauge* queue_depth;
  obs::Gauge* queue_high_watermark;
};

ServingMetrics& Metrics() {
  static ServingMetrics m = [] {
    auto& registry = obs::MetricsRegistry::Global();
    ServingMetrics out;
    out.requests = registry.GetCounter("serving.requests",
                                       "Prediction requests answered");
    out.records = registry.GetCounter("serving.records",
                                      "Rows scored by the serving tier");
    out.errors = registry.GetCounter(
        "serving.errors", "Prediction requests answered with an error");
    out.shed = registry.GetCounter(
        "serving.shed",
        "Prediction requests dropped at a full queue (admission timeout)");
    out.latency = registry.GetHistogram("serving.latency_seconds", {},
                                        "Per-request serving latency");
    out.queue_depth =
        registry.GetGauge("serving.queue_depth", "Pending serving requests");
    out.queue_high_watermark = registry.GetGauge(
        "serving.queue_high_watermark", "Peak pending serving requests");
    return out;
  }();
  return m;
}

}  // namespace

PredictionService::PredictionService(const SnapshotPublisher* publisher,
                                     Options options)
    : publisher_(publisher), options_(options) {
  options_.num_threads = std::max(1, options_.num_threads);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  Metrics();  // serving.* exist (at zero) from construction
}

PredictionService::~PredictionService() { Stop(); }

Status PredictionService::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("prediction service already running");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void PredictionService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
  // Workers drain the queue before exiting, so this only fires if Stop ran
  // before Start ever did (or a worker died) — never leave a promise
  // unfulfilled.
  std::deque<std::unique_ptr<Pending>> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    Metrics().queue_depth->Set(0);
  }
  for (auto& pending : leftover) {
    pending->promise.set_value(
        Status::Unavailable("prediction service stopped"));
  }
}

Result<PredictionService::Response> PredictionService::Predict(
    const RawChunk& chunk) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::Unavailable("prediction service not running");
  }
  auto pending = std::make_unique<Pending>();
  pending->chunk = &chunk;
  pending->request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::future<Result<Response>> future = pending->promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto slot_free = [this] {
      return stopping_ || queue_.size() < options_.queue_capacity;
    };
    if (options_.admission_timeout_seconds < 0.0) {
      not_full_.wait(lock, slot_free);
    } else if (!not_full_.wait_for(
                   lock,
                   std::chrono::duration<double>(
                       options_.admission_timeout_seconds),
                   slot_free)) {
      // Same shed vocabulary as the ingest queue: `serving.shed` counts
      // requests dropped instead of queued, journaled as a kShed event.
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      Metrics().shed->Increment();
      lock.unlock();
      obs::EventJournal::Global().Append(
          obs::EventKind::kShed,
          obs::CorrelationId{options_.deployment_id, pending->request_id},
          "reason=serving_timeout");
      return Status::Unavailable("prediction request shed: queue full");
    }
    if (stopping_) {
      return Status::Unavailable("prediction service stopping");
    }
    queue_.push_back(std::move(pending));
    queue_high_watermark_ = std::max(queue_high_watermark_, queue_.size());
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    Metrics().queue_high_watermark->Set(
        static_cast<double>(queue_high_watermark_));
  }
  not_empty_.notify_one();
  return future.get();
}

Result<PredictionService::Response> PredictionService::PredictRecord(
    const std::string& record) {
  RawChunk chunk;
  chunk.records.push_back(record);
  return Predict(chunk);
}

Result<PredictionService::Response> PredictionService::PredictWith(
    SnapshotReader* reader, const RawChunk& chunk) const {
  return ServeOne(reader, chunk,
                  next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void PredictionService::WorkerLoop() {
  obs::Heartbeat* heartbeat =
      obs::HealthRegistry::Global().GetHeartbeat("serving");
  SnapshotReader reader(publisher_);
  for (;;) {
    std::unique_ptr<Pending> request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      request = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    heartbeat->Beat();
    {
      // Busy-but-silent inside a wedged request is exactly the watchdog's
      // stall condition, so /readyz flips if the loop stops making
      // progress mid-request.
      obs::Heartbeat::WorkScope work(heartbeat);
      request->promise.set_value(
          ServeOne(&reader, *request->chunk, request->request_id));
    }
    heartbeat->Beat();
  }
}

Result<PredictionService::Response> PredictionService::ServeOne(
    SnapshotReader* reader, const RawChunk& chunk, int64_t request_id) const {
  obs::CorrelationScope corr(options_.deployment_id, request_id);
  CDPIPE_TRACE_SPAN("serving.request", "serving");
  const int64_t start_us = obs::Tracer::NowMicros();
  Result<Response> result = [&]() -> Result<Response> {
    CDPIPE_FAULT_DELAY("serving.slow_request");
    CDPIPE_FAULT_POINT("serving.request");
    std::shared_ptr<const ModelSnapshot> snapshot = reader->Current();
    if (snapshot == nullptr) {
      return Status::Unavailable("serving: no snapshot published yet");
    }
    size_t rows_scanned = 0;
    Result<FeatureData> features = snapshot->pipeline->Transform(
        chunk, nullptr, &rows_scanned, options_.exec_mode);
    if (!features.ok()) return features.status();
    Response response;
    response.epoch = snapshot->epoch;
    response.request_id = request_id;
    snapshot->model->PredictBatch(*features, &response.scores);
    response.labels.reserve(response.scores.size());
    for (double score : response.scores) {
      response.labels.push_back(score >= 0.0 ? 1.0 : -1.0);
    }
    response.true_labels = std::move(features->labels);
    response.rows_dropped = chunk.num_rows() - response.scores.size();
    return response;
  }();
  const double latency =
      static_cast<double>(obs::Tracer::NowMicros() - start_us) * 1e-6;
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  ServingMetrics& metrics = Metrics();
  metrics.requests->Increment();
  metrics.latency->Observe(latency);
  if (result.ok()) {
    result->latency_seconds = latency;
    metrics.records->Add(static_cast<int64_t>(result->scores.size()));
  } else {
    request_errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
  }
  return result;
}

}  // namespace serving
}  // namespace cdpipe
