#ifndef CDPIPE_SERVING_SNAPSHOT_PUBLISHER_H_
#define CDPIPE_SERVING_SNAPSHOT_PUBLISHER_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "src/serving/model_snapshot.h"

namespace cdpipe {
namespace serving {

/// RCU-style single-writer snapshot exchange between the deployment loop
/// (the trainer) and the prediction front-end (the readers).
///
/// Write side (one thread at a time — the deployment loop): `PublishFrom`
/// deep-freezes the live pipeline + model into a new `ModelSnapshot` epoch
/// and swaps it in.  Publishing never waits for readers: the old epoch
/// stays alive for as long as any reader still holds a reference to it
/// (shared_ptr reclamation *is* the grace period) and is retired — its swap
/// journaled — the moment the last reference drops.
///
/// Read side: the hot path is `SnapshotReader::Current()` on a per-thread
/// reader handle — ONE relaxed-cost atomic load of the epoch counter.  Only
/// when the epoch actually advanced does the reader take the brief refresh
/// lock to re-reference the new snapshot; steady-state requests between
/// publishes touch no lock at all, so model refresh can never stall the
/// request path and readers never stall each other.
///
/// Epoch monotonicity is a hard invariant: `Acquire` can never return an
/// older epoch than any previously returned one (the swap happens before
/// the epoch counter advances, both under the same writer).  Readers verify
/// it anyway and count violations in `serving.stale_reads` — a metric that
/// is exactly zero unless the swap protocol is broken.
class SnapshotPublisher {
 public:
  SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Builds and publishes a new epoch from the live deployed state.  The
  /// pipeline is Clone()d (deep-frozen) unless its statistics version
  /// matches the previous epoch's, in which case the previous epoch's
  /// (already frozen) pipeline is shared and only the model is copied —
  /// the cheap path for model-only refreshes after proactive steps.
  /// Returns the new epoch number.
  uint64_t PublishFrom(const Pipeline& pipeline, const LinearModel& model);

  /// Publishes a fully built snapshot (tests, restore paths that already
  /// hold frozen copies).  `snapshot->epoch`/`epoch_check`/`published_us`
  /// are assigned by the publisher.  Returns the new epoch number.
  uint64_t Publish(std::shared_ptr<ModelSnapshot> snapshot);

  /// Current snapshot, or nullptr before the first publish.  Slow path
  /// (takes the refresh lock); request loops go through SnapshotReader.
  std::shared_ptr<const ModelSnapshot> Acquire() const;

  /// Latest published epoch (0 before the first publish).  Lock-free.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Total epochs published (== epoch(): epochs are dense from 1).
  uint64_t publishes() const { return epoch(); }

 private:
  mutable std::mutex mu_;  ///< guards current_ (swap and slow-path copy)
  std::shared_ptr<const ModelSnapshot> current_;
  std::atomic<uint64_t> epoch_{0};
};

/// Per-thread read handle: caches the last acquired snapshot and
/// re-references only on an epoch change.  NOT thread-safe — each reader
/// thread owns one.  Holding the handle keeps its cached epoch alive, so a
/// request that started on epoch N completes on epoch N even if N+1 is
/// published mid-request (bounded staleness: at most the in-flight
/// request).
class SnapshotReader {
 public:
  explicit SnapshotReader(const SnapshotPublisher* publisher)
      : publisher_(publisher) {}

  /// The freshest published snapshot: one atomic epoch load on the fast
  /// path, a locked re-reference only when the epoch advanced.  Returns
  /// nullptr before the first publish.
  std::shared_ptr<const ModelSnapshot> Current();

  /// Epoch of the cached snapshot (0 = none).
  uint64_t cached_epoch() const { return cached_epoch_; }

  /// Epoch regressions this reader observed (must stay 0; also counted in
  /// the process-wide `serving.stale_reads`).
  uint64_t stale_reads() const { return stale_reads_; }
  /// Inconsistent snapshots this reader observed (must stay 0; also
  /// counted in `serving.torn_reads`).
  uint64_t torn_reads() const { return torn_reads_; }

 private:
  const SnapshotPublisher* publisher_;
  std::shared_ptr<const ModelSnapshot> cached_;
  uint64_t cached_epoch_ = 0;
  uint64_t stale_reads_ = 0;
  uint64_t torn_reads_ = 0;
};

}  // namespace serving
}  // namespace cdpipe

#endif  // CDPIPE_SERVING_SNAPSHOT_PUBLISHER_H_
