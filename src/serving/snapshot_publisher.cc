#include "src/serving/snapshot_publisher.h"

#include <utility>

#include "src/common/string_util.h"
#include "src/obs/event_journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cdpipe {
namespace serving {

namespace {

obs::Counter* PublishCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serving.publishes", "Serving snapshot epochs published");
  return c;
}

obs::Gauge* EpochGauge() {
  static obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge(
      "serving.snapshot_epoch", "Latest published serving snapshot epoch");
  return g;
}

obs::Counter* PipelineReusedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serving.snapshot_pipeline_reused",
      "Publishes that shared the previous epoch's frozen pipeline");
  return c;
}

obs::Counter* StaleReadCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serving.stale_reads",
      "Reader-observed epoch regressions (0 unless the swap protocol is "
      "broken)");
  return c;
}

obs::Counter* TornReadCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serving.torn_reads",
      "Reader-observed inconsistent snapshots (0 by construction)");
  return c;
}

}  // namespace

SnapshotPublisher::SnapshotPublisher() {
  // Touch the serving metrics so they exist (at zero) from construction:
  // the CI smoke gate asserts on serving.stale_reads before any reader has
  // ever had a chance to increment it.
  PublishCounter();
  EpochGauge();
  PipelineReusedCounter();
  StaleReadCounter();
  TornReadCounter();
}

uint64_t SnapshotPublisher::PublishFrom(const Pipeline& pipeline,
                                        const LinearModel& model) {
  auto snapshot = std::make_shared<ModelSnapshot>();
  const uint64_t live_version = pipeline.state_version();
  // Model-only republish: if the live pipeline's statistics have not
  // changed since the previous epoch, the previous epoch's frozen pipeline
  // is still an exact deep copy of the live one — share it instead of
  // cloning again.  (Clone() bumps nothing and the shared pipeline is
  // immutable, so epochs sharing it stay independent.)
  std::shared_ptr<const ModelSnapshot> prev = Acquire();
  if (prev != nullptr && prev->pipeline_version == live_version) {
    snapshot->pipeline = prev->pipeline;
    PipelineReusedCounter()->Increment();
  } else {
    snapshot->pipeline = std::shared_ptr<const Pipeline>(pipeline.Clone());
  }
  snapshot->model = std::make_shared<const LinearModel>(model);
  snapshot->pipeline_version = live_version;
  return Publish(std::move(snapshot));
}

uint64_t SnapshotPublisher::Publish(std::shared_ptr<ModelSnapshot> snapshot) {
  uint64_t epoch = 0;
  bool swapped = false;
  const uint64_t version = snapshot->pipeline_version;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_.load(std::memory_order_relaxed) + 1;
    snapshot->epoch = epoch;
    snapshot->published_us = obs::Tracer::NowMicros();
    // Canary last: a reader that sees epoch != epoch_check caught a torn
    // publish (impossible under the lock, but the reader checks anyway).
    snapshot->epoch_check = epoch;
    swapped = (current_ != nullptr);
    current_ = std::move(snapshot);
    // Release-store after the swap: a reader that observes the new epoch
    // is guaranteed to find (at least) that snapshot behind the lock.
    epoch_.store(epoch, std::memory_order_release);
  }
  PublishCounter()->Increment();
  EpochGauge()->Set(static_cast<double>(epoch));
  obs::EventJournal::Global().Append(
      obs::EventKind::kSnapshotPublish,
      StrFormat("epoch=%llu version=%llu",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(version))
          .c_str());
  if (swapped) {
    obs::EventJournal::Global().Append(
        obs::EventKind::kSnapshotSwap,
        StrFormat("epoch=%llu", static_cast<unsigned long long>(epoch))
            .c_str());
  }
  return epoch;
}

std::shared_ptr<const ModelSnapshot> SnapshotPublisher::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<const ModelSnapshot> SnapshotReader::Current() {
  const uint64_t latest = publisher_->epoch();
  if (latest == cached_epoch_) {
    return cached_;  // fast path: one atomic load, no lock
  }
  std::shared_ptr<const ModelSnapshot> fresh = publisher_->Acquire();
  const uint64_t fresh_epoch = fresh != nullptr ? fresh->epoch : 0;
  if (fresh_epoch < cached_epoch_) {
    // Epoch regression: the publisher handed us something older than we
    // already saw.  Keep the newer cached snapshot and account the
    // violation.
    ++stale_reads_;
    StaleReadCounter()->Increment();
    return cached_;
  }
  if (fresh != nullptr && !fresh->Consistent()) {
    ++torn_reads_;
    TornReadCounter()->Increment();
    return cached_;
  }
  cached_ = std::move(fresh);
  cached_epoch_ = fresh_epoch;
  return cached_;
}

}  // namespace serving
}  // namespace cdpipe
