#ifndef CDPIPE_SERVING_PREDICTION_SERVICE_H_
#define CDPIPE_SERVING_PREDICTION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/chunk.h"
#include "src/pipeline/pipeline.h"
#include "src/serving/snapshot_publisher.h"

namespace cdpipe {
namespace serving {

/// The prediction front-end: a pool of request-loop workers answering
/// single-record and micro-batched prediction requests against the
/// publisher's current snapshot while the deployment loop keeps ingesting
/// and training.
///
/// Each worker owns a `SnapshotReader`, so the steady-state request path
/// costs ONE atomic epoch load on top of the transform + predict work —
/// model refresh never stalls a request and requests never stall a publish.
/// A request that catches epoch N mid-publish of N+1 completes entirely on
/// N (its reader holds the reference); staleness is bounded by one
/// in-flight request.
///
/// Every request runs under the "serving" heartbeat (the watchdog flips
/// /readyz if the loop wedges mid-request), a per-request CorrelationScope
/// (deployment id + request id) and a `serving.request` trace span, and
/// crosses the `serving.slow_request` / `serving.request` fault sites so
/// the scenario suite can wedge or fail it deterministically.
class PredictionService {
 public:
  struct Options {
    /// Request-loop worker threads.
    int num_threads = 2;
    /// Bounded request queue: producers block when it is full (closed-loop
    /// backpressure, never unbounded memory).
    size_t queue_capacity = 64;
    /// Admission timeout for a producer blocked on a full queue: after this
    /// many wall seconds the request is shed (Unavailable, counted in
    /// `serving.shed`) instead of waiting further — the serving-tier twin
    /// of the ingest queue's block-with-timeout policy.  Negative = block
    /// until a slot frees (the legacy closed-loop behavior).
    double admission_timeout_seconds = -1.0;
    /// Execution mode for the snapshot transform (fused and interpreted
    /// are bit-identical; fused is the production default).
    ExecMode exec_mode = ExecMode::kFused;
    /// Correlation deployment id stamped on request spans/journal entries.
    uint32_t deployment_id = 0;
  };

  /// One answered request.
  struct Response {
    /// Snapshot epoch that answered the request.
    uint64_t epoch = 0;
    /// Service-assigned request id (dense from 1).
    int64_t request_id = 0;
    /// Raw model score per surviving row (the same value the in-loop
    /// prequential evaluate feeds Observe — serve-then-train equivalence
    /// compares these bitwise).
    std::vector<double> scores;
    /// Thresholded class labels (sign of the score).
    std::vector<double> labels;
    /// Labels carried through the transform (for prequential evaluation
    /// at the caller; empty when the input rows carried none).
    std::vector<double> true_labels;
    /// Rows the pipeline dropped (malformed / filtered).
    size_t rows_dropped = 0;
    /// Wall-clock seconds from dequeue (or inline call) to completion.
    double latency_seconds = 0;
  };

  PredictionService(const SnapshotPublisher* publisher, Options options);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Starts the request-loop workers.  FailedPrecondition if running.
  Status Start();
  /// Stops the workers; queued-but-unanswered requests fail Unavailable.
  /// Idempotent.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocking micro-batch prediction through the request loop.  `chunk`
  /// must stay alive until the call returns (it is borrowed, not copied).
  /// Unavailable if the service is not running, no snapshot has been
  /// published yet, or the service stops before the request is served.
  Result<Response> Predict(const RawChunk& chunk);

  /// Single-record convenience wrapper over Predict.
  Result<Response> PredictRecord(const std::string& record);

  /// Inline request path against a caller-owned reader: same metrics,
  /// span, fault sites, and response shape as the queued path, but
  /// executed on the calling thread with no queue hop.  This is what the
  /// closed-loop bench readers and the deployment's serve-then-train
  /// evaluate call — and what the workers themselves run per request.
  Result<Response> PredictWith(SnapshotReader* reader,
                               const RawChunk& chunk) const;

  /// Requests answered (ok or error) since construction.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Requests that returned a non-OK status.
  uint64_t request_errors() const {
    return request_errors_.load(std::memory_order_relaxed);
  }
  /// Requests shed at a full queue after the admission timeout (these never
  /// reach a worker and are not counted in requests_served).
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }

 private:
  struct Pending {
    const RawChunk* chunk = nullptr;
    int64_t request_id = 0;
    std::promise<Result<Response>> promise;
  };

  void WorkerLoop();
  Result<Response> ServeOne(SnapshotReader* reader, const RawChunk& chunk,
                            int64_t request_id) const;

  const SnapshotPublisher* publisher_;
  Options options_;

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  // Mutable: the inline request path (PredictWith / ServeOne) is logically
  // const — it never touches service state beyond these counters.
  mutable std::atomic<int64_t> next_request_id_{0};
  mutable std::atomic<uint64_t> requests_served_{0};
  mutable std::atomic<uint64_t> request_errors_{0};
  mutable std::atomic<uint64_t> requests_shed_{0};
  /// Peak queue depth (guarded by mu_, exported as a gauge).
  size_t queue_high_watermark_ = 0;
};

}  // namespace serving
}  // namespace cdpipe

#endif  // CDPIPE_SERVING_PREDICTION_SERVICE_H_
