#ifndef CDPIPE_DATAFRAME_COLUMN_OPS_H_
#define CDPIPE_DATAFRAME_COLUMN_OPS_H_

#include <string>

#include "src/common/status.h"
#include "src/dataframe/column.h"

namespace cdpipe {

/// Read-only numeric view over a kDouble, kInt64, or kTimestamp column:
/// one well-predicted branch per access instead of variant dispatch.  The
/// seed row path widened int cells through Value::AsDouble; `operator[]`
/// performs the identical static_cast, so numeric results are unchanged.
class NumericColumnView {
 public:
  /// Fails with FailedPrecondition (matching the row path's AsDouble error
  /// class) when the column is not numeric.
  static Result<NumericColumnView> Of(const Column& column,
                                      const std::string& context) {
    switch (column.type()) {
      case ValueType::kDouble:
        return NumericColumnView(&column, column.doubles().data(), nullptr);
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        return NumericColumnView(&column, nullptr, column.ints().data());
      default:
        return Status::FailedPrecondition("cannot widen " +
                                          std::string(ValueTypeName(
                                              column.type())) +
                                          " to double" +
                                          (context.empty() ? "" : ": " +
                                                                      context));
    }
  }

  double operator[](size_t r) const {
    return doubles_ != nullptr ? doubles_[r]
                               : static_cast<double>(ints_[r]);
  }
  bool IsNull(size_t r) const { return column_->IsNull(r); }
  bool has_nulls() const { return column_->has_nulls(); }
  size_t size() const { return column_->size(); }

 private:
  NumericColumnView(const Column* column, const double* doubles,
                    const int64_t* ints)
      : column_(column), doubles_(doubles), ints_(ints) {}

  const Column* column_;
  const double* doubles_;
  const int64_t* ints_;
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_COLUMN_OPS_H_
