#include "src/dataframe/schema.h"

namespace cdpipe {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, i);
  }
}

Result<std::shared_ptr<const Schema>> Schema::Make(std::vector<Field> fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    for (size_t j = i + 1; j < fields.size(); ++j) {
      if (fields[i].name == fields[j].name) {
        return Status::AlreadyExists("duplicate field name: " +
                                     fields[i].name);
      }
    }
  }
  return std::shared_ptr<const Schema>(new Schema(std::move(fields)));
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no field named '" + name + "' in schema " +
                            ToString());
  }
  return it->second;
}

bool Schema::HasField(const std::string& name) const {
  return index_.count(name) > 0;
}

Result<std::shared_ptr<const Schema>> Schema::AddField(Field field) const {
  if (HasField(field.name)) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  std::vector<Field> fields = fields_;
  fields.push_back(std::move(field));
  return std::shared_ptr<const Schema>(new Schema(std::move(fields)));
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += ValueTypeName(fields_[i].type);
  }
  out += "}";
  return out;
}

}  // namespace cdpipe
