#ifndef CDPIPE_DATAFRAME_VALUE_H_
#define CDPIPE_DATAFRAME_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/status.h"

namespace cdpipe {

/// Column types understood by the pipeline components.
enum class ValueType {
  kNull = 0,   ///< missing value
  kDouble,     ///< 64-bit float
  kInt64,      ///< 64-bit integer
  kTimestamp,  ///< seconds since the Unix epoch, stored as int64
  kString,     ///< UTF-8 text / categorical value
};

const char* ValueTypeName(ValueType type);

/// A single cell of a row: missing, numeric, timestamp, or string.
///
/// Missing values are first-class (the MissingValueImputer component exists
/// because of them).  Numeric accessors perform no implicit conversion
/// between int64 and double except through `AsDouble()`, which is what the
/// feature-extraction components use.
class Value {
 public:
  /// Missing value.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value Int64(int64_t v) { return Value(Payload(v)); }
  static Value Timestamp(int64_t unix_seconds) {
    Value out{Payload(unix_seconds)};
    out.is_timestamp_ = true;
    return out;
  }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  ValueType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_numeric() const {
    return std::holds_alternative<double>(data_) ||
           std::holds_alternative<int64_t>(data_);
  }

  /// Typed accessors; CHECK-fail on type mismatch (programmer error —
  /// pipelines validate schemas up front).
  double double_value() const;
  int64_t int64_value() const;
  const std::string& string_value() const;

  /// Numeric value widened to double.  Returns FailedPrecondition for null
  /// or string cells.
  Result<double> AsDouble() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.is_timestamp_ == b.is_timestamp_ && a.data_ == b.data_;
  }

 private:
  using Payload = std::variant<std::monostate, double, int64_t, std::string>;
  explicit Value(Payload payload) : data_(std::move(payload)) {}

  Payload data_;
  bool is_timestamp_ = false;
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_VALUE_H_
