#include "src/dataframe/column.h"

#include "src/common/logging.h"

namespace cdpipe {
namespace {

bool IsIntLike(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kTimestamp;
}

}  // namespace

void Column::EnsureBitmap() {
  // The bitmap trails the column lazily: it is empty until the first null,
  // then always sized for the current row count.
  null_words_.resize((size_ + 64) >> 6, 0);
}

void Column::AppendDouble(double v) {
  CDPIPE_CHECK(type_ == ValueType::kDouble);
  doubles_.push_back(v);
  ++size_;
  if (!null_words_.empty()) EnsureBitmap();
}

void Column::AppendInt64(int64_t v) {
  CDPIPE_CHECK(IsIntLike(type_));
  ints_.push_back(v);
  ++size_;
  if (!null_words_.empty()) EnsureBitmap();
}

void Column::AppendString(std::string_view v) {
  CDPIPE_CHECK(type_ == ValueType::kString);
  CDPIPE_CHECK(!borrowed_);
  if (offsets_.empty()) offsets_.push_back(0);
  arena_.append(v.data(), v.size());
  offsets_.push_back(static_cast<uint32_t>(arena_.size()));
  ++size_;
  if (!null_words_.empty()) EnsureBitmap();
}

void Column::AppendBorrowedString(std::string_view v) {
  CDPIPE_CHECK(type_ == ValueType::kString);
  CDPIPE_CHECK(arena_.empty());
  borrowed_ = true;
  views_.push_back(v);
  ++size_;
  if (!null_words_.empty()) EnsureBitmap();
}

void Column::AppendNull() {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      ints_.push_back(0);
      break;
    case ValueType::kString:
      if (borrowed_) {
        views_.push_back(std::string_view());
      } else {
        if (offsets_.empty()) offsets_.push_back(0);
        offsets_.push_back(static_cast<uint32_t>(arena_.size()));
      }
      break;
    case ValueType::kNull:
      break;
  }
  ++size_;
  EnsureBitmap();
  null_words_[(size_ - 1) >> 6] |= uint64_t{1} << ((size_ - 1) & 63u);
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (v.type() != type_) {
    return Status::InvalidArgument(
        std::string("cell type ") + ValueTypeName(v.type()) +
        " does not match column type " + ValueTypeName(type_));
  }
  switch (type_) {
    case ValueType::kDouble:
      AppendDouble(v.double_value());
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      AppendInt64(v.int64_value());
      break;
    case ValueType::kString:
      AppendString(v.string_value());
      break;
    case ValueType::kNull:
      break;
  }
  return Status::OK();
}

void Column::Reserve(size_t rows) {
  switch (type_) {
    case ValueType::kDouble:
      doubles_.reserve(rows);
      break;
    case ValueType::kInt64:
    case ValueType::kTimestamp:
      ints_.reserve(rows);
      break;
    case ValueType::kString:
      if (borrowed_) {
        views_.reserve(rows);
      } else {
        offsets_.reserve(rows + 1);
      }
      break;
    case ValueType::kNull:
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  CDPIPE_CHECK(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kDouble:
      return Value::Double(doubles_[i]);
    case ValueType::kInt64:
      return Value::Int64(ints_[i]);
    case ValueType::kTimestamp:
      return Value::Timestamp(ints_[i]);
    case ValueType::kString:
      return Value::String(std::string(StringAt(i)));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

Column Column::Filter(const std::vector<uint8_t>& keep) const {
  CDPIPE_CHECK(keep.size() == size_);
  Column out(type_);
  out.borrowed_ = borrowed_;
  for (size_t i = 0; i < size_; ++i) {
    if (!keep[i]) continue;
    if (IsNull(i)) {
      out.AppendNull();
      continue;
    }
    switch (type_) {
      case ValueType::kDouble:
        out.AppendDouble(doubles_[i]);
        break;
      case ValueType::kInt64:
      case ValueType::kTimestamp:
        out.AppendInt64(ints_[i]);
        break;
      case ValueType::kString:
        if (borrowed_) {
          out.AppendBorrowedString(views_[i]);
        } else {
          out.AppendString(StringAt(i));
        }
        break;
      case ValueType::kNull:
        ++out.size_;
        break;
    }
  }
  return out;
}

void Column::MarkNull(size_t i) {
  CDPIPE_CHECK(i < size_);
  EnsureBitmap();
  null_words_[i >> 6] |= uint64_t{1} << (i & 63u);
}

void Column::ClearNull(size_t i) {
  CDPIPE_CHECK(i < size_);
  if (null_words_.empty()) return;
  null_words_[i >> 6] &= ~(uint64_t{1} << (i & 63u));
}

void Column::DropBitmapIfAllValid() {
  for (uint64_t word : null_words_) {
    if (word != 0) return;
  }
  null_words_.clear();
}

size_t Column::ByteSize() const {
  size_t total = doubles_.size() * sizeof(double) +
                 ints_.size() * sizeof(int64_t) + arena_.size() +
                 offsets_.size() * sizeof(uint32_t) +
                 views_.size() * sizeof(std::string_view) +
                 null_words_.size() * sizeof(uint64_t);
  return total;
}

}  // namespace cdpipe
