#ifndef CDPIPE_DATAFRAME_SCHEMA_H_
#define CDPIPE_DATAFRAME_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/value.h"

namespace cdpipe {

/// A named, typed column.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered collection of fields with O(1) name lookup.  Schemas are
/// immutable after construction and shared between chunks via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Fails with AlreadyExists on duplicate field names.
  static Result<std::shared_ptr<const Schema>> Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const;

  /// A new schema with `field` appended; fails on duplicate name.
  Result<std::shared_ptr<const Schema>> AddField(Field field) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_SCHEMA_H_
