#ifndef CDPIPE_DATAFRAME_COLUMN_CODEC_H_
#define CDPIPE_DATAFRAME_COLUMN_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/dataframe/column.h"

namespace cdpipe {

/// Compact binary column encoding for the chunk store's disk tier.
///
/// Per type:
///  - kDouble: raw little-endian 8-byte payloads (bit-identical round trip,
///    including NaN payloads and placeholder values at null slots);
///  - kInt64 / kTimestamp: zigzag-varint delta chain (timestamps and ids
///    are near-monotonic, so deltas are small);
///  - kString: the smallest of three modes, chosen per column — raw
///    (varint lengths + concatenated bytes), dictionary (distinct values in
///    first-occurrence order + per-row indexes), or tokenized dictionary
///    (space-separated tokens dictionary-coded; only eligible when
///    `join(' ', split(s))` reproduces every cell exactly).
///
/// Null bitmaps are encoded as packed little-endian u64 words; decode
/// restores the placeholder payloads first and then re-marks the null bits,
/// so a decoded column is cell-for-cell identical to the encoded one.
/// Borrowed-view string columns encode fine (the codec reads through
/// `StringAt`); decoding always produces an owning column.
///
/// The encoding is self-delimiting: columns can be concatenated and decoded
/// back in sequence.  It carries no checksum of its own — framing and
/// integrity belong to the container (see storage/spill_file.h).

/// Appends the encoding of `col` to `*out`.  CHECK-fails on an untyped
/// (kNull) column — the store never holds those.
void EncodeColumn(const Column& col, std::string* out);

/// Decodes one column starting at `*offset`, advancing `*offset` past it.
/// On error `*offset` is unspecified but nothing is leaked and no partial
/// column escapes.
Result<Column> DecodeColumn(std::string_view bytes, size_t* offset);

/// LEB128 varint helpers (exposed for the spill-file container format).
void PutVarint64(uint64_t v, std::string* out);
bool GetVarint64(std::string_view bytes, size_t* offset, uint64_t* out);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_COLUMN_CODEC_H_
