#include "src/dataframe/column_codec.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"

namespace cdpipe {
namespace {

/// String-payload encodings, ordered by preference on equal size.
enum class StringMode : uint8_t {
  kRaw = 0,     ///< varint lengths + concatenated bytes
  kDict = 1,    ///< distinct values (first-occurrence order) + indexes
  kTokens = 2,  ///< space-separated tokens dictionary-coded per row
};

void PutFixed64(uint64_t v, std::string* out) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 8);
}

bool GetFixed64(std::string_view bytes, size_t* offset, uint64_t* out) {
  if (bytes.size() - *offset < 8 || *offset > bytes.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(bytes[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  *out = v;
  return true;
}

/// Splits `s` on single spaces.  Returns false when the cell cannot be
/// reproduced as `join(' ', tokens)` — leading/trailing/double spaces.
bool TokenizeExact(std::string_view s, std::vector<std::string_view>* out) {
  out->clear();
  if (s.empty()) return true;
  size_t start = 0;
  while (true) {
    const size_t space = s.find(' ', start);
    const std::string_view token =
        space == std::string_view::npos ? s.substr(start)
                                        : s.substr(start, space - start);
    if (token.empty()) return false;  // leading, trailing, or double space
    out->push_back(token);
    if (space == std::string_view::npos) return true;
    start = space + 1;
  }
}

/// Assigns `value` a dictionary slot in first-occurrence order.
uint64_t Intern(std::string_view value,
                std::unordered_map<std::string_view, uint64_t>* index,
                std::vector<std::string_view>* entries) {
  auto [it, inserted] = index->emplace(value, entries->size());
  if (inserted) entries->push_back(value);
  return it->second;
}

void EncodeStringPayload(const Column& col, std::string* out) {
  const size_t rows = col.size();

  // Raw: varint lengths + concatenated bytes.
  std::string raw;
  {
    size_t total = 0;
    for (size_t i = 0; i < rows; ++i) {
      const std::string_view s = col.StringAt(i);
      PutVarint64(s.size(), &raw);
      total += s.size();
    }
    raw.reserve(raw.size() + total);
    for (size_t i = 0; i < rows; ++i) {
      const std::string_view s = col.StringAt(i);
      raw.append(s.data(), s.size());
    }
  }

  // Dictionary: distinct cells in first-occurrence order + per-row indexes.
  std::string dict;
  {
    std::unordered_map<std::string_view, uint64_t> index;
    std::vector<std::string_view> entries;
    std::vector<uint64_t> codes;
    codes.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      codes.push_back(Intern(col.StringAt(i), &index, &entries));
    }
    PutVarint64(entries.size(), &dict);
    for (const std::string_view e : entries) {
      PutVarint64(e.size(), &dict);
      dict.append(e.data(), e.size());
    }
    for (const uint64_t c : codes) PutVarint64(c, &dict);
  }

  // Tokenized dictionary: only when every cell splits/joins losslessly.
  std::string tokens;
  bool tokens_ok = true;
  {
    std::unordered_map<std::string_view, uint64_t> index;
    std::vector<std::string_view> entries;
    std::vector<std::vector<uint64_t>> row_codes(rows);
    std::vector<std::string_view> scratch;
    for (size_t i = 0; i < rows && tokens_ok; ++i) {
      if (!TokenizeExact(col.StringAt(i), &scratch)) {
        tokens_ok = false;
        break;
      }
      row_codes[i].reserve(scratch.size());
      for (const std::string_view t : scratch) {
        row_codes[i].push_back(Intern(t, &index, &entries));
      }
    }
    if (tokens_ok) {
      PutVarint64(entries.size(), &tokens);
      for (const std::string_view e : entries) {
        PutVarint64(e.size(), &tokens);
        tokens.append(e.data(), e.size());
      }
      for (const std::vector<uint64_t>& codes : row_codes) {
        PutVarint64(codes.size(), &tokens);
        for (const uint64_t c : codes) PutVarint64(c, &tokens);
      }
    }
  }

  StringMode mode = StringMode::kRaw;
  const std::string* payload = &raw;
  if (dict.size() < payload->size()) {
    mode = StringMode::kDict;
    payload = &dict;
  }
  if (tokens_ok && tokens.size() < payload->size()) {
    mode = StringMode::kTokens;
    payload = &tokens;
  }
  out->push_back(static_cast<char>(mode));
  out->append(*payload);
}

Status Corrupt(const char* what) {
  return Status::InvalidArgument(std::string("column decode: ") + what);
}

Status DecodeStringPayload(std::string_view bytes, size_t* offset,
                           size_t rows, Column* col) {
  if (*offset >= bytes.size()) return Corrupt("missing string mode");
  const uint8_t mode_byte = static_cast<uint8_t>(bytes[(*offset)++]);
  switch (static_cast<StringMode>(mode_byte)) {
    case StringMode::kRaw: {
      std::vector<uint64_t> lengths(rows);
      uint64_t total = 0;
      for (size_t i = 0; i < rows; ++i) {
        if (!GetVarint64(bytes, offset, &lengths[i])) {
          return Corrupt("truncated string length");
        }
        total += lengths[i];
      }
      if (bytes.size() - *offset < total || *offset > bytes.size()) {
        return Corrupt("truncated string bytes");
      }
      for (size_t i = 0; i < rows; ++i) {
        col->AppendString(bytes.substr(*offset, lengths[i]));
        *offset += lengths[i];
      }
      return Status::OK();
    }
    case StringMode::kDict: {
      uint64_t num_entries = 0;
      if (!GetVarint64(bytes, offset, &num_entries)) {
        return Corrupt("truncated dictionary size");
      }
      if (num_entries > bytes.size()) return Corrupt("dictionary too large");
      std::vector<std::string_view> entries;
      entries.reserve(num_entries);
      for (uint64_t e = 0; e < num_entries; ++e) {
        uint64_t len = 0;
        if (!GetVarint64(bytes, offset, &len) ||
            bytes.size() - *offset < len) {
          return Corrupt("truncated dictionary entry");
        }
        entries.push_back(bytes.substr(*offset, len));
        *offset += len;
      }
      for (size_t i = 0; i < rows; ++i) {
        uint64_t code = 0;
        if (!GetVarint64(bytes, offset, &code) || code >= entries.size()) {
          return Corrupt("bad dictionary code");
        }
        col->AppendString(entries[code]);
      }
      return Status::OK();
    }
    case StringMode::kTokens: {
      uint64_t num_entries = 0;
      if (!GetVarint64(bytes, offset, &num_entries)) {
        return Corrupt("truncated token dictionary size");
      }
      if (num_entries > bytes.size()) {
        return Corrupt("token dictionary too large");
      }
      std::vector<std::string_view> entries;
      entries.reserve(num_entries);
      for (uint64_t e = 0; e < num_entries; ++e) {
        uint64_t len = 0;
        if (!GetVarint64(bytes, offset, &len) ||
            bytes.size() - *offset < len) {
          return Corrupt("truncated token entry");
        }
        entries.push_back(bytes.substr(*offset, len));
        *offset += len;
      }
      std::string cell;
      for (size_t i = 0; i < rows; ++i) {
        uint64_t num_tokens = 0;
        if (!GetVarint64(bytes, offset, &num_tokens)) {
          return Corrupt("truncated token count");
        }
        cell.clear();
        for (uint64_t t = 0; t < num_tokens; ++t) {
          uint64_t code = 0;
          if (!GetVarint64(bytes, offset, &code) ||
              code >= entries.size()) {
            return Corrupt("bad token code");
          }
          if (t > 0) cell.push_back(' ');
          cell.append(entries[code]);
        }
        col->AppendString(cell);
      }
      return Status::OK();
    }
  }
  return Corrupt("unknown string mode");
}

}  // namespace

void PutVarint64(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(std::string_view bytes, size_t* offset, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*offset >= bytes.size()) return false;
    const uint8_t byte = static_cast<uint8_t>(bytes[(*offset)++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;  // over-long encoding
}

void EncodeColumn(const Column& col, std::string* out) {
  CDPIPE_CHECK(col.type() != ValueType::kNull)
      << "cannot encode an untyped column";
  const size_t rows = col.size();
  out->push_back(static_cast<char>(col.type()));
  PutVarint64(rows, out);
  out->push_back(col.has_nulls() ? '\1' : '\0');
  if (col.has_nulls()) {
    const size_t words = (rows + 63) / 64;
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = 0;
      const size_t limit = std::min(rows - w * 64, size_t{64});
      for (size_t b = 0; b < limit; ++b) {
        if (col.IsNull(w * 64 + b)) word |= uint64_t{1} << b;
      }
      PutFixed64(word, out);
    }
  }
  switch (col.type()) {
    case ValueType::kDouble: {
      const std::vector<double>& values = col.doubles();
      const size_t start = out->size();
      out->resize(start + rows * sizeof(double));
      if (rows > 0) {
        std::memcpy(out->data() + start, values.data(),
                    rows * sizeof(double));
      }
      break;
    }
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      const std::vector<int64_t>& values = col.ints();
      int64_t previous = 0;
      for (size_t i = 0; i < rows; ++i) {
        // Deltas wrap in uint64 space: int64 subtraction overflows on
        // extreme value pairs, unsigned wrap-around round-trips exactly.
        const uint64_t delta = static_cast<uint64_t>(values[i]) -
                               static_cast<uint64_t>(previous);
        PutVarint64(ZigZagEncode(static_cast<int64_t>(delta)), out);
        previous = values[i];
      }
      break;
    }
    case ValueType::kString:
      EncodeStringPayload(col, out);
      break;
    case ValueType::kNull:
      break;  // unreachable (checked above)
  }
}

Result<Column> DecodeColumn(std::string_view bytes, size_t* offset) {
  if (*offset >= bytes.size()) return Corrupt("empty input");
  const uint8_t type_byte = static_cast<uint8_t>(bytes[(*offset)++]);
  const ValueType type = static_cast<ValueType>(type_byte);
  if (type != ValueType::kDouble && type != ValueType::kInt64 &&
      type != ValueType::kTimestamp && type != ValueType::kString) {
    return Corrupt("bad column type");
  }
  uint64_t rows64 = 0;
  if (!GetVarint64(bytes, offset, &rows64)) return Corrupt("truncated rows");
  // A row count cannot exceed one row per remaining payload bit; anything
  // larger is a corrupt header, rejected before any allocation.
  if (rows64 > (bytes.size() - *offset + 1) * 8) {
    return Corrupt("implausible row count");
  }
  const size_t rows = static_cast<size_t>(rows64);
  if (*offset >= bytes.size()) return Corrupt("missing null flag");
  const uint8_t null_flag = static_cast<uint8_t>(bytes[(*offset)++]);
  if (null_flag > 1) return Corrupt("bad null flag");
  std::vector<uint64_t> null_words;
  if (null_flag == 1) {
    const size_t words = (rows + 63) / 64;
    null_words.resize(words);
    for (size_t w = 0; w < words; ++w) {
      if (!GetFixed64(bytes, offset, &null_words[w])) {
        return Corrupt("truncated null bitmap");
      }
    }
  }

  Column col(type);
  col.Reserve(rows);
  switch (type) {
    case ValueType::kDouble: {
      if (bytes.size() - *offset < rows * sizeof(double) ||
          *offset > bytes.size()) {
        return Corrupt("truncated double payload");
      }
      for (size_t i = 0; i < rows; ++i) {
        double v = 0.0;
        std::memcpy(&v, bytes.data() + *offset, sizeof(double));
        *offset += sizeof(double);
        col.AppendDouble(v);
      }
      break;
    }
    case ValueType::kInt64:
    case ValueType::kTimestamp: {
      int64_t previous = 0;
      for (size_t i = 0; i < rows; ++i) {
        uint64_t encoded = 0;
        if (!GetVarint64(bytes, offset, &encoded)) {
          return Corrupt("truncated int payload");
        }
        previous = static_cast<int64_t>(
            static_cast<uint64_t>(previous) +
            static_cast<uint64_t>(ZigZagDecode(encoded)));
        col.AppendInt64(previous);
      }
      break;
    }
    case ValueType::kString: {
      CDPIPE_RETURN_NOT_OK(DecodeStringPayload(bytes, offset, rows, &col));
      break;
    }
    case ValueType::kNull:
      break;  // unreachable
  }
  for (size_t w = 0; w < null_words.size(); ++w) {
    uint64_t word = null_words[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      word &= word - 1;
      const size_t row = w * 64 + static_cast<size_t>(bit);
      if (row >= rows) return Corrupt("null bit beyond row count");
      col.MarkNull(row);
    }
  }
  return col;
}

}  // namespace cdpipe
