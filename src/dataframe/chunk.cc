#include "src/dataframe/chunk.h"

#include <utility>

namespace cdpipe {

TableData::TableData(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  columns_.reserve(schema_->num_fields());
  for (const Field& field : schema_->fields()) {
    columns_.emplace_back(field.type);
  }
}

Result<TableData> TableData::Make(std::shared_ptr<const Schema> schema,
                                  std::vector<Column> columns) {
  if (schema == nullptr) {
    return Status::InvalidArgument("table schema must not be null");
  }
  if (columns.size() != schema->num_fields()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " does not match schema field count " +
        std::to_string(schema->num_fields()));
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].type() != schema->field(c).type) {
      return Status::InvalidArgument(
          "column " + std::to_string(c) + " type " +
          ValueTypeName(columns[c].type()) + " does not match field '" +
          schema->field(c).name + "' type " +
          ValueTypeName(schema->field(c).type));
    }
    if (columns[c].size() != rows) {
      return Status::InvalidArgument(
          "column " + std::to_string(c) + " has " +
          std::to_string(columns[c].size()) + " rows, expected " +
          std::to_string(rows));
    }
  }
  TableData out;
  out.schema_ = std::move(schema);
  out.columns_ = std::move(columns);
  out.num_rows_ = rows;
  return out;
}

Result<TableData> TableData::FromRows(std::shared_ptr<const Schema> schema,
                                      const std::vector<Row>& rows) {
  if (schema == nullptr) {
    return Status::InvalidArgument("table schema must not be null");
  }
  TableData out(std::move(schema));
  out.ReserveRows(rows.size());
  for (const Row& row : rows) {
    CDPIPE_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

Status TableData::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " cells, schema has " +
        std::to_string(columns_.size()) + " fields");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Status appended = columns_[c].AppendValue(row[c]);
    if (!appended.ok()) {
      // Roll the partially appended row back so the columns stay parallel.
      std::vector<uint8_t> keep(columns_[c].size(), 1);
      keep.back() = 0;
      for (size_t u = 0; u < c; ++u) {
        columns_[u] = columns_[u].Filter(keep);
      }
      return appended;
    }
  }
  ++num_rows_;
  return Status::OK();
}

void TableData::ReserveRows(size_t rows) {
  for (Column& column : columns_) column.Reserve(rows);
}

bool TableData::CommitAppendedRow() {
  for (const Column& column : columns_) {
    if (column.size() != num_rows_ + 1) return false;
  }
  ++num_rows_;
  return true;
}

Value TableData::ValueAt(size_t row, size_t col) const {
  return columns_[col].ValueAt(row);
}

Row TableData::RowAt(size_t row) const {
  Row out;
  out.reserve(columns_.size());
  for (const Column& column : columns_) {
    out.push_back(column.ValueAt(row));
  }
  return out;
}

TableData TableData::Filter(const std::vector<uint8_t>& keep) const {
  TableData out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  size_t kept = 0;
  for (size_t i = 0; i < keep.size(); ++i) kept += keep[i] != 0;
  for (const Column& column : columns_) {
    out.columns_.push_back(column.Filter(keep));
  }
  out.num_rows_ = kept;
  return out;
}

Status TableData::PromoteColumnToDouble(size_t col) {
  Column& column = columns_[col];
  if (column.type() == ValueType::kDouble) return Status::OK();
  if (column.type() != ValueType::kInt64 &&
      column.type() != ValueType::kTimestamp) {
    return Status::FailedPrecondition(
        "cannot widen " + std::string(ValueTypeName(column.type())) +
        " column '" + schema_->field(col).name + "' to double");
  }
  Column widened(ValueType::kDouble);
  widened.Reserve(column.size());
  for (size_t r = 0; r < column.size(); ++r) {
    if (column.IsNull(r)) {
      widened.AppendNull();
    } else {
      widened.AppendDouble(static_cast<double>(column.ints()[r]));
    }
  }
  column = std::move(widened);
  std::vector<Field> fields = schema_->fields();
  fields[col].type = ValueType::kDouble;
  schema_ = std::make_shared<const Schema>(std::move(fields));
  return Status::OK();
}

size_t TableData::ByteSize() const {
  size_t total = 0;
  for (const Column& column : columns_) total += column.ByteSize();
  return total;
}

size_t FeatureData::ByteSize() const {
  size_t total = labels.size() * sizeof(double);
  for (const SparseVector& f : features) total += f.ByteSize();
  return total;
}

Status FeatureData::Validate() const {
  if (features.size() != labels.size()) {
    return Status::Internal(
        "feature/label count mismatch: " + std::to_string(features.size()) +
        " vs " + std::to_string(labels.size()));
  }
  for (const SparseVector& f : features) {
    if (f.dim() != dim) {
      return Status::Internal("feature dim " + std::to_string(f.dim()) +
                              " != batch dim " + std::to_string(dim));
    }
  }
  return Status::OK();
}

size_t BatchNumRows(const DataBatch& batch) {
  if (const auto* table = std::get_if<TableData>(&batch)) {
    return table->num_rows();
  }
  return std::get<FeatureData>(batch).num_rows();
}

size_t BatchByteSize(const DataBatch& batch) {
  if (const auto* table = std::get_if<TableData>(&batch)) {
    return table->ByteSize();
  }
  return std::get<FeatureData>(batch).ByteSize();
}

size_t RawChunk::ByteSize() const {
  size_t total = 0;
  for (const std::string& r : records) total += r.size();
  return total;
}

}  // namespace cdpipe
