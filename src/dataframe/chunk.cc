#include "src/dataframe/chunk.h"

namespace cdpipe {

size_t TableData::ByteSize() const {
  size_t total = 0;
  for (const Row& row : rows) {
    for (const Value& v : row) {
      total += sizeof(Value);
      if (v.type() == ValueType::kString) total += v.string_value().size();
    }
  }
  return total;
}

size_t FeatureData::ByteSize() const {
  size_t total = labels.size() * sizeof(double);
  for (const SparseVector& f : features) total += f.ByteSize();
  return total;
}

Status FeatureData::Validate() const {
  if (features.size() != labels.size()) {
    return Status::Internal(
        "feature/label count mismatch: " + std::to_string(features.size()) +
        " vs " + std::to_string(labels.size()));
  }
  for (const SparseVector& f : features) {
    if (f.dim() != dim) {
      return Status::Internal("feature dim " + std::to_string(f.dim()) +
                              " != batch dim " + std::to_string(dim));
    }
  }
  return Status::OK();
}

size_t BatchNumRows(const DataBatch& batch) {
  if (const auto* table = std::get_if<TableData>(&batch)) {
    return table->num_rows();
  }
  return std::get<FeatureData>(batch).num_rows();
}

size_t BatchByteSize(const DataBatch& batch) {
  if (const auto* table = std::get_if<TableData>(&batch)) {
    return table->ByteSize();
  }
  return std::get<FeatureData>(batch).ByteSize();
}

size_t RawChunk::ByteSize() const {
  size_t total = 0;
  for (const std::string& r : records) total += r.size();
  return total;
}

}  // namespace cdpipe
