#include "src/dataframe/value.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kDouble:
      return "double";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kTimestamp:
      return "timestamp";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(data_)) return ValueType::kNull;
  if (std::holds_alternative<double>(data_)) return ValueType::kDouble;
  if (std::holds_alternative<int64_t>(data_)) {
    return is_timestamp_ ? ValueType::kTimestamp : ValueType::kInt64;
  }
  return ValueType::kString;
}

double Value::double_value() const {
  CDPIPE_CHECK(std::holds_alternative<double>(data_))
      << "value is " << ValueTypeName(type()) << ", not double";
  return std::get<double>(data_);
}

int64_t Value::int64_value() const {
  CDPIPE_CHECK(std::holds_alternative<int64_t>(data_))
      << "value is " << ValueTypeName(type()) << ", not int64/timestamp";
  return std::get<int64_t>(data_);
}

const std::string& Value::string_value() const {
  CDPIPE_CHECK(std::holds_alternative<std::string>(data_))
      << "value is " << ValueTypeName(type()) << ", not string";
  return std::get<std::string>(data_);
}

Result<double> Value::AsDouble() const {
  if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
  if (std::holds_alternative<int64_t>(data_)) {
    return static_cast<double>(std::get<int64_t>(data_));
  }
  return Status::FailedPrecondition(std::string("cannot widen ") +
                                    ValueTypeName(type()) + " to double");
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kDouble:
      return StrFormat("%g", std::get<double>(data_));
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(data_));
    case ValueType::kTimestamp:
      return FormatDateTime(std::get<int64_t>(data_));
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

}  // namespace cdpipe
