#ifndef CDPIPE_DATAFRAME_COLUMN_H_
#define CDPIPE_DATAFRAME_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/value.h"

namespace cdpipe {

/// One typed column of a relational batch.
///
/// Storage is contiguous per type — `double` and `int64`/timestamp cells
/// live in plain vectors, string cells in an offset-indexed byte arena —
/// with a packed null bitmap on the side (allocated only once the first
/// null arrives, so the all-valid fast path costs one empty() check).
/// Pipeline kernels read these vectors directly: no per-cell heap
/// allocation, no variant dispatch in inner loops.
///
/// String columns have a second, *borrowed* storage mode in which each cell
/// is a `std::string_view` into memory owned by someone else (the raw
/// chunk's records, for `Pipeline::WrapRaw`).  A borrowed column is only
/// valid while its backing storage is alive; everything constructed from it
/// by the pipeline copies the bytes it keeps, so borrowing never leaks past
/// the transform call that created it.
///
/// Null cells keep a placeholder in the typed storage (0 / 0.0 / empty
/// string); the bitmap is authoritative.  Kernels must consult
/// `IsNull`/`has_nulls` rather than sniffing placeholder values.
class Column {
 public:
  Column() = default;
  explicit Column(ValueType type) : type_(type) {}

  Column(const Column&) = default;
  Column& operator=(const Column&) = default;
  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when at least one null has been appended (the bitmap exists).
  bool has_nulls() const { return !null_words_.empty(); }
  bool IsNull(size_t i) const {
    return !null_words_.empty() &&
           (null_words_[i >> 6] >> (i & 63u) & 1u) != 0;
  }

  /// True when string cells are views into externally owned memory.
  bool is_borrowed() const { return borrowed_; }

  // --- Typed appends (must match type(); CHECK-fails otherwise). ---
  void AppendDouble(double v);
  void AppendInt64(int64_t v);  ///< also for kTimestamp columns
  /// Copies the bytes into the column's arena.
  void AppendString(std::string_view v);
  /// Borrows the bytes; caller guarantees they outlive the column.  Only
  /// valid on a column that owns no arena bytes yet (all-borrowed or
  /// all-owned, never mixed).
  void AppendBorrowedString(std::string_view v);
  /// Appends a null placeholder and sets the bitmap bit.
  void AppendNull();
  /// Appends `v` (or null) with a type check against the column type.
  Status AppendValue(const Value& v);

  void Reserve(size_t rows);

  // --- Direct typed access for kernels. ---
  /// Contiguous payload of a kDouble column (placeholders at null slots).
  const std::vector<double>& doubles() const { return doubles_; }
  std::vector<double>& mutable_doubles() { return doubles_; }
  /// Contiguous payload of a kInt64/kTimestamp column.
  const std::vector<int64_t>& ints() const { return ints_; }
  std::vector<int64_t>& mutable_ints() { return ints_; }
  /// String cell as a view (into the arena or the borrowed storage).
  std::string_view StringAt(size_t i) const {
    if (borrowed_) return views_[i];
    return std::string_view(arena_).substr(offsets_[i],
                                           offsets_[i + 1] - offsets_[i]);
  }

  /// Cell as a Value (interop / tests; not for inner loops).
  Value ValueAt(size_t i) const;

  /// New column with the rows whose `keep[i]` is non-zero, in order.
  /// Borrowed string cells stay borrowed (same backing storage).
  Column Filter(const std::vector<uint8_t>& keep) const;

  /// Marks row `i` null in place (placeholder value is left as is).
  void MarkNull(size_t i);
  /// Clears row i's null bit (after a kernel wrote a real value).
  void ClearNull(size_t i);
  /// Frees the bitmap when every bit is clear, restoring the all-valid fast
  /// path for downstream kernels (e.g. after the imputer filled every null).
  void DropBitmapIfAllValid();

  /// Owned heap footprint (typed storage + arena + offsets + bitmap).
  /// Borrowed views count the view table only — the bytes belong to the raw
  /// chunk, which the storage layer accounts separately.
  size_t ByteSize() const;

 private:
  void EnsureBitmap();

  ValueType type_ = ValueType::kNull;
  size_t size_ = 0;
  std::vector<double> doubles_;
  std::vector<int64_t> ints_;
  /// Owned string storage: bytes + rows+1 offsets (lazily seeded with 0).
  std::string arena_;
  std::vector<uint32_t> offsets_;
  /// Borrowed string storage.
  std::vector<std::string_view> views_;
  bool borrowed_ = false;
  /// Packed null bitmap (bit set = null); empty means no nulls.
  std::vector<uint64_t> null_words_;
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_COLUMN_H_
