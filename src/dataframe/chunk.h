#ifndef CDPIPE_DATAFRAME_CHUNK_H_
#define CDPIPE_DATAFRAME_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/column.h"
#include "src/dataframe/schema.h"
#include "src/dataframe/value.h"
#include "src/linalg/sparse_vector.h"

namespace cdpipe {

/// Chunk identifier.  The data manager assigns each incoming raw chunk a
/// monotonically increasing timestamp which doubles as its unique id
/// (paper §4.2).
using ChunkId = int64_t;

/// A single record materialized cell-by-cell.  The batch representation is
/// columnar (see below); Row survives as the interop/test currency for
/// assembling and inspecting individual records.
using Row = std::vector<Value>;

/// Columnar relational batch flowing between the early pipeline components
/// (parser, feature extraction, filtering): one typed `Column` per schema
/// field.  Kernels operate column-at-a-time on the contiguous typed
/// storage; the row-oriented accessors (`AppendRow`, `RowAt`, `ValueAt`)
/// exist for construction in tests and for interop, not for inner loops.
///
/// Invariant: columns_ is parallel to schema().fields() and every column
/// holds exactly num_rows() cells.  `Make` validates this; the append API
/// maintains it.
class TableData {
 public:
  TableData() = default;
  /// An empty table with one empty column per schema field.
  explicit TableData(std::shared_ptr<const Schema> schema);

  /// Adopts fully built columns; fails unless they are parallel to the
  /// schema and of equal length.
  static Result<TableData> Make(std::shared_ptr<const Schema> schema,
                                std::vector<Column> columns);

  /// Builds a table row-at-a-time (tests / interop).
  static Result<TableData> FromRows(std::shared_ptr<const Schema> schema,
                                    const std::vector<Row>& rows);

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Appends one record; cells must match the schema types (nulls allowed).
  Status AppendRow(const Row& row);
  void ReserveRows(size_t rows);

  /// Kernels that append one typed cell to every column directly (bypassing
  /// AppendRow's Value boxing) call this to advance the row count.  Returns
  /// false — leaving the table unchanged beyond the caller's appends — when
  /// some column did not grow to num_rows() + 1.
  bool CommitAppendedRow();

  /// Cell (r, c) as a Value (interop / tests; not for inner loops).
  Value ValueAt(size_t row, size_t col) const;
  /// Record r materialized as a Row of Values.
  Row RowAt(size_t row) const;

  /// New table with the rows whose `keep[i]` is non-zero, in order.
  TableData Filter(const std::vector<uint8_t>& keep) const;

  /// Widens a kInt64/kTimestamp column to kDouble in place (static_cast per
  /// cell, nulls preserved) and rebinds the schema field's type.  No-op on a
  /// column that is already kDouble.  Numeric components (imputer, scaler)
  /// use this so they can write fractional results into integer-typed input
  /// columns, exactly as the row path widened cells through Value::AsDouble.
  Status PromoteColumnToDouble(size_t col);

  /// Approximate in-memory footprint used by the storage accounting:
  /// the owned bytes of every column (typed vectors, string arenas,
  /// offsets, null bitmaps).  Borrowed string columns count their view
  /// tables only — the payload belongs to the raw chunk.
  size_t ByteSize() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Vectorized batch: one (sparse) feature vector and one label per example.
/// This is what the model consumes and what the chunk store materializes.
struct FeatureData {
  uint32_t dim = 0;
  std::vector<SparseVector> features;
  std::vector<double> labels;

  size_t num_rows() const { return features.size(); }
  size_t ByteSize() const;

  /// Internal-consistency check: features/labels aligned, dims match.
  Status Validate() const;
};

/// The value passed between pipeline components.  Early components operate
/// on TableData; a vectorizing component (FeatureHasher, VectorAssembler)
/// switches the batch to FeatureData for the model.
using DataBatch = std::variant<TableData, FeatureData>;

/// Number of examples in a batch regardless of representation.
size_t BatchNumRows(const DataBatch& batch);
/// Approximate in-memory footprint of a batch.
size_t BatchByteSize(const DataBatch& batch);

/// An immutable chunk of raw input records as received from the outside
/// world (one line per record).  Raw chunks are always retained by the
/// chunk store and are the source of re-materialization (paper §3.2).
struct RawChunk {
  ChunkId id = 0;
  /// Event-time of the chunk in seconds (used by time/window samplers and
  /// the deployment replay).
  int64_t event_time_seconds = 0;
  std::vector<std::string> records;

  size_t num_rows() const { return records.size(); }
  size_t ByteSize() const;
};

/// The pipeline's output for one raw chunk: materialized features plus a
/// reference (the id) back to the originating raw chunk.
struct FeatureChunk {
  ChunkId origin_id = 0;
  int64_t event_time_seconds = 0;
  FeatureData data;

  size_t num_rows() const { return data.num_rows(); }
  size_t ByteSize() const { return data.ByteSize(); }
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_CHUNK_H_
