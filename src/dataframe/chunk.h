#ifndef CDPIPE_DATAFRAME_CHUNK_H_
#define CDPIPE_DATAFRAME_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"
#include "src/dataframe/schema.h"
#include "src/dataframe/value.h"
#include "src/linalg/sparse_vector.h"

namespace cdpipe {

/// Chunk identifier.  The data manager assigns each incoming raw chunk a
/// monotonically increasing timestamp which doubles as its unique id
/// (paper §4.2).
using ChunkId = int64_t;

/// A single record: one cell per schema field.
using Row = std::vector<Value>;

/// Row-oriented relational batch flowing between the early pipeline
/// components (parser, feature extraction, filtering).
struct TableData {
  std::shared_ptr<const Schema> schema;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
  /// Approximate in-memory footprint used by the storage accounting.
  size_t ByteSize() const;
};

/// Vectorized batch: one (sparse) feature vector and one label per example.
/// This is what the model consumes and what the chunk store materializes.
struct FeatureData {
  uint32_t dim = 0;
  std::vector<SparseVector> features;
  std::vector<double> labels;

  size_t num_rows() const { return features.size(); }
  size_t ByteSize() const;

  /// Internal-consistency check: features/labels aligned, dims match.
  Status Validate() const;
};

/// The value passed between pipeline components.  Early components operate
/// on TableData; a vectorizing component (FeatureHasher, VectorAssembler)
/// switches the batch to FeatureData for the model.
using DataBatch = std::variant<TableData, FeatureData>;

/// Number of examples in a batch regardless of representation.
size_t BatchNumRows(const DataBatch& batch);
/// Approximate in-memory footprint of a batch.
size_t BatchByteSize(const DataBatch& batch);

/// An immutable chunk of raw input records as received from the outside
/// world (one line per record).  Raw chunks are always retained by the
/// chunk store and are the source of re-materialization (paper §3.2).
struct RawChunk {
  ChunkId id = 0;
  /// Event-time of the chunk in seconds (used by time/window samplers and
  /// the deployment replay).
  int64_t event_time_seconds = 0;
  std::vector<std::string> records;

  size_t num_rows() const { return records.size(); }
  size_t ByteSize() const;
};

/// The pipeline's output for one raw chunk: materialized features plus a
/// reference (the id) back to the originating raw chunk.
struct FeatureChunk {
  ChunkId origin_id = 0;
  int64_t event_time_seconds = 0;
  FeatureData data;

  size_t num_rows() const { return data.num_rows(); }
  size_t ByteSize() const { return data.ByteSize(); }
};

}  // namespace cdpipe

#endif  // CDPIPE_DATAFRAME_CHUNK_H_
