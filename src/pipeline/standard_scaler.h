#ifndef CDPIPE_PIPELINE_STANDARD_SCALER_H_
#define CDPIPE_PIPELINE_STANDARD_SCALER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Standardizes features using incrementally maintained mean / standard
/// deviation — the paper's canonical example of online statistics
/// computation (§3.1).
///
/// Two operating modes, chosen by the batch representation:
///
///  - **Feature mode** (sparse vectors): per-dimension moments are
///    accumulated counting implicit zeros (sum and sum-of-squares over
///    stored entries, total row count over all rows).  By default values are
///    only divided by σ (`with_mean=false`), which preserves sparsity — the
///    standard treatment for high-dimensional sparse data such as URL.
///  - **Table mode**: per-column Welford accumulators over the configured
///    numeric columns; cells become (x-μ)/σ.
///
/// Dimensions with σ < 1e-12 pass through unscaled (constant features carry
/// no information; dividing by ~0 would explode them).
class StandardScaler : public PipelineComponent {
 public:
  struct Options {
    /// Table mode: columns to standardize.  Ignored in feature mode.
    std::vector<std::string> columns;
    /// Feature mode only: also subtract the mean (destroys sparsity).
    bool with_mean = false;
  };

  /// Dimensions with σ below this pass through undivided (see class doc).
  /// Public so the fused block kernel applies the exact same comparison.
  static constexpr double kMinStdDev = 1e-12;

  StandardScaler() : StandardScaler(Options()) {}
  explicit StandardScaler(Options options);

  std::string name() const override { return "standard_scaler"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }
  bool is_stateful() const override { return true; }

  Status Update(const DataBatch& batch) override;
  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  void Reset() override;
  std::unique_ptr<PipelineComponent> Clone() const override;
  std::string DescribeState() const override;
  Status SaveState(Serializer* out) const override;
  Status LoadState(Deserializer* in) override;

  /// Current statistics for a feature dimension (feature mode) or for the
  /// i-th configured column (table mode).
  double MeanOf(uint32_t key) const;
  double StdDevOf(uint32_t key) const;
  int64_t ObservationCount() const { return total_rows_; }

 private:
  struct Moments {
    double sum = 0.0;
    double sum_squares = 0.0;
  };

  double VarianceOf(uint32_t key) const;

  /// Shared kernel for Transform/TransformOwned: scales the configured
  /// columns of `*table` in place, widening integer columns to double first.
  Status ScaleTable(TableData* table) const;
  void ScaleFeatures(FeatureData* features) const;

  Options options_;
  /// Total rows seen (feature mode denominators include implicit zeros;
  /// table mode tracks per-column counts separately in `column_counts_`).
  int64_t total_rows_ = 0;
  std::unordered_map<uint32_t, Moments> stats_;
  std::unordered_map<uint32_t, int64_t> column_counts_;
  bool table_mode_seen_ = false;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_STANDARD_SCALER_H_
