#include "src/pipeline/missing_value_imputer.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

namespace {

/// Fused feature-mode kernel: replaces NaN entries in the vector block in
/// place.  The parser records which rows contain a NaN (`nan_rows`); the
/// fill scan touches only those rows, and a block with none — the
/// overwhelmingly common case — is skipped entirely and counted as a
/// runtime elision.
class ImputeVecStage final : public fusion::FusedStage {
 public:
  explicit ImputeVecStage(const MissingValueImputer* imputer)
      : imputer_(imputer) {}

  const char* label() const override { return "missing_value_imputer"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::VecBlock& vec = ctx.scratch->vec;
    ctx.rows_scanned += vec.num_rows();
    if (!vec.saw_nan) {
      ++ctx.stages_elided;
      return Status::OK();
    }
    for (const uint32_t r : vec.nan_rows) {
      const uint32_t start = r > 0 ? vec.row_end[r - 1] : 0;
      const uint32_t stop = vec.row_end[r];
      for (uint32_t k = start; k < stop; ++k) {
        auto& entry = vec.entries[k];
        if (std::isnan(entry.second)) {
          entry.second = imputer_->MeanForDimension(entry.first);
        }
      }
    }
    vec.saw_nan = false;
    vec.nan_rows.clear();
    return Status::OK();
  }

 private:
  const MissingValueImputer* imputer_;
};

/// Fused table-mode kernel.  Fill values are snapshotted at plan-compile
/// time: any statistics change bumps the pipeline state version, which
/// invalidates the plan, so the snapshot is exactly what the interpreted
/// path would read.  Columns with no nulls in the block are skipped; a
/// block where every configured column is clean counts as an elision.
class ImputeTableStage final : public fusion::FusedStage {
 public:
  struct Fill {
    size_t slot;
    double value;
  };

  explicit ImputeTableStage(std::vector<Fill> fills)
      : fills_(std::move(fills)) {}

  const char* label() const override { return "missing_value_imputer"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    ctx.rows_scanned += table.live_rows;
    bool did_work = false;
    for (const Fill& fill : fills_) {
      fusion::BlockColumn& col = table.cols[fill.slot];
      if (!col.any_null) continue;
      did_work = true;
      col.PromoteToDouble();
      for (size_t r = 0; r < col.null.size(); ++r) {
        if (col.null[r]) col.d[r] = fill.value;
      }
      col.any_null = false;
    }
    if (!did_work) ++ctx.stages_elided;
    return Status::OK();
  }

 private:
  std::vector<Fill> fills_;
};

}  // namespace

MissingValueImputer::MissingValueImputer(Options options)
    : options_(std::move(options)) {}

Status MissingValueImputer::Update(const DataBatch& batch) {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    for (const SparseVector& x : features->features) {
      const auto& idx = x.indices();
      const auto& val = x.values();
      for (size_t k = 0; k < idx.size(); ++k) {
        if (std::isnan(val[k])) continue;
        RunningMean& rm = stats_[idx[k]];
        rm.count += 1;
        rm.sum += val[k];
      }
    }
    return Status::OK();
  }
  const auto& table = std::get<TableData>(batch);
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table.schema()->FieldIndex(options_.columns[c]));
    const Column& column = table.column(col);
    Result<NumericColumnView> view = NumericColumnView::Of(column, "");
    if (!view.ok()) {
      return Status::FailedPrecondition("cannot impute non-numeric column " +
                                        options_.columns[c]);
    }
    RunningMean& rm = stats_[static_cast<uint32_t>(c)];
    const size_t rows = column.size();
    if (!column.has_nulls()) {
      for (size_t r = 0; r < rows; ++r) rm.sum += (*view)[r];
      rm.count += static_cast<int64_t>(rows);
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (view->IsNull(r)) continue;
        rm.count += 1;
        rm.sum += (*view)[r];
      }
    }
  }
  return Status::OK();
}

Result<DataBatch> MissingValueImputer::Transform(const DataBatch& batch) const {
  if (const auto* features = std::get_if<FeatureData>(&batch)) {
    FeatureData out = *features;
    ImputeFeatures(&out);
    return DataBatch(std::move(out));
  }
  TableData out = std::get<TableData>(batch);
  CDPIPE_RETURN_NOT_OK(ImputeTable(&out));
  return DataBatch(std::move(out));
}

Result<DataBatch> MissingValueImputer::TransformOwned(DataBatch&& batch) const {
  if (auto* features = std::get_if<FeatureData>(&batch)) {
    ImputeFeatures(features);
    return std::move(batch);
  }
  CDPIPE_RETURN_NOT_OK(ImputeTable(&std::get<TableData>(batch)));
  return std::move(batch);
}

Status MissingValueImputer::Fuse(fusion::PlanBuilder* plan) const {
  using Repr = fusion::PlanBuilder::Repr;
  if (plan->repr() == Repr::kVec) {
    plan->AddStage(std::make_unique<ImputeVecStage>(this));
    return Status::OK();
  }
  if (plan->repr() != Repr::kTable) {
    return Status::FailedPrecondition(
        "imputer fuses only over a table or vectorized block");
  }
  if (options_.columns.empty()) {
    plan->AddElidedStage("missing_value_imputer");
    return Status::OK();
  }
  std::vector<ImputeTableStage::Fill> fills;
  fills.reserve(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    // Unknown or non-numeric columns decline fusion; the interpreted path
    // owns reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(options_.columns[c]));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition("cannot impute non-numeric column " +
                                        options_.columns[c]);
    }
    auto it = stats_.find(static_cast<uint32_t>(c));
    const double fill = it != stats_.end()
                            ? it->second.Mean(options_.default_value)
                            : options_.default_value;
    fills.push_back(ImputeTableStage::Fill{slot, fill});
  }
  plan->AddStage(std::make_unique<ImputeTableStage>(std::move(fills)));
  return Status::OK();
}

void MissingValueImputer::ImputeFeatures(FeatureData* features) const {
  for (SparseVector& x : features->features) {
    x.TransformValues([this](uint32_t index, double value) {
      return std::isnan(value) ? MeanForDimension(index) : value;
    });
  }
}

Status MissingValueImputer::ImputeTable(TableData* table) const {
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table->schema()->FieldIndex(options_.columns[c]));
    auto it = stats_.find(static_cast<uint32_t>(c));
    const double fill = it != stats_.end()
                            ? it->second.Mean(options_.default_value)
                            : options_.default_value;
    Column& column = table->mutable_column(col);
    if (!column.has_nulls()) continue;
    // The fill value is fractional in general, so integer columns widen to
    // double first (same numeric result as the row path's Value::Double
    // cells feeding AsDouble downstream).
    if (column.type() != ValueType::kDouble) {
      CDPIPE_RETURN_NOT_OK(table->PromoteColumnToDouble(col));
    }
    Column& target = table->mutable_column(col);
    std::vector<double>& cells = target.mutable_doubles();
    for (size_t r = 0; r < cells.size(); ++r) {
      if (target.IsNull(r)) {
        cells[r] = fill;
        target.ClearNull(r);
      }
    }
    target.DropBitmapIfAllValid();
  }
  return Status::OK();
}

void MissingValueImputer::Reset() { stats_.clear(); }

std::unique_ptr<PipelineComponent> MissingValueImputer::Clone() const {
  auto out = std::make_unique<MissingValueImputer>(options_);
  out->stats_ = stats_;
  return out;
}

std::string MissingValueImputer::DescribeState() const {
  return StrFormat("means tracked for %zu dimensions", stats_.size());
}

Status MissingValueImputer::SaveState(Serializer* out) const {
  // Deterministic order: sort by dimension.
  std::vector<std::pair<uint32_t, RunningMean>> sorted(stats_.begin(),
                                                       stats_.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<uint32_t> dims;
  std::vector<double> counts;
  std::vector<double> sums;
  dims.reserve(sorted.size());
  for (const auto& [dim, rm] : sorted) {
    dims.push_back(dim);
    counts.push_back(static_cast<double>(rm.count));
    sums.push_back(rm.sum);
  }
  out->WriteUint32Vector("imputer.dims", dims);
  out->WriteDoubleVector("imputer.counts", counts);
  out->WriteDoubleVector("imputer.sums", sums);
  return Status::OK();
}

Status MissingValueImputer::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(auto dims, in->ReadUint32Vector("imputer.dims"));
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadDoubleVector("imputer.counts"));
  CDPIPE_ASSIGN_OR_RETURN(auto sums, in->ReadDoubleVector("imputer.sums"));
  if (dims.size() != counts.size() || dims.size() != sums.size()) {
    return Status::InvalidArgument("imputer state arrays misaligned");
  }
  stats_.clear();
  for (size_t i = 0; i < dims.size(); ++i) {
    stats_[dims[i]] = RunningMean{static_cast<int64_t>(counts[i]), sums[i]};
  }
  return Status::OK();
}

double MissingValueImputer::MeanForDimension(uint32_t dim) const {
  auto it = stats_.find(dim);
  if (it == stats_.end()) return options_.default_value;
  return it->second.Mean(options_.default_value);
}

}  // namespace cdpipe
