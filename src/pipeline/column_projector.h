#ifndef CDPIPE_PIPELINE_COLUMN_PROJECTOR_H_
#define CDPIPE_PIPELINE_COLUMN_PROJECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Feature selection (Table 1): keeps only the configured columns of a
/// table batch, in the configured order.  Stateless.
class ColumnProjector : public PipelineComponent {
 public:
  explicit ColumnProjector(std::vector<std::string> columns);

  std::string name() const override { return "column_projector"; }
  ComponentKind kind() const override {
    return ComponentKind::kFeatureSelection;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

 private:
  std::vector<std::string> columns_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_COLUMN_PROJECTOR_H_
