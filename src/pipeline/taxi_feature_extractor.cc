#include "src/pipeline/taxi_feature_extractor.h"

#include <cmath>
#include <utility>

#include "src/common/status.h"

namespace cdpipe {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

double HaversineKm(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, a)));
}

double BearingDegrees(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double y = std::sin(dlambda) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  double bearing = std::atan2(y, x) / kDegToRad;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

TaxiFeatureExtractor::TaxiFeatureExtractor(Options options)
    : options_(std::move(options)) {}

Result<DataBatch> TaxiFeatureExtractor::Transform(
    const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "taxi_feature_extractor expects a table batch");
  }
  const Schema& schema = *table->schema;
  CDPIPE_ASSIGN_OR_RETURN(size_t pickup_dt,
                          schema.FieldIndex(options_.pickup_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dropoff_dt,
                          schema.FieldIndex(options_.dropoff_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t plat,
                          schema.FieldIndex(options_.pickup_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t plon,
                          schema.FieldIndex(options_.pickup_lon_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dlat,
                          schema.FieldIndex(options_.dropoff_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dlon,
                          schema.FieldIndex(options_.dropoff_lon_column));

  CDPIPE_ASSIGN_OR_RETURN(
      auto schema1,
      table->schema->AddField(Field{"duration_s", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema2, schema1->AddField(Field{"haversine_km", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema3, schema2->AddField(Field{"bearing", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4, schema3->AddField(Field{"hour_of_day", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4a, schema4->AddField(Field{"hour_sin", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4b, schema4a->AddField(Field{"hour_cos", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema5,
      schema4b->AddField(Field{"day_of_week", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto out_schema,
      schema5->AddField(Field{"log_duration", ValueType::kDouble}));

  TableData out;
  out.schema = out_schema;
  out.rows.reserve(table->rows.size());
  for (const Row& row : table->rows) {
    const Value& pu = row[pickup_dt];
    const Value& doff = row[dropoff_dt];
    if (pu.is_null() || doff.is_null() || row[plat].is_null() ||
        row[plon].is_null() || row[dlat].is_null() || row[dlon].is_null()) {
      // A trip without both endpoints cannot yield features or a label; the
      // anomaly filter downstream would drop it anyway.
      continue;
    }
    const double duration =
        static_cast<double>(doff.int64_value() - pu.int64_value());
    CDPIPE_ASSIGN_OR_RETURN(double lat1, row[plat].AsDouble());
    CDPIPE_ASSIGN_OR_RETURN(double lon1, row[plon].AsDouble());
    CDPIPE_ASSIGN_OR_RETURN(double lat2, row[dlat].AsDouble());
    CDPIPE_ASSIGN_OR_RETURN(double lon2, row[dlon].AsDouble());
    const double distance = HaversineKm(lat1, lon1, lat2, lon2);
    const double bearing = BearingDegrees(lat1, lon1, lat2, lon2);
    const int64_t pickup_seconds = pu.int64_value();
    const double hour =
        static_cast<double>((pickup_seconds % 86400 + 86400) % 86400) / 3600.0;
    // 1970-01-01 was a Thursday; shift so 0 = Monday.
    const int64_t days = pickup_seconds / 86400;
    const double weekday = static_cast<double>(((days % 7) + 7 + 3) % 7);

    Row extended = row;
    extended.push_back(Value::Double(duration));
    extended.push_back(Value::Double(distance));
    extended.push_back(Value::Double(bearing));
    extended.push_back(Value::Double(std::floor(hour)));
    extended.push_back(Value::Double(std::sin(hour / 24.0 * 2.0 * M_PI)));
    extended.push_back(Value::Double(std::cos(hour / 24.0 * 2.0 * M_PI)));
    extended.push_back(Value::Double(weekday));
    extended.push_back(
        Value::Double(duration >= 0.0 ? std::log1p(duration) : 0.0));
    out.rows.push_back(std::move(extended));
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> TaxiFeatureExtractor::Clone() const {
  return std::make_unique<TaxiFeatureExtractor>(options_);
}

}  // namespace cdpipe
