#include "src/pipeline/taxi_feature_extractor.h"

#include <cmath>
#include <utility>

#include "src/common/status.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;

/// Fused kernel: marks null-endpoint rows dead on the shared keep mask and
/// fills the eight derived slots.  Derived values are computed for every
/// physical row (dead rows carry parse placeholders, and DeriveTaxiRow is
/// total over them) — only live rows are ever read downstream, so this
/// keeps the loop branch-free without affecting output.
class ExtractTaxiStage final : public fusion::FusedStage {
 public:
  struct Slots {
    size_t pickup_dt;
    size_t dropoff_dt;
    size_t plat;
    size_t plon;
    size_t dlat;
    size_t dlon;
    size_t derived[8];
    size_t num_slots;
  };

  explicit ExtractTaxiStage(Slots slots) : slots_(slots) {}

  const char* label() const override { return "taxi_feature_extractor"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    ctx.rows_scanned += table.live_rows;
    if (table.cols.size() < slots_.num_slots) {
      table.cols.resize(slots_.num_slots);
    }
    const fusion::BlockColumn& pu_col = table.cols[slots_.pickup_dt];
    const fusion::BlockColumn& doff_col = table.cols[slots_.dropoff_dt];
    // Mirror the interpreted type guard: a runtime promotion (e.g. an
    // imputer widening the datetime column) invalidates the integer
    // arithmetic below.
    if (pu_col.type == ValueType::kDouble ||
        doff_col.type == ValueType::kDouble ||
        pu_col.type == ValueType::kString ||
        doff_col.type == ValueType::kString) {
      return Status::FailedPrecondition(
          "taxi_feature_extractor expects integer datetime columns");
    }
    const fusion::BlockColumn& plat_col = table.cols[slots_.plat];
    const fusion::BlockColumn& plon_col = table.cols[slots_.plon];
    const fusion::BlockColumn& dlat_col = table.cols[slots_.dlat];
    const fusion::BlockColumn& dlon_col = table.cols[slots_.dlon];

    const size_t num_rows = table.num_rows;
    for (size_t r = 0; r < num_rows; ++r) {
      if (table.keep[r] == 0) continue;
      if (pu_col.IsNull(r) || doff_col.IsNull(r) || plat_col.IsNull(r) ||
          plon_col.IsNull(r) || dlat_col.IsNull(r) || dlon_col.IsNull(r)) {
        table.keep[r] = 0;
        --table.live_rows;
      }
    }

    for (size_t k = 0; k < 8; ++k) {
      fusion::BlockColumn& col = table.cols[slots_.derived[k]];
      col.Reset(ValueType::kDouble);
      col.d.resize(num_rows);
    }
    fusion::BlockColumn& duration_c = table.cols[slots_.derived[0]];
    fusion::BlockColumn& distance_c = table.cols[slots_.derived[1]];
    fusion::BlockColumn& bearing_c = table.cols[slots_.derived[2]];
    fusion::BlockColumn& hour_c = table.cols[slots_.derived[3]];
    fusion::BlockColumn& hour_sin_c = table.cols[slots_.derived[4]];
    fusion::BlockColumn& hour_cos_c = table.cols[slots_.derived[5]];
    fusion::BlockColumn& weekday_c = table.cols[slots_.derived[6]];
    fusion::BlockColumn& log_duration_c = table.cols[slots_.derived[7]];
    for (size_t r = 0; r < num_rows; ++r) {
      const TaxiDerivedRow row =
          DeriveTaxiRow(pu_col.i[r], doff_col.i[r], plat_col.NumericAt(r),
                        plon_col.NumericAt(r), dlat_col.NumericAt(r),
                        dlon_col.NumericAt(r));
      duration_c.d[r] = row.duration_s;
      distance_c.d[r] = row.haversine_km;
      bearing_c.d[r] = row.bearing;
      hour_c.d[r] = row.hour_of_day;
      hour_sin_c.d[r] = row.hour_sin;
      hour_cos_c.d[r] = row.hour_cos;
      weekday_c.d[r] = row.day_of_week;
      log_duration_c.d[r] = row.log_duration;
    }
    return Status::OK();
  }

 private:
  Slots slots_;
};

}  // namespace

double HaversineKm(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dphi = (lat2 - lat1) * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, a)));
}

double BearingDegrees(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kDegToRad;
  const double phi2 = lat2 * kDegToRad;
  const double dlambda = (lon2 - lon1) * kDegToRad;
  const double y = std::sin(dlambda) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  double bearing = std::atan2(y, x) / kDegToRad;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

TaxiDerivedRow DeriveTaxiRow(int64_t pickup_seconds, int64_t dropoff_seconds,
                             double pickup_lat, double pickup_lon,
                             double dropoff_lat, double dropoff_lon) {
  TaxiDerivedRow out;
  const double duration =
      static_cast<double>(dropoff_seconds - pickup_seconds);
  out.duration_s = duration;
  out.haversine_km =
      HaversineKm(pickup_lat, pickup_lon, dropoff_lat, dropoff_lon);
  out.bearing =
      BearingDegrees(pickup_lat, pickup_lon, dropoff_lat, dropoff_lon);
  const double hour =
      static_cast<double>((pickup_seconds % 86400 + 86400) % 86400) / 3600.0;
  // 1970-01-01 was a Thursday; shift so 0 = Monday.
  const int64_t days = pickup_seconds / 86400;
  out.day_of_week = static_cast<double>(((days % 7) + 7 + 3) % 7);
  out.hour_of_day = std::floor(hour);
  out.hour_sin = std::sin(hour / 24.0 * 2.0 * M_PI);
  out.hour_cos = std::cos(hour / 24.0 * 2.0 * M_PI);
  out.log_duration = duration >= 0.0 ? std::log1p(duration) : 0.0;
  return out;
}

TaxiFeatureExtractor::TaxiFeatureExtractor(Options options)
    : options_(std::move(options)) {}

Result<DataBatch> TaxiFeatureExtractor::Transform(
    const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "taxi_feature_extractor expects a table batch");
  }
  const Schema& schema = *table->schema();
  CDPIPE_ASSIGN_OR_RETURN(size_t pickup_dt,
                          schema.FieldIndex(options_.pickup_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dropoff_dt,
                          schema.FieldIndex(options_.dropoff_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t plat,
                          schema.FieldIndex(options_.pickup_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t plon,
                          schema.FieldIndex(options_.pickup_lon_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dlat,
                          schema.FieldIndex(options_.dropoff_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(size_t dlon,
                          schema.FieldIndex(options_.dropoff_lon_column));

  CDPIPE_ASSIGN_OR_RETURN(
      auto schema1,
      table->schema()->AddField(Field{"duration_s", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema2, schema1->AddField(Field{"haversine_km", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema3, schema2->AddField(Field{"bearing", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4, schema3->AddField(Field{"hour_of_day", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4a, schema4->AddField(Field{"hour_sin", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema4b, schema4a->AddField(Field{"hour_cos", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto schema5,
      schema4b->AddField(Field{"day_of_week", ValueType::kDouble}));
  CDPIPE_ASSIGN_OR_RETURN(
      auto out_schema,
      schema5->AddField(Field{"log_duration", ValueType::kDouble}));

  const size_t num_rows = table->num_rows();
  const Column& pu_col = table->column(pickup_dt);
  const Column& doff_col = table->column(dropoff_dt);
  if (pu_col.type() == ValueType::kDouble ||
      doff_col.type() == ValueType::kDouble ||
      pu_col.type() == ValueType::kString ||
      doff_col.type() == ValueType::kString) {
    return Status::FailedPrecondition(
        "taxi_feature_extractor expects integer datetime columns");
  }
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView plat_v,
      NumericColumnView::Of(table->column(plat), options_.pickup_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView plon_v,
      NumericColumnView::Of(table->column(plon), options_.pickup_lon_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView dlat_v,
      NumericColumnView::Of(table->column(dlat), options_.dropoff_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView dlon_v,
      NumericColumnView::Of(table->column(dlon), options_.dropoff_lon_column));

  // A trip without both endpoints cannot yield features or a label; the
  // anomaly filter downstream would drop it anyway.
  std::vector<uint8_t> keep(num_rows, 1);
  size_t kept = num_rows;
  for (size_t r = 0; r < num_rows; ++r) {
    if (pu_col.IsNull(r) || doff_col.IsNull(r) || plat_v.IsNull(r) ||
        plon_v.IsNull(r) || dlat_v.IsNull(r) || dlon_v.IsNull(r)) {
      keep[r] = 0;
      --kept;
    }
  }

  TableData base = kept == num_rows ? *table : table->Filter(keep);

  // Derived columns, computed in one fused pass over the filtered typed
  // arrays (the arithmetic matches the row path expression for expression).
  const std::vector<int64_t>& pu = base.column(pickup_dt).ints();
  const std::vector<int64_t>& doff = base.column(dropoff_dt).ints();
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView lat1_v,
      NumericColumnView::Of(base.column(plat), options_.pickup_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView lon1_v,
      NumericColumnView::Of(base.column(plon), options_.pickup_lon_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView lat2_v,
      NumericColumnView::Of(base.column(dlat), options_.dropoff_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView lon2_v,
      NumericColumnView::Of(base.column(dlon), options_.dropoff_lon_column));

  std::vector<double> duration_c(kept), distance_c(kept), bearing_c(kept),
      hour_c(kept), hour_sin_c(kept), hour_cos_c(kept), weekday_c(kept),
      log_duration_c(kept);
  for (size_t r = 0; r < kept; ++r) {
    const TaxiDerivedRow row = DeriveTaxiRow(pu[r], doff[r], lat1_v[r],
                                             lon1_v[r], lat2_v[r], lon2_v[r]);
    duration_c[r] = row.duration_s;
    distance_c[r] = row.haversine_km;
    bearing_c[r] = row.bearing;
    hour_c[r] = row.hour_of_day;
    hour_sin_c[r] = row.hour_sin;
    hour_cos_c[r] = row.hour_cos;
    weekday_c[r] = row.day_of_week;
    log_duration_c[r] = row.log_duration;
  }

  std::vector<Column> out_columns;
  out_columns.reserve(base.num_columns() + 8);
  for (size_t c = 0; c < base.num_columns(); ++c) {
    out_columns.push_back(std::move(base.mutable_column(c)));
  }
  for (std::vector<double>* cells :
       {&duration_c, &distance_c, &bearing_c, &hour_c, &hour_sin_c,
        &hour_cos_c, &weekday_c, &log_duration_c}) {
    Column column(ValueType::kDouble);
    for (double v : *cells) column.AppendDouble(v);
    out_columns.push_back(std::move(column));
  }
  CDPIPE_ASSIGN_OR_RETURN(
      TableData out, TableData::Make(out_schema, std::move(out_columns)));
  return DataBatch(std::move(out));
}

Status TaxiFeatureExtractor::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition(
        "taxi_feature_extractor expects a table batch");
  }
  ExtractTaxiStage::Slots slots;
  CDPIPE_ASSIGN_OR_RETURN(slots.pickup_dt,
                          plan->SlotOf(options_.pickup_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(slots.dropoff_dt,
                          plan->SlotOf(options_.dropoff_datetime_column));
  CDPIPE_ASSIGN_OR_RETURN(slots.plat, plan->SlotOf(options_.pickup_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(slots.plon, plan->SlotOf(options_.pickup_lon_column));
  CDPIPE_ASSIGN_OR_RETURN(slots.dlat,
                          plan->SlotOf(options_.dropoff_lat_column));
  CDPIPE_ASSIGN_OR_RETURN(slots.dlon,
                          plan->SlotOf(options_.dropoff_lon_column));
  for (size_t dt : {slots.pickup_dt, slots.dropoff_dt}) {
    const ValueType t = plan->SlotDeclaredType(dt);
    if (t == ValueType::kDouble || t == ValueType::kString) {
      return Status::FailedPrecondition(
          "taxi_feature_extractor expects integer datetime columns");
    }
  }
  for (size_t coord : {slots.plat, slots.plon, slots.dlat, slots.dlon}) {
    // String coordinates decline fusion; the interpreted path owns
    // reporting the column-view error with full pipeline context.
    if (plan->SlotDeclaredType(coord) == ValueType::kString) {
      return Status::FailedPrecondition(
          "taxi_feature_extractor expects numeric coordinate columns");
    }
  }
  static constexpr const char* kDerived[8] = {
      "duration_s", "haversine_km", "bearing",     "hour_of_day",
      "hour_sin",   "hour_cos",     "day_of_week", "log_duration"};
  for (size_t k = 0; k < 8; ++k) {
    CDPIPE_ASSIGN_OR_RETURN(slots.derived[k],
                            plan->AddSlot(Field{kDerived[k], ValueType::kDouble}));
  }
  slots.num_slots = plan->num_slots();
  plan->AddStage(std::make_unique<ExtractTaxiStage>(slots));
  return Status::OK();
}

std::unique_ptr<PipelineComponent> TaxiFeatureExtractor::Clone() const {
  return std::make_unique<TaxiFeatureExtractor>(options_);
}

}  // namespace cdpipe
