#include "src/pipeline/vector_assembler.h"

#include <utility>

#include "src/common/logging.h"
#include "src/dataframe/column_ops.h"

namespace cdpipe {

VectorAssembler::VectorAssembler(Options options)
    : options_(std::move(options)) {
  CDPIPE_CHECK(!options_.feature_columns.empty());
  CDPIPE_CHECK(!options_.label_column.empty());
}

Result<DataBatch> VectorAssembler::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "vector_assembler expects a table batch");
  }
  std::vector<NumericColumnView> views;
  views.reserve(options_.feature_columns.size());
  for (size_t i = 0; i < options_.feature_columns.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx, table->schema()->FieldIndex(options_.feature_columns[i]));
    CDPIPE_ASSIGN_OR_RETURN(NumericColumnView view,
                            NumericColumnView::Of(table->column(idx),
                                                  options_.feature_columns[i]));
    views.push_back(view);
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_idx,
                          table->schema()->FieldIndex(options_.label_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView labels,
      NumericColumnView::Of(table->column(label_idx), options_.label_column));

  const size_t num_rows = table->num_rows();
  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(num_rows);
  out.labels.reserve(num_rows);
  const size_t num_cols = views.size();
  for (size_t r = 0; r < num_rows; ++r) {
    if (labels.IsNull(r)) {
      return Status::FailedPrecondition("cannot widen null to double: " +
                                        options_.label_column);
    }
    SparseVector x(out.dim);
    x.Reserve(num_cols + (options_.add_intercept ? 1 : 0));
    for (size_t i = 0; i < num_cols; ++i) {
      if (views[i].IsNull(r)) continue;  // null => 0 (impute upstream)
      const double d = views[i][r];
      if (d != 0.0) x.PushBack(static_cast<uint32_t>(i), d);
    }
    if (options_.add_intercept) {
      x.PushBack(static_cast<uint32_t>(num_cols), 1.0);
    }
    out.features.push_back(std::move(x));
    out.labels.push_back(labels[r]);
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> VectorAssembler::Clone() const {
  return std::make_unique<VectorAssembler>(options_);
}

}  // namespace cdpipe
