#include "src/pipeline/vector_assembler.h"

#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

namespace {

/// Fused vectorizing kernel: walks the table block's live rows in ascending
/// order (the order a materialized Filter() would have produced) and packs
/// the configured columns into the vector block.  Entry indices ascend by
/// construction — feature columns emit in configured order, the intercept
/// last — so the VecBlock collapsed-row invariant holds without sorting.
class AssembleVecStage final : public fusion::FusedStage {
 public:
  AssembleVecStage(std::vector<size_t> feature_slots, size_t label_slot,
                   std::string label_column, uint32_t dim, bool add_intercept)
      : feature_slots_(std::move(feature_slots)),
        label_slot_(label_slot),
        label_column_(std::move(label_column)),
        dim_(dim),
        add_intercept_(add_intercept) {}

  const char* label() const override { return "vector_assembler"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    fusion::VecBlock& vec = ctx.scratch->vec;
    ctx.rows_scanned += table.live_rows;
    vec.dim = dim_;
    vec.entries.clear();
    vec.row_end.clear();
    vec.labels.clear();
    vec.saw_nan = false;
    vec.nan_rows.clear();
    const fusion::BlockColumn& label_col = table.cols[label_slot_];
    const size_t num_cols = feature_slots_.size();
    for (size_t r = 0; r < table.num_rows; ++r) {
      if (table.keep[r] == 0) continue;
      if (label_col.IsNull(r)) {
        return Status::FailedPrecondition("cannot widen null to double: " +
                                          label_column_);
      }
      bool row_has_nan = false;
      for (size_t i = 0; i < num_cols; ++i) {
        const fusion::BlockColumn& col = table.cols[feature_slots_[i]];
        if (col.IsNull(r)) continue;  // null => 0 (impute upstream)
        const double d = col.NumericAt(r);
        if (d != 0.0) {  // NaN compares unequal, so NaN cells are emitted
          vec.entries.emplace_back(static_cast<uint32_t>(i), d);
          if (std::isnan(d)) row_has_nan = true;
        }
      }
      if (add_intercept_) {
        vec.entries.emplace_back(static_cast<uint32_t>(num_cols), 1.0);
      }
      if (row_has_nan) {
        vec.saw_nan = true;
        vec.nan_rows.push_back(static_cast<uint32_t>(vec.row_end.size()));
      }
      vec.row_end.push_back(static_cast<uint32_t>(vec.entries.size()));
      vec.labels.push_back(label_col.NumericAt(r));
    }
    return Status::OK();
  }

 private:
  std::vector<size_t> feature_slots_;
  size_t label_slot_;
  std::string label_column_;
  uint32_t dim_;
  bool add_intercept_;
};

}  // namespace

VectorAssembler::VectorAssembler(Options options)
    : options_(std::move(options)) {
  CDPIPE_CHECK(!options_.feature_columns.empty());
  CDPIPE_CHECK(!options_.label_column.empty());
}

Result<DataBatch> VectorAssembler::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "vector_assembler expects a table batch");
  }
  std::vector<NumericColumnView> views;
  views.reserve(options_.feature_columns.size());
  for (size_t i = 0; i < options_.feature_columns.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx, table->schema()->FieldIndex(options_.feature_columns[i]));
    CDPIPE_ASSIGN_OR_RETURN(NumericColumnView view,
                            NumericColumnView::Of(table->column(idx),
                                                  options_.feature_columns[i]));
    views.push_back(view);
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_idx,
                          table->schema()->FieldIndex(options_.label_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView labels,
      NumericColumnView::Of(table->column(label_idx), options_.label_column));

  const size_t num_rows = table->num_rows();
  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(num_rows);
  out.labels.reserve(num_rows);
  const size_t num_cols = views.size();
  for (size_t r = 0; r < num_rows; ++r) {
    if (labels.IsNull(r)) {
      return Status::FailedPrecondition("cannot widen null to double: " +
                                        options_.label_column);
    }
    SparseVector x(out.dim);
    x.Reserve(num_cols + (options_.add_intercept ? 1 : 0));
    for (size_t i = 0; i < num_cols; ++i) {
      if (views[i].IsNull(r)) continue;  // null => 0 (impute upstream)
      const double d = views[i][r];
      if (d != 0.0) x.PushBack(static_cast<uint32_t>(i), d);
    }
    if (options_.add_intercept) {
      x.PushBack(static_cast<uint32_t>(num_cols), 1.0);
    }
    out.features.push_back(std::move(x));
    out.labels.push_back(labels[r]);
  }
  return DataBatch(std::move(out));
}

Status VectorAssembler::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition("vector_assembler expects a table batch");
  }
  std::vector<size_t> feature_slots;
  feature_slots.reserve(options_.feature_columns.size());
  for (const std::string& column : options_.feature_columns) {
    // Unknown or string columns decline fusion; the interpreted path owns
    // reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(column));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition("cannot assemble non-numeric column " +
                                        column);
    }
    feature_slots.push_back(slot);
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_slot,
                          plan->SlotOf(options_.label_column));
  if (plan->SlotDeclaredType(label_slot) == ValueType::kString) {
    return Status::FailedPrecondition("cannot assemble non-numeric column " +
                                      options_.label_column);
  }
  plan->AddStage(std::make_unique<AssembleVecStage>(
      std::move(feature_slots), label_slot, options_.label_column,
      output_dim(), options_.add_intercept));
  plan->BeginVec(output_dim());
  return Status::OK();
}

std::unique_ptr<PipelineComponent> VectorAssembler::Clone() const {
  return std::make_unique<VectorAssembler>(options_);
}

}  // namespace cdpipe
