#include "src/pipeline/vector_assembler.h"

#include <utility>

#include "src/common/logging.h"

namespace cdpipe {

VectorAssembler::VectorAssembler(Options options)
    : options_(std::move(options)) {
  CDPIPE_CHECK(!options_.feature_columns.empty());
  CDPIPE_CHECK(!options_.label_column.empty());
}

Result<DataBatch> VectorAssembler::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "vector_assembler expects a table batch");
  }
  std::vector<size_t> columns(options_.feature_columns.size());
  for (size_t i = 0; i < options_.feature_columns.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(
        columns[i], table->schema->FieldIndex(options_.feature_columns[i]));
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_idx,
                          table->schema->FieldIndex(options_.label_column));

  FeatureData out;
  out.dim = output_dim();
  out.features.reserve(table->rows.size());
  out.labels.reserve(table->rows.size());
  for (const Row& row : table->rows) {
    CDPIPE_ASSIGN_OR_RETURN(double label, row[label_idx].AsDouble());
    SparseVector x(out.dim);
    for (size_t i = 0; i < columns.size(); ++i) {
      const Value& v = row[columns[i]];
      if (v.is_null()) continue;  // null => 0 (impute upstream if undesired)
      CDPIPE_ASSIGN_OR_RETURN(double d, v.AsDouble());
      if (d != 0.0) x.PushBack(static_cast<uint32_t>(i), d);
    }
    if (options_.add_intercept) {
      x.PushBack(static_cast<uint32_t>(columns.size()), 1.0);
    }
    out.features.push_back(std::move(x));
    out.labels.push_back(label);
  }
  return DataBatch(std::move(out));
}

std::unique_ptr<PipelineComponent> VectorAssembler::Clone() const {
  return std::make_unique<VectorAssembler>(options_);
}

}  // namespace cdpipe
