#include "src/pipeline/one_hot_encoder.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

namespace {

/// Fused vectorizing kernel.  Column slots are compile-resolved; dictionary
/// lookups stay at runtime through the encoder (the dictionaries are
/// component state, so any change invalidates the plan holding this
/// kernel).  Per row the emit order is numeric columns in configured order
/// then one categorical entry per block, which is strictly ascending — the
/// same order the interpreted path hands to FromUnsortedInto, where the
/// sort is a no-op.
class OneHotVecStage final : public fusion::FusedStage {
 public:
  struct CatSlot {
    size_t slot;
    size_t cat_index;  ///< position within the encoder's categorical columns
    uint32_t block_offset;
    const std::string* name;
  };

  OneHotVecStage(const OneHotEncoder* encoder, std::vector<size_t> numeric,
                 std::vector<CatSlot> cats, size_t label_slot,
                 std::string label_column, uint32_t dim)
      : encoder_(encoder),
        numeric_(std::move(numeric)),
        cats_(std::move(cats)),
        label_slot_(label_slot),
        label_column_(std::move(label_column)),
        dim_(dim) {}

  const char* label() const override { return "one_hot_encoder"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    fusion::VecBlock& vec = ctx.scratch->vec;
    ctx.rows_scanned += table.live_rows;
    vec.dim = dim_;
    vec.entries.clear();
    vec.row_end.clear();
    vec.labels.clear();
    vec.saw_nan = false;
    vec.nan_rows.clear();
    const fusion::BlockColumn& label_col = table.cols[label_slot_];
    for (size_t r = 0; r < table.num_rows; ++r) {
      if (table.keep[r] == 0) continue;
      if (label_col.IsNull(r)) {
        return Status::FailedPrecondition("cannot widen null to double: " +
                                          label_column_);
      }
      bool row_has_nan = false;
      for (size_t i = 0; i < numeric_.size(); ++i) {
        const fusion::BlockColumn& col = table.cols[numeric_[i]];
        if (col.IsNull(r)) continue;  // treated as 0 (impute upstream)
        const double d = col.NumericAt(r);
        if (d != 0.0) {
          vec.entries.emplace_back(static_cast<uint32_t>(i), d);
          if (std::isnan(d)) row_has_nan = true;
        }
      }
      for (const CatSlot& cat : cats_) {
        const fusion::BlockColumn& col = table.cols[cat.slot];
        if (col.IsNull(r)) continue;
        if (col.type != ValueType::kString) {
          return Status::FailedPrecondition("categorical column " + *cat.name +
                                            " must be a string column");
        }
        vec.entries.emplace_back(
            cat.block_offset + encoder_->SlotOf(cat.cat_index, col.s[r]), 1.0);
      }
      if (row_has_nan) {
        vec.saw_nan = true;
        vec.nan_rows.push_back(static_cast<uint32_t>(vec.row_end.size()));
      }
      vec.row_end.push_back(static_cast<uint32_t>(vec.entries.size()));
      vec.labels.push_back(label_col.NumericAt(r));
    }
    return Status::OK();
  }

 private:
  const OneHotEncoder* encoder_;
  std::vector<size_t> numeric_;
  std::vector<CatSlot> cats_;
  size_t label_slot_;
  std::string label_column_;
  uint32_t dim_;
};

}  // namespace

OneHotEncoder::OneHotEncoder(Options options) : options_(std::move(options)) {
  CDPIPE_CHECK(!options_.label_column.empty());
  uint32_t offset = static_cast<uint32_t>(options_.numeric_columns.size());
  for (const CategoricalColumn& col : options_.categorical_columns) {
    CDPIPE_CHECK_GT(col.max_cardinality, 0u);
    block_offsets_.push_back(offset);
    offset += col.max_cardinality;
  }
  output_dim_ = offset;
  dictionaries_.resize(options_.categorical_columns.size());
}

Status OneHotEncoder::Update(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "one_hot_encoder expects a table batch");
  }
  for (size_t c = 0; c < options_.categorical_columns.size(); ++c) {
    const CategoricalColumn& col = options_.categorical_columns[c];
    CDPIPE_ASSIGN_OR_RETURN(size_t idx, table->schema()->FieldIndex(col.name));
    const Column& column = table->column(idx);
    auto& dict = dictionaries_[c];
    const size_t rows = column.size();
    for (size_t r = 0; r < rows; ++r) {
      if (column.IsNull(r)) continue;
      if (column.type() != ValueType::kString) {
        return Status::FailedPrecondition("categorical column " + col.name +
                                          " must be a string column");
      }
      if (dict.size() < col.max_cardinality) {
        const std::string_view value = column.StringAt(r);
        if (dict.find(value) == dict.end()) {
          dict.emplace(std::string(value), static_cast<uint32_t>(dict.size()));
        }
      }
    }
  }
  return Status::OK();
}

uint32_t OneHotEncoder::SlotOf(size_t c, std::string_view value) const {
  const auto& dict = dictionaries_[c];
  auto it = dict.find(value);
  if (it != dict.end()) return it->second;
  // Unknown value (dictionary full or value never folded in): hash into the
  // block so the category still contributes a stable feature.
  const uint32_t capacity = options_.categorical_columns[c].max_cardinality;
  return static_cast<uint32_t>(std::hash<std::string_view>{}(value) % capacity);
}

Result<DataBatch> OneHotEncoder::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "one_hot_encoder expects a table batch");
  }
  // Resolve all column positions once per batch.
  std::vector<const Column*> numeric_cols(options_.numeric_columns.size());
  std::vector<NumericColumnView> numeric_views;
  numeric_views.reserve(options_.numeric_columns.size());
  for (size_t i = 0; i < options_.numeric_columns.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx, table->schema()->FieldIndex(options_.numeric_columns[i]));
    numeric_cols[i] = &table->column(idx);
    CDPIPE_ASSIGN_OR_RETURN(
        NumericColumnView view,
        NumericColumnView::Of(*numeric_cols[i], options_.numeric_columns[i]));
    numeric_views.push_back(view);
  }
  std::vector<const Column*> cat_cols(options_.categorical_columns.size());
  for (size_t c = 0; c < options_.categorical_columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx,
        table->schema()->FieldIndex(options_.categorical_columns[c].name));
    cat_cols[c] = &table->column(idx);
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_idx,
                          table->schema()->FieldIndex(options_.label_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView labels,
      NumericColumnView::Of(table->column(label_idx), options_.label_column));

  const size_t num_rows = table->num_rows();
  FeatureData out;
  out.dim = output_dim_;
  out.features.reserve(num_rows);
  out.labels.reserve(num_rows);
  std::vector<std::pair<uint32_t, double>> entries;
  entries.reserve(numeric_views.size() + cat_cols.size());
  for (size_t r = 0; r < num_rows; ++r) {
    if (labels.IsNull(r)) {
      return Status::FailedPrecondition("cannot widen null to double: " +
                                        options_.label_column);
    }
    const double label = labels[r];
    entries.clear();
    for (size_t i = 0; i < numeric_views.size(); ++i) {
      if (numeric_views[i].IsNull(r)) continue;  // treated as 0 (impute upstream)
      const double d = numeric_views[i][r];
      if (d != 0.0) entries.emplace_back(static_cast<uint32_t>(i), d);
    }
    for (size_t c = 0; c < cat_cols.size(); ++c) {
      const Column& column = *cat_cols[c];
      if (column.IsNull(r)) continue;
      if (column.type() != ValueType::kString) {
        return Status::FailedPrecondition(
            "categorical column " + options_.categorical_columns[c].name +
            " must be a string column");
      }
      entries.emplace_back(block_offsets_[c] + SlotOf(c, column.StringAt(r)),
                           1.0);
    }
    out.features.push_back(
        SparseVector::FromUnsortedInto(output_dim_, &entries));
    out.labels.push_back(label);
  }
  return DataBatch(std::move(out));
}

Status OneHotEncoder::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition("one_hot_encoder expects a table batch");
  }
  std::vector<size_t> numeric;
  numeric.reserve(options_.numeric_columns.size());
  for (const std::string& column : options_.numeric_columns) {
    // Unknown or string columns decline fusion; the interpreted path owns
    // reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(column));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition("cannot encode non-numeric column " +
                                        column);
    }
    numeric.push_back(slot);
  }
  std::vector<OneHotVecStage::CatSlot> cats;
  cats.reserve(options_.categorical_columns.size());
  for (size_t c = 0; c < options_.categorical_columns.size(); ++c) {
    const CategoricalColumn& col = options_.categorical_columns[c];
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(col.name));
    cats.push_back(
        OneHotVecStage::CatSlot{slot, c, block_offsets_[c], &col.name});
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_slot,
                          plan->SlotOf(options_.label_column));
  if (plan->SlotDeclaredType(label_slot) == ValueType::kString) {
    return Status::FailedPrecondition("cannot encode non-numeric column " +
                                      options_.label_column);
  }
  plan->AddStage(std::make_unique<OneHotVecStage>(
      this, std::move(numeric), std::move(cats), label_slot,
      options_.label_column, output_dim_));
  plan->BeginVec(output_dim_);
  return Status::OK();
}

void OneHotEncoder::Reset() {
  for (auto& dict : dictionaries_) dict.clear();
}

std::unique_ptr<PipelineComponent> OneHotEncoder::Clone() const {
  auto out = std::make_unique<OneHotEncoder>(options_);
  out->dictionaries_ = dictionaries_;
  return out;
}

Status OneHotEncoder::SaveState(Serializer* out) const {
  out->WriteInt("onehot.num_columns",
                static_cast<int64_t>(dictionaries_.size()));
  for (size_t c = 0; c < dictionaries_.size(); ++c) {
    // Deterministic order: by assigned slot.
    std::vector<std::pair<std::string, uint32_t>> sorted(
        dictionaries_[c].begin(), dictionaries_[c].end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second < b.second;
    });
    out->WriteInt("onehot.dict_size", static_cast<int64_t>(sorted.size()));
    for (const auto& [value, slot] : sorted) {
      out->WriteString("onehot.value", value);
      out->WriteInt("onehot.slot", slot);
    }
  }
  return Status::OK();
}

Status OneHotEncoder::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t num_columns,
                          in->ReadInt("onehot.num_columns"));
  if (num_columns != static_cast<int64_t>(dictionaries_.size())) {
    return Status::InvalidArgument(
        "one-hot checkpoint has a different number of categorical columns");
  }
  for (auto& dict : dictionaries_) {
    dict.clear();
    CDPIPE_ASSIGN_OR_RETURN(int64_t size, in->ReadInt("onehot.dict_size"));
    for (int64_t i = 0; i < size; ++i) {
      CDPIPE_ASSIGN_OR_RETURN(std::string value,
                              in->ReadString("onehot.value"));
      CDPIPE_ASSIGN_OR_RETURN(int64_t slot, in->ReadInt("onehot.slot"));
      dict.emplace(std::move(value), static_cast<uint32_t>(slot));
    }
  }
  return Status::OK();
}

std::string OneHotEncoder::DescribeState() const {
  std::string out = "dictionaries:";
  for (size_t c = 0; c < dictionaries_.size(); ++c) {
    out += StrFormat(" %s=%zu/%u", options_.categorical_columns[c].name.c_str(),
                     dictionaries_[c].size(),
                     options_.categorical_columns[c].max_cardinality);
  }
  return out;
}

}  // namespace cdpipe
