#include "src/pipeline/one_hot_encoder.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"

namespace cdpipe {

OneHotEncoder::OneHotEncoder(Options options) : options_(std::move(options)) {
  CDPIPE_CHECK(!options_.label_column.empty());
  uint32_t offset = static_cast<uint32_t>(options_.numeric_columns.size());
  for (const CategoricalColumn& col : options_.categorical_columns) {
    CDPIPE_CHECK_GT(col.max_cardinality, 0u);
    block_offsets_.push_back(offset);
    offset += col.max_cardinality;
  }
  output_dim_ = offset;
  dictionaries_.resize(options_.categorical_columns.size());
}

Status OneHotEncoder::Update(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "one_hot_encoder expects a table batch");
  }
  for (size_t c = 0; c < options_.categorical_columns.size(); ++c) {
    const CategoricalColumn& col = options_.categorical_columns[c];
    CDPIPE_ASSIGN_OR_RETURN(size_t idx, table->schema()->FieldIndex(col.name));
    const Column& column = table->column(idx);
    auto& dict = dictionaries_[c];
    const size_t rows = column.size();
    for (size_t r = 0; r < rows; ++r) {
      if (column.IsNull(r)) continue;
      if (column.type() != ValueType::kString) {
        return Status::FailedPrecondition("categorical column " + col.name +
                                          " must be a string column");
      }
      if (dict.size() < col.max_cardinality) {
        const std::string_view value = column.StringAt(r);
        if (dict.find(value) == dict.end()) {
          dict.emplace(std::string(value), static_cast<uint32_t>(dict.size()));
        }
      }
    }
  }
  return Status::OK();
}

uint32_t OneHotEncoder::SlotOf(size_t c, std::string_view value) const {
  const auto& dict = dictionaries_[c];
  auto it = dict.find(value);
  if (it != dict.end()) return it->second;
  // Unknown value (dictionary full or value never folded in): hash into the
  // block so the category still contributes a stable feature.
  const uint32_t capacity = options_.categorical_columns[c].max_cardinality;
  return static_cast<uint32_t>(std::hash<std::string_view>{}(value) % capacity);
}

Result<DataBatch> OneHotEncoder::Transform(const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "one_hot_encoder expects a table batch");
  }
  // Resolve all column positions once per batch.
  std::vector<const Column*> numeric_cols(options_.numeric_columns.size());
  std::vector<NumericColumnView> numeric_views;
  numeric_views.reserve(options_.numeric_columns.size());
  for (size_t i = 0; i < options_.numeric_columns.size(); ++i) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx, table->schema()->FieldIndex(options_.numeric_columns[i]));
    numeric_cols[i] = &table->column(idx);
    CDPIPE_ASSIGN_OR_RETURN(
        NumericColumnView view,
        NumericColumnView::Of(*numeric_cols[i], options_.numeric_columns[i]));
    numeric_views.push_back(view);
  }
  std::vector<const Column*> cat_cols(options_.categorical_columns.size());
  for (size_t c = 0; c < options_.categorical_columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(
        size_t idx,
        table->schema()->FieldIndex(options_.categorical_columns[c].name));
    cat_cols[c] = &table->column(idx);
  }
  CDPIPE_ASSIGN_OR_RETURN(size_t label_idx,
                          table->schema()->FieldIndex(options_.label_column));
  CDPIPE_ASSIGN_OR_RETURN(
      NumericColumnView labels,
      NumericColumnView::Of(table->column(label_idx), options_.label_column));

  const size_t num_rows = table->num_rows();
  FeatureData out;
  out.dim = output_dim_;
  out.features.reserve(num_rows);
  out.labels.reserve(num_rows);
  std::vector<std::pair<uint32_t, double>> entries;
  entries.reserve(numeric_views.size() + cat_cols.size());
  for (size_t r = 0; r < num_rows; ++r) {
    if (labels.IsNull(r)) {
      return Status::FailedPrecondition("cannot widen null to double: " +
                                        options_.label_column);
    }
    const double label = labels[r];
    entries.clear();
    for (size_t i = 0; i < numeric_views.size(); ++i) {
      if (numeric_views[i].IsNull(r)) continue;  // treated as 0 (impute upstream)
      const double d = numeric_views[i][r];
      if (d != 0.0) entries.emplace_back(static_cast<uint32_t>(i), d);
    }
    for (size_t c = 0; c < cat_cols.size(); ++c) {
      const Column& column = *cat_cols[c];
      if (column.IsNull(r)) continue;
      if (column.type() != ValueType::kString) {
        return Status::FailedPrecondition(
            "categorical column " + options_.categorical_columns[c].name +
            " must be a string column");
      }
      entries.emplace_back(block_offsets_[c] + SlotOf(c, column.StringAt(r)),
                           1.0);
    }
    out.features.push_back(
        SparseVector::FromUnsortedInto(output_dim_, &entries));
    out.labels.push_back(label);
  }
  return DataBatch(std::move(out));
}

void OneHotEncoder::Reset() {
  for (auto& dict : dictionaries_) dict.clear();
}

std::unique_ptr<PipelineComponent> OneHotEncoder::Clone() const {
  auto out = std::make_unique<OneHotEncoder>(options_);
  out->dictionaries_ = dictionaries_;
  return out;
}

Status OneHotEncoder::SaveState(Serializer* out) const {
  out->WriteInt("onehot.num_columns",
                static_cast<int64_t>(dictionaries_.size()));
  for (size_t c = 0; c < dictionaries_.size(); ++c) {
    // Deterministic order: by assigned slot.
    std::vector<std::pair<std::string, uint32_t>> sorted(
        dictionaries_[c].begin(), dictionaries_[c].end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second < b.second;
    });
    out->WriteInt("onehot.dict_size", static_cast<int64_t>(sorted.size()));
    for (const auto& [value, slot] : sorted) {
      out->WriteString("onehot.value", value);
      out->WriteInt("onehot.slot", slot);
    }
  }
  return Status::OK();
}

Status OneHotEncoder::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t num_columns,
                          in->ReadInt("onehot.num_columns"));
  if (num_columns != static_cast<int64_t>(dictionaries_.size())) {
    return Status::InvalidArgument(
        "one-hot checkpoint has a different number of categorical columns");
  }
  for (auto& dict : dictionaries_) {
    dict.clear();
    CDPIPE_ASSIGN_OR_RETURN(int64_t size, in->ReadInt("onehot.dict_size"));
    for (int64_t i = 0; i < size; ++i) {
      CDPIPE_ASSIGN_OR_RETURN(std::string value,
                              in->ReadString("onehot.value"));
      CDPIPE_ASSIGN_OR_RETURN(int64_t slot, in->ReadInt("onehot.slot"));
      dict.emplace(std::move(value), static_cast<uint32_t>(slot));
    }
  }
  return Status::OK();
}

std::string OneHotEncoder::DescribeState() const {
  std::string out = "dictionaries:";
  for (size_t c = 0; c < dictionaries_.size(); ++c) {
    out += StrFormat(" %s=%zu/%u", options_.categorical_columns[c].name.c_str(),
                     dictionaries_[c].size(),
                     options_.categorical_columns[c].max_cardinality);
  }
  return out;
}

}  // namespace cdpipe
