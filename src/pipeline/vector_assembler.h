#ifndef CDPIPE_PIPELINE_VECTOR_ASSEMBLER_H_
#define CDPIPE_PIPELINE_VECTOR_ASSEMBLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Terminal vectorizing stage for table pipelines: packs the configured
/// numeric columns into a feature vector (index i = i-th configured column)
/// and pulls the label from `label_column`.  Optionally adds a constant
/// intercept feature as the last dimension.  Stateless.
class VectorAssembler : public PipelineComponent {
 public:
  struct Options {
    std::vector<std::string> feature_columns;
    std::string label_column;
    /// Append a constant-1 feature (useful when the model has no bias).
    bool add_intercept = false;
  };

  explicit VectorAssembler(Options options);

  std::string name() const override { return "vector_assembler"; }
  ComponentKind kind() const override {
    return ComponentKind::kFeatureSelection;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  uint32_t output_dim() const {
    return static_cast<uint32_t>(options_.feature_columns.size()) +
           (options_.add_intercept ? 1 : 0);
  }

 private:
  Options options_;
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_VECTOR_ASSEMBLER_H_
