#include "src/pipeline/zscore_anomaly_detector.h"

#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace cdpipe {

ZScoreAnomalyDetector::ZScoreAnomalyDetector(Options options)
    : options_(std::move(options)), stats_(options_.columns.size()) {
  CDPIPE_CHECK(!options_.columns.empty());
  CDPIPE_CHECK_GT(options_.threshold, 0.0);
}

Status ZScoreAnomalyDetector::Update(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table->schema->FieldIndex(options_.columns[c]));
    for (const Row& row : table->rows) {
      const Value& v = row[col];
      if (v.is_null()) continue;
      Result<double> d = v.AsDouble();
      if (!d.ok()) {
        return Status::FailedPrecondition(
            "cannot compute z-scores for non-numeric column " +
            options_.columns[c]);
      }
      stats_[c].Add(*d);
    }
  }
  return Status::OK();
}

Result<DataBatch> ZScoreAnomalyDetector::Transform(
    const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  std::vector<size_t> column_indices(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(
        column_indices[c], table->schema->FieldIndex(options_.columns[c]));
  }

  TableData out;
  out.schema = table->schema;
  out.rows.reserve(table->rows.size());
  size_t dropped = 0;
  for (const Row& row : table->rows) {
    bool anomalous = false;
    for (size_t c = 0; c < column_indices.size() && !anomalous; ++c) {
      const Welford& w = stats_[c];
      if (w.count < options_.min_observations) continue;  // not calibrated
      const Value& v = row[column_indices[c]];
      if (v.is_null()) continue;
      CDPIPE_ASSIGN_OR_RETURN(double d, v.AsDouble());
      const double sd = std::sqrt(w.Variance());
      if (sd <= 0.0) continue;  // constant column: nothing is anomalous
      if (std::abs(d - w.mean) > options_.threshold * sd) anomalous = true;
    }
    if (anomalous) {
      ++dropped;
    } else {
      out.rows.push_back(row);
    }
  }
  dropped_.fetch_add(dropped, std::memory_order_relaxed);
  return DataBatch(std::move(out));
}

void ZScoreAnomalyDetector::Reset() {
  for (Welford& w : stats_) w = Welford{};
}

std::unique_ptr<PipelineComponent> ZScoreAnomalyDetector::Clone() const {
  auto out = std::make_unique<ZScoreAnomalyDetector>(options_);
  out->stats_ = stats_;
  out->dropped_.store(dropped_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return out;
}

std::string ZScoreAnomalyDetector::DescribeState() const {
  std::string out = StrFormat("threshold=%.1f sigma;", options_.threshold);
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    out += StrFormat(" %s: n=%lld mean=%.3g sd=%.3g",
                     options_.columns[c].c_str(),
                     static_cast<long long>(stats_[c].count), stats_[c].mean,
                     std::sqrt(stats_[c].Variance()));
  }
  return out;
}

Status ZScoreAnomalyDetector::SaveState(Serializer* out) const {
  out->WriteInt("zscore.num_columns",
                static_cast<int64_t>(stats_.size()));
  std::vector<double> counts;
  std::vector<double> means;
  std::vector<double> m2s;
  for (const Welford& w : stats_) {
    counts.push_back(static_cast<double>(w.count));
    means.push_back(w.mean);
    m2s.push_back(w.m2);
  }
  out->WriteDoubleVector("zscore.counts", counts);
  out->WriteDoubleVector("zscore.means", means);
  out->WriteDoubleVector("zscore.m2s", m2s);
  return Status::OK();
}

Status ZScoreAnomalyDetector::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t num_columns,
                          in->ReadInt("zscore.num_columns"));
  if (num_columns != static_cast<int64_t>(stats_.size())) {
    return Status::InvalidArgument(
        "z-score checkpoint has a different number of columns");
  }
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadDoubleVector("zscore.counts"));
  CDPIPE_ASSIGN_OR_RETURN(auto means, in->ReadDoubleVector("zscore.means"));
  CDPIPE_ASSIGN_OR_RETURN(auto m2s, in->ReadDoubleVector("zscore.m2s"));
  if (counts.size() != stats_.size() || means.size() != stats_.size() ||
      m2s.size() != stats_.size()) {
    return Status::InvalidArgument("z-score state arrays misaligned");
  }
  for (size_t c = 0; c < stats_.size(); ++c) {
    stats_[c].count = static_cast<int64_t>(counts[c]);
    stats_[c].mean = means[c];
    stats_[c].m2 = m2s[c];
  }
  return Status::OK();
}

double ZScoreAnomalyDetector::MeanOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return stats_[column].mean;
}

double ZScoreAnomalyDetector::StdDevOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return std::sqrt(stats_[column].Variance());
}

int64_t ZScoreAnomalyDetector::CountOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return stats_[column].count;
}

}  // namespace cdpipe
