#include "src/pipeline/zscore_anomaly_detector.h"

#include <cmath>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/dataframe/column_ops.h"
#include "src/pipeline/fusion/fusion.h"

namespace cdpipe {

namespace {

/// Fused kernel.  The per-column mean and |x - mean| limit are snapshotted
/// at plan-compile time: any statistics change bumps the pipeline state
/// version, which invalidates the plan, so the snapshot is exactly what the
/// interpreted KeepMask would have computed.  Uncalibrated and constant
/// columns are dropped from the snapshot at compile (they never vote).
class ZScoreTableStage final : public fusion::FusedStage {
 public:
  struct ColLimit {
    size_t slot;
    double mean;
    double limit;
  };

  ZScoreTableStage(const ZScoreAnomalyDetector* detector,
                   std::vector<ColLimit> cols)
      : detector_(detector), cols_(std::move(cols)) {}

  const char* label() const override { return "zscore_anomaly_detector"; }

  Status Run(fusion::ExecContext& ctx) const override {
    fusion::TableBlock& table = ctx.scratch->table;
    ctx.rows_scanned += table.live_rows;
    size_t dropped = 0;
    for (const ColLimit& cl : cols_) {
      const fusion::BlockColumn& col = table.cols[cl.slot];
      for (size_t r = 0; r < table.num_rows; ++r) {
        if (table.keep[r] == 0) continue;
        if (col.IsNull(r)) continue;  // null never votes to drop
        if (std::abs(col.NumericAt(r) - cl.mean) > cl.limit) {
          table.keep[r] = 0;
          --table.live_rows;
          ++dropped;
        }
      }
    }
    if (dropped > 0) detector_->RecordDropped(dropped);
    return Status::OK();
  }

 private:
  const ZScoreAnomalyDetector* detector_;
  std::vector<ColLimit> cols_;
};

}  // namespace

ZScoreAnomalyDetector::ZScoreAnomalyDetector(Options options)
    : options_(std::move(options)), stats_(options_.columns.size()) {
  CDPIPE_CHECK(!options_.columns.empty());
  CDPIPE_CHECK_GT(options_.threshold, 0.0);
}

Status ZScoreAnomalyDetector::Update(const DataBatch& batch) {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(size_t col,
                            table->schema()->FieldIndex(options_.columns[c]));
    const Column& column = table->column(col);
    Result<NumericColumnView> view = NumericColumnView::Of(column, "");
    if (!view.ok()) {
      return Status::FailedPrecondition(
          "cannot compute z-scores for non-numeric column " +
          options_.columns[c]);
    }
    Welford& w = stats_[c];
    const size_t rows = column.size();
    if (!column.has_nulls()) {
      for (size_t r = 0; r < rows; ++r) w.Add((*view)[r]);
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (view->IsNull(r)) continue;
        w.Add((*view)[r]);
      }
    }
  }
  return Status::OK();
}

Result<DataBatch> ZScoreAnomalyDetector::Transform(
    const DataBatch& batch) const {
  const auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  CDPIPE_ASSIGN_OR_RETURN(std::vector<uint8_t> keep, KeepMask(*table));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  dropped_.fetch_add(table->num_rows() - kept, std::memory_order_relaxed);
  if (kept == table->num_rows()) {
    return DataBatch(*table);
  }
  return DataBatch(table->Filter(keep));
}

Result<DataBatch> ZScoreAnomalyDetector::TransformOwned(
    DataBatch&& batch) const {
  auto* table = std::get_if<TableData>(&batch);
  if (table == nullptr) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  CDPIPE_ASSIGN_OR_RETURN(std::vector<uint8_t> keep, KeepMask(*table));
  size_t kept = 0;
  for (uint8_t k : keep) kept += k != 0;
  dropped_.fetch_add(table->num_rows() - kept, std::memory_order_relaxed);
  if (kept == table->num_rows()) {
    return std::move(batch);
  }
  return DataBatch(table->Filter(keep));
}

Status ZScoreAnomalyDetector::Fuse(fusion::PlanBuilder* plan) const {
  if (plan->repr() != fusion::PlanBuilder::Repr::kTable) {
    return Status::FailedPrecondition(
        "zscore_anomaly_detector expects a table batch");
  }
  std::vector<ZScoreTableStage::ColLimit> cols;
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    // Unknown or string columns decline fusion; the interpreted path owns
    // reporting those errors with full pipeline context.
    CDPIPE_ASSIGN_OR_RETURN(size_t slot, plan->SlotOf(options_.columns[c]));
    if (plan->SlotDeclaredType(slot) == ValueType::kString) {
      return Status::FailedPrecondition(
          "cannot compute z-scores for non-numeric column " +
          options_.columns[c]);
    }
    const Welford& w = stats_[c];
    if (w.count < options_.min_observations) continue;  // not calibrated
    const double sd = std::sqrt(w.Variance());
    if (sd <= 0.0) continue;  // constant column: nothing is anomalous
    cols.push_back(
        ZScoreTableStage::ColLimit{slot, w.mean, options_.threshold * sd});
  }
  if (cols.empty()) {
    // No column is calibrated yet: provably a no-op on every row.
    plan->AddElidedStage("zscore_anomaly_detector");
    return Status::OK();
  }
  plan->AddStage(std::make_unique<ZScoreTableStage>(this, std::move(cols)));
  return Status::OK();
}

Result<std::vector<uint8_t>> ZScoreAnomalyDetector::KeepMask(
    const TableData& table) const {
  std::vector<size_t> column_indices(options_.columns.size());
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    CDPIPE_ASSIGN_OR_RETURN(
        column_indices[c], table.schema()->FieldIndex(options_.columns[c]));
  }
  // Column-major anomaly mask: each calibrated column flags its outliers
  // over the contiguous cells; a row survives when no column flagged it.
  const size_t num_rows = table.num_rows();
  std::vector<uint8_t> keep(num_rows, 1);
  for (size_t c = 0; c < column_indices.size(); ++c) {
    const Welford& w = stats_[c];
    if (w.count < options_.min_observations) continue;  // not calibrated
    const Column& column = table.column(column_indices[c]);
    CDPIPE_ASSIGN_OR_RETURN(
        NumericColumnView view,
        NumericColumnView::Of(column, options_.columns[c]));
    const double sd = std::sqrt(w.Variance());
    if (sd <= 0.0) continue;  // constant column: nothing is anomalous
    const double limit = options_.threshold * sd;
    for (size_t r = 0; r < num_rows; ++r) {
      if (view.IsNull(r)) continue;
      if (std::abs(view[r] - w.mean) > limit) keep[r] = 0;
    }
  }
  return keep;
}

void ZScoreAnomalyDetector::Reset() {
  for (Welford& w : stats_) w = Welford{};
}

std::unique_ptr<PipelineComponent> ZScoreAnomalyDetector::Clone() const {
  auto out = std::make_unique<ZScoreAnomalyDetector>(options_);
  out->stats_ = stats_;
  out->dropped_.store(dropped_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  return out;
}

std::string ZScoreAnomalyDetector::DescribeState() const {
  std::string out = StrFormat("threshold=%.1f sigma;", options_.threshold);
  for (size_t c = 0; c < options_.columns.size(); ++c) {
    out += StrFormat(" %s: n=%lld mean=%.3g sd=%.3g",
                     options_.columns[c].c_str(),
                     static_cast<long long>(stats_[c].count), stats_[c].mean,
                     std::sqrt(stats_[c].Variance()));
  }
  return out;
}

Status ZScoreAnomalyDetector::SaveState(Serializer* out) const {
  out->WriteInt("zscore.num_columns",
                static_cast<int64_t>(stats_.size()));
  std::vector<double> counts;
  std::vector<double> means;
  std::vector<double> m2s;
  for (const Welford& w : stats_) {
    counts.push_back(static_cast<double>(w.count));
    means.push_back(w.mean);
    m2s.push_back(w.m2);
  }
  out->WriteDoubleVector("zscore.counts", counts);
  out->WriteDoubleVector("zscore.means", means);
  out->WriteDoubleVector("zscore.m2s", m2s);
  return Status::OK();
}

Status ZScoreAnomalyDetector::LoadState(Deserializer* in) {
  CDPIPE_ASSIGN_OR_RETURN(int64_t num_columns,
                          in->ReadInt("zscore.num_columns"));
  if (num_columns != static_cast<int64_t>(stats_.size())) {
    return Status::InvalidArgument(
        "z-score checkpoint has a different number of columns");
  }
  CDPIPE_ASSIGN_OR_RETURN(auto counts, in->ReadDoubleVector("zscore.counts"));
  CDPIPE_ASSIGN_OR_RETURN(auto means, in->ReadDoubleVector("zscore.means"));
  CDPIPE_ASSIGN_OR_RETURN(auto m2s, in->ReadDoubleVector("zscore.m2s"));
  if (counts.size() != stats_.size() || means.size() != stats_.size() ||
      m2s.size() != stats_.size()) {
    return Status::InvalidArgument("z-score state arrays misaligned");
  }
  for (size_t c = 0; c < stats_.size(); ++c) {
    stats_[c].count = static_cast<int64_t>(counts[c]);
    stats_[c].mean = means[c];
    stats_[c].m2 = m2s[c];
  }
  return Status::OK();
}

double ZScoreAnomalyDetector::MeanOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return stats_[column].mean;
}

double ZScoreAnomalyDetector::StdDevOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return std::sqrt(stats_[column].Variance());
}

int64_t ZScoreAnomalyDetector::CountOf(size_t column) const {
  CDPIPE_CHECK_LT(column, stats_.size());
  return stats_[column].count;
}

}  // namespace cdpipe
