#include "src/pipeline/component.h"

namespace cdpipe {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kDataTransformation:
      return "data-transformation";
    case ComponentKind::kFeatureSelection:
      return "feature-selection";
    case ComponentKind::kFeatureExtraction:
      return "feature-extraction";
  }
  return "?";
}

}  // namespace cdpipe
