#ifndef CDPIPE_PIPELINE_ANOMALY_FILTER_H_
#define CDPIPE_PIPELINE_ANOMALY_FILTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Drops anomalous rows from a table batch — the Taxi pipeline's anomaly
/// detector (trips longer than 22 hours, shorter than 10 seconds, or with
/// zero distance).  Stateless data transformation (a filter, Table 1 of the
/// paper).
///
/// Two construction forms:
///  - **Declarative range rules** (preferred): a conjunction of per-column
///    range conditions; null cells are dropped as anomalous.  Rule filters
///    participate in pipeline fusion (the ranges compile into a block
///    kernel that flips the keep mask without materializing a filtered
///    table).
///  - **Custom predicate**: arbitrary batch-level logic for conditions the
///    rule language cannot express.  Predicate filters run interpreted
///    only — the planner cannot see inside a std::function, so a pipeline
///    containing one falls back to the interpreted loop.
class AnomalyFilter : public PipelineComponent {
 public:
  /// One range condition on a numeric column: a row survives when
  /// min </<= value </<= max (bounds infinite by default).  Null cells
  /// never survive a rule.
  struct Rule {
    std::string column;
    double min = -std::numeric_limits<double>::infinity();
    double max = std::numeric_limits<double>::infinity();
    bool min_exclusive = false;
    bool max_exclusive = false;
  };

  /// Batch-level predicate: `*keep` arrives sized to the batch's row count
  /// and filled with 1; the predicate zeroes the rows to DROP.  Resolving
  /// columns once per batch (instead of once per row) is what lets filter
  /// rules run as column kernels.  Errors propagate and abort the batch.
  using Predicate =
      std::function<Status(const TableData& table, std::vector<uint8_t>* keep)>;

  AnomalyFilter(std::string rule_name, Predicate keep);
  /// Declarative form: keeps rows satisfying every rule.
  AnomalyFilter(std::string rule_name, std::vector<Rule> rules);

  /// Keeps rows whose numeric `column` lies within [min, max] (inclusive);
  /// null cells are dropped as anomalous.
  static std::unique_ptr<AnomalyFilter> KeepInRange(const std::string& column,
                                                    double min, double max);

  std::string name() const override { return "anomaly_filter(" + rule_name_ + ")"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  Result<DataBatch> TransformOwned(DataBatch&& batch) const override;
  Status Fuse(fusion::PlanBuilder* plan) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  /// Total rows dropped since construction.
  size_t num_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Adds to the dropped-row counter.  Fused kernels report their drops
  /// here so the counter stays in step with the interpreted path.
  void RecordDropped(size_t n) const {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  std::string rule_name_;
  Predicate keep_;
  /// Non-empty iff constructed from rules (the fusable form).
  std::vector<Rule> rules_;
  mutable std::atomic<size_t> dropped_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_ANOMALY_FILTER_H_
