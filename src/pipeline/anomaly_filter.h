#ifndef CDPIPE_PIPELINE_ANOMALY_FILTER_H_
#define CDPIPE_PIPELINE_ANOMALY_FILTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/component.h"

namespace cdpipe {

/// Drops anomalous rows from a table batch using a user-supplied predicate —
/// the Taxi pipeline's anomaly detector (trips longer than 22 hours, shorter
/// than 10 seconds, or with zero distance).  Stateless data transformation
/// (a filter, Table 1 of the paper).
class AnomalyFilter : public PipelineComponent {
 public:
  /// Returns true when the row should be KEPT.  Errors propagate.
  using Predicate =
      std::function<Result<bool>(const Schema& schema, const Row& row)>;

  AnomalyFilter(std::string rule_name, Predicate keep);

  /// Keeps rows whose numeric `column` lies within [min, max] (inclusive);
  /// null cells are dropped as anomalous.
  static std::unique_ptr<AnomalyFilter> KeepInRange(const std::string& column,
                                                    double min, double max);

  std::string name() const override { return "anomaly_filter(" + rule_name_ + ")"; }
  ComponentKind kind() const override {
    return ComponentKind::kDataTransformation;
  }

  Result<DataBatch> Transform(const DataBatch& batch) const override;
  std::unique_ptr<PipelineComponent> Clone() const override;

  /// Total rows dropped since construction.
  size_t num_dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::string rule_name_;
  Predicate keep_;
  mutable std::atomic<size_t> dropped_{0};
};

}  // namespace cdpipe

#endif  // CDPIPE_PIPELINE_ANOMALY_FILTER_H_
